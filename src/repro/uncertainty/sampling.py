"""Monte-Carlo and grid-based integration helpers.

The paper's *basic* evaluation method (Section 3.3) and its non-uniform-pdf
experiments (Section 6.2, Figure 13) both rely on sampling: the issuer's
uncertainty region is discretised into sample points, and per-sample results
are averaged under the issuer's pdf.  These helpers centralise that machinery
so the evaluators stay small.
"""

from __future__ import annotations
from repro.errors import DistributionError

from typing import Callable

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import UncertaintyPdf

#: Sample counts the paper found sufficient in its sensitivity analysis
#: (Section 6.2): "at least 200 samples for evaluating a C-IPQ, and 250
#: samples for C-IUQ".
PAPER_SAMPLES_CIPQ: int = 200
PAPER_SAMPLES_CIUQ: int = 250


def sample_array(pdf: UncertaintyPdf, n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` locations from ``pdf`` as a raw ``(n, 2)`` ndarray.

    This is the columnar counterpart of :func:`sample_points`: downstream
    vectorized kernels consume the array directly, avoiding the ``list[Point]``
    materialisation (and the per-draw ``Point`` allocations) entirely.
    """
    if n <= 0:
        raise DistributionError(f"sample count must be positive, got {n}")
    return pdf.sample(rng, n)


def sample_points(pdf: UncertaintyPdf, n: int, rng: np.random.Generator) -> list[Point]:
    """Draw ``n`` locations from ``pdf`` as :class:`Point` objects.

    Prefer :func:`sample_array` in hot paths; this wrapper exists for callers
    that genuinely need :class:`Point` objects.
    """
    draws = sample_array(pdf, n, rng)
    return [Point(float(x), float(y)) for x, y in draws]


def monte_carlo_rect_probability(
    pdf: UncertaintyPdf,
    rect: Rect,
    n: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of the pdf's mass inside ``rect``.

    Used as the fallback when a pdf has no closed-form rectangle probability,
    and in tests as an independent check of the closed-form implementations.
    """
    if n <= 0:
        raise DistributionError(f"sample count must be positive, got {n}")
    if rect.is_empty:
        return 0.0
    draws = pdf.sample(rng, n)
    inside = (
        (draws[:, 0] >= rect.xmin)
        & (draws[:, 0] <= rect.xmax)
        & (draws[:, 1] >= rect.ymin)
        & (draws[:, 1] <= rect.ymax)
    )
    return float(np.count_nonzero(inside)) / n


def monte_carlo_expectation(
    pdf: UncertaintyPdf,
    func: Callable[..., float],
    n: int,
    rng: np.random.Generator,
    *,
    vectorized: bool = False,
) -> float:
    """Monte-Carlo estimate of ``E[func(X, Y)]`` under ``pdf``.

    This is the workhorse of the sampled IUQ evaluation: ``func`` is the
    per-position qualification probability ``Q(x, y)`` and the expectation is
    Equation 7 / 8 of the paper.

    With ``vectorized=True``, ``func`` must accept two ``(n,)`` coordinate
    arrays and return an ``(n,)`` array of values; the expectation is then a
    single array evaluation instead of ``n`` Python calls.  The draws are
    identical in both modes (one :meth:`~UncertaintyPdf.sample` call).
    """
    if n <= 0:
        raise DistributionError(f"sample count must be positive, got {n}")
    draws = pdf.sample(rng, n)
    if vectorized:
        values = np.asarray(func(draws[:, 0], draws[:, 1]), dtype=float)
        if values.shape != (n,):
            raise DistributionError(
                f"vectorized func must return shape ({n},), got {values.shape}"
            )
        return float(values.sum()) / n
    total = 0.0
    for x, y in draws:
        total += func(float(x), float(y))
    return total / n


def grid_rect_probability(pdf: UncertaintyPdf, rect: Rect, resolution: int = 64) -> float:
    """Deterministic midpoint-rule estimate of the pdf's mass inside ``rect``.

    Integrates the density over ``rect ∩ region`` on a ``resolution²`` grid.
    Useful when reproducibility matters more than speed (e.g. golden tests).
    """
    if resolution <= 0:
        raise DistributionError(f"resolution must be positive, got {resolution}")
    clipped = rect.intersect(pdf.region)
    if clipped.is_empty or clipped.area == 0.0:
        return 0.0
    xs = np.linspace(clipped.xmin, clipped.xmax, resolution + 1)
    ys = np.linspace(clipped.ymin, clipped.ymax, resolution + 1)
    x_mid = (xs[:-1] + xs[1:]) / 2.0
    y_mid = (ys[:-1] + ys[1:]) / 2.0
    cell_area = (clipped.width / resolution) * (clipped.height / resolution)
    total = 0.0
    for y in y_mid:
        for x in x_mid:
            total += pdf.density(float(x), float(y))
    return min(1.0, total * cell_area)


def grid_expectation(
    pdf: UncertaintyPdf,
    func: Callable[[float, float], float],
    resolution: int = 32,
) -> float:
    """Deterministic midpoint-rule estimate of ``E[func(X, Y)]`` under ``pdf``.

    The integration domain is the pdf's full support rectangle; cells where
    the density vanishes contribute nothing.
    """
    if resolution <= 0:
        raise DistributionError(f"resolution must be positive, got {resolution}")
    region = pdf.region
    xs = np.linspace(region.xmin, region.xmax, resolution + 1)
    ys = np.linspace(region.ymin, region.ymax, resolution + 1)
    x_mid = (xs[:-1] + xs[1:]) / 2.0
    y_mid = (ys[:-1] + ys[1:]) / 2.0
    cell_area = (region.width / resolution) * (region.height / resolution)
    total = 0.0
    for y in y_mid:
        for x in x_mid:
            density = pdf.density(float(x), float(y))
            if density > 0.0:
                total += density * func(float(x), float(y)) * cell_area
    return total
