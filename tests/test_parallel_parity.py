"""Sharded parity suite: ``ParallelEngine`` must equal the single-shard engine.

Acceptance criteria of the sharded-execution change: for all four paper
query kinds (IPQ, C-IPQ, IUQ, C-IUQ) plus the nearest-neighbour extension,
``ParallelEngine.evaluate_many`` over K ∈ {2, 4} shards returns answer sets
and probabilities identical — Monte-Carlo bitwise-identical — to the
single-shard vectorized engine running the per-oid draw plan, for both
partitioners, in serial and in worker-pool mode.
"""

from __future__ import annotations

import os

import pytest

from repro.core.engine import (
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.parallel import ParallelEngine, ParallelEvaluation
from repro.core.queries import NearestNeighborQuery, RangeQuery
from repro.core.session import Session
from repro.core.sharding import ShardedDatabase
from repro.datasets.workload import QueryWorkload

from tests.conftest import TEST_SPACE


def _queries(count, *, target=None, threshold=0.0, pdf="uniform", seed=99, nn_every=0):
    workload = QueryWorkload(
        bounds=TEST_SPACE, issuer_pdf=pdf, range_half_size=400.0, seed=seed
    )
    queries = []
    for position, issuer in enumerate(workload.issuers(count)):
        if nn_every and position % nn_every == 0:
            queries.append(NearestNeighborQuery(issuer=issuer, samples=32))
        else:
            queries.append(
                RangeQuery(
                    issuer=issuer, spec=workload.spec, threshold=threshold, target=target
                )
            )
    return queries


def _single_engine(small_points, small_uncertain, **overrides):
    config = EngineConfig(draw_plan="per_oid").with_overrides(**overrides)
    return ImpreciseQueryEngine(
        point_db=PointDatabase.build(small_points),
        uncertain_db=UncertainDatabase.build(small_uncertain),
        config=config,
    )


def _parallel_engine(
    small_points, small_uncertain, k, *, partitioner="grid", workers=None, **overrides
):
    config = EngineConfig(draw_plan="per_oid").with_overrides(**overrides)
    return ParallelEngine(
        point_db=ShardedDatabase.build_points(small_points, k, partitioner=partitioner),
        uncertain_db=ShardedDatabase.build_uncertain(
            small_uncertain, k, partitioner=partitioner, catalog_levels=None
        ),
        config=config,
        workers=workers,
    )


def _assert_identical(reference, evaluations):
    assert len(reference) == len(evaluations)
    answered = 0
    for expected, got in zip(reference, evaluations):
        assert got.probabilities() == expected.probabilities()
        answered += len(got)
    assert answered > 0


class TestShardedParity:
    """K ∈ {2, 4} × both partitioners × every query kind, serial execution."""

    @pytest.mark.parametrize("k", [2, 4])
    @pytest.mark.parametrize("partitioner", ["grid", "median"])
    def test_all_query_kinds(self, small_points, small_uncertain, k, partitioner):
        single = _single_engine(small_points, small_uncertain)
        parallel = _parallel_engine(
            small_points, small_uncertain, k, partitioner=partitioner
        )
        workload = (
            _queries(6, target="points")
            + _queries(6, target="points", threshold=0.3, seed=17)
            + _queries(6, target="uncertain", seed=23)
            + _queries(6, target="uncertain", threshold=0.4, seed=31)
            + _queries(4, nn_every=1, seed=41)
        )
        _assert_identical(single.evaluate_many(workload), parallel.evaluate_many(workload))

    @pytest.mark.parametrize("k", [2, 4])
    def test_monte_carlo_probabilities_bitwise_identical(
        self, small_points, small_uncertain, k
    ):
        overrides = {"probability_method": "monte_carlo", "monte_carlo_samples": 60}
        single = _single_engine(small_points, small_uncertain, **overrides)
        parallel = _parallel_engine(small_points, small_uncertain, k, **overrides)
        workload = _queries(4, target="points", threshold=0.2, seed=5) + _queries(
            4, target="uncertain", threshold=0.2, seed=6
        )
        reference = single.evaluate_many(workload)
        evaluations = parallel.evaluate_many(workload)
        assert sum(e.statistics.monte_carlo_samples for e in reference) > 0
        # Exact dict equality: bitwise-identical floats, not approximations.
        _assert_identical(reference, evaluations)

    def test_gaussian_issuers_route_through_sampling(self, small_points, small_uncertain):
        single = _single_engine(small_points, small_uncertain, monte_carlo_samples=50)
        parallel = _parallel_engine(
            small_points, small_uncertain, 4, monte_carlo_samples=50
        )
        workload = _queries(5, target="points", threshold=0.2, pdf="gaussian", seed=77)
        _assert_identical(single.evaluate_many(workload), parallel.evaluate_many(workload))

    def test_interleaved_batches_keep_sequence_alignment(
        self, small_points, small_uncertain
    ):
        """Consecutive evaluate_many calls stay aligned with a single engine."""
        single = _single_engine(small_points, small_uncertain)
        parallel = _parallel_engine(small_points, small_uncertain, 2)
        first = _queries(4, target="uncertain", threshold=0.3, seed=51)
        second = _queries(4, target="points", seed=52)
        _assert_identical(single.evaluate_many(first), parallel.evaluate_many(first))
        _assert_identical(single.evaluate_many(second), parallel.evaluate_many(second))

    def test_single_evaluate_matches_batch_numbering(self, small_points, small_uncertain):
        single = _single_engine(small_points, small_uncertain)
        parallel = _parallel_engine(small_points, small_uncertain, 2)
        for query in _queries(3, target="points", threshold=0.2, seed=61):
            expected = single.evaluate(query)
            got = parallel.evaluate(query)
            assert got.probabilities() == expected.probabilities()


@pytest.fixture
def force_pool(monkeypatch):
    """Opt out of the cpu-count worker clamp: these tests assert real pool
    behaviour (worker processes, published snapshot blocks) and must not
    silently degrade to the serial path on single-core machines."""
    monkeypatch.setenv("REPRO_PARALLEL_FORCE_WORKERS", "1")


class TestWorkerClamp:
    def test_workers_clamped_to_cpu_count(self, small_points, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_FORCE_WORKERS", raising=False)
        engine = ParallelEngine(
            point_db=ShardedDatabase.build_points(small_points, 4), workers=64
        )
        assert engine.requested_workers == 64
        assert engine.workers == min(64, os.cpu_count() or 1)

    def test_force_env_disables_the_clamp(self, small_points, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_FORCE_WORKERS", "1")
        engine = ParallelEngine(
            point_db=ShardedDatabase.build_points(small_points, 4), workers=64
        )
        assert engine.workers == 64


class TestWorkerPool:
    def test_pooled_execution_matches_serial(
        self, small_points, small_uncertain, force_pool
    ):
        workload = (
            _queries(5, target="points", seed=71)
            + _queries(5, target="uncertain", threshold=0.3, seed=72)
            + _queries(3, nn_every=1, seed=73)
        )
        serial = _parallel_engine(small_points, small_uncertain, 4)
        reference = serial.evaluate_many(workload)
        with _parallel_engine(small_points, small_uncertain, 4, workers=2) as pooled:
            _assert_identical(reference, pooled.evaluate_many(workload))
            # The pool persists across calls; sequence numbers keep advancing.
            _assert_identical(
                serial.evaluate_many(workload), pooled.evaluate_many(workload)
            )


class TestParallelEvaluationEnvelope:
    def test_shard_timings_and_counters_are_attributed(self, small_points, small_uncertain):
        parallel = _parallel_engine(small_points, small_uncertain, 4)
        single = _single_engine(small_points, small_uncertain)
        (query,) = _queries(1, target="points", seed=81)
        got = parallel.evaluate(query)
        expected = single.evaluate(query)
        assert isinstance(got, ParallelEvaluation)
        assert got.shard_timings  # at least one shard contributed
        assert {timing.sid for timing in got.shard_timings} <= {0, 1, 2, 3}
        assert all(timing.seconds >= 0.0 for timing in got.shard_timings)
        # The window filter sees the same candidate set whether it scans one
        # snapshot or the routed shards' snapshots.
        assert (
            got.statistics.candidates_examined
            == expected.statistics.candidates_examined
        )
        assert got.statistics.results_returned == len(got)

    def test_nearest_neighbour_counters(self, small_points, small_uncertain):
        parallel = _parallel_engine(small_points, small_uncertain, 4)
        (query,) = _queries(1, nn_every=1, seed=83)
        got = parallel.evaluate(query)
        assert got.statistics.monte_carlo_samples == 32
        assert got.statistics.candidates_examined >= len(got)


class TestShardedSession:
    def test_session_sharded_matches_per_oid_session(self, small_points, small_uncertain):
        config = EngineConfig(draw_plan="per_oid")
        session = Session.from_objects(
            points=small_points, uncertain=small_uncertain, config=config
        )
        sharded = session.sharded(4)
        assert isinstance(sharded.engine, ParallelEngine)
        workload = QueryWorkload(bounds=TEST_SPACE, range_half_size=400.0, seed=91)
        issuers = list(workload.issuers(6))
        template = session.range(half_width=400.0).targets("uncertain").threshold(0.4)
        sharded_template = (
            sharded.range(half_width=400.0).targets("uncertain").threshold(0.4)
        )
        reference = template.run_many(issuers)
        evaluations = sharded_template.run_many(issuers)
        for expected, got in zip(reference, evaluations):
            assert got.probabilities() == expected.probabilities()

    def test_sharded_session_forces_per_oid_plan(self, small_points):
        session = Session.from_objects(points=small_points)
        sharded = session.sharded(2)
        assert sharded.engine.config.draw_plan == "per_oid"
        assert sharded.point_db.k == 2

    def test_nearest_builder_on_sharded_session(self, small_points):
        plain = Session.from_objects(
            points=small_points, config=EngineConfig(draw_plan="per_oid")
        )
        sharded = plain.sharded(4)
        issuer = next(QueryWorkload(bounds=TEST_SPACE, seed=95).issuers(1))
        expected = plain.nearest(samples=32).issued_by(issuer).run()
        got = sharded.nearest(samples=32).issued_by(issuer).run()
        assert got.probabilities() == expected.probabilities()


class TestLifecycle:
    def test_close_unlinks_every_shared_memory_block(self, small_points, force_pool):
        from multiprocessing import shared_memory

        engine = ParallelEngine(
            point_db=ShardedDatabase.build_points(small_points, 4), workers=2
        )
        engine.evaluate_many(_queries(3, target="points", seed=87))
        names = engine.snapshot_store.block_names()
        assert names, "a pooled batch should have published shard snapshots"
        engine.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_dropped_engine_releases_blocks_on_gc(self, small_points, force_pool):
        import gc
        from multiprocessing import shared_memory

        engine = ParallelEngine(
            point_db=ShardedDatabase.build_points(small_points, 4), workers=2
        )
        engine.evaluate_many(_queries(3, target="points", seed=87))
        names = engine.snapshot_store.block_names()
        assert names
        del engine
        gc.collect()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestExperimentConfigSharding:
    def test_run_session_batch_applies_config_sharding(self, small_points):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_session_batch

        session = Session.from_objects(
            points=small_points, config=EngineConfig(draw_plan="per_oid")
        )
        workload = QueryWorkload(bounds=TEST_SPACE, range_half_size=400.0, seed=97)
        plain = run_session_batch(session, workload, 5, target="points")
        sharded = run_session_batch(
            session,
            workload,
            5,
            target="points",
            config=ExperimentConfig(shards=2),
        )
        assert sharded.queries == plain.queries
        assert sharded.mean_results == plain.mean_results
        assert sharded.mean_candidates == plain.mean_candidates

    def test_zero_shards_is_a_no_op(self, small_points):
        from repro.experiments.config import ExperimentConfig

        session = Session.from_objects(points=small_points)
        assert ExperimentConfig(shards=0).sharded_session(session) is session
        assert isinstance(
            ExperimentConfig(shards=2).sharded_session(session).engine, ParallelEngine
        )


class TestPerOidPlanBackendParity:
    """Under the per-oid plan the scalar oracle equals the vectorized backend."""

    def test_scalar_vectorized_parity(self, small_points, small_uncertain):
        overrides = {"probability_method": "monte_carlo", "monte_carlo_samples": 40}
        vectorized = _single_engine(small_points, small_uncertain, **overrides)
        scalar = _single_engine(
            small_points, small_uncertain, vectorized=False, **overrides
        )
        workload = _queries(3, target="points", threshold=0.2, seed=13) + _queries(
            3, target="uncertain", threshold=0.2, seed=14
        )
        for expected, got in zip(
            scalar.evaluate_many(workload), vectorized.evaluate_many(workload)
        ):
            assert got.probabilities() == expected.probabilities()

    def test_stream_plan_remains_the_default(self):
        assert EngineConfig().draw_plan == "stream"
        with pytest.raises(ValueError, match="draw_plan"):
            EngineConfig(draw_plan="banana")
