"""Rule modules of the invariant analyzer — importing this package registers all rules.

| id     | module          | invariant                                             |
|--------|-----------------|-------------------------------------------------------|
| RPL001 | caching         | derived-state memos must be epoch-guarded             |
| RPL002 | randomness      | core sampling flows through seeded generators         |
| RPL003 | shm             | shared-memory handles must be released or escape      |
| RPL004 | raises          | raises in ``repro/`` use the typed error hierarchy    |
| RPL005 | wire            | every ``to_dict`` has a decode path and a schema tag  |
| RPL006 | replay          | no wall-clock/pid calls in worker-replayed pipelines  |
| RPL007 | observability   | observable-database mutators emit ``UpdateEvent``     |
| RPL008 | exceptions      | no silently-swallowed broad excepts                   |
| RPL009 | statistics      | merged ``EvaluationStatistics`` are copied, not aliased |
| RPL010 | rpc             | no pickle on the RPC shard-protocol hot path          |

``RPL000`` is the engine itself (unused suppressions, parse failures).
"""

from repro.tools.lint.rules import (  # noqa: F401  (import = register)
    caching,
    exceptions,
    observability,
    raises,
    randomness,
    replay,
    rpc,
    shm,
    statistics,
    wire,
)
