"""RPL003 — shared-memory handles must be released or escape the function.

PR 7's worker pool leaked ``SharedMemory`` segments whenever an exception
skipped the cleanup path; leaked blocks survive the process and exhaust
``/dev/shm``.  The repaired modules route every block through an owner
(``SnapshotStore`` leases, one-shot ``publish_arrays``/``read_arrays``)
that guarantees a ``close``/``unlink``.

This rule checks the *acquisition* sites: a ``SharedMemory(...)`` handle
bound to a local variable must, within the same function, either

* be explicitly released (``.close()`` or ``.unlink()`` on the variable), or
* escape to an owner — returned/yielded, stored on ``self``/a container,
  or passed to another call that assumes ownership.

A ``SharedMemory(...)`` call whose handle is dropped on the floor (bare
expression statement) is always a leak and always flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import Module, Rule, register
from repro.tools.lint.rules._ast_helpers import functions


def _is_shared_memory_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else None
    if isinstance(func, ast.Attribute):
        name = func.attr
    return name == "SharedMemory"


class _HandleUse(ast.NodeVisitor):
    """Classifies how a bound handle variable is used after acquisition."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.released = False
        self.escaped = False

    def _is_handle(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == self.name

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and self._is_handle(func.value)
            and func.attr in ("close", "unlink")
        ):
            self.released = True
        # Passing the handle (or an expression containing it) to any other
        # call transfers ownership to the callee.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if any(self._is_handle(sub) for sub in ast.walk(arg)):
                self.escaped = True
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and any(
            self._is_handle(sub) for sub in ast.walk(node.value)
        ):
            self.escaped = True
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if node.value is not None and any(
            self._is_handle(sub) for sub in ast.walk(node.value)
        ):
            self.escaped = True
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Storing the handle anywhere but a plain local (attribute,
        # subscript, tuple element) hands it to a longer-lived owner.
        if any(self._is_handle(sub) for sub in ast.walk(node.value)):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    self.escaped = True
        self.generic_visit(node)


@register
class SharedMemoryLifecycle(Rule):
    rule_id = "RPL003"
    severity = "error"
    description = (
        "a SharedMemory handle must be closed/unlinked or handed to an "
        "owner on every path; discarding one leaks /dev/shm blocks"
    )

    def applies_to(self, module: Module) -> bool:
        return module.in_package("repro/")

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        for func in functions(module.tree):
            yield from self._check_function(func)

    def _check_function(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[tuple[int, str]]:
        for node in ast.walk(func):
            if isinstance(node, ast.Expr) and _is_shared_memory_call(node.value):
                yield (
                    node.lineno,
                    "SharedMemory handle discarded immediately: the block "
                    "can never be closed or unlinked",
                )
            if not isinstance(node, ast.Assign):
                continue
            if not _is_shared_memory_call(node.value):
                continue
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                continue  # attribute/container targets escape by definition
            handle = node.targets[0].id
            use = _HandleUse(handle)
            use.visit(func)
            if not (use.released or use.escaped):
                yield (
                    node.lineno,
                    f"SharedMemory handle {handle!r} is never closed, "
                    "unlinked, returned, or handed to an owner — a leaked "
                    "/dev/shm block on every call",
                )
