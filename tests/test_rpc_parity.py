"""Distributed parity suite: ``RemoteEngine`` must equal the serial engine.

Acceptance criteria of the RPC shard-service change: for all four paper
query kinds (IPQ, C-IPQ, IUQ, C-IUQ) plus the nearest-neighbour extension,
``RemoteEngine.evaluate_many`` over K ∈ {2, 4} shards — each shard hosted
by a live spawned ``shardd`` process — returns answer sets and
probabilities bitwise-identical to the single-shard vectorized engine on
the per-oid draw plan, including after interleaved
:class:`~repro.core.updates.UpdateBatch` mutations, with the scatter hot
path averaging under the 2 KiB/query transport budget.

One four-daemon cluster is spawned per module (the launcher uses the
``spawn`` start method, matching the CI smoke environment); K = 2 engines
simply use the first two addresses.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.core.engine import (
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.errors import ConfigurationError, EngineStateError
from repro.core.sharding import ShardedDatabase
from repro.rpc.engine import RemoteEngine
from repro.rpc.launcher import LocalShardCluster
from repro.rpc.pool import RemoteShardPool

from tests.test_updates_parity import (
    _all_kind_workload,
    _assert_identical,
    _mutation_batch,
    _queries,
)


@pytest.fixture(scope="module")
def cluster():
    cluster = LocalShardCluster.spawn(4)
    yield cluster
    cluster.close()


def _single_engine(small_points, small_uncertain, **overrides):
    config = EngineConfig(draw_plan="per_oid").with_overrides(**overrides)
    return ImpreciseQueryEngine(
        point_db=PointDatabase.build(small_points),
        uncertain_db=UncertainDatabase.build(small_uncertain),
        config=config,
    )


@contextlib.contextmanager
def _remote_engine(cluster, small_points, small_uncertain, k, **overrides):
    config = EngineConfig(draw_plan="per_oid").with_overrides(**overrides)
    pool = RemoteShardPool(cluster.addrs[:k])
    try:
        engine = RemoteEngine(
            point_db=ShardedDatabase.build_points(small_points, k),
            uncertain_db=ShardedDatabase.build_uncertain(
                small_uncertain, k, catalog_levels=None
            ),
            config=config,
            pool=pool,
            owns_pool=False,  # the module fixture owns the daemons
        )
        yield engine
        engine.close()
    finally:
        pool.close()


class TestDistributedParity:
    """K ∈ {2, 4} × every query kind over live shard daemons."""

    @pytest.mark.parametrize("k", [2, 4])
    def test_all_query_kinds(self, cluster, small_points, small_uncertain, k):
        single = _single_engine(small_points, small_uncertain)
        workload = _all_kind_workload()
        with _remote_engine(cluster, small_points, small_uncertain, k) as remote:
            _assert_identical(
                single.evaluate_many(workload), remote.evaluate_many(workload)
            )

    def test_monte_carlo_probabilities_bitwise_identical(
        self, cluster, small_points, small_uncertain
    ):
        overrides = {"probability_method": "monte_carlo", "monte_carlo_samples": 60}
        single = _single_engine(small_points, small_uncertain, **overrides)
        workload = _queries(3, target="points", threshold=0.2, seed=5) + _queries(
            3, target="uncertain", threshold=0.2, seed=6
        )
        reference = single.evaluate_many(workload)
        assert sum(e.statistics.monte_carlo_samples for e in reference) > 0
        with _remote_engine(
            cluster, small_points, small_uncertain, 2, **overrides
        ) as remote:
            _assert_identical(reference, remote.evaluate_many(workload))

    @pytest.mark.parametrize("k", [2, 4])
    def test_interleaved_update_batch_stays_exact(
        self, cluster, small_points, small_uncertain, k
    ):
        """Queries → UpdateBatch → queries: one stream, both engines."""
        workload = (
            _queries(2, target="points", seed=71)
            + [_mutation_batch()]
            + _queries(2, target="uncertain", threshold=0.4, seed=72)
            + _queries(2, nn_every=1, seed=73)
        )
        single = _single_engine(small_points, small_uncertain)
        with _remote_engine(cluster, small_points, small_uncertain, k) as remote:
            _assert_identical(
                single.evaluate_many(workload), remote.evaluate_many(workload)
            )

    def test_rpc_bytes_per_query_stay_under_budget(
        self, cluster, small_points, small_uncertain
    ):
        """The scatter hot path must average ≤ 2 KiB per query on the wire."""
        workload = _all_kind_workload()
        with _remote_engine(cluster, small_points, small_uncertain, 2) as remote:
            remote.pool.reset_query_accounting()
            remote.evaluate_many(workload)
            per_query = (
                remote.pool.query_bytes_sent + remote.pool.query_bytes_received
            ) / len(workload)
        assert per_query <= 2048.0, f"{per_query:.0f} bytes/query"


class TestDistributedSurface:
    def test_unknown_config_digest_raises_typed_error(self, cluster, small_points):
        """A daemon-side failure re-raises client-side as the same class."""
        with RemoteShardPool(cluster.addrs[:1]) as pool:
            with pytest.raises(EngineStateError):
                pool.scatter([("points", 0, [], [])], "0badd1ge5700d00d")

    def test_shard_count_must_fit_the_address_list(
        self, cluster, small_points, small_uncertain
    ):
        with RemoteShardPool(cluster.addrs[:2]) as pool:
            with pytest.raises(ConfigurationError):
                RemoteEngine(
                    point_db=ShardedDatabase.build_points(small_points, 4),
                    pool=pool,
                    owns_pool=False,
                )

    def test_hot_threshold_rejected(self, cluster, small_points):
        with RemoteShardPool(cluster.addrs[:2]) as pool:
            with pytest.raises(ConfigurationError):
                RemoteEngine(
                    point_db=ShardedDatabase.build_points(
                        small_points, 2, hot_threshold=64
                    ),
                    pool=pool,
                    owns_pool=False,
                )
