# lint-fixture-path: repro/core/example.py
"""Typed raises, protocol exemptions, and allowed builtins."""

from repro.errors import EngineStateError, InvalidQueryError, MissingItemError


def half_width(value):
    if value < 0:
        raise InvalidQueryError(f"half_width must be non-negative, got {value}")
    return value


def lookup(table, oid):
    if oid not in table:
        raise MissingItemError(f"unknown oid {oid}")
    return table[oid]


def require_open(engine):
    if engine.closed:
        raise EngineStateError("engine is closed")


def __getattr__(name):
    raise AttributeError(f"module has no attribute {name!r}")


class Abstract:
    def to_dict(self):
        raise NotImplementedError("subclasses define the wire schema")
