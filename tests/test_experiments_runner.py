"""Unit tests for the experiment runner machinery."""

import pytest

from repro.core.queries import QueryResult
from repro.core.statistics import EvaluationStatistics
from repro.datasets.workload import QueryWorkload
from repro.experiments.runner import FigureResult, SeriesPoint, run_query_batch, sweep
from repro.core.statistics import aggregate_statistics


def _fake_runner(issuer):
    stats = EvaluationStatistics(
        response_time=0.01, candidates_examined=5, results_returned=2
    )
    return QueryResult(), stats


class TestRunQueryBatch:
    def test_batches_and_averages(self):
        workload = QueryWorkload(seed=1)
        aggregate = run_query_batch(workload, 4, _fake_runner)
        assert aggregate.queries == 4
        assert aggregate.mean_candidates == 5
        assert aggregate.mean_results == 2


class TestSeriesPoint:
    def test_from_aggregate(self):
        stats = [EvaluationStatistics(response_time=0.002, candidates_examined=10)]
        point = SeriesPoint.from_aggregate(250.0, aggregate_statistics(stats))
        assert point.x == 250.0
        assert point.response_time_ms == pytest.approx(2.0)
        assert point.candidates == 10


class TestFigureResult:
    def _figure(self) -> FigureResult:
        figure = FigureResult(figure_id="fig", title="t", x_label="x")
        for x, fast, slow in [(0.0, 1.0, 2.0), (0.5, 2.0, 6.0)]:
            figure.add_point("fast", SeriesPoint(x, fast, 0, 0, 0))
            figure.add_point("slow", SeriesPoint(x, slow, 0, 0, 0))
        return figure

    def test_series_names_and_x_values(self):
        figure = self._figure()
        assert figure.series_names() == ["fast", "slow"]
        assert figure.x_values() == [0.0, 0.5]

    def test_value_at(self):
        figure = self._figure()
        assert figure.value_at("slow", 0.5).response_time_ms == 6.0
        with pytest.raises(KeyError):
            figure.value_at("slow", 0.25)

    def test_response_times_sorted_by_x(self):
        assert self._figure().response_times("fast") == [1.0, 2.0]

    def test_mean_ratio(self):
        assert self._figure().mean_ratio("slow", "fast") == pytest.approx((2.0 + 3.0) / 2)

    def test_mean_ratio_without_common_points_raises(self):
        figure = FigureResult(figure_id="f", title="t", x_label="x")
        figure.add_point("a", SeriesPoint(0.0, 1.0, 0, 0, 0))
        figure.add_point("b", SeriesPoint(1.0, 1.0, 0, 0, 0))
        with pytest.raises(ValueError):
            figure.mean_ratio("a", "b")


class TestSweep:
    def test_sweep_runs_every_value(self):
        workload = QueryWorkload(seed=2)

        def make_runner(x):
            return workload, 2, _fake_runner

        points = sweep([100.0, 200.0], make_runner)
        assert [p.x for p in points] == [100.0, 200.0]
        assert all(p.candidates == 5 for p in points)
