"""The CI benchmark regression guard's comparison logic."""

from __future__ import annotations

from benchmarks.check_regression import (
    compare,
    compare_cache,
    compare_continuous,
    compare_sharded,
    compare_updates,
)


def _result(batch_speedup: float, loop_qps: float) -> dict:
    return {
        "batch_speedup": batch_speedup,
        "per_query_loop": {"queries_per_second": loop_qps},
    }


class TestCompare:
    def test_identical_results_pass(self):
        baseline = _result(1.7, 7_000.0)
        assert compare(baseline, baseline, tolerance=0.30) == []

    def test_degradation_within_tolerance_passes(self):
        assert compare(_result(1.3, 5_200.0), _result(1.7, 7_000.0), tolerance=0.30) == []

    def test_batch_speedup_regression_fails(self):
        failures = compare(_result(1.0, 7_000.0), _result(1.7, 7_000.0), tolerance=0.30)
        assert len(failures) == 1
        assert "batch_speedup" in failures[0]

    def test_loop_throughput_regression_fails(self):
        failures = compare(_result(1.7, 4_000.0), _result(1.7, 7_000.0), tolerance=0.30)
        assert len(failures) == 1
        assert "queries_per_second" in failures[0]

    def test_both_regressions_reported(self):
        failures = compare(_result(0.5, 1_000.0), _result(1.7, 7_000.0), tolerance=0.30)
        assert len(failures) == 2

    def test_improvements_always_pass(self):
        assert compare(_result(3.0, 20_000.0), _result(1.7, 7_000.0), tolerance=0.0) == []


class TestCompareUpdates:
    def test_identical_results_pass(self):
        baseline = {"incremental_speedup": 2.2}
        assert compare_updates(baseline, baseline, tolerance=0.30) == []

    def test_degradation_within_tolerance_passes(self):
        assert (
            compare_updates(
                {"incremental_speedup": 1.6}, {"incremental_speedup": 2.2}, tolerance=0.30
            )
            == []
        )

    def test_incremental_speedup_regression_fails(self):
        failures = compare_updates(
            {"incremental_speedup": 1.0}, {"incremental_speedup": 2.2}, tolerance=0.30
        )
        assert len(failures) == 1
        assert "incremental_speedup" in failures[0]

    def test_improvements_always_pass(self):
        assert (
            compare_updates(
                {"incremental_speedup": 9.0}, {"incremental_speedup": 2.2}, tolerance=0.0
            )
            == []
        )


class TestCompareCache:
    def test_identical_results_pass(self):
        baseline = {"cache_speedup": 16.0}
        assert compare_cache(baseline, baseline, tolerance=0.30) == []

    def test_degradation_within_tolerance_passes(self):
        assert (
            compare_cache({"cache_speedup": 12.0}, {"cache_speedup": 16.0}, tolerance=0.30)
            == []
        )

    def test_cache_speedup_regression_fails(self):
        failures = compare_cache(
            {"cache_speedup": 4.0}, {"cache_speedup": 16.0}, tolerance=0.30
        )
        assert len(failures) == 1
        assert "cache_speedup" in failures[0]

    def test_improvements_always_pass(self):
        assert (
            compare_cache({"cache_speedup": 30.0}, {"cache_speedup": 16.0}, tolerance=0.0)
            == []
        )


class TestCompareSharded:
    def test_identical_results_pass(self):
        baseline = {"workload_speedup": 2.4, "cpu_count": 8}
        assert compare_sharded(baseline, baseline, tolerance=0.30) == []

    def test_degradation_within_tolerance_passes(self):
        assert (
            compare_sharded(
                {"workload_speedup": 1.8, "cpu_count": 8},
                {"workload_speedup": 2.4, "cpu_count": 8},
                tolerance=0.30,
            )
            == []
        )

    def test_regression_fails_and_reports_cpu_count(self):
        failures = compare_sharded(
            {"workload_speedup": 1.0, "cpu_count": 8},
            {"workload_speedup": 2.4, "cpu_count": 8},
            tolerance=0.30,
        )
        assert len(failures) == 1
        assert "workload_speedup" in failures[0]
        assert "cpu_count 8" in failures[0]

    def test_single_core_runs_get_extra_slack(self):
        fresh = {"workload_speedup": 0.77, "cpu_count": 1}
        baseline = {"workload_speedup": 1.5}
        # 0.77 < 1.5 * 0.7 with the plain tolerance, but a single-core run
        # only measures routing overhead: the widened floor (1.5 * 0.5) passes.
        assert compare_sharded(fresh, baseline, tolerance=0.30) == []
        multi = dict(fresh, cpu_count=8)
        failures = compare_sharded(multi, baseline, tolerance=0.30)
        assert len(failures) == 1 and "cpu_count 8" in failures[0]

    def test_single_core_still_fails_below_widened_floor(self):
        failures = compare_sharded(
            {"workload_speedup": 0.5, "cpu_count": 1},
            {"workload_speedup": 1.5},
            tolerance=0.30,
        )
        assert len(failures) == 1
        assert "tolerance 50%" in failures[0] and "cpu_count 1" in failures[0]

    def test_improvements_always_pass(self):
        assert (
            compare_sharded(
                {"workload_speedup": 5.0, "cpu_count": 8},
                {"workload_speedup": 2.4},
                tolerance=0.0,
            )
            == []
        )


class TestCompareContinuous:
    def test_identical_results_pass(self):
        baseline = {"continuous_speedup": 6.0}
        assert compare_continuous(baseline, baseline, tolerance=0.30) == []

    def test_degradation_within_tolerance_passes(self):
        assert (
            compare_continuous(
                {"continuous_speedup": 4.5}, {"continuous_speedup": 6.0}, tolerance=0.30
            )
            == []
        )

    def test_continuous_speedup_regression_fails(self):
        failures = compare_continuous(
            {"continuous_speedup": 2.0}, {"continuous_speedup": 6.0}, tolerance=0.30
        )
        assert len(failures) == 1
        assert "continuous_speedup" in failures[0]

    def test_improvements_always_pass(self):
        assert (
            compare_continuous(
                {"continuous_speedup": 12.0}, {"continuous_speedup": 6.0}, tolerance=0.0
            )
            == []
        )
