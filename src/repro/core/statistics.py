"""Per-query evaluation statistics.

The paper reports a single number per query — the response time ``T`` — but a
Python reproduction on 2026 hardware cannot meaningfully compare absolute
milliseconds against a 2007 SunFire server.  Each evaluation therefore also
records machine-independent work counters (candidates retrieved from the
index, probability computations performed, objects pruned by each strategy,
index node accesses) so that experiments can compare methods on both axes.
"""

from __future__ import annotations
from repro.core.errors import DatasetError

from dataclasses import dataclass, field

from repro.core.wire import check_schema, require, tagged
from repro.index.iostats import IOStatistics

#: Wire schema name of the statistics payload (see :mod:`repro.core.wire`).
STATISTICS_SCHEMA = "repro.statistics"


@dataclass
class EvaluationStatistics:
    """Work performed while answering a single imprecise query."""

    #: Wall-clock time of the evaluation, in seconds.
    response_time: float = 0.0
    #: Objects returned by the index filter step (candidates).
    candidates_examined: int = 0
    #: Exact / sampled qualification-probability computations performed.
    probability_computations: int = 0
    #: Candidates discarded by each pruning mechanism, keyed by strategy name.
    pruned: dict[str, int] = field(default_factory=dict)
    #: Monte-Carlo samples drawn (0 for closed-form evaluations).
    monte_carlo_samples: int = 0
    #: Number of answers returned to the user.
    results_returned: int = 0
    #: Index node accesses attributable to this query.
    io: IOStatistics = field(default_factory=IOStatistics)

    @property
    def response_time_ms(self) -> float:
        """Response time in milliseconds (the unit used by the paper's figures)."""
        return self.response_time * 1000.0

    @property
    def total_pruned(self) -> int:
        """Total number of candidates removed by pruning."""
        return sum(self.pruned.values())

    def record_pruned(self, strategy: str, count: int = 1) -> None:
        """Attribute ``count`` pruned candidates to ``strategy``."""
        self.pruned[strategy] = self.pruned.get(strategy, 0) + count

    def to_dict(self) -> dict:
        """A JSON-safe, versioned description of the work counters."""
        return tagged(
            STATISTICS_SCHEMA,
            {
                "response_time": self.response_time,
                "candidates_examined": self.candidates_examined,
                "probability_computations": self.probability_computations,
                "pruned": dict(self.pruned),
                "monte_carlo_samples": self.monte_carlo_samples,
                "results_returned": self.results_returned,
                "io": [
                    self.io.node_accesses,
                    self.io.leaf_accesses,
                    self.io.internal_accesses,
                    self.io.entries_examined,
                    self.io.objects_returned,
                ],
            },
        )

    @classmethod
    def from_dict(cls, payload) -> "EvaluationStatistics":
        """Decode a :meth:`to_dict` payload."""
        payload = check_schema(payload, STATISTICS_SCHEMA)
        node, leaf, internal, entries, objects = (
            int(v) for v in require(payload, STATISTICS_SCHEMA, "io")
        )
        return cls(
            response_time=float(require(payload, STATISTICS_SCHEMA, "response_time")),
            candidates_examined=int(require(payload, STATISTICS_SCHEMA, "candidates_examined")),
            probability_computations=int(
                require(payload, STATISTICS_SCHEMA, "probability_computations")
            ),
            pruned={
                str(k): int(v)
                for k, v in require(payload, STATISTICS_SCHEMA, "pruned").items()
            },
            monte_carlo_samples=int(require(payload, STATISTICS_SCHEMA, "monte_carlo_samples")),
            results_returned=int(require(payload, STATISTICS_SCHEMA, "results_returned")),
            io=IOStatistics(
                node_accesses=node,
                leaf_accesses=leaf,
                internal_accesses=internal,
                entries_examined=entries,
                objects_returned=objects,
            ),
        )


@dataclass(frozen=True)
class StatsPack:
    """A flat, packed encoding of :class:`EvaluationStatistics` for IPC.

    Pool workers return this instead of the statistics object itself: a
    handful of plain numbers plus two small tuples, a fraction of the pickle
    cost of the nested dataclasses (the :class:`IOStatistics` inside carries
    five counters of its own).  :meth:`to_statistics` rehydrates a fully
    independent object — never aliased to anything the worker held.
    """

    response_time: float
    candidates_examined: int
    probability_computations: int
    monte_carlo_samples: int
    results_returned: int
    #: ``(strategy, count)`` pairs of the pruned-candidate attribution.
    pruned: tuple[tuple[str, int], ...]
    #: ``(node, leaf, internal, entries, objects)`` index-access counters.
    io: tuple[int, int, int, int, int]

    @classmethod
    def from_statistics(cls, stats: EvaluationStatistics) -> "StatsPack":
        """Pack one statistics object for the wire."""
        return cls(
            response_time=stats.response_time,
            candidates_examined=stats.candidates_examined,
            probability_computations=stats.probability_computations,
            monte_carlo_samples=stats.monte_carlo_samples,
            results_returned=stats.results_returned,
            pruned=tuple(stats.pruned.items()),
            io=(
                stats.io.node_accesses,
                stats.io.leaf_accesses,
                stats.io.internal_accesses,
                stats.io.entries_examined,
                stats.io.objects_returned,
            ),
        )

    def to_statistics(self) -> EvaluationStatistics:
        """Rehydrate an independent :class:`EvaluationStatistics`."""
        node, leaf, internal, entries, objects = self.io
        return EvaluationStatistics(
            response_time=self.response_time,
            candidates_examined=self.candidates_examined,
            probability_computations=self.probability_computations,
            pruned=dict(self.pruned),
            monte_carlo_samples=self.monte_carlo_samples,
            results_returned=self.results_returned,
            io=IOStatistics(
                node_accesses=node,
                leaf_accesses=leaf,
                internal_accesses=internal,
                entries_examined=entries,
                objects_returned=objects,
            ),
        )


@dataclass
class AggregatedStatistics:
    """Averages of :class:`EvaluationStatistics` over a batch of queries."""

    queries: int
    mean_response_time: float
    mean_candidates: float
    mean_probability_computations: float
    mean_pruned: float
    mean_node_accesses: float
    mean_results: float

    @property
    def mean_response_time_ms(self) -> float:
        """Average response time in milliseconds."""
        return self.mean_response_time * 1000.0


def aggregate_statistics(stats_list: list[EvaluationStatistics]) -> AggregatedStatistics:
    """Average a batch of per-query statistics (as the paper does over 500 runs)."""
    if not stats_list:
        raise DatasetError("cannot aggregate an empty list of statistics")
    n = len(stats_list)
    return AggregatedStatistics(
        queries=n,
        mean_response_time=sum(s.response_time for s in stats_list) / n,
        mean_candidates=sum(s.candidates_examined for s in stats_list) / n,
        mean_probability_computations=sum(s.probability_computations for s in stats_list) / n,
        mean_pruned=sum(s.total_pruned for s in stats_list) / n,
        mean_node_accesses=sum(s.io.node_accesses for s in stats_list) / n,
        mean_results=sum(s.results_returned for s in stats_list) / n,
    )
