"""Figure 9 — IPQ response time vs uncertainty-region size for several range sizes.

Expected shape: response time grows with both the issuer-region size ``u``
and the range size ``w`` because the Minkowski-expanded query (and hence the
candidate set) grows with both.
"""

import pytest

from repro.core.queries import RangeQuery
from repro.core.engine import ImpreciseQueryEngine

from benchmarks.conftest import workload_for

U_VALUES = [100.0, 250.0, 500.0, 1000.0]
W_VALUES = [500.0, 1000.0, 1500.0]


@pytest.mark.parametrize("w", W_VALUES)
@pytest.mark.parametrize("u", U_VALUES)
def test_ipq_response_time(benchmark, point_db, u, w):
    """One point of Figure 9: IPQ at issuer size ``u`` and range size ``w``."""
    engine = ImpreciseQueryEngine(point_db=point_db)
    workload = workload_for(u, w)
    issuer = next(workload.issuers(1))
    spec = workload.spec
    result = benchmark(lambda: engine.evaluate(RangeQuery.ipq(issuer, spec)))
    assert result.statistics.candidates_examined >= 0
