"""Property tests: the wire schemas round-trip losslessly through JSON.

Every ``to_dict`` payload, pushed through ``json.dumps``/``json.loads`` and
decoded with the matching ``from_dict``, must re-encode to the *identical*
payload — JSON round-trips floats through their shortest repr, which is
exact, so lossless re-encoding implies the decoded object computes
bit-for-bit like the original.  Hypothesis drives the shapes; a few direct
tests pin the envelope validation (schema name, version, missing fields).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SchemaError, SchemaVersionError
from repro.core.queries import (
    Evaluation,
    NearestNeighborQuery,
    QueryAnswer,
    QueryResult,
    RangeQuery,
    RangeQuerySpec,
    query_from_dict,
)
from repro.core.statistics import EvaluationStatistics
from repro.core.parallel import ParallelEvaluation, ShardTiming
from repro.core.updates import UpdateBatch, UpdateOp
from repro.core.wire import WIRE_VERSION, check_schema, tagged
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.iostats import IOStatistics
from repro.uncertainty.pdf import (
    HistogramPdf,
    TruncatedGaussianPdf,
    UniformCirclePdf,
    UniformPdf,
    pdf_from_dict,
)
from repro.uncertainty.region import PointObject, UncertainObject

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
coords = st.floats(min_value=0.0, max_value=9_000.0, allow_nan=False)
extents = st.floats(min_value=1.0, max_value=900.0, allow_nan=False)


@st.composite
def rects(draw) -> Rect:
    xmin = draw(coords)
    ymin = draw(coords)
    return Rect(xmin, ymin, xmin + draw(extents), ymin + draw(extents))


@st.composite
def pdfs(draw):
    region = draw(rects())
    kind = draw(st.sampled_from(["uniform", "gaussian", "histogram", "circle"]))
    if kind == "uniform":
        return UniformPdf(region)
    if kind == "gaussian":
        return TruncatedGaussianPdf(
            region,
            sigma_x=draw(st.floats(min_value=0.1, max_value=500.0)),
            sigma_y=draw(st.floats(min_value=0.1, max_value=500.0)),
        )
    if kind == "histogram":
        rows = draw(st.integers(min_value=1, max_value=4))
        cols = draw(st.integers(min_value=1, max_value=4))
        weights = [
            [draw(st.floats(min_value=0.01, max_value=10.0)) for _ in range(cols)]
            for _ in range(rows)
        ]
        return HistogramPdf(region, weights)
    return UniformCirclePdf(
        Circle(
            Point(region.center.x, region.center.y),
            draw(st.floats(min_value=1.0, max_value=400.0)),
        ),
        resolution=draw(st.integers(min_value=8, max_value=64)),
    )


@st.composite
def uncertain_objects(draw) -> UncertainObject:
    obj = UncertainObject(oid=draw(st.integers(0, 10_000)), pdf=draw(pdfs()))
    if draw(st.booleans()):
        obj = obj.with_catalog([0.0, 0.3, 0.7])
    return obj


@st.composite
def range_queries(draw) -> RangeQuery:
    return RangeQuery(
        issuer=draw(uncertain_objects()),
        spec=RangeQuerySpec(draw(extents), draw(extents)),
        threshold=draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        target=draw(st.sampled_from(["points", "uncertain"])),
    )


def json_round_trip(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


class TestPdfRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(pdfs())
    def test_pdf_payload_is_lossless(self, pdf):
        decoded = pdf_from_dict(json_round_trip(pdf.to_dict()))
        assert type(decoded) is type(pdf)
        assert decoded.to_dict() == pdf.to_dict()

    @settings(max_examples=20, deadline=None)
    @given(pdfs(), rects())
    def test_decoded_pdf_computes_identically(self, pdf, probe):
        decoded = pdf_from_dict(json_round_trip(pdf.to_dict()))
        assert decoded.probability_in_rect(probe) == pdf.probability_in_rect(probe)


class TestObjectRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), coords, coords)
    def test_point_object(self, oid, x, y):
        obj = PointObject.at(oid, x, y)
        assert PointObject.from_dict(json_round_trip(obj.to_dict())) == obj

    @settings(max_examples=40, deadline=None)
    @given(uncertain_objects())
    def test_uncertain_object(self, obj):
        decoded = UncertainObject.from_dict(json_round_trip(obj.to_dict()))
        assert decoded.to_dict() == obj.to_dict()
        if obj.catalog is not None:
            assert decoded.catalog is not None
            # Catalog rebuilds are deterministic: identical p-bounds.
            assert decoded.catalog.bounds == obj.catalog.bounds


class TestQueryRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(range_queries())
    def test_range_query(self, query):
        decoded = query_from_dict(json_round_trip(query.to_dict()))
        assert isinstance(decoded, RangeQuery)
        assert decoded.to_dict() == query.to_dict()
        assert decoded.kind == query.kind
        assert decoded.spec == query.spec

    @settings(max_examples=20, deadline=None)
    @given(
        uncertain_objects(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.one_of(st.none(), st.integers(1, 5_000)),
    )
    def test_nn_query(self, issuer, threshold, samples):
        query = NearestNeighborQuery(issuer=issuer, threshold=threshold, samples=samples)
        decoded = query_from_dict(json_round_trip(query.to_dict()))
        assert isinstance(decoded, NearestNeighborQuery)
        assert decoded.to_dict() == query.to_dict()
        assert decoded.samples == samples


class TestUpdateRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=0, max_size=6), st.randoms())
    def test_update_batch(self, oids, rnd):
        batch = UpdateBatch()
        for oid in oids:
            choice = rnd.choice(["insert_point", "insert_uncertain", "delete", "move"])
            if choice == "insert_point":
                batch.insert(PointObject.at(oid, 1.0 + oid, 2.0 + oid))
            elif choice == "insert_uncertain":
                batch.insert(
                    UncertainObject.uniform(oid, Rect(0.0, 0.0, 5.0 + oid, 5.0 + oid))
                )
            elif choice == "delete":
                batch.delete(oid, target="points")
            else:
                batch.move(oid, x=float(oid), y=float(oid) + 1.0)
        decoded = UpdateBatch.from_dict(json_round_trip(batch.to_dict()))
        assert decoded.to_dict() == batch.to_dict()
        assert len(decoded) == len(batch)

    def test_update_op_fields(self):
        op = UpdateOp(action="move", oid=5, x=1.5, y=2.5, target="points")
        assert UpdateOp.from_dict(json_round_trip(op.to_dict())) == op


class TestEnvelopeRoundTrips:
    @settings(max_examples=20, deadline=None)
    @given(
        range_queries(),
        st.lists(
            st.tuples(
                st.integers(0, 1_000),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            max_size=8,
            unique_by=lambda pair: pair[0],
        ),
        finite,
    )
    def test_evaluation(self, query, answer_rows, elapsed):
        result = QueryResult(
            answers=[QueryAnswer(oid=o, probability=p) for o, p in answer_rows]
        )
        statistics = EvaluationStatistics(
            response_time=abs(elapsed),
            candidates_examined=len(answer_rows),
            probability_computations=3,
            pruned={"p_bound": 2},
            monte_carlo_samples=100,
            results_returned=len(answer_rows),
            io=IOStatistics(
                node_accesses=5,
                leaf_accesses=3,
                internal_accesses=2,
                entries_examined=40,
                objects_returned=len(answer_rows),
            ),
        )
        evaluation = Evaluation(
            query=query, result=result, statistics=statistics, elapsed_seconds=abs(elapsed)
        )
        decoded = Evaluation.from_dict(json_round_trip(evaluation.to_dict()))
        assert decoded.to_dict() == evaluation.to_dict()
        assert decoded.probabilities() == evaluation.probabilities()

    def test_parallel_evaluation_carries_shard_timings(self):
        query = RangeQuery.ipq(
            UncertainObject.uniform(0, Rect(0.0, 0.0, 10.0, 10.0)),
            RangeQuerySpec.square(5.0),
        )
        evaluation = ParallelEvaluation(
            query=query,
            result=QueryResult(answers=[QueryAnswer(oid=1, probability=0.5)]),
            statistics=EvaluationStatistics(),
            elapsed_seconds=0.125,
            shard_timings=(ShardTiming(0, 0.0625), ShardTiming(3, 0.03125)),
        )
        decoded = ParallelEvaluation.from_dict(json_round_trip(evaluation.to_dict()))
        assert decoded.shard_timings == evaluation.shard_timings
        assert decoded.to_dict() == evaluation.to_dict()


class TestEnvelopeValidation:
    def test_wrong_schema_name(self):
        payload = tagged("repro.query", {"kind": "range"})
        with pytest.raises(SchemaError):
            check_schema(payload, "repro.update_op")

    def test_future_version_rejected(self):
        payload = tagged("repro.query", {"kind": "range"})
        payload["version"] = WIRE_VERSION + 1
        with pytest.raises(SchemaVersionError):
            check_schema(payload, "repro.query")

    def test_missing_field_named_in_error(self):
        payload = tagged("repro.query", {"kind": "range"})
        with pytest.raises(SchemaError, match="issuer"):
            RangeQuery.from_dict(payload)

    def test_non_mapping_rejected(self):
        with pytest.raises(SchemaError):
            check_schema(["not", "a", "mapping"], "repro.query")

    def test_unknown_query_kind(self):
        payload = tagged("repro.query", {"kind": "teleport"})
        with pytest.raises(SchemaError):
            query_from_dict(payload)

    def test_unknown_pdf_type(self):
        payload = tagged("repro.pdf", {"type": "martian"})
        with pytest.raises(SchemaError):
            pdf_from_dict(payload)

    def test_live_evaluation_round_trips(self):
        from repro.core.session import Session

        session = Session.from_objects(
            points=[PointObject.at(i, i * 3.0, i * 5.0) for i in range(40)]
        )
        query = RangeQuery.ipq(
            UncertainObject.uniform(0, Rect(0.0, 0.0, 60.0, 60.0)),
            RangeQuerySpec.square(30.0),
        )
        evaluation = session.evaluate(query)
        decoded = Evaluation.from_dict(json_round_trip(evaluation.to_dict()))
        assert decoded.to_dict() == evaluation.to_dict()
