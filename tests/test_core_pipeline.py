"""Tests for the staged pipeline, query plans and workload partitioning.

The structural guarantees of the decomposition: plans capture the decisions
the monolithic engine used to make inline, the same
:class:`~repro.core.pipeline.QueryPipeline` stage runner backs the serial
engine and per-shard execution, and the workload splitter shared by both
engines validates and groups mixed query/update streams identically.
"""

import pytest

from repro.core.engine import EngineConfig, ImpreciseQueryEngine
from repro.core.pipeline import QueryPipeline, partition_workload
from repro.core.plan import (
    plan_query,
    query_draw_token,
    query_fingerprint,
    resolve_draw_token,
)
from repro.core.queries import NearestNeighborQuery, RangeQuery, RangeQuerySpec
from repro.core.sharding import ShardedDatabase
from repro.core.updates import UpdateBatch
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject


def _issuer(oid=0):
    region = Rect.from_center(Point(5_000.0, 5_000.0), 250.0, 250.0)
    return UncertainObject(oid=oid, pdf=UniformPdf(region)).with_catalog()


class TestQueryPlan:
    def test_point_plan_uses_filter_region(self, default_spec):
        query = RangeQuery.cipq(_issuer(), default_spec, 0.4)
        plan = plan_query(query, 3, EngineConfig())
        assert plan.target == "points"
        assert plan.window == plan.pruner.filter_region
        assert not plan.use_pti
        assert plan.prefer_columnar
        assert plan.draw_token is None  # stream plan

    def test_uncertain_plan_engages_pti(self, uncertain_db, default_spec):
        query = RangeQuery.ciuq(_issuer(), default_spec, 0.4)
        plan = plan_query(query, 0, EngineConfig(), uncertain_index=uncertain_db.index)
        assert plan.use_pti
        assert not plan.prefer_columnar  # PTI keeps the index probe
        assert plan.window == plan.pruner.qp_expanded_region

    def test_uncertain_plan_without_pti_prefers_columnar(
        self, uncertain_db_rtree, default_spec
    ):
        query = RangeQuery.ciuq(_issuer(), default_spec, 0.4)
        plan = plan_query(
            query, 0, EngineConfig(), uncertain_index=uncertain_db_rtree.index
        )
        assert not plan.use_pti
        assert plan.prefer_columnar

    def test_nearest_plan_defaults_samples(self):
        plan = plan_query(NearestNeighborQuery(issuer=_issuer()), 0, EngineConfig())
        assert plan.target == "nearest"
        assert plan.samples == 256

    def test_unplannable_type_rejected(self):
        with pytest.raises(TypeError):
            plan_query("junk", 0, EngineConfig())

    def test_pruner_cache_shared_across_plans(self, default_spec):
        query = RangeQuery.cipq(_issuer(), default_spec, 0.4)
        shared: dict = {}
        first = plan_query(query, 0, EngineConfig(), pruner_cache=shared)
        second = plan_query(query, 1, EngineConfig(), pruner_cache=shared)
        assert first.pruner is second.pruner

    def test_pruner_cache_never_aliases_across_targets(self, default_spec):
        """One shared dict for a mixed batch: CIPQ and CIUQ pruners differ."""
        issuer = _issuer()
        shared: dict = {}
        points_plan = plan_query(
            RangeQuery.cipq(issuer, default_spec, 0.4), 0, EngineConfig(), pruner_cache=shared
        )
        uncertain_plan = plan_query(
            RangeQuery.ciuq(issuer, default_spec, 0.4), 1, EngineConfig(), pruner_cache=shared
        )
        assert points_plan.pruner is not uncertain_plan.pruner
        assert uncertain_plan.window == uncertain_plan.pruner.qp_expanded_region


class TestDrawTokens:
    def test_token_per_plan(self, default_spec):
        query = RangeQuery.ipq(_issuer(), default_spec)
        assert resolve_draw_token(EngineConfig(), query, 9) is None
        assert resolve_draw_token(EngineConfig(draw_plan="per_oid"), query, 9) == 9
        keyed = resolve_draw_token(EngineConfig(draw_plan="query_keyed"), query, 9)
        assert keyed == query_draw_token(query)

    def test_content_token_position_independent(self, default_spec):
        issuer = _issuer()
        same_a = RangeQuery.cipq(issuer, default_spec, 0.3)
        same_b = RangeQuery.cipq(issuer, default_spec, 0.3)
        other = RangeQuery.cipq(issuer, default_spec, 0.4)
        assert query_fingerprint(same_a) == query_fingerprint(same_b)
        assert query_draw_token(same_a) == query_draw_token(same_b)
        assert query_draw_token(same_a) != query_draw_token(other)
        assert 0 <= query_draw_token(same_a) < 2**63

    def test_nn_and_range_tokens_distinct(self):
        issuer = _issuer()
        nn = NearestNeighborQuery(issuer=issuer, threshold=0.0)
        rq = RangeQuery.ipq(issuer, RangeQuerySpec.square(500.0))
        assert query_draw_token(nn) != query_draw_token(rq)


class TestPartitionWorkload:
    def test_groups_preserve_order(self, default_spec):
        a = RangeQuery.ipq(_issuer(), default_spec)
        b = RangeQuery.ipq(_issuer(1), default_spec)
        batch = UpdateBatch().insert(PointObject.at(900, 1.0, 2.0))
        groups = partition_workload([a, batch, b, b])
        assert [kind for kind, _ in groups] == ["queries", "updates", "queries"]
        assert groups[0][1] == [a]
        assert groups[1][1] is batch
        assert groups[2][1] == [b, b]

    def test_rejects_non_queries(self, default_spec):
        with pytest.raises(TypeError, match="item 1"):
            partition_workload([RangeQuery.ipq(_issuer(), default_spec), "junk"])

    def test_empty_stream(self):
        assert partition_workload([]) == []


class TestSharedStageRunner:
    def test_engine_owns_a_pipeline(self, point_db, uncertain_db):
        engine = ImpreciseQueryEngine(point_db=point_db, uncertain_db=uncertain_db)
        assert isinstance(engine.pipeline, QueryPipeline)
        assert engine.pipeline.point_db is point_db
        assert engine.pipeline.uncertain_db is uncertain_db

    def test_pipeline_run_batch_matches_engine(self, point_db, default_spec):
        config = EngineConfig(draw_plan="per_oid")
        engine = ImpreciseQueryEngine(point_db=point_db, config=config)
        pipeline = QueryPipeline(point_db=point_db, config=config)
        queries = [RangeQuery.cipq(_issuer(i), default_spec, 0.2) for i in range(4)]
        direct = pipeline.run_batch(queries, list(range(4)))
        via_engine = engine.evaluate_many(queries)
        assert [e.probabilities() for e in direct] == [
            e.probabilities() for e in via_engine
        ]

    def test_shard_pipelines_share_runner_without_cache(self, small_points):
        database = ShardedDatabase.build_points(small_points, 2, partitioner="median")
        config = EngineConfig(draw_plan="per_oid")
        shard = database.non_empty_shards()[0]
        pipeline = database.shard_pipeline(shard.sid, config)
        assert isinstance(pipeline, QueryPipeline)
        assert pipeline.cache is None  # shards never cache partial answers
        assert database.shard_pipeline(shard.sid, config) is pipeline  # cached
        # Replacing the shard database wholesale invalidates the pipeline.
        database._rebuild_shard(shard, list(shard.database.objects))
        assert database.shard_pipeline(shard.sid, config) is not pipeline

    def test_execute_on_shard_equals_serial_slice(self, small_points, default_spec):
        database = ShardedDatabase.build_points(small_points, 1, partitioner="median")
        config = EngineConfig(draw_plan="per_oid")
        serial = ImpreciseQueryEngine(
            point_db=database.shards[0].database, config=config
        )
        queries = [RangeQuery.ipq(_issuer(i), default_spec) for i in range(3)]
        sharded = database.execute_on_shard(0, list(enumerate(queries)), config)
        expected = serial.evaluate_many(queries)
        assert [e.probabilities() for e in sharded] == [
            e.probabilities() for e in expected
        ]

    def test_shard_pipelines_cached_per_config(self, small_points):
        """Engines sharing one sharded database keep their pipelines warm."""
        database = ShardedDatabase.build_points(small_points, 2, partitioner="median")
        config_a = EngineConfig(draw_plan="per_oid")
        config_b = EngineConfig(draw_plan="query_keyed")
        sid = database.non_empty_shards()[0].sid
        a = database.shard_pipeline(sid, config_a)
        b = database.shard_pipeline(sid, config_b)
        assert a is not b
        # Alternating configurations must not evict each other's pipeline.
        assert database.shard_pipeline(sid, config_a) is a
        assert database.shard_pipeline(sid, config_b) is b

    def test_shard_pipeline_cache_bounded_and_sheds_replaced_databases(
        self, small_points
    ):
        from repro.core.sharding import _PIPELINES_PER_SHARD

        database = ShardedDatabase.build_points(small_points, 2, partitioner="median")
        shard = database.non_empty_shards()[0]
        configs = [EngineConfig(draw_plan="per_oid", rng_seed=i) for i in range(8)]
        for config in configs:
            database.shard_pipeline(shard.sid, config)
        per_sid = [key for key in database._pipelines if key[0] == shard.sid]
        assert len(per_sid) <= _PIPELINES_PER_SHARD
        # A wholesale database replacement sheds every entry pinning the old one.
        database._rebuild_shard(shard, list(shard.database.objects))
        database.shard_pipeline(shard.sid, configs[-1])
        assert all(
            entry_db is shard.database
            for key, (entry_db, _, _) in database._pipelines.items()
            if key[0] == shard.sid
        )

    def test_empty_shard_has_no_pipeline(self, small_points):
        database = ShardedDatabase.build_points(
            small_points, 64, partitioner="grid"
        )
        empty = next(shard for shard in database.shards if shard.is_empty)
        with pytest.raises(ValueError, match="empty"):
            database.shard_pipeline(empty.sid, EngineConfig(draw_plan="per_oid"))
