"""End-to-end evaluation engines (Sections 4.3 and 5.3 of the paper).

The engine ties the pieces together for each query type:

1. build the expanded query range online (Minkowski sum, or the
   Qp-expanded-query for constrained queries),
2. use a spatial index to retrieve candidate objects overlapping it,
3. prune candidates with the threshold strategies of Section 5 (constrained
   queries only), and
4. compute exact (or Monte-Carlo) qualification probabilities of the
   survivors via the query–data duality formulas of Section 4.2.

Databases wrap an object collection plus the index built over it; index
construction goes through the pluggable registry in
:mod:`repro.index.registry`, so third-party backends resolve by name.  The
engine is stateless apart from its configuration and random generator, so the
same engine can serve many queries.

Databases are *live*: ``insert``/``delete``/``move`` mutators keep the index
in sync incrementally (or rebuild it, for backends without a delete path)
and bump an epoch counter that lazily invalidates the cached columnar
snapshot and nearest-neighbour samplers — a mutation can never be served
stale.  The engine mirrors the mutators (dispatching on object type /
target) and accepts :class:`~repro.core.updates.UpdateBatch` items
interleaved with queries in ``evaluate_many``.

All query flavours funnel through one entry point: ``engine.evaluate(query)``
single-dispatches on the query object (:class:`~repro.core.queries.RangeQuery`
covers IPQ / IUQ / C-IPQ / C-IUQ, :class:`~repro.core.queries.NearestNeighborQuery`
the nearest-neighbour extension) and returns an
:class:`~repro.core.queries.Evaluation` envelope.  ``engine.evaluate_many``
runs a whole workload through the same machinery while amortising dispatch,
database lookups and pruner construction — the paper's experiments issue 500
queries per data point, so the batch path is the hot path.  The legacy
``evaluate_ipq`` / ``evaluate_iuq`` / ``evaluate_cipq`` / ``evaluate_ciuq``
methods remain as deprecated shims delegating to ``evaluate()``.
"""

from __future__ import annotations

import time
import warnings
from collections import Counter
from dataclasses import dataclass, field, fields, replace
from functools import singledispatchmethod
from typing import Any, Iterable, Literal, Sequence

import numpy as np

from repro.geometry.rect import Rect
from repro.core.columnar import (
    ColumnarPoints,
    ColumnarUncertain,
    points_in_window_mask,
)
from repro.core.duality import (
    ipq_probabilities,
    ipq_probabilities_monte_carlo,
    ipq_probabilities_monte_carlo_per_oid,
    ipq_probability,
    iuq_probabilities_exact_uniform,
    iuq_probabilities_monte_carlo,
    iuq_probabilities_monte_carlo_per_oid,
    iuq_probability,
    iuq_probability_exact_uniform,
    monte_carlo_iuq_draws,
)
from repro.core.nearest import ImpreciseNearestNeighborEngine, nn_query_draws
from repro.core.pruning import ALL_STRATEGIES, CIPQPruner, CIUQPruner, PruningStrategy
from repro.core.queries import (
    Evaluation,
    ImpreciseRangeQuery,
    NearestNeighborQuery,
    Query,
    QueryResult,
    RangeQuery,
    RangeQuerySpec,
    RANGE_QUERY_TARGETS,
)
from repro.core.statistics import EvaluationStatistics
from repro.core.updates import (
    UpdateBatch,
    apply_update_op,
    pick_mutation_database,
    resolve_move_target,
)
from repro.index.pti import ProbabilityThresholdIndex
from repro.index.registry import build_index, get_index_backend
from repro.index.rtree import RTree
from repro.uncertainty.catalog import DEFAULT_CATALOG_LEVELS
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

#: Names of the index backends shipped with the reproduction.  Any name
#: registered via :func:`repro.index.registry.register_index` is accepted
#: wherever an ``IndexKind`` is expected.
IndexKind = Literal["rtree", "pti", "grid", "linear"]
ProbabilityMethod = Literal["auto", "exact", "monte_carlo"]

#: How Monte-Carlo draws are assigned to candidate objects.  ``"stream"`` is
#: the historical plan: one batched draw per query consumed from the engine's
#: shared, advancing generator.  ``"per_oid"`` derives an independent
#: generator per ``(query sequence number, object id)`` pair, which makes a
#: survivor's draws independent of batch composition — the property the
#: sharded parallel executor needs for bitwise-identical results.
DrawPlan = Literal["stream", "per_oid"]

#: Monte-Carlo sample count used for nearest-neighbour queries that do not
#: specify one (matches :class:`ImpreciseNearestNeighborEngine`'s default).
DEFAULT_NN_SAMPLES = 256


@dataclass(frozen=True)
class EngineConfig:
    """Tunable behaviour of the query engine.

    The defaults reproduce the paper's "enhanced" configuration: analytic
    probabilities where possible, p-expanded-query filtering and all three
    pruning strategies for constrained queries, and PTI-level pruning when the
    uncertain database is indexed with a PTI.
    """

    probability_method: ProbabilityMethod = "auto"
    monte_carlo_samples: int = 250
    rng_seed: int = 7
    use_p_expanded_query: bool = True
    use_pti_pruning: bool = True
    ciuq_strategies: tuple[PruningStrategy, ...] = ALL_STRATEGIES
    #: Evaluate qualification probabilities with the NumPy-columnar backend.
    #: Answer sets are identical to the scalar path (Monte-Carlo draws are
    #: bitwise identical given the same seed); pdfs without array kernels
    #: transparently fall back to their scalar implementations.
    vectorized: bool = True
    #: Monte-Carlo draw plan (see :data:`DrawPlan`).  ``"per_oid"`` makes
    #: sampled probabilities a pure function of ``(rng_seed, query sequence
    #: number, oid)`` — required by (and forced on) sharded execution; the
    #: default ``"stream"`` preserves the historical draw sequence.
    draw_plan: DrawPlan = "stream"

    def __post_init__(self) -> None:
        if self.monte_carlo_samples < 1:
            raise ValueError(
                f"monte_carlo_samples must be >= 1, got {self.monte_carlo_samples}"
            )
        if self.draw_plan not in ("stream", "per_oid"):
            raise ValueError(
                f"draw_plan must be 'stream' or 'per_oid', got {self.draw_plan!r}"
            )
        if (
            isinstance(self.rng_seed, bool)
            or not isinstance(self.rng_seed, (int, np.integer))
            or self.rng_seed < 0
        ):
            raise ValueError(
                f"rng_seed must be a non-negative integer, got {self.rng_seed!r}"
            )

    def with_overrides(self, **kwargs) -> "EngineConfig":
        """Return a copy of the configuration with the given fields replaced.

        Unknown field names are rejected with a message listing the valid
        fields, so typos fail loudly instead of being silently ignored by a
        downstream ``replace``.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ValueError(
                f"unknown EngineConfig field(s): {', '.join(unknown)}; "
                f"valid fields are: {', '.join(sorted(valid))}"
            )
        return replace(self, **kwargs)


class _TrackedObjects(list):
    """An object list that reports every mutation to its owning database.

    The databases cache a columnar snapshot of their object list; any list
    mutation — whether through the database mutators or directly on
    ``db.objects`` — bumps the database *epoch*, so a cached snapshot can
    never be served stale (the historical failure mode: append to
    ``db.objects`` after ``columnar()`` and silently query old data).
    """

    __slots__ = ("_owner",)

    def __init__(self, items: Iterable, owner: "PointDatabase | UncertainDatabase") -> None:
        super().__init__(items)
        self._owner = owner

    def __reduce__(self):
        # Pickle as a plain list: the default list reconstruction appends
        # through the overridden hooks before ``_owner`` exists, and the
        # owner back-reference is a cycle pickle cannot route through
        # constructor arguments.  The owning database re-wraps the list in
        # its ``__setstate__``.
        return (list, (list(self),))

    def _mutated(self) -> None:
        self._owner._bump_epoch()

    def append(self, item) -> None:
        super().append(item)
        self._mutated()

    def extend(self, items) -> None:
        super().extend(items)
        self._mutated()

    def insert(self, position, item) -> None:
        super().insert(position, item)
        self._mutated()

    def remove(self, item) -> None:
        super().remove(item)
        self._mutated()

    def pop(self, position=-1):
        item = super().pop(position)
        self._mutated()
        return item

    def clear(self) -> None:
        super().clear()
        self._mutated()

    def sort(self, **kwargs) -> None:
        super().sort(**kwargs)
        self._mutated()

    def reverse(self) -> None:
        super().reverse()
        self._mutated()

    def __setitem__(self, position, item) -> None:
        super().__setitem__(position, item)
        self._mutated()

    def __delitem__(self, position) -> None:
        super().__delitem__(position)
        self._mutated()

    def __iadd__(self, items):
        result = super().__iadd__(items)
        self._mutated()
        return result

    def __imul__(self, factor):
        result = super().__imul__(factor)
        self._mutated()
        return result


class _MutableDatabaseMixin:
    """Shared epoch accounting and index-maintenance plumbing.

    Concrete databases provide ``objects`` / ``index`` / ``kind`` plus typed
    ``insert`` / ``delete`` / ``move`` mutators; this mixin owns the epoch
    counter that invalidates cached columnar snapshots, the oid → position
    lookup, and the choice between incremental index maintenance and the
    rebuild fallback for backends without a delete path.
    """

    def _bump_epoch(self) -> None:
        self._epoch += 1

    def __setstate__(self, state: dict) -> None:
        # _TrackedObjects unpickles as a plain list (see its __reduce__);
        # re-wrap so mutation tracking survives a pickle round-trip.
        self.__dict__.update(state)
        if not isinstance(self.objects, _TrackedObjects):
            self.__dict__["objects"] = _TrackedObjects(self.objects, self)

    @property
    def epoch(self) -> int:
        """Mutation counter; bumped by every change to the object list.

        Consumers caching anything derived from the collection (columnar
        snapshots, nearest-neighbour samplers) key their caches on this.
        """
        return self._epoch

    def _position_of(self, oid: int) -> int:
        if self._positions is None or self._positions_epoch != self._epoch:
            self._positions = {obj.oid: row for row, obj in enumerate(self.objects)}
            self._positions_epoch = self._epoch
        position = self._positions.get(oid)
        if position is None:
            raise KeyError(f"no object with oid {oid} in this database")
        return position

    # The mutators patch the oid → position map in place (and re-stamp its
    # epoch) so a stream of updates costs O(index maintenance) per operation
    # instead of an O(n) map rebuild; out-of-band mutations of ``objects``
    # leave the epochs diverged and the map rebuilds lazily as before.
    def _list_append(self, obj) -> None:
        fresh = self._positions is not None and self._positions_epoch == self._epoch
        self.objects.append(obj)
        if fresh:
            self._positions[obj.oid] = len(self.objects) - 1
            self._positions_epoch = self._epoch

    def _list_remove(self, oid: int):
        # Swap-remove: the object list's order carries no meaning (every
        # evaluation path sorts candidates by oid), so filling the hole with
        # the last element keeps removal O(1).
        position = self._position_of(oid)
        positions = self._positions
        obj = self.objects[position]
        last = self.objects.pop()
        if last is not obj:
            self.objects[position] = last
            positions[last.oid] = position
        del positions[oid]
        self._positions_epoch = self._epoch
        return obj

    def _list_replace(self, oid: int, new):
        position = self._position_of(oid)
        old = self.objects[position]
        self.objects[position] = new
        self._positions_epoch = self._epoch
        return old

    def __contains__(self, oid: int) -> bool:
        try:
            self._position_of(oid)
        except KeyError:
            return False
        return True

    def get(self, oid: int):
        """The stored object with the given oid (``KeyError`` when absent)."""
        return self.objects[self._position_of(oid)]

    def _check_new_oid(self, oid: int) -> None:
        if oid in self:
            raise ValueError(
                f"an object with oid {oid} is already stored; "
                "delete or move it instead of inserting a duplicate"
            )

    def _incremental_maintenance(self) -> bool:
        try:
            backend = get_index_backend(self.kind)
        except ValueError:
            # Unregistered kind (hand-wired database): duck-type the index.
            return hasattr(self.index, "delete")
        return backend.capabilities.supports_delete

    def _rebuild_index(self) -> None:
        self.index = build_index(list(self.objects), self.kind)

    # The mutators sequence index maintenance so that any index-side failure
    # (a catalog-less object hitting a PTI, a rebuild that cannot happen)
    # raises *before* the object list changes — objects and index never
    # diverge.  The rebuild fallback is the one case where the list must
    # change first (the rebuild is *of* the new list), so its precondition
    # is checked up front instead.
    def _append_with_index(self, obj) -> None:
        self._check_new_oid(obj.oid)
        self.index.insert(obj.mbr, obj)
        self._list_append(obj)

    def _delete_with_index(self, oid: int):
        obj = self.get(oid)
        if self._incremental_maintenance():
            self.index.delete(obj.mbr, obj)
            self._list_remove(oid)
        else:
            if len(self.objects) <= 1:
                raise ValueError(
                    f"index kind {self.kind!r} has no incremental delete and "
                    "cannot be rebuilt over an empty collection; the last object "
                    "of such a database cannot be deleted"
                )
            self._list_remove(oid)
            self._rebuild_index()
        return obj

    def _replace_with_index(self, oid: int, new) -> None:
        old = self.get(oid)
        if self._incremental_maintenance():
            self.index.update(old.mbr, new.mbr, old, replacement=new)
            self._list_replace(oid, new)
        else:
            self._list_replace(oid, new)
            self._rebuild_index()

    def __len__(self) -> int:
        return len(self.objects)


@dataclass
class PointDatabase(_MutableDatabaseMixin):
    """A collection of point objects plus the spatial index built over them."""

    objects: list[PointObject]
    index: Any
    kind: str = "rtree"
    # Lazily-built columnar snapshot, cached per epoch: rebuilt on first use
    # after any mutation of the object list, so it can never be served stale.
    _columnar: ColumnarPoints | None = field(default=None, init=False, repr=False, compare=False)
    _columnar_epoch: int = field(default=-1, init=False, repr=False, compare=False)
    _epoch: int = field(default=0, init=False, repr=False, compare=False)
    _positions: dict[int, int] | None = field(default=None, init=False, repr=False, compare=False)
    _positions_epoch: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.objects, _TrackedObjects):
            self.objects = _TrackedObjects(self.objects, self)

    def columnar(self) -> ColumnarPoints:
        """The columnar snapshot of the collection (rebuilt lazily per epoch)."""
        if self._columnar is None or self._columnar_epoch != self._epoch:
            self._columnar = ColumnarPoints(self.objects)
            self._columnar_epoch = self._epoch
        return self._columnar

    @classmethod
    def build(
        cls,
        objects: Iterable[PointObject],
        *,
        index_kind: str = "rtree",
        bounds: Rect | None = None,
        **index_kwargs,
    ) -> "PointDatabase":
        """Index a point-object collection (R-tree by default, as in the paper).

        ``index_kind`` resolves through the index registry; backends whose
        capabilities exclude point objects (e.g. the PTI) are rejected.
        """
        materialised = list(objects)
        backend = get_index_backend(index_kind)
        if not backend.capabilities.supports_points:
            raise ValueError(
                f"index kind {index_kind!r} only stores uncertain objects"
            )
        index = build_index(materialised, index_kind, bounds=bounds, **index_kwargs)
        return cls(objects=materialised, index=index, kind=index_kind)

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def insert(self, obj: PointObject) -> PointObject:
        """Add one point object, keeping the index and snapshot in sync."""
        if not isinstance(obj, PointObject):
            raise TypeError(f"expected a PointObject, got {type(obj).__name__}")
        self._append_with_index(obj)
        return obj

    def delete(self, oid: int) -> PointObject:
        """Remove the object with the given oid and return it."""
        return self._delete_with_index(oid)

    def move(self, oid: int, x: float, y: float) -> PointObject:
        """Relocate the object with the given oid to ``(x, y)``.

        The stored wrapper is immutable, so the move replaces it with a new
        :class:`PointObject` carrying the same oid (returned).
        """
        new = PointObject.at(oid, float(x), float(y))
        self._replace_with_index(oid, new)
        return new


@dataclass
class UncertainDatabase(_MutableDatabaseMixin):
    """A collection of uncertain objects plus the index built over them."""

    objects: list[UncertainObject]
    index: Any
    kind: str = "pti"
    #: Levels U-catalogs were built at (``build``'s ``catalog_levels``);
    #: mutators attach catalogs at the same levels so the PTI's homogeneity
    #: requirement keeps holding under live inserts and moves.
    catalog_levels: tuple[float, ...] | None = None
    _columnar: ColumnarUncertain | None = field(default=None, init=False, repr=False, compare=False)
    _columnar_epoch: int = field(default=-1, init=False, repr=False, compare=False)
    _epoch: int = field(default=0, init=False, repr=False, compare=False)
    _positions: dict[int, int] | None = field(default=None, init=False, repr=False, compare=False)
    _positions_epoch: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.objects, _TrackedObjects):
            self.objects = _TrackedObjects(self.objects, self)

    def columnar(self) -> ColumnarUncertain:
        """The columnar snapshot of the collection (rebuilt lazily per epoch)."""
        if self._columnar is None or self._columnar_epoch != self._epoch:
            self._columnar = ColumnarUncertain(self.objects)
            self._columnar_epoch = self._epoch
        return self._columnar

    @classmethod
    def build(
        cls,
        objects: Iterable[UncertainObject],
        *,
        index_kind: str = "pti",
        catalog_levels: Sequence[float] | None = DEFAULT_CATALOG_LEVELS,
        bounds: Rect | None = None,
        **index_kwargs,
    ) -> "UncertainDatabase":
        """Index an uncertain-object collection.

        When ``catalog_levels`` is given, every object missing a U-catalog
        gets one built at those levels (the PTI requires catalogs; the plain
        R-tree merely benefits from them during object-level pruning).
        ``index_kind`` resolves through the index registry.
        """
        materialised = list(objects)
        backend = get_index_backend(index_kind)
        if not backend.capabilities.supports_uncertain:
            raise ValueError(
                f"index kind {index_kind!r} cannot store uncertain objects"
            )
        if catalog_levels is not None:
            materialised = [
                obj if obj.catalog is not None else obj.with_catalog(catalog_levels)
                for obj in materialised
            ]
        index = build_index(materialised, index_kind, bounds=bounds, **index_kwargs)
        return cls(
            objects=materialised,
            index=index,
            kind=index_kind,
            catalog_levels=tuple(catalog_levels) if catalog_levels is not None else None,
        )

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def _with_catalog(
        self, obj: UncertainObject, template: UncertainObject | None
    ) -> UncertainObject:
        """Attach a U-catalog matching the database's levels, when known."""
        if obj.catalog is not None:
            return obj
        if template is not None and template.catalog is not None:
            return obj.with_catalog(template.catalog.levels)
        if self.catalog_levels is not None:
            return obj.with_catalog(self.catalog_levels)
        return obj

    def insert(self, obj: UncertainObject) -> UncertainObject:
        """Add one uncertain object, keeping the index and snapshot in sync.

        An object without a U-catalog gets one built at the database's
        catalog levels (when the database carries catalogs), so PTI-backed
        databases stay insertable.  Returns the stored object.
        """
        if not isinstance(obj, UncertainObject):
            raise TypeError(f"expected an UncertainObject, got {type(obj).__name__}")
        obj = self._with_catalog(obj, None)
        self._append_with_index(obj)
        return obj

    def delete(self, oid: int) -> UncertainObject:
        """Remove the object with the given oid and return it."""
        return self._delete_with_index(oid)

    def move(self, oid: int, pdf) -> UncertainObject:
        """Give the object with the given oid a new uncertainty pdf.

        A moving uncertain object is a fresh location report: a new region
        and pdf, with the U-catalog rebuilt to match (at the old catalog's
        levels, falling back to the database's).  Returns the stored object.
        """
        old = self.get(oid)
        new = self._with_catalog(UncertainObject(oid=oid, pdf=pdf), old)
        self._replace_with_index(oid, new)
        return new


class ImpreciseQueryEngine:
    """Evaluates IPQ, IUQ, C-IPQ, C-IUQ and nearest-neighbour queries.

    The single entry point is :meth:`evaluate`, which dispatches on the query
    object's type; :meth:`evaluate_many` is the batch counterpart.
    """

    def __init__(
        self,
        *,
        point_db: PointDatabase | None = None,
        uncertain_db: UncertainDatabase | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        if point_db is None and uncertain_db is None:
            raise ValueError("the engine needs at least one database to query")
        self._point_db = point_db
        self._uncertain_db = uncertain_db
        self._config = config if config is not None else EngineConfig()
        self._rng = np.random.default_rng(self._config.rng_seed)
        self._nn_engines: dict[tuple[int, int], ImpreciseNearestNeighborEngine] = {}
        # Monotonic query sequence number.  Every evaluated query consumes
        # one (whatever its kind), so that under the per-oid draw plan the
        # n-th query of any call pattern — evaluate() loop, evaluate_many(),
        # or a sharded executor replaying explicit numbers through
        # evaluate_many_at() — samples the same draws.
        self._query_seq = 0

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def point_db(self) -> PointDatabase | None:
        """The point-object database, if any."""
        return self._point_db

    @property
    def uncertain_db(self) -> UncertainDatabase | None:
        """The uncertain-object database, if any."""
        return self._uncertain_db

    # ------------------------------------------------------------------ #
    # Probability dispatch
    # ------------------------------------------------------------------ #
    def _use_monte_carlo(self, issuer: UncertainObject) -> bool:
        method = self._config.probability_method
        if method == "monte_carlo":
            return True
        if method == "exact":
            return False
        return not issuer.pdf.has_closed_form

    # ------------------------------------------------------------------ #
    # Unified entry point
    # ------------------------------------------------------------------ #
    @singledispatchmethod
    def evaluate(self, query, *, over: str | None = None):
        """Evaluate one query object and return an :class:`Evaluation`.

        Dispatches on the query's type: :class:`RangeQuery` covers all four
        paper query flavours via its target kind and threshold,
        :class:`NearestNeighborQuery` the nearest-neighbour extension.
        Passing a legacy :class:`ImpreciseRangeQuery` together with ``over``
        is deprecated and returns the old ``(result, statistics)`` tuple.
        """
        raise TypeError(
            f"cannot evaluate {type(query).__name__!r}; expected a RangeQuery, "
            "a NearestNeighborQuery, or a legacy ImpreciseRangeQuery"
        )

    def _next_query_seq(self) -> int:
        seq = self._query_seq
        self._query_seq += 1
        return seq

    @evaluate.register
    def _evaluate_range_query(
        self,
        query: RangeQuery,
        *,
        over: str | None = None,
        query_seq: int | None = None,
    ) -> Evaluation:
        if over is not None:
            raise TypeError("'over' only applies to legacy ImpreciseRangeQuery objects")
        started = time.perf_counter()
        seq = self._next_query_seq() if query_seq is None else query_seq
        if query.target == "points":
            result, stats = self._run_point_range(
                query.issuer, query.spec, query.threshold, query_seq=seq
            )
        else:
            result, stats = self._run_uncertain_range(
                query.issuer, query.spec, query.threshold, query_seq=seq
            )
        return Evaluation(
            query=query,
            result=result,
            statistics=stats,
            elapsed_seconds=time.perf_counter() - started,
        )

    @evaluate.register
    def _evaluate_nearest_query(
        self,
        query: NearestNeighborQuery,
        *,
        over: str | None = None,
        query_seq: int | None = None,
    ) -> Evaluation:
        if over is not None:
            raise TypeError("'over' only applies to legacy ImpreciseRangeQuery objects")
        started = time.perf_counter()
        seq = self._next_query_seq() if query_seq is None else query_seq
        samples = query.samples if query.samples is not None else DEFAULT_NN_SAMPLES
        engine = self._nearest_engine(samples)
        if self._config.draw_plan == "per_oid":
            draws = nn_query_draws(query.issuer.pdf, samples, self._config.rng_seed, seq)
            result, stats = engine.evaluate(
                query.issuer, threshold=query.threshold, draws=draws
            )
        else:
            result, stats = engine.evaluate(query.issuer, threshold=query.threshold)
        return Evaluation(
            query=query,
            result=result,
            statistics=stats,
            elapsed_seconds=time.perf_counter() - started,
        )

    @evaluate.register
    def _evaluate_legacy_query(
        self, query: ImpreciseRangeQuery, *, over: str | None = None
    ) -> tuple[QueryResult, EvaluationStatistics]:
        # stacklevel 3: caller -> singledispatchmethod wrapper -> this handler.
        warnings.warn(
            "evaluate(ImpreciseRangeQuery, over=...) is deprecated; "
            "pass a RangeQuery with a target instead",
            DeprecationWarning,
            stacklevel=3,
        )
        if over not in RANGE_QUERY_TARGETS:
            raise ValueError(f"unknown target database: {over!r}")
        return self.evaluate(RangeQuery.from_legacy(query, over)).as_tuple()

    def evaluate_many(self, queries: Iterable[Query | UpdateBatch]) -> list[Evaluation]:
        """Evaluate a batch of queries, preserving input order.

        The batch path amortises work a per-query loop repeats: type dispatch
        and database-presence checks run once per batch, the nearest-neighbour
        sampler is shared, and pruners (which own the expanded-region
        construction) are cached across queries that share an issuer, shape
        and threshold.  Results — including Monte-Carlo draws — are identical
        to calling :meth:`evaluate` on each query in order, because queries
        execute in input order against the same random generator.

        With the vectorized backend the batch additionally amortises the
        databases' columnar snapshots: each is built once (then reused) and
        range queries filter candidates with one NumPy window test instead of
        a per-query index traversal (PTI-pruned queries keep the index — its
        node-level pruning is the feature under study).  The answers are
        identical either way, because candidate processing is oid-ordered in
        every path; only ``statistics.io`` differs (the columnar filter
        performs no index node accesses).

        An :class:`~repro.core.updates.UpdateBatch` may be interleaved with
        the queries: it is applied at exactly its position in the stream
        (earlier queries see the old data, later ones the new) and produces
        no :class:`Evaluation` of its own.  Updates consume no query sequence
        numbers, so under the per-oid draw plan the surrounding queries'
        Monte-Carlo draws are unaffected.
        """
        items = list(queries)
        for position, item in enumerate(items):
            if not isinstance(item, (RangeQuery, NearestNeighborQuery, UpdateBatch)):
                raise TypeError(
                    f"evaluate_many() only accepts RangeQuery, NearestNeighborQuery "
                    f"and UpdateBatch objects; item {position} is {type(item).__name__!r}"
                )
        evaluations: list[Evaluation] = []
        batch: list[Query] = []
        seqs: list[int] = []
        for item in items:
            if isinstance(item, UpdateBatch):
                if batch:
                    evaluations.extend(self._evaluate_batch(batch, seqs))
                    batch, seqs = [], []
                self.apply_updates(item)
            else:
                batch.append(item)
                seqs.append(self._next_query_seq())
        if batch:
            evaluations.extend(self._evaluate_batch(batch, seqs))
        return evaluations

    def evaluate_many_at(self, items: Iterable[tuple[int, Query]]) -> list[Evaluation]:
        """Batch evaluation with caller-assigned query sequence numbers.

        ``items`` is an iterable of ``(query_seq, query)`` pairs.  This is the
        replay entry point of the sharded executor: a shard engine evaluates
        only the queries routed to it, but under the per-oid draw plan each
        query must carry the sequence number it holds in the *global*
        workload so that its Monte-Carlo draws match the single-shard
        engine's.  The engine's own sequence counter is left untouched.
        Everything else — pruner caching, columnar batch filtering — behaves
        exactly like :meth:`evaluate_many`.
        """
        materialised = list(items)
        batch = [query for _, query in materialised]
        for position, query in enumerate(batch):
            if not isinstance(query, (RangeQuery, NearestNeighborQuery)):
                raise TypeError(
                    f"evaluate_many_at() only accepts RangeQuery and NearestNeighborQuery "
                    f"objects; item {position} is {type(query).__name__!r}"
                )
        seqs = [int(seq) for seq, _ in materialised]
        return self._evaluate_batch(batch, seqs)

    def _evaluate_batch(self, batch: list[Query], seqs: list[int]) -> list[Evaluation]:
        # Fail fast, before any query runs, when a required database is absent.
        targets = {query.target for query in batch if isinstance(query, RangeQuery)}
        if "points" in targets:
            self._require_point_db()
        if "uncertain" in targets:
            self._require_uncertain_db()
        if any(isinstance(query, NearestNeighborQuery) for query in batch):
            self._require_point_db()

        # Pruners own the expanded-region construction, so queries repeating
        # an (issuer, shape, threshold) combination share one.  The cache is
        # only engaged for combinations that actually repeat — a workload of
        # all-distinct issuers (the common case) pays no caching overhead and
        # retains no pruners.
        repeats = Counter(
            (id(query.issuer), query.spec, query.threshold, query.target)
            for query in batch
            if isinstance(query, RangeQuery)
        )
        point_pruners: dict[tuple, CIPQPruner] = {}
        uncertain_pruners: dict[tuple, CIUQPruner] = {}
        # The columnar snapshots replace the per-query index traversal with
        # one NumPy window test; candidate processing is oid-ordered in every
        # path, so Monte-Carlo draw assignment is unaffected by the switch.
        point_snapshot: ColumnarPoints | None = None
        uncertain_snapshot: ColumnarUncertain | None = None
        if self._config.vectorized and "points" in targets:
            point_snapshot = self._require_point_db().columnar()
        if self._config.vectorized and "uncertain" in targets:
            uncertain_snapshot = self._require_uncertain_db().columnar()
        evaluations: list[Evaluation] = []
        for query, seq in zip(batch, seqs):
            if isinstance(query, NearestNeighborQuery):
                evaluations.append(self._evaluate_nearest_query(query, query_seq=seq))
                continue
            key = (id(query.issuer), query.spec, query.threshold, query.target)
            shared = repeats[key] > 1
            started = time.perf_counter()
            if query.target == "points":
                result, stats = self._run_point_range(
                    query.issuer,
                    query.spec,
                    query.threshold,
                    query_seq=seq,
                    pruner_cache=point_pruners if shared else None,
                    columnar=point_snapshot,
                )
            else:
                result, stats = self._run_uncertain_range(
                    query.issuer,
                    query.spec,
                    query.threshold,
                    query_seq=seq,
                    pruner_cache=uncertain_pruners if shared else None,
                    columnar=uncertain_snapshot,
                )
            evaluations.append(
                Evaluation(
                    query=query,
                    result=result,
                    statistics=stats,
                    elapsed_seconds=time.perf_counter() - started,
                )
            )
        return evaluations

    # ------------------------------------------------------------------ #
    # Range-query evaluation cores
    # ------------------------------------------------------------------ #
    def _require_point_db(self) -> PointDatabase:
        if self._point_db is None:
            raise RuntimeError("no point-object database configured")
        return self._point_db

    def _require_uncertain_db(self) -> UncertainDatabase:
        if self._uncertain_db is None:
            raise RuntimeError("no uncertain-object database configured")
        return self._uncertain_db

    def _point_pruner(
        self, issuer: UncertainObject, spec: RangeQuerySpec, threshold: float
    ) -> CIPQPruner:
        return CIPQPruner(
            issuer,
            spec,
            threshold,
            use_p_expanded_query=self._config.use_p_expanded_query,
        )

    def _uncertain_pruner(
        self, issuer: UncertainObject, spec: RangeQuerySpec, threshold: float
    ) -> CIUQPruner:
        return CIUQPruner(
            issuer,
            spec,
            threshold,
            strategies=self._config.ciuq_strategies,
        )

    def _run_point_range(
        self,
        issuer: UncertainObject,
        spec: RangeQuerySpec,
        threshold: float,
        *,
        query_seq: int,
        pruner_cache: dict[tuple, CIPQPruner] | None = None,
        columnar: ColumnarPoints | None = None,
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """(C-)IPQ core: filter through the index, prune, compute probabilities.

        ``pruner_cache`` (keyed by issuer identity, spec and threshold) lets
        the batch path reuse pruners across queries sharing a filter region.
        The lookup happens inside the timed region, so ``response_time``
        reflects the true per-query cost: a cache miss is timed exactly like
        the sequential path; a hit records the amortised cost it actually paid.

        ``columnar`` (batch path only) replaces the per-query index traversal
        with one NumPy window test over the snapshot; the candidate set is
        identical to an index range search, but no index I/O is performed, so
        ``stats.io`` stays zero.

        Candidates are processed in ascending oid order regardless of how the
        index traversal returned them, so results — including Monte-Carlo
        draw assignment — do not depend on the index kind or the candidate
        source.
        """
        database = self._require_point_db()
        started = time.perf_counter()
        stats = EvaluationStatistics()
        if pruner_cache is None:
            pruner = self._point_pruner(issuer, spec, threshold)
        else:
            key = (id(issuer), spec, threshold)
            pruner = pruner_cache.get(key)
            if pruner is None:
                pruner = pruner_cache[key] = self._point_pruner(issuer, spec, threshold)

        vectorized = self._config.vectorized
        candidate_xy: np.ndarray | None = None
        if columnar is not None and vectorized:
            rows = columnar.window_rows(pruner.filter_region)
            rows = rows[np.argsort(columnar.oids[rows], kind="stable")]
            candidates = [columnar.objects[row] for row in rows]
            candidate_xy = columnar.xy[rows]
        else:
            index = database.index
            before = index.stats.snapshot()
            candidates = index.range_search(pruner.filter_region)
            stats.io = index.stats.difference_since(before)
            candidates.sort(key=lambda obj: obj.oid)
        stats.candidates_examined = len(candidates)

        result = QueryResult()
        if vectorized:
            if candidate_xy is None:
                candidate_xy = np.empty((len(candidates), 2), dtype=float)
                for row, obj in enumerate(candidates):
                    candidate_xy[row, 0] = obj.location.x
                    candidate_xy[row, 1] = obj.location.y
            # The window used to retrieve candidates *is* the pruner's filter
            # region, so the per-object containment re-check only matters for
            # indexes that may return a superset of the window.
            survivors = candidates
            survivor_xy = candidate_xy
            if columnar is None and len(candidates) > 0:
                keep = points_in_window_mask(candidate_xy, pruner.filter_region)
                pruned_count = int(len(candidates) - np.count_nonzero(keep))
                if pruned_count:
                    stats.record_pruned(PruningStrategy.P_EXPANDED_QUERY.value, pruned_count)
                    rows = np.flatnonzero(keep)
                    survivors = [candidates[row] for row in rows]
                    survivor_xy = candidate_xy[rows]
            if survivors:
                stats.probability_computations += len(survivors)
                if self._use_monte_carlo(issuer):
                    samples = self._config.monte_carlo_samples
                    stats.monte_carlo_samples += samples * len(survivors)
                    if self._config.draw_plan == "per_oid":
                        probabilities = ipq_probabilities_monte_carlo_per_oid(
                            issuer.pdf,
                            spec,
                            survivor_xy,
                            np.fromiter(
                                (obj.oid for obj in survivors),
                                dtype=np.int64,
                                count=len(survivors),
                            ),
                            samples,
                            self._config.rng_seed,
                            query_seq,
                        )
                    else:
                        probabilities = ipq_probabilities_monte_carlo(
                            issuer.pdf, spec, survivor_xy, samples, self._rng
                        )
                else:
                    probabilities = ipq_probabilities(issuer.pdf, spec, survivor_xy)
                for obj, probability in zip(survivors, probabilities):
                    probability = float(probability)
                    if probability > 0.0 and probability >= threshold:
                        result.add(obj.oid, probability)
        else:
            survivors = []
            for obj in candidates:
                decision = pruner.decide(obj)
                if decision.pruned:
                    stats.record_pruned(decision.strategy or "filter")
                    continue
                survivors.append(obj)
            if survivors and self._use_monte_carlo(issuer):
                samples = self._config.monte_carlo_samples
                if self._config.draw_plan == "per_oid":
                    # The per-oid plan is inherently per-object, so both
                    # backends share the exact same helper.
                    locations = np.empty((len(survivors), 2), dtype=float)
                    for i, obj in enumerate(survivors):
                        locations[i, 0] = obj.location.x
                        locations[i, 1] = obj.location.y
                    stats.probability_computations += len(survivors)
                    stats.monte_carlo_samples += samples * len(survivors)
                    probabilities = ipq_probabilities_monte_carlo_per_oid(
                        issuer.pdf,
                        spec,
                        locations,
                        np.fromiter(
                            (obj.oid for obj in survivors),
                            dtype=np.int64,
                            count=len(survivors),
                        ),
                        samples,
                        self._config.rng_seed,
                        query_seq,
                    )
                    for obj, probability in zip(survivors, probabilities):
                        probability = float(probability)
                        if probability > 0.0 and probability >= threshold:
                            result.add(obj.oid, probability)
                else:
                    # Same per-query draw plan as the vectorized backend (one
                    # batched issuer draw), evaluated with a scalar per-object
                    # loop — probabilities are bitwise identical across backends.
                    draws = issuer.pdf.sample_batch(self._rng, samples, len(survivors))
                    for i, obj in enumerate(survivors):
                        stats.probability_computations += 1
                        stats.monte_carlo_samples += samples
                        dx = np.abs(draws[i, :, 0] - obj.location.x)
                        dy = np.abs(draws[i, :, 1] - obj.location.y)
                        inside = (dx <= spec.half_width) & (dy <= spec.half_height)
                        probability = float(np.count_nonzero(inside)) / samples
                        if probability > 0.0 and probability >= threshold:
                            result.add(obj.oid, probability)
            else:
                for obj in survivors:
                    stats.probability_computations += 1
                    probability = ipq_probability(issuer.pdf, spec, obj.location)
                    if probability > 0.0 and probability >= threshold:
                        result.add(obj.oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats

    def _run_uncertain_range(
        self,
        issuer: UncertainObject,
        spec: RangeQuerySpec,
        threshold: float,
        *,
        query_seq: int,
        pruner_cache: dict[tuple, CIUQPruner] | None = None,
        columnar: ColumnarUncertain | None = None,
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """(C-)IUQ core: filter through the index, prune, compute probabilities.

        See :meth:`_run_point_range` for the ``pruner_cache`` timing contract
        and the ``columnar`` batch-path contract; as there, candidates are
        processed in ascending oid order so results do not depend on the
        candidate source.  The columnar window filter only replaces plain
        window queries — a PTI with threshold pruning enabled keeps the index
        traversal (its node-level pruning is the feature under study).
        """
        database = self._require_uncertain_db()
        started = time.perf_counter()
        stats = EvaluationStatistics()
        if pruner_cache is None:
            pruner = self._uncertain_pruner(issuer, spec, threshold)
        else:
            key = (id(issuer), spec, threshold)
            pruner = pruner_cache.get(key)
            if pruner is None:
                pruner = pruner_cache[key] = self._uncertain_pruner(issuer, spec, threshold)
        index = database.index
        use_pti = (
            isinstance(index, ProbabilityThresholdIndex)
            and self._config.use_pti_pruning
            and threshold > 0.0
        )
        snapshot_rows: np.ndarray | None = None
        if columnar is not None and self._config.vectorized and not use_pti:
            window = (
                pruner.qp_expanded_region
                if self._config.use_p_expanded_query
                else pruner.minkowski_region
            )
            rows = columnar.window_rows(window)
            rows = rows[np.argsort(columnar.oids[rows], kind="stable")]
            snapshot_rows = rows
            candidates = [columnar.objects[row] for row in rows]
            if self._config.use_p_expanded_query and threshold > 0.0:
                residual_strategies = tuple(
                    s
                    for s in self._config.ciuq_strategies
                    if s is not PruningStrategy.P_EXPANDED_QUERY
                )
            else:
                residual_strategies = self._config.ciuq_strategies
        else:
            before = index.stats.snapshot()
            candidates, residual_strategies = self._retrieve_uncertain_candidates(
                index, pruner, threshold
            )
            stats.io = index.stats.difference_since(before)
            candidates.sort(key=lambda obj: obj.oid)
        stats.candidates_examined = len(candidates)

        result = QueryResult()
        if self._config.vectorized:
            survivors, survivor_bounds = self._prune_uncertain_vectorized(
                candidates,
                pruner,
                residual_strategies,
                threshold,
                stats,
                snapshot=columnar,
                snapshot_rows=snapshot_rows,
            )
            pairs = self._uncertain_probabilities_vectorized(
                issuer, survivors, spec, stats, query_seq, bounds=survivor_bounds
            )
        else:
            survivors = []
            for obj in candidates:
                decision = pruner.decide(obj, strategies=residual_strategies)
                if decision.pruned:
                    stats.record_pruned(decision.strategy or "filter")
                    continue
                survivors.append(obj)
            pairs = self._uncertain_probabilities_scalar(
                issuer, survivors, spec, stats, query_seq
            )
        for oid, probability in pairs:
            if probability > 0.0 and probability >= threshold:
                result.add(oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats

    def _prune_uncertain_vectorized(
        self,
        candidates: list[UncertainObject],
        pruner: CIUQPruner,
        strategies: tuple[PruningStrategy, ...],
        threshold: float,
        stats: EvaluationStatistics,
        *,
        snapshot: ColumnarUncertain | None = None,
        snapshot_rows: np.ndarray | None = None,
    ) -> tuple[list[UncertainObject], np.ndarray | None]:
        """Apply the residual pruning strategies as batched rectangle tests.

        All three Section-5.2 strategies are pure rectangle predicates once
        the candidates' region bounds and catalog bound rectangles are
        available as arrays, so the whole batch runs through
        :meth:`CIUQPruner.decide_many` (same decisions, same per-strategy
        attribution as the scalar loop).  When the columnar snapshot cannot
        serve a catalog-based strategy (heterogeneous or missing catalogs),
        the scalar ``decide`` loop runs instead.

        ``snapshot_rows`` are the candidates' snapshot rows when the caller
        already knows them (columnar retrieval); otherwise they are resolved
        by oid.  Returns the survivors together with their region bounds
        ``(K, 4)`` (``None`` when no bounds array was materialised).
        """
        if threshold <= 0.0 or not candidates or not strategies:
            survivor_bounds = (
                snapshot.bounds[snapshot_rows]
                if snapshot is not None and snapshot_rows is not None
                else None
            )
            return list(candidates), survivor_bounds
        if snapshot is None:
            snapshot = self._require_uncertain_db().columnar()
        rows = snapshot_rows
        if rows is None:
            try:
                rows = snapshot.rows_for(candidates)
            except ValueError:
                # Candidates from a foreign collection (hand-wired database):
                # fall back to materialising their bounds directly.
                rows = None
        if rows is not None:
            bounds = snapshot.bounds[rows]
            catalog_levels = snapshot.catalog_levels
            catalog_bounds = (
                snapshot.catalog_bounds[rows]
                if snapshot.catalog_bounds is not None
                else None
            )
        else:
            bounds = np.empty((len(candidates), 4), dtype=float)
            for row, obj in enumerate(candidates):
                bounds[row] = obj.region.as_tuple()
            catalog_levels = None
            catalog_bounds = None
        batched = pruner.decide_many(
            bounds, catalog_levels, catalog_bounds, strategies=strategies
        )
        if batched is None:
            survivors = []
            for obj in candidates:
                decision = pruner.decide(obj, strategies=strategies)
                if decision.pruned:
                    stats.record_pruned(decision.strategy or "filter")
                else:
                    survivors.append(obj)
            return survivors, None
        keep, pruned_counts = batched
        if not pruned_counts:
            return list(candidates), bounds
        for strategy_name, count in pruned_counts.items():
            stats.record_pruned(strategy_name, count)
        kept_rows = np.flatnonzero(keep)
        return [candidates[row] for row in kept_rows], bounds[kept_rows]

    def _uncertain_routes(
        self, issuer: UncertainObject, survivors: list[UncertainObject]
    ) -> tuple[list[int], list[int], list[int]]:
        """Partition survivors by evaluation route: (monte_carlo, exact, grid).

        The routing mirrors the per-object dispatch the engine has always
        used: uniform issuer/target pairs get the closed form, everything
        else is sampled under ``auto``/``monte_carlo``, and ``exact`` without
        a closed form falls back to the deterministic grid.
        """
        method = self._config.probability_method
        if method == "monte_carlo":
            return list(range(len(survivors))), [], []
        issuer_uniform = isinstance(issuer.pdf, UniformPdf)
        mc_rows: list[int] = []
        exact_rows: list[int] = []
        grid_rows: list[int] = []
        for row, obj in enumerate(survivors):
            exact_possible = issuer_uniform and isinstance(obj.pdf, UniformPdf)
            if method == "auto" and not exact_possible:
                mc_rows.append(row)
            elif exact_possible:
                exact_rows.append(row)
            else:
                grid_rows.append(row)
        return mc_rows, exact_rows, grid_rows

    def _uncertain_probabilities_vectorized(
        self,
        issuer: UncertainObject,
        survivors: list[UncertainObject],
        spec: RangeQuerySpec,
        stats: EvaluationStatistics,
        query_seq: int,
        *,
        bounds: np.ndarray | None = None,
    ) -> list[tuple[int, float]]:
        """Qualification probabilities of the surviving candidates, batched.

        Survivors are partitioned by evaluation route — batched closed form
        for uniform issuer/target pairs, batched Monte-Carlo for sampled
        pairs, the deterministic grid fallback for ``exact`` without a closed
        form — and each batch runs as one NumPy kernel.  Monte-Carlo draws
        come from the shared per-query plan (:func:`monte_carlo_iuq_draws`),
        so sampled probabilities are bitwise identical to the scalar backend
        given the same seed.  Returns ``(oid, probability)`` pairs in
        survivor order.
        """
        if not survivors:
            return []
        stats.probability_computations += len(survivors)
        mc_rows, exact_rows, grid_rows = self._uncertain_routes(issuer, survivors)
        probabilities = np.empty(len(survivors), dtype=float)
        if mc_rows:
            samples = self._config.monte_carlo_samples
            stats.monte_carlo_samples += samples * len(mc_rows)
            all_mc = len(mc_rows) == len(survivors)
            if self._config.draw_plan == "per_oid":
                probabilities[mc_rows] = iuq_probabilities_monte_carlo_per_oid(
                    issuer.pdf,
                    survivors if all_mc else [survivors[row] for row in mc_rows],
                    spec,
                    samples,
                    self._config.rng_seed,
                    query_seq,
                )
            else:
                probabilities[mc_rows] = iuq_probabilities_monte_carlo(
                    issuer.pdf,
                    survivors if all_mc else [survivors[row] for row in mc_rows],
                    spec,
                    samples,
                    self._rng,
                    target_bounds=(
                        bounds if all_mc else bounds[mc_rows]
                    ) if bounds is not None else None,
                )
        if exact_rows:
            if bounds is not None:
                exact_bounds = bounds[exact_rows]
            else:
                exact_bounds = np.empty((len(exact_rows), 4), dtype=float)
                for i, row in enumerate(exact_rows):
                    exact_bounds[i] = survivors[row].region.as_tuple()
            probabilities[exact_rows] = iuq_probabilities_exact_uniform(
                issuer.pdf, exact_bounds, spec
            )
        for row in grid_rows:
            # method == "exact" without a closed form: the deterministic grid
            # keeps results reproducible (same fallback as the scalar path).
            probabilities[row] = iuq_probability(
                issuer.pdf, survivors[row], spec, grid_resolution=24
            )
        return [
            (obj.oid, float(probability))
            for obj, probability in zip(survivors, probabilities)
        ]

    def _uncertain_probabilities_scalar(
        self,
        issuer: UncertainObject,
        survivors: list[UncertainObject],
        spec: RangeQuerySpec,
        stats: EvaluationStatistics,
        query_seq: int,
    ) -> list[tuple[int, float]]:
        """Scalar-reference twin of :meth:`_uncertain_probabilities_vectorized`.

        Same routing and the same Monte-Carlo draw plan, but every
        probability is evaluated with a per-object loop — this is the oracle
        the parity suite compares the batched kernels against.
        """
        if not survivors:
            return []
        stats.probability_computations += len(survivors)
        mc_rows, exact_rows, grid_rows = self._uncertain_routes(issuer, survivors)
        probabilities = np.empty(len(survivors), dtype=float)
        if mc_rows:
            samples = self._config.monte_carlo_samples
            stats.monte_carlo_samples += samples * len(mc_rows)
            targets = [survivors[row] for row in mc_rows]
            if self._config.draw_plan == "per_oid":
                # The per-oid plan is inherently per-object, so both backends
                # share the exact same helper.
                probabilities[mc_rows] = iuq_probabilities_monte_carlo_per_oid(
                    issuer.pdf, targets, spec, samples, self._config.rng_seed, query_seq
                )
            else:
                issuer_draws, target_draws = monte_carlo_iuq_draws(
                    issuer.pdf, targets, samples, self._rng
                )
                for i, row in enumerate(mc_rows):
                    dx = np.abs(target_draws[i, :, 0] - issuer_draws[i, :, 0])
                    dy = np.abs(target_draws[i, :, 1] - issuer_draws[i, :, 1])
                    inside = (dx <= spec.half_width) & (dy <= spec.half_height)
                    probabilities[row] = float(np.count_nonzero(inside)) / samples
        for row in exact_rows:
            probabilities[row] = iuq_probability_exact_uniform(
                issuer.pdf, survivors[row], spec
            )
        for row in grid_rows:
            probabilities[row] = iuq_probability(
                issuer.pdf, survivors[row], spec, grid_resolution=24
            )
        return [
            (obj.oid, float(probability))
            for obj, probability in zip(survivors, probabilities)
        ]

    def _retrieve_uncertain_candidates(
        self, index, pruner: CIUQPruner, threshold: float
    ) -> tuple[list[UncertainObject], tuple[PruningStrategy, ...]]:
        """Index filter step for (C-)IUQ.

        * PTI with threshold pruning enabled: node-level Strategy-1 pruning
          against the Minkowski window plus Strategy-2 pruning against the
          Qp-expanded-query (Figure 12's "PTI + p-expanded-query").  The
          strategies the index already applied per entry are removed from the
          per-object pass — re-running them would test the exact same
          rounded-level conditions on the exact same rectangles.
        * Any other index: a plain window query using the Qp-expanded-query
          when enabled, otherwise the Minkowski sum.

        Returns the candidates and the strategies still to be applied per
        object.
        """
        configured = self._config.ciuq_strategies
        use_pti = (
            isinstance(index, ProbabilityThresholdIndex)
            and self._config.use_pti_pruning
            and threshold > 0.0
        )
        if use_pti:
            p_window = (
                pruner.qp_expanded_region if self._config.use_p_expanded_query else None
            )
            candidates = index.range_search_with_threshold(
                pruner.minkowski_region, threshold, p_window
            )
            applied = {PruningStrategy.P_BOUND}
            if p_window is not None:
                applied.add(PruningStrategy.P_EXPANDED_QUERY)
            residual = tuple(s for s in configured if s not in applied)
            return candidates, residual
        window = (
            pruner.qp_expanded_region
            if self._config.use_p_expanded_query
            else pruner.minkowski_region
        )
        candidates = index.range_search(window)
        if self._config.use_p_expanded_query and threshold > 0.0:
            # The window query already discarded objects outside the
            # Qp-expanded-query, i.e. it applied Strategy 2.
            residual = tuple(
                s for s in configured if s is not PruningStrategy.P_EXPANDED_QUERY
            )
            return candidates, residual
        return candidates, configured

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def _mutation_db(self, target: str | None) -> PointDatabase | UncertainDatabase:
        return pick_mutation_database(self._point_db, self._uncertain_db, target)

    def insert(self, obj: PointObject | UncertainObject):
        """Add one object to the matching database (chosen by the object's type).

        The database keeps its index in sync and bumps its epoch, so cached
        columnar snapshots and nearest-neighbour samplers are rebuilt lazily.
        Returns the stored object.
        """
        if isinstance(obj, PointObject):
            return self._require_point_db().insert(obj)
        if isinstance(obj, UncertainObject):
            return self._require_uncertain_db().insert(obj)
        raise TypeError(
            f"expected a PointObject or UncertainObject, got {type(obj).__name__}"
        )

    def delete(self, oid: int, *, target: str | None = None):
        """Remove one object by oid; ``target`` picks the database when both exist.

        Returns the removed object.
        """
        return self._mutation_db(target).delete(oid)

    def move(
        self,
        oid: int,
        *,
        x: float | None = None,
        y: float | None = None,
        pdf=None,
        target: str | None = None,
    ):
        """Relocate one object: ``x``/``y`` for a point, ``pdf`` for an uncertain one.

        Returns the stored replacement object.
        """
        if resolve_move_target(x, y, pdf, target) == "points":
            return self._require_point_db().move(oid, float(x), float(y))
        return self._require_uncertain_db().move(oid, pdf)

    def apply_updates(self, batch: UpdateBatch) -> None:
        """Apply an ordered batch of mutations to this engine's databases."""
        for op in batch:
            apply_update_op(self, op)

    # ------------------------------------------------------------------ #
    # Nearest-neighbour support
    # ------------------------------------------------------------------ #
    def _nearest_engine(self, samples: int) -> ImpreciseNearestNeighborEngine:
        """A cached nearest-neighbour sampler sharing the point database's index.

        The cache is keyed by ``(samples, database epoch)``: any live
        mutation of the point database bumps its epoch, so samplers built
        over the old object list are dropped instead of served stale.
        """
        database = self._require_point_db()
        key = (samples, database.epoch)
        engine = self._nn_engines.get(key)
        if engine is None:
            # Mutation invalidated the cache: shed samplers from past epochs.
            self._nn_engines = {
                cached_key: cached
                for cached_key, cached in self._nn_engines.items()
                if cached_key[1] == database.epoch
            }
            index = database.index if isinstance(database.index, RTree) else None
            engine = ImpreciseNearestNeighborEngine(
                database.objects,
                index=index,
                samples=samples,
                rng_seed=self._config.rng_seed,
            )
            self._nn_engines[key] = engine
        return engine

    # ------------------------------------------------------------------ #
    # Deprecated per-type shims
    # ------------------------------------------------------------------ #
    def _warn_legacy(self, name: str, replacement: str) -> None:
        warnings.warn(
            f"ImpreciseQueryEngine.{name}() is deprecated; "
            f"use engine.evaluate({replacement}) instead",
            DeprecationWarning,
            stacklevel=3,
        )

    def evaluate_ipq(
        self, issuer: UncertainObject, spec: RangeQuerySpec
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Deprecated shim: imprecise range query over point objects (Definition 3)."""
        self._warn_legacy("evaluate_ipq", "RangeQuery.ipq(issuer, spec)")
        return self.evaluate(RangeQuery.ipq(issuer, spec)).as_tuple()

    def evaluate_cipq(
        self, issuer: UncertainObject, spec: RangeQuerySpec, threshold: float
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Deprecated shim: constrained imprecise range query over point objects."""
        self._warn_legacy("evaluate_cipq", "RangeQuery.cipq(issuer, spec, threshold)")
        return self.evaluate(RangeQuery.cipq(issuer, spec, threshold)).as_tuple()

    def evaluate_iuq(
        self, issuer: UncertainObject, spec: RangeQuerySpec
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Deprecated shim: imprecise range query over uncertain objects (Definition 4)."""
        self._warn_legacy("evaluate_iuq", "RangeQuery.iuq(issuer, spec)")
        return self.evaluate(RangeQuery.iuq(issuer, spec)).as_tuple()

    def evaluate_ciuq(
        self, issuer: UncertainObject, spec: RangeQuerySpec, threshold: float
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Deprecated shim: constrained imprecise range query over uncertain objects."""
        self._warn_legacy("evaluate_ciuq", "RangeQuery.ciuq(issuer, spec, threshold)")
        return self.evaluate(RangeQuery.ciuq(issuer, spec, threshold)).as_tuple()
