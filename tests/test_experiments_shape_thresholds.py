"""Tests for the threshold-figure shape checks (low-threshold parity rules).

The reproduction's wall-clock gain at low thresholds is close to zero (see
EXPERIMENTS.md), so the shape checks require a strict win only from
Qp = 0.4 upwards and near-parity (within 30 %) below.  These tests pin that
contract.
"""

from repro.experiments.reporting import check_shape
from repro.experiments.runner import FigureResult, SeriesPoint


def _figure(series: dict[str, list[tuple[float, float]]]) -> FigureResult:
    figure = FigureResult(figure_id="figure_12", title="t", x_label="Qp")
    for name, points in series.items():
        for x, ms in points:
            figure.add_point(name, SeriesPoint(x, ms, 0.0, 0.0, 0.0))
    return figure


class TestThresholdShapeChecks:
    def test_parity_at_low_thresholds_is_accepted(self):
        figure = _figure(
            {
                "minkowski_sum": [(0.0, 2.0), (0.2, 2.0), (0.4, 2.0), (0.8, 2.0)],
                "pti_p_expanded_query": [(0.0, 2.0), (0.2, 2.3), (0.4, 1.5), (0.8, 1.0)],
            }
        )
        assert all(check.passed for check in check_shape(figure))

    def test_large_low_threshold_regression_fails(self):
        figure = _figure(
            {
                "minkowski_sum": [(0.2, 2.0), (0.4, 2.0), (0.8, 2.0)],
                "pti_p_expanded_query": [(0.2, 3.5), (0.4, 1.5), (0.8, 1.0)],
            }
        )
        checks = check_shape(figure)
        assert any(not check.passed for check in checks)

    def test_loss_at_high_threshold_fails(self):
        figure = _figure(
            {
                "minkowski_sum": [(0.4, 2.0), (0.8, 2.0)],
                "pti_p_expanded_query": [(0.4, 2.5), (0.8, 1.0)],
            }
        )
        checks = check_shape(figure)
        high_check = next(c for c in checks if "Qp >= 0.4" in c.description)
        assert not high_check.passed

    def test_missing_low_thresholds_skips_parity_check(self):
        figure = _figure(
            {
                "minkowski_sum": [(0.4, 2.0), (0.8, 2.0)],
                "pti_p_expanded_query": [(0.4, 1.5), (0.8, 1.0)],
            }
        )
        descriptions = [check.description for check in check_shape(figure)]
        assert not any("near parity" in d for d in descriptions)
