# lint-fixture-path: repro/core/example.py
"""Bare builtin raises that cross the wire untyped."""


def half_width(value):
    if value < 0:
        raise ValueError(f"half_width must be non-negative, got {value}")
    return value


def lookup(table, oid):
    if oid not in table:
        raise KeyError(oid)
    return table[oid]


def require_open(engine):
    if engine.closed:
        raise RuntimeError("engine is closed")
