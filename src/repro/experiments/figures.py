"""Per-figure experiment definitions (Figures 8–13 of the paper).

Every function builds the relevant datasets and indexes once, then sweeps the
figure's x-axis parameter, averaging a batch of random queries per point
exactly as the paper does.  The returned :class:`FigureResult` carries one
series per competing method with response times (ms) and machine-independent
cost counters.
"""

from __future__ import annotations

from typing import Callable

from repro.core.basic import BasicEvaluator
from repro.core.engine import (
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.queries import ImpreciseRangeQuery
from repro.datasets.tiger import california_points, long_beach_uncertain_objects
from repro.datasets.workload import QueryWorkload
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    FigureResult,
    SeriesPoint,
    run_engine_batch,
    run_query_batch,
)


def _point_database(config: ExperimentConfig) -> PointDatabase:
    objects = california_points(scale=config.dataset_scale)
    return PointDatabase.build(objects)


def _uncertain_database(config: ExperimentConfig, *, index_kind: str = "pti") -> UncertainDatabase:
    objects = long_beach_uncertain_objects(scale=config.dataset_scale)
    return UncertainDatabase.build(
        objects, index_kind=index_kind, catalog_levels=config.catalog_levels
    )


def _workload(
    config: ExperimentConfig,
    *,
    issuer_half_size: float,
    range_half_size: float,
    threshold: float = 0.0,
    issuer_pdf: str = "uniform",
    salt: int = 0,
) -> QueryWorkload:
    return QueryWorkload(
        issuer_half_size=issuer_half_size,
        range_half_size=range_half_size,
        threshold=threshold,
        issuer_pdf=issuer_pdf,  # type: ignore[arg-type]
        catalog_levels=config.catalog_levels,
        seed=config.workload_seed(salt),
    )


# --------------------------------------------------------------------------- #
# Figure 8 — Basic vs Enhanced method (IUQ), response time vs u
# --------------------------------------------------------------------------- #
def figure_08(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 8: the basic method (Equation 4) against the enhanced method (Equation 8)."""
    config = config or ExperimentConfig()
    uncertain_objects = long_beach_uncertain_objects(scale=config.dataset_scale)
    database = UncertainDatabase.build(
        uncertain_objects, index_kind="rtree", catalog_levels=config.catalog_levels
    )
    engine = ImpreciseQueryEngine(uncertain_db=database, config=config.engine_config())
    basic = BasicEvaluator(
        issuer_samples=config.basic_issuer_samples,
        vectorized=config.engine_vectorized,
    )

    result = FigureResult(
        figure_id="figure_08",
        title="Basic vs Enhanced evaluation of IUQ",
        x_label="uncertainty region size u",
        notes=(
            "Both methods use the same Minkowski-sum candidate filter; the series "
            "differ only in how qualification probabilities are computed."
        ),
    )
    w = config.defaults.range_half_size
    for salt, u in enumerate(config.issuer_half_sizes):
        workload = _workload(config, issuer_half_size=u, range_half_size=w, salt=salt)
        spec = workload.spec

        enhanced = run_engine_batch(
            engine, workload, config.queries_per_point, target="uncertain"
        )
        result.add_point("enhanced", SeriesPoint.from_aggregate(u, enhanced))

        def run_basic(issuer):
            query = ImpreciseRangeQuery(issuer=issuer, spec=spec)
            return basic.evaluate_iuq(query, database.objects)

        basic_aggregate = run_query_batch(workload, config.queries_per_point, run_basic)
        result.add_point("basic", SeriesPoint.from_aggregate(u, basic_aggregate))
    return result


# --------------------------------------------------------------------------- #
# Figures 9 and 10 — response time vs u for several range sizes
# --------------------------------------------------------------------------- #
def figure_09(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 9: IPQ response time against u for range sizes 500 / 1000 / 1500."""
    config = config or ExperimentConfig()
    database = _point_database(config)
    engine = ImpreciseQueryEngine(point_db=database, config=config.engine_config())
    result = FigureResult(
        figure_id="figure_09",
        title="IPQ response time vs uncertainty region size",
        x_label="uncertainty region size u",
    )
    for w_index, w in enumerate(config.range_half_sizes):
        series = f"range_size={int(w)}"
        for salt, u in enumerate(config.issuer_half_sizes):
            workload = _workload(
                config,
                issuer_half_size=u,
                range_half_size=w,
                salt=w_index * 1000 + salt,
            )
            aggregate = run_engine_batch(
                engine, workload, config.queries_per_point, target="points"
            )
            result.add_point(series, SeriesPoint.from_aggregate(u, aggregate))
    return result


def figure_10(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 10: IUQ response time against u for range sizes 500 / 1000 / 1500."""
    config = config or ExperimentConfig()
    database = _uncertain_database(config, index_kind="rtree")
    engine = ImpreciseQueryEngine(uncertain_db=database, config=config.engine_config())
    result = FigureResult(
        figure_id="figure_10",
        title="IUQ response time vs uncertainty region size",
        x_label="uncertainty region size u",
    )
    for w_index, w in enumerate(config.range_half_sizes):
        series = f"range_size={int(w)}"
        for salt, u in enumerate(config.issuer_half_sizes):
            workload = _workload(
                config,
                issuer_half_size=u,
                range_half_size=w,
                salt=w_index * 1000 + salt,
            )
            aggregate = run_engine_batch(
                engine, workload, config.queries_per_point, target="uncertain"
            )
            result.add_point(series, SeriesPoint.from_aggregate(u, aggregate))
    return result


# --------------------------------------------------------------------------- #
# Figure 11 — C-IPQ: Minkowski sum vs p-expanded-query, response time vs Qp
# --------------------------------------------------------------------------- #
def figure_11(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 11: constrained IPQ with and without the p-expanded-query."""
    config = config or ExperimentConfig()
    database = _point_database(config)
    minkowski_engine = ImpreciseQueryEngine(
        point_db=database, config=config.engine_config(use_p_expanded_query=False)
    )
    expanded_engine = ImpreciseQueryEngine(
        point_db=database, config=config.engine_config(use_p_expanded_query=True)
    )
    result = FigureResult(
        figure_id="figure_11",
        title="C-IPQ: Minkowski sum vs p-expanded-query",
        x_label="probability threshold Qp",
    )
    u = config.defaults.issuer_half_size
    w = config.defaults.range_half_size
    for salt, qp in enumerate(config.thresholds):
        workload = _workload(
            config, issuer_half_size=u, range_half_size=w, threshold=qp, salt=salt
        )
        minkowski = run_engine_batch(
            minkowski_engine, workload, config.queries_per_point, target="points"
        )
        result.add_point("minkowski_sum", SeriesPoint.from_aggregate(qp, minkowski))
        expanded = run_engine_batch(
            expanded_engine, workload, config.queries_per_point, target="points"
        )
        result.add_point("p_expanded_query", SeriesPoint.from_aggregate(qp, expanded))
    return result


# --------------------------------------------------------------------------- #
# Figure 12 — C-IUQ: R-tree + Minkowski sum vs PTI + p-expanded-query
# --------------------------------------------------------------------------- #
def figure_12(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 12: constrained IUQ with a plain R-tree vs the PTI."""
    config = config or ExperimentConfig()
    objects = long_beach_uncertain_objects(scale=config.dataset_scale)
    rtree_db = UncertainDatabase.build(
        objects, index_kind="rtree", catalog_levels=config.catalog_levels
    )
    pti_db = UncertainDatabase.build(
        objects, index_kind="pti", catalog_levels=config.catalog_levels
    )
    # The baseline mirrors the paper's "R-tree with the Minkowski sum": no
    # threshold-aware pruning anywhere, neither at the index nor per object.
    minkowski_engine = ImpreciseQueryEngine(
        uncertain_db=rtree_db,
        config=config.engine_config(
            use_p_expanded_query=False, use_pti_pruning=False, ciuq_strategies=()
        ),
    )
    pti_engine = ImpreciseQueryEngine(
        uncertain_db=pti_db,
        config=config.engine_config(use_p_expanded_query=True, use_pti_pruning=True),
    )
    result = FigureResult(
        figure_id="figure_12",
        title="C-IUQ: R-tree + Minkowski sum vs PTI + p-expanded-query",
        x_label="probability threshold Qp",
    )
    u = config.defaults.issuer_half_size
    w = config.defaults.range_half_size
    for salt, qp in enumerate(config.thresholds):
        workload = _workload(
            config, issuer_half_size=u, range_half_size=w, threshold=qp, salt=salt
        )
        minkowski = run_engine_batch(
            minkowski_engine, workload, config.queries_per_point, target="uncertain"
        )
        result.add_point("minkowski_sum", SeriesPoint.from_aggregate(qp, minkowski))
        pti = run_engine_batch(
            pti_engine, workload, config.queries_per_point, target="uncertain"
        )
        result.add_point("pti_p_expanded_query", SeriesPoint.from_aggregate(qp, pti))
    return result


# --------------------------------------------------------------------------- #
# Figure 13 — C-IPQ with a Gaussian issuer pdf (Monte-Carlo evaluation)
# --------------------------------------------------------------------------- #
def figure_13(config: ExperimentConfig | None = None) -> FigureResult:
    """Figure 13: the non-uniform-pdf experiment (truncated Gaussian, Monte-Carlo)."""
    config = config or ExperimentConfig()
    database = _point_database(config)
    engine_config = config.engine_config(
        probability_method="monte_carlo",
        monte_carlo_samples=config.monte_carlo_samples,
    )
    minkowski_engine = ImpreciseQueryEngine(
        point_db=database, config=engine_config.with_overrides(use_p_expanded_query=False)
    )
    expanded_engine = ImpreciseQueryEngine(
        point_db=database, config=engine_config.with_overrides(use_p_expanded_query=True)
    )
    result = FigureResult(
        figure_id="figure_13",
        title="C-IPQ with Gaussian uncertainty pdf (Monte-Carlo)",
        x_label="probability threshold Qp",
        notes=(
            f"Issuer pdf: truncated Gaussian (sigma = region size / 6); "
            f"{config.monte_carlo_samples} Monte-Carlo samples per probability."
        ),
    )
    u = config.defaults.issuer_half_size
    w = config.defaults.range_half_size
    for salt, qp in enumerate(config.thresholds):
        workload = _workload(
            config,
            issuer_half_size=u,
            range_half_size=w,
            threshold=qp,
            issuer_pdf="gaussian",
            salt=salt,
        )
        minkowski = run_engine_batch(
            minkowski_engine, workload, config.queries_per_point, target="points"
        )
        result.add_point("minkowski_sum", SeriesPoint.from_aggregate(qp, minkowski))
        expanded = run_engine_batch(
            expanded_engine, workload, config.queries_per_point, target="points"
        )
        result.add_point("p_expanded_query", SeriesPoint.from_aggregate(qp, expanded))
    return result


#: All figure functions keyed by their identifier, for the CLI and benchmarks.
ALL_FIGURES: dict[str, Callable[[ExperimentConfig | None], FigureResult]] = {
    "figure_08": figure_08,
    "figure_09": figure_09,
    "figure_10": figure_10,
    "figure_11": figure_11,
    "figure_12": figure_12,
    "figure_13": figure_13,
}
