"""Small AST conveniences shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator


def functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every (async) function definition anywhere under ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attribute(node: ast.AST) -> str | None:
    """``attr`` when ``node`` is exactly ``self.attr``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def referenced_names(node: ast.AST) -> set[str]:
    """All Name ids and Attribute attrs appearing under ``node``."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def is_docstring_or_pass(stmt: ast.stmt) -> bool:
    if isinstance(stmt, ast.Pass):
        return True
    return isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant)


def only_raises(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the function body is just docstring/pass/raise statements."""
    return all(
        is_docstring_or_pass(stmt) or isinstance(stmt, ast.Raise)
        for stmt in func.body
    )


def first_argument(func: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    args = func.args.posonlyargs + func.args.args
    return args[0].arg if args else None
