"""Unit tests for :mod:`repro.geometry.minkowski`."""

import pytest

from repro.geometry.minkowski import (
    expand_query_region,
    minkowski_sum_convex_polygons,
    minkowski_sum_rects,
)
from repro.geometry.algorithms import polygon_area
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestRectMinkowski:
    def test_sum_dimensions_add(self):
        a = Rect(0.0, 0.0, 2.0, 4.0)
        b = Rect(-1.0, -1.0, 1.0, 1.0)
        result = minkowski_sum_rects(a, b)
        assert result.width == a.width + b.width
        assert result.height == a.height + b.height

    def test_sum_with_origin_point_is_identity(self):
        a = Rect(3.0, 4.0, 7.0, 9.0)
        origin = Rect(0.0, 0.0, 0.0, 0.0)
        assert minkowski_sum_rects(a, origin) == a

    def test_sum_is_commutative(self):
        a = Rect(0.0, 0.0, 2.0, 4.0)
        b = Rect(5.0, 5.0, 6.0, 8.0)
        assert minkowski_sum_rects(a, b) == minkowski_sum_rects(b, a)


class TestExpandQueryRegion:
    def test_matches_paper_figure_2(self):
        # The expanded query extends U0 by w left/right and h top/bottom.
        issuer_region = Rect(100.0, 100.0, 200.0, 200.0)
        expanded = expand_query_region(issuer_region, 50.0, 30.0)
        assert expanded == Rect(50.0, 70.0, 250.0, 230.0)

    def test_zero_extents_is_identity(self):
        region = Rect(0.0, 0.0, 10.0, 10.0)
        assert expand_query_region(region, 0.0, 0.0) == region

    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            expand_query_region(Rect(0.0, 0.0, 1.0, 1.0), -1.0, 1.0)


class TestConvexPolygonMinkowski:
    def _square(self, size: float, offset: float = 0.0) -> list[Point]:
        return [
            Point(offset, offset),
            Point(offset + size, offset),
            Point(offset + size, offset + size),
            Point(offset, offset + size),
        ]

    def test_sum_of_squares_is_square(self):
        result = minkowski_sum_convex_polygons(self._square(1.0), self._square(2.0))
        assert polygon_area(result) == pytest.approx(9.0)

    def test_sum_area_lower_bound(self):
        # For convex bodies, area(A ⊕ B) >= area(A) + area(B).
        a = self._square(1.0)
        b = [Point(0.0, 0.0), Point(2.0, 0.0), Point(0.0, 2.0)]
        result = minkowski_sum_convex_polygons(a, b)
        assert polygon_area(result) >= polygon_area(a) + polygon_area(b) - 1e-9

    def test_sum_with_empty_polygon(self):
        assert minkowski_sum_convex_polygons([], self._square(1.0)) == []

    def test_matches_rect_sum_for_rectangles(self):
        rect_a = Rect(0.0, 0.0, 2.0, 3.0)
        rect_b = Rect(-1.0, -1.0, 1.0, 1.0)
        polygon = minkowski_sum_convex_polygons(
            list(rect_a.corners()), list(rect_b.corners())
        )
        expected = minkowski_sum_rects(rect_a, rect_b)
        assert polygon_area(polygon) == pytest.approx(expected.area)
