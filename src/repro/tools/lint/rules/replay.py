"""RPL006 — no wall-clock / process-identity calls in replayed pipeline code.

Query evaluation runs identically in three contexts: in-process, in pool
workers, and replayed from a recorded draw-plan.  Any value read from the
environment — ``time.time()``, ``datetime.now()``, ``os.getpid()``,
``os.urandom()``, ``uuid.uuid4()`` — differs between those contexts and
poisons the bitwise-parity contract the parallel engine's merge step relies
on.  (PR 7's shard merge was debugged against exactly this: a worker-side
value that could never be reproduced parent-side.)

``time.perf_counter`` stays allowed: it feeds the *statistics* channel
(response-time measurements), which is explicitly excluded from parity.

The rule scopes to the modules whose code executes inside workers or
replays: the evaluation pipeline and its numeric kernels.  Process-aware
modules (``shm``, ``parallel``, ``serve``) legitimately read pids and
wall-clocks and are out of scope by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import Module, Rule, register
from repro.tools.lint.rules._ast_helpers import dotted_name

#: ``repro/core`` modules whose functions are executed under replay/parity.
REPLAYED_MODULES = {
    "pipeline",
    "duality",
    "basic",
    "nearest",
    "pruning",
    "plan",
    "columnar",
    "expansion",
    "quality",
}

#: Dotted call targets that read ambient, unreplayable state.
_FORBIDDEN_CALLS = {
    "time.time": "wall-clock time differs per run",
    "time.time_ns": "wall-clock time differs per run",
    "time.monotonic": "monotonic origin differs per process",
    "datetime.now": "wall-clock time differs per run",
    "datetime.utcnow": "wall-clock time differs per run",
    "datetime.datetime.now": "wall-clock time differs per run",
    "datetime.datetime.utcnow": "wall-clock time differs per run",
    "os.getpid": "process identity differs between workers and replay",
    "os.urandom": "OS entropy cannot be replayed",
    "uuid.uuid4": "random uuids cannot be replayed",
    "uuid.uuid1": "host/time-derived uuids cannot be replayed",
}


@register
class ReplaySafety(Rule):
    rule_id = "RPL006"
    severity = "error"
    description = (
        "pipeline/kernel modules must not read wall-clock time, pids, or OS "
        "entropy — such values break worker/replay bitwise parity"
    )

    def applies_to(self, module: Module) -> bool:
        return (
            module.in_package("repro/core/") and module.name in REPLAYED_MODULES
        )

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            reason = _FORBIDDEN_CALLS.get(name)
            if reason is not None:
                yield (
                    node.lineno,
                    f"{name}() in replay-executed code: {reason}; thread the "
                    "value in from the caller or move it to the stats channel",
                )
