# lint-fixture-path: repro/rpc/wire.py
"""Pickle sneaking into the RPC package, at every scope the rule covers."""

import pickle
from marshal import dumps as _marshal_dumps


def encode_header(header):
    return pickle.dumps(header)


def decode_frame(payload):
    import dill

    return dill.loads(payload)


def lazy_encode(obj):
    return _marshal_dumps(obj)
