"""Closed one-dimensional intervals.

Axis-parallel rectangle arithmetic (intersection, Minkowski sum, containment)
decomposes into independent per-axis interval arithmetic, so intervals are the
smallest building block of the geometry substrate.
"""

from __future__ import annotations
from repro.errors import GeometryError

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``[low, high]`` on the real line.

    The interval is considered *empty* when ``low > high``.  Degenerate
    intervals (``low == high``) are valid and have zero length; they are used
    to model point objects as zero-extent rectangles.
    """

    low: float
    high: float

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "Interval":
        """Return a canonical empty interval."""
        return Interval(1.0, 0.0)

    @staticmethod
    def from_center(center: float, half_extent: float) -> "Interval":
        """Build the interval ``[center - half_extent, center + half_extent]``."""
        if half_extent < 0:
            raise GeometryError(f"half_extent must be non-negative, got {half_extent}")
        return Interval(center - half_extent, center + half_extent)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the interval contains no points."""
        return self.low > self.high

    @property
    def length(self) -> float:
        """Length of the interval (0 for empty or degenerate intervals)."""
        return max(0.0, self.high - self.low)

    @property
    def center(self) -> float:
        """Midpoint of the interval."""
        return (self.low + self.high) / 2.0

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the closed interval."""
        return self.low <= value <= self.high

    def contains_interval(self, other: "Interval") -> bool:
        """True when ``other`` is entirely inside this interval."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return self.low <= other.low and other.high <= self.high

    def overlaps(self, other: "Interval") -> bool:
        """True when the two closed intervals share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return self.low <= other.high and other.low <= self.high

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def intersect(self, other: "Interval") -> "Interval":
        """Return the intersection of the two intervals (possibly empty)."""
        if self.is_empty or other.is_empty:
            return Interval.empty()
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return Interval.empty()
        return Interval(low, high)

    def union_bounds(self, other: "Interval") -> "Interval":
        """Return the smallest interval covering both operands."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def expand(self, amount: float) -> "Interval":
        """Grow (or, for negative ``amount``, shrink) the interval on both sides."""
        if self.is_empty:
            return self
        return Interval(self.low - amount, self.high + amount)

    def translate(self, offset: float) -> "Interval":
        """Shift the interval by ``offset``."""
        if self.is_empty:
            return self
        return Interval(self.low + offset, self.high + offset)

    def minkowski_sum(self, other: "Interval") -> "Interval":
        """Minkowski sum of two intervals: ``{a + b | a in self, b in other}``."""
        if self.is_empty or other.is_empty:
            return Interval.empty()
        return Interval(self.low + other.low, self.high + other.high)

    def overlap_length(self, other: "Interval") -> float:
        """Length of the intersection of the two intervals."""
        return self.intersect(other).length

    def clamp(self, value: float) -> float:
        """Project ``value`` onto the interval."""
        if self.is_empty:
            raise GeometryError("cannot clamp onto an empty interval")
        return min(max(value, self.low), self.high)

    def distance_to(self, value: float) -> float:
        """Distance from ``value`` to the closest point of the interval."""
        if self.is_empty:
            raise GeometryError("distance to an empty interval is undefined")
        if value < self.low:
            return self.low - value
        if value > self.high:
            return value - self.high
        return 0.0

    def fraction_below(self, x: float) -> float:
        """Fraction of the interval's length lying strictly to the left of ``x``.

        Used by the uniform-pdf p-bound computation: for a uniform marginal on
        this interval, ``fraction_below(x)`` is the cumulative probability at
        ``x``.
        """
        if self.is_empty or self.length == 0.0:
            return 0.0 if x <= self.low else 1.0
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (x - self.low) / self.length
