"""Live-update parity suite: mutated databases must equal fresh rebuilds.

Acceptance criteria of the incremental-update change: a shard-routed
``insert``/``delete``/``move`` stream followed by ``evaluate_many`` returns
results bitwise-identical (per-oid draw plan) to a from-scratch rebuild of
the same final collection, for all four paper query kinds (IPQ, C-IPQ, IUQ,
C-IUQ) plus the nearest-neighbour extension, for K ∈ {1, 4} shards, in
serial and worker-pool mode.  Updates consume no query sequence numbers, so
interleaving them with queries leaves every query's Monte-Carlo draws
untouched.
"""

from __future__ import annotations

import pytest

from repro.core.engine import (
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.parallel import ParallelEngine
from repro.core.queries import NearestNeighborQuery, RangeQuery
from repro.core.session import Session
from repro.core.sharding import ShardedDatabase
from repro.core.updates import UpdateBatch
from repro.datasets.workload import QueryWorkload, UpdateWorkload
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

from tests.conftest import TEST_SPACE


def _queries(count, *, target=None, threshold=0.0, seed=99, nn_every=0):
    workload = QueryWorkload(bounds=TEST_SPACE, range_half_size=400.0, seed=seed)
    queries = []
    for position, issuer in enumerate(workload.issuers(count)):
        if nn_every and position % nn_every == 0:
            queries.append(NearestNeighborQuery(issuer=issuer, samples=32))
        else:
            queries.append(
                RangeQuery(
                    issuer=issuer, spec=workload.spec, threshold=threshold, target=target
                )
            )
    return queries


def _all_kind_workload():
    return (
        _queries(4, target="points")  # IPQ
        + _queries(4, target="points", threshold=0.3, seed=17)  # C-IPQ
        + _queries(4, target="uncertain", seed=23)  # IUQ
        + _queries(4, target="uncertain", threshold=0.4, seed=31)  # C-IUQ
        + _queries(3, nn_every=1, seed=41)  # NN
    )


def _mutation_batch():
    """A scripted stream hitting every mutation kind on both databases."""
    return (
        UpdateBatch()
        .insert(PointObject.at(9001, 4_800.0, 5_200.0))
        .insert(PointObject.at(9002, 1_200.0, 8_100.0))
        .move(3, x=5_050.0, y=4_950.0)
        .move(11, x=9_200.0, y=600.0)  # long-distance: crosses shards
        .delete(7, target="points")
        .insert(
            UncertainObject.uniform(
                9003, Rect.from_center(Point(5_100.0, 5_100.0), 120.0, 90.0)
            )
        )
        .move(5, pdf=UniformPdf(Rect.from_center(Point(2_500.0, 7_400.0), 90.0, 70.0)))
        .move(17, pdf=UniformPdf(Rect.from_center(Point(8_700.0, 900.0), 110.0, 80.0)))
        .delete(11, target="uncertain")
    )


def _parallel_engine(small_points, small_uncertain, k, *, workers=None, **overrides):
    config = EngineConfig(draw_plan="per_oid").with_overrides(**overrides)
    return ParallelEngine(
        point_db=ShardedDatabase.build_points(small_points, k),
        uncertain_db=ShardedDatabase.build_uncertain(
            small_uncertain, k, catalog_levels=None
        ),
        config=config,
        workers=workers,
    )


def _rebuilt_engine(parallel, **overrides):
    """A single-shard engine over the parallel engine's *final* collections."""
    config = EngineConfig(draw_plan="per_oid").with_overrides(**overrides)
    return ImpreciseQueryEngine(
        point_db=PointDatabase.build(list(parallel.point_db.objects)),
        uncertain_db=UncertainDatabase.build(
            list(parallel.uncertain_db.objects), catalog_levels=None
        ),
        config=config,
    )


def _assert_identical(reference, evaluations):
    assert len(reference) == len(evaluations)
    answered = 0
    for expected, got in zip(reference, evaluations):
        assert got.probabilities() == expected.probabilities()
        answered += len(got)
    assert answered > 0


class TestMutateThenQueryParity:
    """Updates first, queries second: must equal a rebuild of the final data."""

    @pytest.mark.parametrize("k", [1, 4])
    def test_all_query_kinds(self, small_points, small_uncertain, k):
        parallel = _parallel_engine(small_points, small_uncertain, k)
        parallel.apply_updates(_mutation_batch())
        workload = _all_kind_workload()
        evaluations = parallel.evaluate_many(workload)
        reference = _rebuilt_engine(parallel).evaluate_many(workload)
        _assert_identical(reference, evaluations)

    @pytest.mark.parametrize("k", [1, 4])
    def test_monte_carlo_bitwise_identical(self, small_points, small_uncertain, k):
        overrides = {"probability_method": "monte_carlo", "monte_carlo_samples": 60}
        parallel = _parallel_engine(small_points, small_uncertain, k, **overrides)
        parallel.apply_updates(_mutation_batch())
        workload = _queries(4, target="points", threshold=0.2, seed=5) + _queries(
            4, target="uncertain", threshold=0.2, seed=6
        )
        evaluations = parallel.evaluate_many(workload)
        reference = _rebuilt_engine(parallel, **overrides).evaluate_many(workload)
        assert sum(e.statistics.monte_carlo_samples for e in reference) > 0
        # Exact dict equality: bitwise-identical floats, not approximations.
        _assert_identical(reference, evaluations)

    def test_pooled_execution_matches_rebuild(
        self, small_points, small_uncertain, monkeypatch
    ):
        monkeypatch.setenv("REPRO_PARALLEL_FORCE_WORKERS", "1")
        workload = _all_kind_workload()
        with _parallel_engine(small_points, small_uncertain, 4, workers=2) as pooled:
            # Force the pool up *before* mutating, so the test also covers
            # the recycle path (stale forked snapshots must be retired).
            pooled.evaluate_many(_queries(2, target="points", seed=3))
            pooled.apply_updates(_mutation_batch())
            evaluations = pooled.evaluate_many(workload)
            reference = _rebuilt_engine(pooled).evaluate_many_at(
                list(enumerate(workload, start=2))
            )
            _assert_identical(reference, evaluations)

    def test_randomised_update_stream(self, small_points, small_uncertain):
        """A generated move/insert/delete stream preserves parity too."""
        parallel = _parallel_engine(small_points, small_uncertain, 4)
        stream = UpdateWorkload(bounds=TEST_SPACE, seed=77).point_updates(
            [obj.oid for obj in small_points], 120
        )
        parallel.apply_updates(stream)
        workload = _queries(5, target="points", threshold=0.3, seed=51) + _queries(
            3, nn_every=1, seed=52
        )
        evaluations = parallel.evaluate_many(workload)
        reference = _rebuilt_engine(parallel).evaluate_many(workload)
        _assert_identical(reference, evaluations)


class TestInterleavedUpdateParity:
    """Updates inside the workload stream: draws of unrelated queries hold."""

    def test_updates_consume_no_sequence_numbers(self, small_points, small_uncertain):
        head = _queries(3, target="points", threshold=0.2, seed=61)
        tail = _queries(3, target="uncertain", threshold=0.3, seed=62) + _queries(
            2, nn_every=1, seed=63
        )
        parallel = _parallel_engine(small_points, small_uncertain, 4)
        evaluations = parallel.evaluate_many(head + [_mutation_batch()] + tail)
        assert len(evaluations) == len(head) + len(tail)

        # Head ran against the original data at sequence numbers 0..2.
        pristine = ImpreciseQueryEngine(
            point_db=PointDatabase.build(small_points),
            uncertain_db=UncertainDatabase.build(small_uncertain),
            config=EngineConfig(draw_plan="per_oid"),
        )
        _assert_identical(pristine.evaluate_many(head), evaluations[: len(head)])

        # Tail ran against the mutated data at the *continuing* numbers 3..,
        # exactly as a rebuilt engine replaying those numbers would.
        rebuilt = _rebuilt_engine(parallel)
        reference = rebuilt.evaluate_many_at(list(enumerate(tail, start=len(head))))
        _assert_identical(reference, evaluations[len(head) :])

    def test_single_engine_interleaving_matches_sharded(
        self, small_points, small_uncertain
    ):
        workload = (
            _queries(2, target="points", seed=71)
            + [_mutation_batch()]
            + _queries(2, target="uncertain", threshold=0.4, seed=72)
        )
        single = ImpreciseQueryEngine(
            point_db=PointDatabase.build(small_points),
            uncertain_db=UncertainDatabase.build(small_uncertain),
            config=EngineConfig(draw_plan="per_oid"),
        )
        parallel = _parallel_engine(small_points, small_uncertain, 4)
        _assert_identical(single.evaluate_many(workload), parallel.evaluate_many(workload))


class TestWorkerPoolSurvivesUpdates:
    """An interleaved UpdateBatch must not respawn the pool, yet stay exact."""

    def test_stable_worker_pids_across_interleaved_update(
        self, small_points, small_uncertain, monkeypatch
    ):
        # Opt out of the cpu clamp: this test asserts real worker processes.
        monkeypatch.setenv("REPRO_PARALLEL_FORCE_WORKERS", "1")
        head = _queries(3, target="points", threshold=0.2, seed=61)
        tail = _queries(3, target="uncertain", threshold=0.3, seed=62) + _queries(
            2, nn_every=1, seed=63
        )
        with _parallel_engine(small_points, small_uncertain, 4, workers=4) as pooled:
            pooled.warm()
            pool_before = pooled._pool
            workers_before = set(pool_before._processes)
            assert len(workers_before) >= 2  # real processes, not the parent
            import os

            assert os.getpid() not in {p.pid for p in pool_before._processes.values()}

            evaluations = pooled.evaluate_many(head + [_mutation_batch()] + tail)

            # Same executor, same worker processes: the mutation republished
            # one shard's shared-memory snapshot instead of recycling the
            # pool, and every worker is still alive.
            assert pooled._pool is pool_before
            assert set(pool_before._processes) == workers_before
            assert all(p.is_alive() for p in pool_before._processes.values())

            # And the answers are still bitwise-identical: head against the
            # original data at sequence numbers 0.., tail against the mutated
            # data at the continuing numbers.
            pristine = ImpreciseQueryEngine(
                point_db=PointDatabase.build(small_points),
                uncertain_db=UncertainDatabase.build(small_uncertain, catalog_levels=None),
                config=EngineConfig(draw_plan="per_oid"),
            )
            _assert_identical(pristine.evaluate_many(head), evaluations[: len(head)])
            rebuilt = _rebuilt_engine(pooled)
            reference = rebuilt.evaluate_many_at(list(enumerate(tail, start=len(head))))
            _assert_identical(reference, evaluations[len(head) :])


class TestHotShardResplitParity:
    def test_resplit_preserves_answers(self, small_points, small_uncertain):
        parallel = ParallelEngine(
            point_db=ShardedDatabase.build_points(small_points, 4, hot_threshold=60),
            uncertain_db=ShardedDatabase.build_uncertain(
                small_uncertain, 4, catalog_levels=None
            ),
            config=EngineConfig(draw_plan="per_oid"),
        )
        k_before = parallel.point_db.k
        batch = UpdateBatch()
        for offset in range(80):
            batch.insert(
                PointObject.at(20_000 + offset, 5_000.0 + offset * 3.0, 5_000.0 + offset)
            )
        parallel.apply_updates(batch)
        assert parallel.point_db.k > k_before  # the hot shard actually split
        workload = _queries(5, target="points", threshold=0.2, seed=81) + _queries(
            3, nn_every=1, seed=82
        )
        evaluations = parallel.evaluate_many(workload)
        reference = _rebuilt_engine(parallel).evaluate_many(workload)
        _assert_identical(reference, evaluations)


class TestShardedSessionUpdates:
    def test_session_mutators_route_through_shards(self, small_points, small_uncertain):
        config = EngineConfig(draw_plan="per_oid")
        session = Session.from_objects(
            points=small_points, uncertain=small_uncertain, config=config
        ).sharded(4)
        session.insert(PointObject.at(9101, 4_200.0, 4_200.0))
        session.move(9101, x=6_000.0, y=6_000.0)
        session.delete(9101, target="points")
        moved = session.move(
            9, pdf=UniformPdf(Rect.from_center(Point(3_000.0, 3_000.0), 80.0, 80.0))
        )
        assert moved.catalog is not None
        workload = _queries(4, target="uncertain", threshold=0.3, seed=91)
        rebuilt = Session.from_objects(
            points=list(session.point_db.objects),
            uncertain=list(session.uncertain_db.objects),
            catalog_levels=None,
            config=config,
        )
        _assert_identical(rebuilt.evaluate_many(workload), session.evaluate_many(workload))
