"""Answer-quality metrics for probabilistic query results.

The paper's companion work (Cheng et al., "Preserving user location privacy
in mobile data management infrastructures", PET 2006 — reference [6] of the
paper) defines service quality in terms of the objects' qualification
probabilities: an answer set whose probabilities are close to 1 is worth more
to the user than one full of long shots.  These metrics make that notion
concrete so applications (and the privacy example) can reason about the
privacy/quality trade-off quantitatively.

All metrics operate on :class:`~repro.core.queries.QueryResult` objects and
are pure functions of the reported probabilities.
"""

from __future__ import annotations
from repro.core.errors import InvalidQueryError

import math

from repro.core.queries import QueryResult


def expected_cardinality(result: QueryResult) -> float:
    """Expected number of objects that truly satisfy the query.

    Each answer contributes its qualification probability; the sum is the
    expectation of the true answer-set size under the uncertainty model.
    """
    return sum(answer.probability for answer in result)


def expected_precision(result: QueryResult) -> float:
    """Expected fraction of reported answers that truly satisfy the query.

    This is the mean qualification probability of the answer set; an empty
    result has precision 1.0 by convention (nothing reported, nothing wrong).
    """
    if len(result) == 0:
        return 1.0
    return expected_cardinality(result) / len(result)


def expected_recall(result: QueryResult, reference: QueryResult) -> float:
    """Expected fraction of truly qualifying objects that were reported.

    ``reference`` is the unconstrained result (every object with non-zero
    probability); the numerator only counts probability mass of objects that
    appear in ``result``.  When the reference carries no probability mass the
    recall is 1.0 by convention.
    """
    reference_mass = expected_cardinality(reference)
    if reference_mass == 0.0:
        return 1.0
    reported = result.oids()
    captured = sum(a.probability for a in reference if a.oid in reported)
    return captured / reference_mass

def certainty_score(result: QueryResult) -> float:
    """How decisive the answer probabilities are, in ``[0, 1]``.

    A probability of exactly 0.5 carries no information (score 0 for that
    answer); probabilities near 0 or 1 are decisive (score 1).  The score of
    the answer set is the mean per-answer score, using the binary-entropy
    complement ``1 - H(p)``.  Empty results score 1.0 by convention.
    """
    if len(result) == 0:
        return 1.0
    total = 0.0
    for answer in result:
        p = min(max(answer.probability, 0.0), 1.0)
        if p in (0.0, 1.0):
            total += 1.0
        else:
            entropy = -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))
            total += 1.0 - entropy
    return total / len(result)


def f_score(result: QueryResult, reference: QueryResult, *, beta: float = 1.0) -> float:
    """Harmonic combination of expected precision and expected recall.

    ``beta`` weighs recall against precision exactly as in the classical
    F-measure.  Useful for picking a probability threshold: a higher ``Qp``
    raises precision but lowers recall, and the F-score exposes the best
    trade-off point.
    """
    if beta <= 0:
        raise InvalidQueryError("beta must be positive")
    precision = expected_precision(result)
    recall = expected_recall(result, reference)
    if precision == 0.0 and recall == 0.0:
        return 0.0
    beta_sq = beta * beta
    denominator = beta_sq * precision + recall
    if denominator == 0.0:
        return 0.0
    return (1.0 + beta_sq) * precision * recall / denominator


def threshold_sweep(
    reference: QueryResult, thresholds: list[float]
) -> list[tuple[float, float, float, float]]:
    """Quality metrics of ``reference`` filtered at each threshold.

    Returns ``(threshold, expected_precision, expected_recall, f_score)``
    tuples — the quality counterpart of the paper's C-IPQ/C-IUQ cost sweeps
    (Figures 11 and 12), letting applications choose ``Qp`` by quality rather
    than by cost alone.
    """
    rows: list[tuple[float, float, float, float]] = []
    for threshold in thresholds:
        if not 0.0 <= threshold <= 1.0:
            raise InvalidQueryError(f"threshold must lie in [0, 1], got {threshold}")
        filtered = reference.above_threshold(threshold)
        rows.append(
            (
                threshold,
                expected_precision(filtered),
                expected_recall(filtered, reference),
                f_score(filtered, reference),
            )
        )
    return rows
