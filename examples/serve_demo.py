"""Serving front-end demo: concurrent clients against a micro-batching server.

One :class:`repro.serve.QueryServer` owns a session over a synthetic cab
fleet and listens on a loopback TCP port.  A handful of asyncio clients
connect through :class:`repro.serve.ServeClient` and fire imprecise range
queries concurrently; because every client has a request in flight at once,
the server's coalescing window drains them into shared ``evaluate_many``
waves instead of dispatching each alone.  One client also streams a
position update mid-run and re-asks its query, showing updates interleave
with queries in submission order.  The closing stats dump shows how many
waves the run needed and the largest wave the window assembled.

Run with::

    python examples/serve_demo.py
"""

from __future__ import annotations

import asyncio

from repro import (
    Point,
    PointObject,
    RangeQuery,
    RangeQuerySpec,
    Rect,
    Session,
    UncertainObject,
    UpdateBatch,
)
from repro.datasets.synthetic import clustered_points
from repro.serve import QueryServer, ServeClient

CITY = Rect(0.0, 0.0, 10_000.0, 10_000.0)
CLIENTS = 6
QUERIES_PER_CLIENT = 8


def _issuer(index: int) -> UncertainObject:
    """A dispatcher terminal with an imprecise (uniform-box) position."""
    center = 900.0 + (index * 1_337.0) % 8_000.0
    return UncertainObject.uniform(
        index + 1,
        Rect.from_center(Point(center, 10_000.0 - center), 400.0, 400.0),
    )


async def client_loop(name: str, port: int, offset: int) -> list[str]:
    """One closed-loop client: next query goes out when the answer lands."""
    lines: list[str] = []
    async with await ServeClient.connect("127.0.0.1", port) as client:
        for step in range(QUERIES_PER_CLIENT):
            query = RangeQuery.ipq(_issuer(offset * QUERIES_PER_CLIENT + step), SPEC)
            evaluation = await client.query(query)
            lines.append(
                f"{name}: query {step} -> {len(evaluation.result)} cabs "
                f"({evaluation.elapsed_seconds * 1_000.0:.1f} ms server-side)"
            )
        if offset == 0:
            # Mid-run fleet update from the first client: a new cab appears,
            # and the re-asked query sees it (updates apply at wave
            # boundaries, in submission order).
            probe = RangeQuery.ipq(_issuer(0), SPEC)
            before = await client.query(probe)
            center = probe.issuer_region.center
            applied = await client.update(
                UpdateBatch().insert(PointObject.at(90_001, center.x, center.y))
            )
            after = await client.query(probe)
            lines.append(
                f"{name}: applied {applied} update op, probe grew "
                f"{len(before.result)} -> {len(after.result)} answers"
            )
    return lines


SPEC = RangeQuerySpec.square(600.0)


async def main() -> None:
    fleet = clustered_points(2_000, CITY, seed=20_070_415)
    session = Session.from_objects(points=fleet)
    server = QueryServer(session, window=0.002)
    tcp = await server.serve("127.0.0.1", 0)
    port = tcp.sockets[0].getsockname()[1]
    print(f"serving {len(fleet)} cabs on 127.0.0.1:{port} (window 2 ms)\n")
    try:
        transcripts = await asyncio.gather(
            *[client_loop(f"client-{i}", port, i) for i in range(CLIENTS)]
        )
    finally:
        tcp.close()
        await tcp.wait_closed()
        stats = await server.stats()
        await server.stop()
    for lines in transcripts:
        for line in lines:
            print(line)
    serving = stats["serving"]
    print(
        f"\nserved {serving['queries_served']} queries and "
        f"{serving['update_ops_applied']} update op(s) in {serving['waves']} waves "
        f"(largest wave coalesced {serving['largest_wave']} requests)"
    )


if __name__ == "__main__":
    asyncio.run(main())
