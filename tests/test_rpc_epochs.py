"""Epoch-vector coherence over live shard daemons (satellite of the RPC PR).

The distributed cache key embeds, per routed shard, both the parent's local
``(uid, epoch)`` and the daemon-reported remote epoch.  These tests pin the
two halves of that contract against spawned ``shardd`` processes:

* **Fine-grained invalidation** — a cached answer keeps serving hits across
  mutations to shards the query does not route to, and is invalidated by
  the first mutation to a shard it does route to (no broadcast
  invalidation, no stale hit).
* **Semantic invisibility** — a Hypothesis-driven interleaving of queries
  and one-shard mutations matches, bitwise at every checkpoint, an
  uncached serial engine fed the same stream; and the observed hit count
  equals an oracle that grants a hit exactly when the routed shard's
  epoch vector is unchanged since the query was last answered.

The layout is two well-separated point clusters under a median
partitioner, so every query and mutation routes to exactly one knowable
shard.  The ``query_keyed`` draw plan makes sampled answers depend only on
query content, which is what lets a serial engine act as the cold oracle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.cache import ResultCache
from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.queries import NearestNeighborQuery, RangeQuery, RangeQuerySpec
from repro.core.sharding import ShardedDatabase
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.rpc.engine import RemoteEngine
from repro.rpc.launcher import LocalShardCluster
from repro.rpc.pool import RemoteShardPool
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject


@pytest.fixture(scope="module")
def cluster():
    cluster = LocalShardCluster.spawn(2)
    yield cluster
    cluster.close()


def _issuer(oid: int, x: float, y: float, half: float = 50.0) -> UncertainObject:
    region = Rect.from_center(Point(x, y), half, half)
    return UncertainObject(oid=oid, pdf=UniformPdf(region)).with_catalog()


def _two_cluster_points() -> list[PointObject]:
    left = [PointObject.at(i, 100.0 + i, 100.0 + (i % 7)) for i in range(40)]
    right = [
        PointObject.at(100 + i, 9_000.0 + i, 9_000.0 + (i % 7)) for i in range(40)
    ]
    return left + right


#: Query pool, keyed by name.  The "L"/"R" prefix names the only shard the
#: query's window (or NN probe) can route to under the median partitioner.
_QUERIES = {
    "L-cipq": RangeQuery.cipq(
        _issuer(10_000, 150.0, 150.0), RangeQuerySpec.square(100.0), 0.2
    ),
    "L-nn": NearestNeighborQuery(issuer=_issuer(10_001, 130.0, 120.0), samples=32),
    "R-ipq": RangeQuery.ipq(
        _issuer(10_002, 9_050.0, 9_050.0), RangeQuerySpec.square(100.0)
    ),
}


def _remote(cluster, cache: ResultCache) -> tuple[RemoteShardPool, RemoteEngine]:
    pool = RemoteShardPool(cluster.addrs)
    engine = RemoteEngine(
        point_db=ShardedDatabase.build_points(
            _two_cluster_points(), 2, partitioner="median"
        ),
        config=EngineConfig(draw_plan="query_keyed", cache=cache),
        pool=pool,
        owns_pool=False,
    )
    return pool, engine


def _serial_mirror() -> ImpreciseQueryEngine:
    return ImpreciseQueryEngine(
        point_db=PointDatabase.build(_two_cluster_points()),
        config=EngineConfig(draw_plan="query_keyed"),
    )


class TestFineGrainedInvalidation:
    def test_far_shard_mutations_keep_hits_routed_mutations_evict(self, cluster):
        cache = ResultCache(capacity=128)
        pool, engine = _remote(cluster, cache)
        try:
            query = _QUERIES["L-cipq"]
            first = engine.evaluate(query).probabilities()
            assert engine.evaluate(query).probabilities() == first
            assert cache.stats.hits == 1
            # Mutating the far (right) shard leaves the left epoch vector —
            # and therefore the cached key — untouched: still a hit, and no
            # broadcast invalidation reloads the left daemon.
            engine.move(100, x=9_050.0, y=9_050.0)
            assert engine.evaluate(query).probabilities() == first
            assert cache.stats.hits == 2
            # Mutating the routed (left) shard bumps its epoch both locally
            # and daemon-side: the old key is unreachable, so a recompute.
            engine.move(0, x=120.0, y=120.0)
            engine.evaluate(query)
            assert cache.stats.hits == 2
            assert cache.stats.misses >= 2
        finally:
            engine.close()
            pool.close()


_OPS = st.lists(
    st.sampled_from(["L-cipq", "L-nn", "R-ipq", "mutate-L", "mutate-R"]),
    min_size=2,
    max_size=20,
)


@settings(max_examples=10, deadline=None)
@given(_OPS)
def test_interleaved_stream_matches_oracle(cluster, ops):
    """Hit count equals the epoch-vector oracle; answers stay exact."""
    cache = ResultCache(capacity=128)
    pool, engine = _remote(cluster, cache)
    mirror = _serial_mirror()
    try:
        version = {"L": 0, "R": 0}  # bumps whenever that shard mutates
        answered_at: dict[str, tuple[str, int]] = {}
        expected_hits = 0
        tick = 0
        for op in ops:
            if op.startswith("mutate"):
                side = op[-1]
                version[side] += 1
                tick += 1
                if side == "L":
                    oid, x, y = 3 + tick % 5, 120.0 + tick, 130.0 + tick % 7
                else:
                    oid, x, y = 100 + tick % 5, 9_050.0 + tick, 9_040.0 + tick % 7
                engine.move(oid, x=x, y=y)
                mirror.move(oid, x=x, y=y)
                continue
            side = op[0]
            if answered_at.get(op) == (side, version[side]):
                expected_hits += 1
            answered_at[op] = (side, version[side])
            got = engine.evaluate(_QUERIES[op]).probabilities()
            # Checkpoint: bitwise parity with the cold (uncached, serial)
            # evaluation of the same stream.
            assert got == mirror.evaluate(_QUERIES[op]).probabilities()
            assert cache.stats.hits == expected_hits
    finally:
        engine.close()
        pool.close()
