"""Object wrappers: point objects and uncertain objects.

The paper distinguishes two kinds of data (Section 3.1):

* *point objects* ``S1..Sm`` whose location is known exactly (shops,
  buildings, parked cars), and
* *uncertain objects* ``O1..On`` described by an uncertainty region and pdf
  (moving vehicles, privacy-cloaked users).

The query issuer ``O0`` is itself an uncertain object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.catalog import DEFAULT_CATALOG_LEVELS, UCatalog
from repro.uncertainty.pdf import UncertaintyPdf, UniformPdf, pdf_from_dict

#: Wire schema names (see :mod:`repro.core.wire`; imported lazily below —
#: repro.core's query model imports this module).
POINT_OBJECT_SCHEMA = "repro.point_object"
UNCERTAIN_OBJECT_SCHEMA = "repro.uncertain_object"


@dataclass(frozen=True, slots=True)
class PointObject:
    """A queried object with an exact (precise) location."""

    oid: int
    location: Point

    @staticmethod
    def at(oid: int, x: float, y: float) -> "PointObject":
        """Convenience constructor from raw coordinates."""
        return PointObject(oid=oid, location=Point(x, y))

    def to_dict(self) -> dict:
        """A JSON-safe, versioned description of this object."""
        from repro.core.wire import tagged

        return tagged(POINT_OBJECT_SCHEMA, {"oid": self.oid, "x": self.x, "y": self.y})

    @classmethod
    def from_dict(cls, payload) -> "PointObject":
        """Decode a :meth:`to_dict` payload (exact: coordinates round-trip bitwise)."""
        from repro.core.wire import check_schema, require

        payload = check_schema(payload, POINT_OBJECT_SCHEMA)
        return cls.at(
            int(require(payload, POINT_OBJECT_SCHEMA, "oid")),
            float(require(payload, POINT_OBJECT_SCHEMA, "x")),
            float(require(payload, POINT_OBJECT_SCHEMA, "y")),
        )

    @property
    def x(self) -> float:
        """X coordinate of the object's location."""
        return self.location.x

    @property
    def y(self) -> float:
        """Y coordinate of the object's location."""
        return self.location.y

    @property
    def mbr(self) -> Rect:
        """Degenerate bounding rectangle (used when indexing point objects)."""
        return Rect.from_point(self.location)


@dataclass(frozen=True)
class UncertainObject:
    """A queried object (or query issuer) with an imprecise location.

    The object is fully described by its pdf; the uncertainty region is the
    pdf's support rectangle.  A :class:`UCatalog` of pre-computed p-bounds can
    be attached at construction time (or later via :meth:`with_catalog`) to
    enable the constrained-query pruning of Section 5.
    """

    oid: int
    pdf: UncertaintyPdf
    catalog: UCatalog | None = field(default=None, compare=False)

    @staticmethod
    def uniform(oid: int, region: Rect, *, with_catalog: bool = False) -> "UncertainObject":
        """Build an object with a uniform pdf over ``region``."""
        pdf = UniformPdf(region)
        catalog = UCatalog.build(pdf, DEFAULT_CATALOG_LEVELS) if with_catalog else None
        return UncertainObject(oid=oid, pdf=pdf, catalog=catalog)

    @property
    def region(self) -> Rect:
        """The object's uncertainty region ``Ui``."""
        return self.pdf.region

    @property
    def mbr(self) -> Rect:
        """Bounding rectangle used by spatial indexes (same as the region)."""
        return self.pdf.region

    def with_catalog(self, levels: Sequence[float] = DEFAULT_CATALOG_LEVELS) -> "UncertainObject":
        """Return a copy of the object with a freshly built U-catalog."""
        return UncertainObject(
            oid=self.oid,
            pdf=self.pdf,
            catalog=UCatalog.build(self.pdf, levels),
        )

    def to_dict(self) -> dict:
        """A JSON-safe, versioned description of this object.

        The U-catalog is shipped as its probability *levels* only:
        :meth:`UCatalog.build` is deterministic given the pdf, so the decoder
        rebuilds identical p-bounds instead of serializing them.
        """
        from repro.core.wire import tagged

        return tagged(
            UNCERTAIN_OBJECT_SCHEMA,
            {
                "oid": self.oid,
                "pdf": self.pdf.to_dict(),
                "catalog_levels": list(self.catalog.levels) if self.catalog else None,
            },
        )

    @classmethod
    def from_dict(cls, payload) -> "UncertainObject":
        """Decode a :meth:`to_dict` payload, rebuilding any attached catalog."""
        from repro.core.wire import check_schema, require

        payload = check_schema(payload, UNCERTAIN_OBJECT_SCHEMA)
        obj = cls(
            oid=int(require(payload, UNCERTAIN_OBJECT_SCHEMA, "oid")),
            pdf=pdf_from_dict(require(payload, UNCERTAIN_OBJECT_SCHEMA, "pdf")),
        )
        levels = require(payload, UNCERTAIN_OBJECT_SCHEMA, "catalog_levels")
        if levels is not None:
            obj = obj.with_catalog([float(level) for level in levels])
        return obj

    def probability_in_rect(self, rect: Rect) -> float:
        """Probability that the object lies inside ``rect``."""
        return self.pdf.probability_in_rect(rect)
