"""Shared-memory shard snapshots for the parallel executor.

The worker pool in :mod:`repro.core.parallel` must hand every worker process
a consistent view of each shard's data without pickling the shard across a
pipe on every task.  This module publishes each shard as one named
:class:`multiprocessing.shared_memory.SharedMemory` block that workers attach
to by name — in any start method, including ``spawn`` — and map zero-copy:

* the shard's **columnar arrays** (the ``(N, 2)`` coordinate / ``(N, 4)``
  bounds / ``(N, L, 4)`` catalog tables plus oid vectors from
  :mod:`repro.core.columnar`) are laid out raw inside the block, and the
  worker rebuilds :class:`~repro.core.columnar.ColumnarPoints` /
  :class:`~repro.core.columnar.ColumnarUncertain` instances as NumPy views
  straight into the mapping — no copy, no deserialisation;
* the shard's **object list and index** are pickled once into the tail of
  the block (with the cached columnar arrays stripped first, so nothing is
  stored twice) and unpickled once per worker per snapshot version.

Block names are **versioned**: every (kind, shard) pair gets a fresh name
each time it is republished (``{prefix}-{kind}{sid}v{version}``), so a
worker can detect staleness by comparing the name a task carries against the
name it last attached — re-attach on mismatch, no locks, no coordination.

Lifetime is **refcounted in the owner**.  The owning store holds one
reference per published block and one per in-flight task that was dispatched
against it; when the last reference is released the block is closed and
unlinked.  POSIX unlink semantics make this safe even while a worker still
holds the previous version mapped: unlinking only removes the *name*, the
worker's existing mapping stays valid until it drops it on re-attach.
:meth:`SnapshotStore.close` force-releases everything, so a closed store
leaves no segment behind in ``/dev/shm``.

The same framing serves the pool's *result* path in reverse:
:func:`publish_arrays` / :func:`read_arrays` carry one-shot blocks of packed
answer arrays from workers back to the parent, which unlinks each block as
it consumes it — so the task pipes carry block names in both directions,
never bulk data.
"""

from __future__ import annotations
from repro.core.errors import EngineStateError

import copy
import os
import pickle
import struct
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.core.columnar import ColumnarPoints, ColumnarUncertain

#: Alignment of every array slice inside a block; generous enough for any
#: dtype NumPy will map over the buffer.
_ALIGN = 64

#: Length prefix framing the pickled header at the start of every block.
_LEN = struct.Struct("<Q")

_STORE_IDS = iter(range(1, 1 << 62))


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _untracked_shared_memory(**kwargs) -> shared_memory.SharedMemory:
    """A :class:`SharedMemory` the resource tracker does not know about.

    Python's :mod:`multiprocessing.resource_tracker` would otherwise register
    the segment and unlink it when *this* process exits — but every block
    handled here has exactly one explicit unlinker (the snapshot store for
    shard blocks, the consuming parent for one-shot result blocks), which may
    not be the creating process.  Python 3.13+ exposes ``track=False`` for
    exactly this; on older versions the tracker's register hook is suppressed
    for the duration of the call.  (Unregistering *afterwards* would be wrong
    under ``fork``: children share the parent's tracker process, so the
    unregister would strip someone else's registration and the tracker would
    complain at exit.)
    """
    try:
        return shared_memory.SharedMemory(track=False, **kwargs)
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(**kwargs)
    finally:
        resource_tracker.register = original_register


def attach_readonly(name: str) -> shared_memory.SharedMemory:
    """Attach an existing block by name without racing the resource tracker."""
    return _untracked_shared_memory(name=name)


def _unlink_untracked(shm: shared_memory.SharedMemory) -> None:
    """Unlink a segment this process attached untracked.

    Pre-3.13, ``unlink()`` unconditionally tells the resource tracker to
    unregister the segment — but an untracked attachment was never
    registered, so the tracker process would log a ``KeyError`` traceback.
    Suppress the unregister hook for the duration (3.13+ ``track=False``
    objects skip it on their own; the no-op is harmless there).
    """
    from multiprocessing import resource_tracker

    original_unregister = resource_tracker.unregister
    resource_tracker.unregister = lambda *args, **kwargs: None
    try:
        shm.unlink()
    finally:
        resource_tracker.unregister = original_unregister


def _strip_cached_arrays(database):
    """A shallow clone of a shard database safe to pickle into a block.

    The databases cache their columnar snapshot on themselves
    (``_columnar`` / ``_columnar_epoch``) and define no ``__getstate__``, so
    pickling one verbatim would embed a second copy of the very arrays the
    block already stores raw.  The clone drops the cache; the worker injects
    its zero-copy snapshot back after unpickling.
    """
    clone = copy.copy(database)
    clone._columnar = None
    clone._columnar_epoch = -1
    clone._positions = None
    clone._positions_epoch = -1
    return clone


def _columnar_arrays(kind: str, columnar) -> dict[str, np.ndarray]:
    """The named arrays of one columnar snapshot, in layout order."""
    arrays: dict[str, np.ndarray] = {"oids": columnar.oids}
    if kind == "points":
        arrays["xy"] = columnar.xy
    else:
        arrays["bounds"] = columnar.bounds
        if columnar.catalog_bounds is not None:
            arrays["catalog_levels"] = columnar.catalog_levels
            arrays["catalog_bounds"] = columnar.catalog_bounds
    return arrays


@dataclass
class SnapshotBlock:
    """Owner-side handle of one published shard snapshot.

    ``references`` counts the owner's publication reference plus one lease
    per in-flight task dispatched against this version; the block is closed
    and unlinked when the count returns to zero.
    """

    name: str
    kind: str
    sid: int
    version: int
    shm: shared_memory.SharedMemory = field(repr=False)
    references: int = 1
    nbytes: int = 0


class SnapshotStore:
    """Publishes shard snapshots into named shared-memory blocks.

    One store per :class:`~repro.core.parallel.ParallelEngine`.  The store
    tracks, per ``(kind, sid)``, which database state
    (``(uid, epoch)``) the current block was built from; :meth:`ensure`
    republishes under a fresh versioned name only when the shard actually
    mutated, which is what lets workers survive ``UpdateBatch`` streams —
    they re-attach to the one shard that changed instead of being respawned.
    """

    def __init__(self) -> None:
        self._prefix = f"psq{os.getpid()}-{next(_STORE_IDS)}"
        self._current: dict[tuple[str, int], SnapshotBlock] = {}
        self._retired: list[SnapshotBlock] = []
        self._versions: dict[tuple[str, int], int] = {}
        self._states: dict[tuple[str, int], tuple[int, int]] = {}
        self._closed = False

    @property
    def prefix(self) -> str:
        """Name prefix of every block this store publishes."""
        return self._prefix

    def block_names(self) -> list[str]:
        """Names of every block currently alive (current and leased-retired)."""
        names = [block.name for block in self._current.values()]
        names.extend(block.name for block in self._retired)
        return names

    def current(self, kind: str, sid: int) -> SnapshotBlock | None:
        """The live block of one shard, if published."""
        return self._current.get((kind, sid))

    # ------------------------------------------------------------------ #
    # Publication
    # ------------------------------------------------------------------ #
    def ensure(self, kind: str, sid: int, database) -> SnapshotBlock:
        """The current block for a shard, republishing if the shard mutated.

        Staleness is decided by the shard database's ``(uid, epoch)`` pair:
        the uid changes when the shard's database instance is replaced
        wholesale (re-splits), the epoch on every in-place mutation.
        """
        if self._closed:
            raise EngineStateError("cannot publish through a closed SnapshotStore")
        key = (kind, sid)
        state = (database.uid, database.epoch)
        block = self._current.get(key)
        if block is not None and self._states.get(key) == state:
            return block
        block = self._publish(kind, sid, database)
        self._states[key] = state
        return block

    def _publish(self, kind: str, sid: int, database) -> SnapshotBlock:
        key = (kind, sid)
        previous = self._current.pop(key, None)
        if previous is not None:
            self._release(previous)
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version

        columnar = database.columnar()
        arrays = _columnar_arrays(kind, columnar)
        payload = pickle.dumps(
            _strip_cached_arrays(database), protocol=pickle.HIGHEST_PROTOCOL
        )

        layout: dict[str, dict[str, Any]] = {}
        # Header length is not known until the header (which contains the
        # offsets) is built, so offsets are laid out relative to the end of
        # the framed header and shifted once its size is fixed.
        cursor = 0
        for label, array in arrays.items():
            cursor = _aligned(cursor)
            layout[label] = {
                "dtype": array.dtype.str,
                "shape": array.shape,
                "offset": cursor,
            }
            cursor += array.nbytes
        cursor = _aligned(cursor)
        header = {
            "kind": kind,
            "sid": sid,
            "version": version,
            "arrays": layout,
            "database": {"offset": cursor, "nbytes": len(payload)},
        }
        cursor += len(payload)
        header_bytes = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
        base = _aligned(_LEN.size + len(header_bytes))
        total = max(base + cursor, 1)

        name = f"{self._prefix}-{kind}{sid}v{version}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        buf = shm.buf
        buf[: _LEN.size] = _LEN.pack(len(header_bytes))
        buf[_LEN.size : _LEN.size + len(header_bytes)] = header_bytes
        for label, array in arrays.items():
            spec = layout[label]
            offset = base + spec["offset"]
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=buf, offset=offset
            )
            view[...] = array
            del view
        database_offset = base + header["database"]["offset"]
        buf[database_offset : database_offset + len(payload)] = payload

        block = SnapshotBlock(
            name=shm.name, kind=kind, sid=sid, version=version, shm=shm, nbytes=total
        )
        self._current[key] = block
        return block

    # ------------------------------------------------------------------ #
    # Leases and lifetime
    # ------------------------------------------------------------------ #
    def lease(self, block: SnapshotBlock) -> None:
        """Take one task-lifetime reference on a block."""
        block.references += 1

    def release(self, block: SnapshotBlock) -> None:
        """Drop one task-lifetime reference; unlink retired blocks at zero."""
        block.references -= 1
        if block.references <= 0:
            self._unlink(block)
            if block in self._retired:
                self._retired.remove(block)

    def _release(self, block: SnapshotBlock) -> None:
        """Drop the owner's publication reference on a superseded block."""
        block.references -= 1
        if block.references <= 0:
            self._unlink(block)
        else:
            # In-flight tasks still lease the old version; unlink when the
            # last of them completes.
            self._retired.append(block)

    @staticmethod
    def _unlink(block: SnapshotBlock) -> None:
        # Both calls are idempotent-cleanup: a double close or an unlink of
        # an already-removed name surfaces as an OSError subclass only.
        try:
            block.shm.close()
        except OSError:
            pass
        try:
            block.shm.unlink()
        except (OSError, FileNotFoundError):
            pass

    def close(self) -> None:
        """Unlink every block this store ever published (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for block in self._current.values():
            self._unlink(block)
        for block in self._retired:
            self._unlink(block)
        self._current.clear()
        self._retired.clear()
        self._states.clear()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


# --------------------------------------------------------------------------- #
# One-shot array blocks (worker → parent results)
# --------------------------------------------------------------------------- #
def publish_arrays(arrays: dict[str, np.ndarray]) -> str:
    """Write named arrays into a fresh anonymous block; returns its name.

    The sender-side half of the pool's result path: a worker lays its packed
    answer arrays out in one block and ships only the block *name* over the
    pipe.  The block is deliberately untracked — the consuming process (see
    :func:`read_arrays`) is its one unlinker, and the creator closes its
    handle immediately after writing (POSIX keeps the segment alive until it
    is unlinked *and* unmapped everywhere).
    """
    layout: dict[str, dict[str, Any]] = {}
    cursor = 0
    ordered: list[np.ndarray] = []
    for label, array in arrays.items():
        array = np.ascontiguousarray(array)
        cursor = _aligned(cursor)
        layout[label] = {
            "dtype": array.dtype.str,
            "shape": array.shape,
            "offset": cursor,
        }
        ordered.append(array)
        cursor += array.nbytes
    header_bytes = pickle.dumps({"arrays": layout}, protocol=pickle.HIGHEST_PROTOCOL)
    base = _aligned(_LEN.size + len(header_bytes))
    shm = _untracked_shared_memory(create=True, size=max(base + cursor, 1))
    try:
        buf = shm.buf
        buf[: _LEN.size] = _LEN.pack(len(header_bytes))
        buf[_LEN.size : _LEN.size + len(header_bytes)] = header_bytes
        for array, spec in zip(ordered, layout.values()):
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=buf, offset=base + spec["offset"]
            )
            view[...] = array
            del view
        return shm.name
    finally:
        shm.close()


def read_arrays(name: str) -> tuple[dict[str, np.ndarray], int]:
    """Copy the arrays out of a one-shot block, then unlink it.

    Returns ``(arrays, block_size_bytes)``.  The arrays are copies owned by
    the caller; the block is unlinked (and this process's mapping closed)
    before returning, even on error, so a consumed result block can never
    linger in ``/dev/shm``.
    """
    shm = attach_readonly(name)
    try:
        buf = shm.buf
        (header_len,) = _LEN.unpack(bytes(buf[: _LEN.size]))
        header = pickle.loads(bytes(buf[_LEN.size : _LEN.size + header_len]))
        base = _aligned(_LEN.size + header_len)
        arrays = {
            label: np.array(
                np.ndarray(
                    tuple(spec["shape"]),
                    dtype=np.dtype(spec["dtype"]),
                    buffer=buf,
                    offset=base + spec["offset"],
                )
            )
            for label, spec in header["arrays"].items()
        }
        return arrays, shm.size
    finally:
        try:
            _unlink_untracked(shm)
        except FileNotFoundError:
            pass
        shm.close()


class AttachedSnapshot:
    """Worker-side view of one published shard snapshot.

    Holds the shared-memory mapping, the zero-copy columnar snapshot built
    over it, and the unpickled shard database with that snapshot injected as
    its cached columnar state — so the worker's staged pipeline hits the
    shared arrays on every batch filter without ever rebuilding them.
    """

    def __init__(self, name: str) -> None:
        shm = attach_readonly(name)
        buf = shm.buf
        (header_len,) = _LEN.unpack(bytes(buf[: _LEN.size]))
        header = pickle.loads(bytes(buf[_LEN.size : _LEN.size + header_len]))
        base = _aligned(_LEN.size + header_len)

        views: dict[str, np.ndarray] = {}
        for label, spec in header["arrays"].items():
            view = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(spec["dtype"]),
                buffer=buf,
                offset=base + spec["offset"],
            )
            views[label] = view

        blob = header["database"]
        start = base + blob["offset"]
        database = pickle.loads(bytes(buf[start : start + blob["nbytes"]]))

        kind = header["kind"]
        if kind == "points":
            columnar = ColumnarPoints.from_arrays(
                database.objects, views["oids"], views["xy"]
            )
        else:
            columnar = ColumnarUncertain.from_arrays(
                database.objects,
                views["oids"],
                views["bounds"],
                catalog_levels=views.get("catalog_levels"),
                catalog_bounds=views.get("catalog_bounds"),
            )
        database._columnar = columnar
        database._columnar_epoch = database.epoch

        self.name = name
        self.kind = kind
        self.sid = int(header["sid"])
        self.version = int(header["version"])
        self.database = database
        self.columnar = columnar
        self._shm = shm

    def close(self) -> None:
        """Drop the mapping (views built from it must be dropped first)."""
        self.database = None
        self.columnar = None
        try:
            self._shm.close()
        except BufferError:
            # NumPy views into the mapping are still alive somewhere; the
            # mapping is released when they are garbage-collected instead.
            pass
