"""Async JSON-lines client of the serving front-end, plus a small CLI.

:class:`ServeClient` speaks the :mod:`repro.serve.schemas` envelopes over
one TCP connection.  Requests are pipelined: every call writes its line and
parks on a future keyed by request id, a single reader task settles futures
as response lines arrive (possibly out of submission order — the server
answers as waves complete).  Server-side failures raise the *same* typed
exception classes locally (:func:`repro.serve.schemas.error_from_dict`), so
``except BackpressureError`` works identically against a remote server.

CLI::

    python -m repro.serve.client stats
    python -m repro.serve.client query --issuer-x 5000 --issuer-y 5000 \\
        --issuer-half 250 --half-width 500 --threshold 0.3
"""

from __future__ import annotations

import argparse
import asyncio
import json
from typing import Any

from repro.core.errors import ReproError, SchemaError
from repro.core.queries import Evaluation, Query, RangeQuery, RangeQuerySpec
from repro.core.updates import UpdateBatch
from repro.serve.framing import MAX_LINE_BYTES, encode_json_line, read_line
from repro.serve.schemas import decode_response, request_envelope
from repro.geometry.rect import Rect
from repro.uncertainty.region import UncertainObject


class ServeClient:
    """One pipelined JSON-lines connection to a :class:`QueryServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_responses(), name="repro-serve-client-reader"
        )

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 8707) -> "ServeClient":
        """Open a connection to a running server."""
        reader, writer = await asyncio.open_connection(host, port, limit=MAX_LINE_BYTES)
        return cls(reader, writer)

    async def aclose(self) -> None:
        """Close the connection; in-flight requests fail with ``ConnectionError``."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._fail_pending(ConnectionError("client closed"))
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ #
    # Request surface
    # ------------------------------------------------------------------ #
    async def query(self, query: Query) -> Evaluation:
        """Evaluate a query remotely; returns the decoded answer envelope."""
        return Evaluation.from_dict(await self._call("query", query.to_dict()))

    async def update(self, batch: UpdateBatch) -> int:
        """Apply an update batch remotely; returns the number of ops applied."""
        result = await self._call("update", batch.to_dict())
        return int(result["applied"])

    async def stats(self) -> dict:
        """The server's live configuration/counters snapshot."""
        return await self._call("stats")

    async def _call(self, op: str, payload: Any = None) -> Any:
        self._next_id += 1
        rid = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        self._writer.write(encode_json_line(request_envelope(op, rid, payload)))
        await self._writer.drain()
        return await future

    # ------------------------------------------------------------------ #
    # Response pump
    # ------------------------------------------------------------------ #
    async def _read_responses(self) -> None:
        try:
            while True:
                line = await read_line(self._reader)
                if line is None:
                    self._fail_pending(ConnectionError("server closed the connection"))
                    return
                self._settle(line)
        except (ConnectionError, OSError, SchemaError) as error:
            self._fail_pending(error)

    def _settle(self, line: bytes) -> None:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return  # not a protocol line; ignore
        rid = payload.get("id") if isinstance(payload, dict) else None
        future = self._pending.pop(rid, None)
        if future is None or future.done():
            return
        try:
            future.set_result(decode_response(payload))
        except ReproError as error:
            future.set_exception(error)

    def _fail_pending(self, error: BaseException) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def _build_parser() -> argparse.ArgumentParser:
    # The connection flags hang off a parent parser so they are accepted on
    # either side of the subcommand (`--port 8707 stats` and `stats --port
    # 8707` both work).  The parent's defaults are SUPPRESS — subparsers
    # parse after the main parser and would otherwise overwrite a
    # before-the-subcommand value with their default (parents *share*
    # action objects, so per-parser defaults cannot differ; the real
    # defaults are filled in post-parse by :func:`main`).
    connection = argparse.ArgumentParser(add_help=False)
    connection.add_argument("--host", default=argparse.SUPPRESS, help="default 127.0.0.1")
    connection.add_argument("--port", type=int, default=argparse.SUPPRESS, help="default 8707")
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="Query a running repro.serve server over JSON lines.",
        parents=[connection],
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser(
        "stats",
        help="print the server's describe()/serving counters",
        parents=[connection],
    )
    query = commands.add_parser(
        "query", help="evaluate one range query", parents=[connection]
    )
    query.add_argument("--issuer-x", type=float, required=True)
    query.add_argument("--issuer-y", type=float, required=True)
    query.add_argument("--issuer-half", type=float, default=250.0)
    query.add_argument("--half-width", type=float, default=500.0)
    query.add_argument("--half-height", type=float, default=None)
    query.add_argument("--threshold", type=float, default=0.0)
    query.add_argument("--target", choices=("points", "uncertain"), default="points")
    query.add_argument("--top", type=int, default=10, help="answers to print")
    return parser


def _query_from_args(args: argparse.Namespace) -> RangeQuery:
    half = args.issuer_half
    issuer = UncertainObject.uniform(
        0,
        Rect(
            args.issuer_x - half, args.issuer_y - half,
            args.issuer_x + half, args.issuer_y + half,
        ),
    )
    spec = RangeQuerySpec(
        args.half_width,
        args.half_width if args.half_height is None else args.half_height,
    )
    return RangeQuery(
        issuer=issuer, spec=spec, threshold=args.threshold, target=args.target
    )


async def _amain(args: argparse.Namespace) -> int:
    async with await ServeClient.connect(args.host, args.port) as client:
        if args.command == "stats":
            print(json.dumps(await client.stats(), indent=2, sort_keys=True))
            return 0
        evaluation = await client.query(_query_from_args(args))
        print(
            f"{evaluation.query.kind} answered in {evaluation.elapsed_ms:.2f} ms: "
            f"{len(evaluation)} object(s)"
        )
        for answer in evaluation.top(args.top):
            print(f"  oid {answer.oid:>6}  p={answer.probability:.4f}")
        return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    args.host = getattr(args, "host", "127.0.0.1")
    args.port = getattr(args, "port", 8707)
    try:
        return asyncio.run(_amain(args))
    except ConnectionRefusedError:
        print(f"connection refused: is a server listening on {args.host}:{args.port}?")
        return 1
    except (ReproError, SchemaError) as error:
        print(f"error ({getattr(error, 'wire_code', 'error')}): {error}")
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
