"""Unit tests for the linear-scan baseline index."""

import pytest

from repro.geometry.rect import Rect
from repro.index.linear import LinearScanIndex
from repro.uncertainty.region import PointObject


class TestLinearScan:
    def test_insert_and_len(self):
        index = LinearScanIndex()
        index.insert(Rect(0.0, 0.0, 1.0, 1.0), "a")
        index.insert(Rect(2.0, 2.0, 3.0, 3.0), "b")
        assert len(index) == 2

    def test_rejects_empty_mbr(self):
        index = LinearScanIndex()
        with pytest.raises(ValueError):
            index.insert(Rect.empty(), "a")

    def test_range_search(self):
        index = LinearScanIndex()
        index.insert(Rect(0.0, 0.0, 1.0, 1.0), "a")
        index.insert(Rect(5.0, 5.0, 6.0, 6.0), "b")
        assert index.range_search(Rect(0.5, 0.5, 2.0, 2.0)) == ["a"]

    def test_empty_query(self):
        index = LinearScanIndex()
        index.insert(Rect(0.0, 0.0, 1.0, 1.0), "a")
        assert index.range_search(Rect.empty()) == []

    def test_bulk_load_point_objects(self):
        objects = [PointObject.at(i, float(i), float(i)) for i in range(50)]
        index = LinearScanIndex.bulk_load(objects)
        found = index.range_search(Rect(0.0, 0.0, 10.0, 10.0))
        assert {o.oid for o in found} == set(range(11))

    def test_every_query_scans_all_entries(self):
        objects = [PointObject.at(i, float(i), float(i)) for i in range(100)]
        index = LinearScanIndex.bulk_load(objects)
        index.stats.reset()
        index.range_search(Rect(0.0, 0.0, 1.0, 1.0))
        assert index.stats.entries_examined == 100

    def test_page_model(self):
        objects = [PointObject.at(i, float(i), float(i)) for i in range(100)]
        index = LinearScanIndex.bulk_load(objects, page_size=400, entry_size=40)
        index.stats.reset()
        index.range_search(Rect(0.0, 0.0, 1.0, 1.0))
        # 100 entries at 10 entries per page -> 10 page reads.
        assert index.stats.node_accesses == 10
