"""repro — a reproduction of "Efficient Evaluation of Imprecise Location-Dependent Queries".

The package implements the query model, evaluation algorithms, spatial
indexes and experiment harness of Chen & Cheng (ICDE 2007), wrapped in a
unified query-object API:

* :class:`~repro.core.session.Session` — the fluent facade: build databases
  from raw objects and construct queries builder-style
  (``session.range(half_width=500.0).targets("uncertain").threshold(0.5)
  .issued_by(user).run()``);
* :class:`~repro.core.queries.RangeQuery` and
  :class:`~repro.core.queries.NearestNeighborQuery` — query objects covering
  IPQ / IUQ / C-IPQ / C-IUQ and the nearest-neighbour extension;
* :class:`~repro.core.engine.ImpreciseQueryEngine` — ``engine.evaluate(query)``
  single-dispatches on the query object and returns an
  :class:`~repro.core.queries.Evaluation` envelope;
  ``engine.evaluate_many(queries)`` is the batch hot path;
* :func:`~repro.index.registry.register_index` — pluggable registry of index
  backends (R-tree, PTI, grid file, linear scan ship registered; third-party
  backends drop in by name);
* :mod:`repro.datasets` — synthetic stand-ins for the paper's datasets and
  query workloads;
* :mod:`repro.experiments` — the per-figure experiment harness.
"""

from repro.geometry import Point, Rect
from repro.uncertainty import (
    UniformPdf,
    TruncatedGaussianPdf,
    HistogramPdf,
    UniformCirclePdf,
    PointObject,
    UncertainObject,
    UCatalog,
)
from repro.core import (
    AnswerDelta,
    DeltaKind,
    Subscription,
    SubscriptionRegistry,
    UpdateEvent,
    replay_deltas,
    RangeQuerySpec,
    ImpreciseRangeQuery,
    Query,
    RangeQuery,
    NearestNeighborQuery,
    Evaluation,
    QueryAnswer,
    QueryResult,
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
    ResultCache,
    Session,
    SessionStats,
    BasicEvaluator,
    ImpreciseNearestNeighborEngine,
    ParallelEngine,
    ParallelEvaluation,
    ShardedDatabase,
    UpdateBatch,
    UpdateOp,
)
from repro.index import (
    RTree,
    ProbabilityThresholdIndex,
    GridFile,
    LinearScanIndex,
    IndexCapabilities,
    available_indexes,
    register_index,
)

__version__ = "1.3.0"

__all__ = [
    "Point",
    "Rect",
    "UniformPdf",
    "TruncatedGaussianPdf",
    "HistogramPdf",
    "UniformCirclePdf",
    "PointObject",
    "UncertainObject",
    "UCatalog",
    "RangeQuerySpec",
    "ImpreciseRangeQuery",
    "Query",
    "RangeQuery",
    "NearestNeighborQuery",
    "Evaluation",
    "QueryAnswer",
    "QueryResult",
    "EngineConfig",
    "ImpreciseQueryEngine",
    "PointDatabase",
    "UncertainDatabase",
    "ResultCache",
    "Session",
    "SessionStats",
    "BasicEvaluator",
    "ImpreciseNearestNeighborEngine",
    "ParallelEngine",
    "ParallelEvaluation",
    "ShardedDatabase",
    "UpdateBatch",
    "UpdateEvent",
    "UpdateOp",
    "AnswerDelta",
    "DeltaKind",
    "Subscription",
    "SubscriptionRegistry",
    "replay_deltas",
    "RTree",
    "ProbabilityThresholdIndex",
    "GridFile",
    "LinearScanIndex",
    "IndexCapabilities",
    "available_indexes",
    "register_index",
    "__version__",
]
