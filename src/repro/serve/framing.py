"""Shared transport framing for :mod:`repro.serve` and :mod:`repro.rpc`.

Two wire disciplines live here:

* **JSON lines** — one compact JSON document per ``\\n``-terminated line,
  used by the serving front-end's TCP transport.  :func:`read_line` replaces
  the unbounded ``StreamReader.readline()`` with a guarded read that raises
  a typed :class:`~repro.errors.SchemaError` once a line exceeds
  :data:`MAX_LINE_BYTES` (a peer streaming garbage can otherwise balloon the
  reader buffer or kill the connection with a bare ``ValueError``).

* **Length-prefixed binary frames** — the RPC hot path.  A frame body is a
  4-byte big-endian header length, a compact-JSON header, then the raw bytes
  of zero or more C-contiguous numpy arrays, concatenated in header order.
  The full frame is the body behind an 8-byte big-endian length prefix.  The
  header's reserved ``"_arrays"`` key carries ``{name, dtype, shape,
  nbytes}`` per array so :func:`decode_frame` can rebuild views with
  ``np.frombuffer`` — query answers (``oid:int64[]``/``value:float64[]``
  and the packed statistics arrays) cross the wire without pickling.

Both ends of every transport share these functions, so the size guards and
the byte layout cannot drift between client and server.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any

import numpy as np

from repro.errors import SchemaError

#: Ceiling on one JSON line.  Request/response envelopes are small; 4 MiB
#: accommodates bulk update batches while stopping runaway buffers.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Ceiling on one binary frame body.  A shard-load frame ships a full shard
#: of object payloads; answer frames are a few KiB.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_FRAME_PREFIX = struct.Struct(">Q")
_HEADER_PREFIX = struct.Struct(">I")


# --------------------------------------------------------------------------- #
# JSON lines
# --------------------------------------------------------------------------- #
def encode_json_line(payload: Any) -> bytes:
    """One compact JSON document, newline-terminated, size-guarded."""
    line = json.dumps(payload, separators=(",", ":")).encode() + b"\n"
    if len(line) > MAX_LINE_BYTES:
        raise SchemaError(
            f"encoded JSON line is {len(line)} bytes; the transport ceiling "
            f"is {MAX_LINE_BYTES}"
        )
    return line


async def read_line(
    reader: asyncio.StreamReader, *, max_bytes: int = MAX_LINE_BYTES
) -> bytes | None:
    """One newline-terminated line, or ``None`` on clean EOF.

    Raises :class:`SchemaError` when the peer sends more than ``max_bytes``
    without a newline (the stream is unrecoverable past that point — callers
    should answer with a schema error and close the connection).
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        line = error.partial  # final line without a trailing newline
    except asyncio.LimitOverrunError as error:
        raise SchemaError(
            f"line exceeds the {max_bytes}-byte transport ceiling"
        ) from error
    if len(line) > max_bytes:
        raise SchemaError(
            f"line is {len(line)} bytes; the transport ceiling is {max_bytes}"
        )
    return line


# --------------------------------------------------------------------------- #
# Length-prefixed binary frames
# --------------------------------------------------------------------------- #
def encode_frame(header: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """One framed message: length prefix + JSON header + raw array bytes."""
    if "_arrays" in header:
        raise SchemaError("frame header key '_arrays' is reserved")
    specs = []
    blobs = []
    for name, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        specs.append(
            {
                "name": name,
                "dtype": str(contiguous.dtype),
                "shape": list(contiguous.shape),
                "nbytes": contiguous.nbytes,
            }
        )
        blobs.append(contiguous.tobytes())
    header_bytes = json.dumps(
        header | {"_arrays": specs}, separators=(",", ":")
    ).encode()
    body = b"".join(
        [_HEADER_PREFIX.pack(len(header_bytes)), header_bytes, *blobs]
    )
    if len(body) > MAX_FRAME_BYTES:
        raise SchemaError(
            f"encoded frame is {len(body)} bytes; the transport ceiling is "
            f"{MAX_FRAME_BYTES}"
        )
    return _FRAME_PREFIX.pack(len(body)) + body


def decode_frame(body: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    """Inverse of :func:`encode_frame` (arrays are read-only buffer views)."""
    if len(body) < _HEADER_PREFIX.size:
        raise SchemaError("frame body is shorter than its header prefix")
    (header_length,) = _HEADER_PREFIX.unpack_from(body)
    offset = _HEADER_PREFIX.size + header_length
    if offset > len(body):
        raise SchemaError("frame header length exceeds the frame body")
    try:
        header = json.loads(body[_HEADER_PREFIX.size : offset])
    except json.JSONDecodeError as error:
        raise SchemaError(f"frame header is not JSON: {error}") from error
    if not isinstance(header, dict):
        raise SchemaError("frame header must be a JSON object")
    specs = header.pop("_arrays", [])
    arrays: dict[str, np.ndarray] = {}
    for spec in specs:
        nbytes = int(spec["nbytes"])
        if offset + nbytes > len(body):
            raise SchemaError(
                f"frame array {spec['name']!r} overruns the frame body"
            )
        flat = np.frombuffer(
            body[offset : offset + nbytes], dtype=np.dtype(spec["dtype"])
        )
        arrays[str(spec["name"])] = flat.reshape([int(n) for n in spec["shape"]])
        offset += nbytes
    if offset != len(body):
        raise SchemaError("frame body has trailing bytes beyond its arrays")
    return header, arrays


async def read_frame(
    reader: asyncio.StreamReader, *, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[dict, dict[str, np.ndarray]] | None:
    """One framed message, or ``None`` on clean EOF between frames."""
    try:
        prefix = await reader.readexactly(_FRAME_PREFIX.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise SchemaError("connection closed inside a frame prefix") from error
    (length,) = _FRAME_PREFIX.unpack(prefix)
    if length > max_bytes:
        raise SchemaError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte ceiling"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise SchemaError("connection closed inside a frame body") from error
    return decode_frame(body)


def _recv_exactly(sock: socket.socket, count: int) -> bytes | None:
    """``count`` bytes off a blocking socket; ``None`` on immediate EOF."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise SchemaError("connection closed inside a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_sized_frame_from_socket(
    sock: socket.socket, *, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[dict, dict[str, np.ndarray], int] | None:
    """Blocking-socket twin of :func:`read_frame`, plus the wire byte count.

    The third element is the frame's full on-the-wire size (prefix + body)
    so callers can account transport bytes exactly.
    """
    prefix = _recv_exactly(sock, _FRAME_PREFIX.size)
    if prefix is None:
        return None
    (length,) = _FRAME_PREFIX.unpack(prefix)
    if length > max_bytes:
        raise SchemaError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte ceiling"
        )
    body = _recv_exactly(sock, length)
    if body is None:
        raise SchemaError("connection closed between frame prefix and body")
    header, arrays = decode_frame(body)
    return header, arrays, _FRAME_PREFIX.size + length


def read_frame_from_socket(
    sock: socket.socket, *, max_bytes: int = MAX_FRAME_BYTES
) -> tuple[dict, dict[str, np.ndarray]] | None:
    """:func:`read_sized_frame_from_socket` without the byte count."""
    sized = read_sized_frame_from_socket(sock, max_bytes=max_bytes)
    if sized is None:
        return None
    return sized[0], sized[1]
