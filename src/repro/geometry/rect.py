"""Axis-parallel rectangles.

The paper assumes that all uncertainty regions and query ranges are
axis-parallel rectangles (Section 3.1), which makes rectangles the central
geometric type of the reproduction.  A :class:`Rect` is simply the cartesian
product of two :class:`~repro.geometry.interval.Interval` objects.
"""

from __future__ import annotations
from repro.errors import GeometryError

from dataclasses import dataclass
from typing import Iterator

from repro.geometry.interval import Interval
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-parallel rectangle ``[xmin, xmax] × [ymin, ymax]``.

    The rectangle is *empty* when either axis interval is empty.  Degenerate
    rectangles (zero width and/or zero height) are valid; point objects are
    modelled as zero-extent rectangles when inserted into spatial indexes.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "Rect":
        """Return a canonical empty rectangle."""
        return Rect(1.0, 1.0, 0.0, 0.0)

    @staticmethod
    def from_intervals(x: Interval, y: Interval) -> "Rect":
        """Build a rectangle from its per-axis intervals."""
        if x.is_empty or y.is_empty:
            return Rect.empty()
        return Rect(x.low, y.low, x.high, y.high)

    @staticmethod
    def from_center(center: Point, half_width: float, half_height: float) -> "Rect":
        """Build the rectangle centred at ``center`` with the given half-extents.

        This mirrors the paper's range query ``R(x, y)`` with half-width ``w``
        and half-height ``h`` centred at the query issuer's position.
        """
        if half_width < 0 or half_height < 0:
            raise GeometryError("half extents must be non-negative")
        return Rect(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    @staticmethod
    def from_point(point: Point) -> "Rect":
        """Return the degenerate rectangle covering a single point."""
        return Rect(point.x, point.y, point.x, point.y)

    @staticmethod
    def bounding(rects: "list[Rect]") -> "Rect":
        """Return the minimum bounding rectangle of a list of rectangles."""
        result = Rect.empty()
        for rect in rects:
            result = result.union_bounds(rect)
        return result

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the rectangle contains no points."""
        return self.xmin > self.xmax or self.ymin > self.ymax

    @property
    def x_interval(self) -> Interval:
        """Projection of the rectangle onto the x axis."""
        if self.is_empty:
            return Interval.empty()
        return Interval(self.xmin, self.xmax)

    @property
    def y_interval(self) -> Interval:
        """Projection of the rectangle onto the y axis."""
        if self.is_empty:
            return Interval.empty()
        return Interval(self.ymin, self.ymax)

    # The extent properties are the R-tree maintenance hot path (node splits
    # evaluate them hundreds of thousands of times); they use direct
    # arithmetic instead of delegating to Interval objects.
    @property
    def width(self) -> float:
        """Extent along the x axis (0 for empty rectangles)."""
        return self.xmax - self.xmin if self.xmax >= self.xmin else 0.0

    @property
    def height(self) -> float:
        """Extent along the y axis (0 for empty rectangles)."""
        return self.ymax - self.ymin if self.ymax >= self.ymin else 0.0

    @property
    def area(self) -> float:
        """Area of the rectangle (0 for empty or degenerate rectangles)."""
        if self.xmax <= self.xmin or self.ymax <= self.ymin:
            return 0.0
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    @property
    def half_perimeter(self) -> float:
        """Half the perimeter (the classical R-tree 'margin' measure)."""
        return self.width + self.height

    @property
    def center(self) -> Point:
        """Centre point of the rectangle."""
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def corners(self) -> Iterator[Point]:
        """Yield the four corners in counter-clockwise order."""
        yield Point(self.xmin, self.ymin)
        yield Point(self.xmax, self.ymin)
        yield Point(self.xmax, self.ymax)
        yield Point(self.xmin, self.ymax)

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    def contains_point(self, point: Point) -> bool:
        """True when ``point`` lies inside the closed rectangle."""
        if self.is_empty:
            return False
        return self.xmin <= point.x <= self.xmax and self.ymin <= point.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` is entirely inside this rectangle."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return (
            self.xmin <= other.xmin
            and other.xmax <= self.xmax
            and self.ymin <= other.ymin
            and other.ymax <= self.ymax
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the closed rectangles share at least one point."""
        if self.is_empty or other.is_empty:
            return False
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def is_disjoint_from(self, other: "Rect") -> bool:
        """True when the rectangles do not intersect."""
        return not self.overlaps(other)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def intersect(self, other: "Rect") -> "Rect":
        """Return the intersection rectangle (possibly empty)."""
        return Rect.from_intervals(
            self.x_interval.intersect(other.x_interval),
            self.y_interval.intersect(other.y_interval),
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of the intersection of the two rectangles."""
        return self.intersect(other).area

    def union_bounds(self, other: "Rect") -> "Rect":
        """Return the minimum bounding rectangle of the two rectangles."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def expand(self, dx: float, dy: float | None = None) -> "Rect":
        """Grow the rectangle by ``dx`` on the left/right and ``dy`` on the top/bottom.

        With only ``dx`` given, both axes are expanded by the same amount.
        Expanding the query issuer's uncertainty region by the query half-width
        and half-height is exactly the rectangle Minkowski sum (Section 4.1).
        """
        if self.is_empty:
            return self
        if dy is None:
            dy = dx
        return Rect.from_intervals(self.x_interval.expand(dx), self.y_interval.expand(dy))

    def shrink(self, dx: float, dy: float | None = None) -> "Rect":
        """Shrink the rectangle; returns an empty rectangle when over-shrunk."""
        if dy is None:
            dy = dx
        return self.expand(-dx, -dy)

    def translate(self, dx: float, dy: float) -> "Rect":
        """Shift the rectangle by ``(dx, dy)``."""
        if self.is_empty:
            return self
        return Rect(self.xmin + dx, self.ymin + dy, self.xmax + dx, self.ymax + dy)

    def minkowski_sum(self, other: "Rect") -> "Rect":
        """Minkowski sum of two axis-parallel rectangles (again a rectangle)."""
        return Rect.from_intervals(
            self.x_interval.minkowski_sum(other.x_interval),
            self.y_interval.minkowski_sum(other.y_interval),
        )

    def enlargement_to_include(self, other: "Rect") -> float:
        """Area increase needed to make this rectangle cover ``other``.

        This is the standard R-tree insertion heuristic (Guttman, 1984).
        Computed arithmetically — no intermediate rectangle — because node
        splits call this in a tight loop.
        """
        if other.is_empty:
            return 0.0
        if self.is_empty:
            return other.area
        width = max(self.xmax, other.xmax) - min(self.xmin, other.xmin)
        height = max(self.ymax, other.ymax) - min(self.ymin, other.ymin)
        return width * height - self.area

    def min_distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the closest point of the rectangle."""
        if self.is_empty:
            raise GeometryError("distance to an empty rectangle is undefined")
        dx = self.x_interval.distance_to(point.x)
        dy = self.y_interval.distance_to(point.y)
        return (dx * dx + dy * dy) ** 0.5

    def min_distance_to_rect(self, other: "Rect") -> float:
        """Minimum Euclidean distance between two rectangles (0 when overlapping)."""
        if self.is_empty or other.is_empty:
            raise GeometryError("distance to an empty rectangle is undefined")
        dx = 0.0
        if other.xmax < self.xmin:
            dx = self.xmin - other.xmax
        elif self.xmax < other.xmin:
            dx = other.xmin - self.xmax
        dy = 0.0
        if other.ymax < self.ymin:
            dy = self.ymin - other.ymax
        elif self.ymax < other.ymin:
            dy = other.ymin - self.ymax
        return (dx * dx + dy * dy) ** 0.5

    def max_distance_to_point(self, point: Point) -> float:
        """Euclidean distance from ``point`` to the farthest point of the rectangle."""
        if self.is_empty:
            raise GeometryError("distance to an empty rectangle is undefined")
        dx = max(abs(point.x - self.xmin), abs(point.x - self.xmax))
        dy = max(abs(point.y - self.ymin), abs(point.y - self.ymax))
        return (dx * dx + dy * dy) ** 0.5

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(xmin, ymin, xmax, ymax)``."""
        return (self.xmin, self.ymin, self.xmax, self.ymax)
