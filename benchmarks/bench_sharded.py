"""Benchmark: single-shard ``evaluate_many`` vs sharded parallel execution.

Runs Figure-9-style IPQ workloads (uniform issuers over the California-like
point dataset) through three executors over identical data:

* ``single`` — one :class:`ImpreciseQueryEngine` over one database (the
  PR 2 vectorized batch path), per-oid draw plan so all three executors
  return identical results;
* ``sharded_serial`` — a :class:`ParallelEngine` over K spatial shards,
  executed in-process: isolates the shard *routing* effect (each query only
  scans the shards its window touches) plus the split/merge overhead;
* ``sharded_workers`` — the same sharded database fanned out over W forked
  worker processes: adds true multi-core parallelism.

Two workload flavours are measured: ``closed_form`` (uniform issuers, exact
probabilities — light queries where the per-query split/merge overhead is
most visible) and ``sampled`` (Monte-Carlo probabilities at the paper's 250
draws — the heavy path that dominates production workloads and where worker
parallelism pays).  ``workload_speedup`` — the headline number — is the
sampled workload's throughput ratio of ``sharded_workers`` over ``single``.
On a single-core container no multi-core gain is physically possible, so the
JSON records ``cpu_count`` to make the figure interpretable; on the 4-core
CI runners the sampled workload clears 1.8x.

Beyond wall-clock, the sharded contenders report the cost of *talking to*
the pool: ``pool_spinup_seconds`` (publishing every shard snapshot and
waiting for the workers to come up — paid once, not per query) and
``ipc_bytes_per_query`` (serialized task + result bytes crossing the pool
pipes, measured by pickling every task and result a second time in the
parent).  For scale, ``pickled_envelope_bytes_per_query`` measures what the
pre-shared-memory protocol would have shipped — full query objects out,
pickled result/statistics envelopes back — and ``ipc_reduction`` is the
ratio of the two.

Results go to ``BENCH_sharded.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_sharded.py

Environment knobs: ``REPRO_BENCH_SCALE`` (dataset scale, default 0.25),
``REPRO_BENCH_QUERIES`` (batch size, default 150), ``REPRO_BENCH_REPEATS``
(timing repetitions, default 2), ``REPRO_BENCH_SHARDS`` (default 4) and
``REPRO_BENCH_WORKERS`` (default 4).
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path

from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.parallel import FORCE_WORKERS_ENV, ParallelEngine
from repro.core.queries import RangeQuery
from repro.core.sharding import ShardedDatabase
from repro.datasets.tiger import california_points
from repro.datasets.workload import QueryWorkload

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sharded.json"


def _build_queries(count: int) -> list[RangeQuery]:
    workload = QueryWorkload(issuer_half_size=250.0, range_half_size=300.0, seed=4711)
    spec = workload.spec
    return [RangeQuery.ipq(issuer, spec) for issuer in workload.issuers(count)]


def _time_interleaved(runs: dict[str, object], repeats: int) -> dict[str, float]:
    """Best-of-``repeats`` wall-clock time per contender, interleaved."""
    best = {name: float("inf") for name in runs}
    for _ in range(repeats):
        for name, run in runs.items():
            started = time.perf_counter()
            run()
            best[name] = min(best[name], time.perf_counter() - started)
    return best


def _measure_ipc(
    pooled: ParallelEngine, serial: ParallelEngine, workload: list[RangeQuery]
) -> dict:
    """Bytes crossing the pool pipes, vs the pre-shared-memory protocol.

    The live number re-runs the workload with the engine's IPC accounting
    switched on: every ``_ShardTask`` (plan tokens + a snapshot block name)
    and ``_ShardResult`` (packed answer arrays) is pickled a second time in
    the parent and its size accumulated.  The baseline emulates the old
    envelope protocol on the same routed batches — full query objects
    shipped out, pickled ``_RangePartial``/``_NNPartial`` envelopes shipped
    back — without paying for a second pool.

    On machines with fewer cores than requested workers, the cpu clamp
    turns ``pooled`` into the in-process path and no bytes would cross any
    pipe — but the *protocol* cost is machine-independent, so the
    measurement runs on a dedicated, clamp-exempt pool instead (the
    regression guard's byte ceiling must keep holding on 1-core runners).
    """
    queries = len(workload)
    if pooled.workers < pooled.requested_workers:
        os.environ[FORCE_WORKERS_ENV] = "1"
        try:
            forced = ParallelEngine(
                point_db=pooled.point_db,
                uncertain_db=pooled.uncertain_db,
                config=pooled.config,
                workers=pooled.requested_workers,
            )
        finally:
            del os.environ[FORCE_WORKERS_ENV]
        try:
            return _measure_ipc(forced, serial, workload)
        finally:
            forced.close()
    pooled.reset_ipc_accounting()
    pooled.ipc_accounting = True
    try:
        pooled.evaluate_many(workload)
    finally:
        pooled.ipc_accounting = False
    shm_bytes = pooled.ipc_task_bytes + pooled.ipc_result_bytes

    tasks: dict[tuple[str, int], list[tuple[int, int, RangeQuery]]] = {}
    for position, query in enumerate(workload):
        for shard in serial._route(query):
            tasks.setdefault(("points", shard.sid), []).append(
                (position, position, query)
            )
    envelope_bytes = 0
    for (kind, sid), items in sorted(tasks.items()):
        envelope_bytes += len(pickle.dumps(items, protocol=pickle.HIGHEST_PROTOCOL))
        partials = serial._execute_shard(kind, sid, items)
        envelope_bytes += len(pickle.dumps(partials, protocol=pickle.HIGHEST_PROTOCOL))
    return {
        "ipc_task_bytes": pooled.ipc_task_bytes,
        "ipc_result_bytes": pooled.ipc_result_bytes,
        "ipc_bytes_per_query": shm_bytes / queries,
        # Answer volume moved through one-shot shared-memory result blocks
        # (never serialized, never piped) — reported for scale.
        "result_shm_bytes_per_query": pooled.result_shm_bytes / queries,
        "pickled_envelope_bytes_per_query": envelope_bytes / queries,
        # None (not Infinity — the report must stay strict JSON) if somehow
        # no bytes crossed the pipes.
        "ipc_reduction": envelope_bytes / shm_bytes if shm_bytes else None,
    }


def _measure_flavour(
    objects: list,
    sharded_db: ShardedDatabase,
    workload: list[RangeQuery],
    config: EngineConfig,
    workers: int,
    repeats: int,
) -> dict:
    single = ImpreciseQueryEngine(point_db=PointDatabase.build(objects), config=config)
    serial = ParallelEngine(point_db=sharded_db, config=config, workers=1)
    pooled = ParallelEngine(point_db=sharded_db, config=config, workers=workers)
    try:
        # Spin-up, measured apart from query time: publish every shard's
        # shared-memory snapshot and wait for the worker processes to report
        # in.  A serving deployment pays this once, before taking traffic.
        started = time.perf_counter()
        pooled.warm()
        pool_spinup_seconds = time.perf_counter() - started
        # Warm-up: checks that all three executors agree before anything is
        # timed.
        reference = single.evaluate_many(workload)
        for contender in (serial, pooled):
            evaluations = contender.evaluate_many(workload)
            for expected, got in zip(reference, evaluations):
                assert expected.probabilities() == got.probabilities(), (
                    "sharded executor diverged from the single-shard engine"
                )
        timings = _time_interleaved(
            {
                "single": lambda: single.evaluate_many(workload),
                "sharded_serial": lambda: serial.evaluate_many(workload),
                "sharded_workers": lambda: pooled.evaluate_many(workload),
            },
            repeats,
        )
        ipc = _measure_ipc(pooled, serial, workload)
    finally:
        pooled.close()
        serial.close()
    queries = len(workload)
    return {
        name: {"seconds": seconds, "queries_per_second": queries / seconds}
        for name, seconds in timings.items()
    } | {
        "routing_speedup": timings["single"] / timings["sharded_serial"],
        "workload_speedup": timings["single"] / timings["sharded_workers"],
        "pool_spinup_seconds": pool_spinup_seconds,
        # Post-clamp worker count: 1 on machines without the cores to pool
        # over, where "sharded_workers" is really the in-process path.
        "workers_effective": pooled.workers,
    } | ipc


def main() -> None:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
    queries = int(os.environ.get("REPRO_BENCH_QUERIES", "150"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "2"))
    shards = int(os.environ.get("REPRO_BENCH_SHARDS", "4"))
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))

    objects = california_points(scale=scale)
    workload = _build_queries(queries)
    sharded_db = ShardedDatabase.build_points(objects, shards)

    closed_form = _measure_flavour(
        objects,
        sharded_db,
        workload,
        EngineConfig(draw_plan="per_oid"),
        workers,
        repeats,
    )
    sampled = _measure_flavour(
        objects,
        sharded_db,
        workload,
        EngineConfig(
            draw_plan="per_oid", probability_method="monte_carlo", monte_carlo_samples=250
        ),
        workers,
        repeats,
    )

    report = {
        "benchmark": "sharded",
        "dataset_scale": scale,
        "objects": len(objects),
        "queries": queries,
        "repeats": repeats,
        "shards": shards,
        "workers": workers,
        "workers_effective": sampled["workers_effective"],
        "cpu_count": os.cpu_count(),
        "closed_form": closed_form,
        "sampled": sampled,
        "workload_speedup": sampled["workload_speedup"],
        # Headline IPC metrics, from the sampled (production-shaped) flavour.
        "pool_spinup_seconds": sampled["pool_spinup_seconds"],
        "ipc_bytes_per_query": sampled["ipc_bytes_per_query"],
        "result_shm_bytes_per_query": sampled["result_shm_bytes_per_query"],
        "pickled_envelope_bytes_per_query": sampled["pickled_envelope_bytes_per_query"],
        "ipc_reduction": sampled["ipc_reduction"],
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
