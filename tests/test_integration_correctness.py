"""Cross-method integration tests.

The reproduction implements the same quantities through several independent
code paths — the definition-based basic method, the duality closed forms, the
Monte-Carlo estimators, threshold pruning, and three different indexes.
These tests check that they all tell the same story on realistic data, which
is the strongest correctness evidence we can get without the original system.
"""

import numpy as np
import pytest

from repro.core.basic import BasicEvaluator
from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase, UncertainDatabase
from repro.core.queries import ImpreciseRangeQuery, RangeQuery
from repro.datasets.synthetic import clustered_points, clustered_rectangles
from repro.datasets.workload import QueryWorkload
from repro.geometry.rect import Rect

SPACE = Rect(0.0, 0.0, 5_000.0, 5_000.0)


@pytest.fixture(scope="module")
def points():
    return clustered_points(400, SPACE, seed=31)


@pytest.fixture(scope="module")
def uncertain():
    return [
        obj.with_catalog()
        for obj in clustered_rectangles(350, SPACE, size_range=(20.0, 150.0), seed=32)
    ]


@pytest.fixture(scope="module")
def workload():
    return QueryWorkload(bounds=SPACE, issuer_half_size=200.0, range_half_size=400.0, seed=77)


class TestEnhancedMatchesBasic:
    """The enhanced evaluation (Section 4) equals the definition (Section 3.3)."""

    def test_ipq_answers_match(self, points, workload):
        engine = ImpreciseQueryEngine(point_db=PointDatabase.build(points))
        basic = BasicEvaluator(issuer_samples=2_500)
        for issuer in workload.issuers(3):
            enhanced, _ = engine.evaluate(RangeQuery.ipq(issuer, workload.spec)).as_tuple()
            query = ImpreciseRangeQuery(issuer=issuer, spec=workload.spec)
            baseline, _ = basic.evaluate_ipq(query, points)
            enhanced_probs = enhanced.probabilities()
            baseline_probs = baseline.probabilities()
            # Identical object sets (up to sampling noise at the boundary)...
            assert enhanced.oids() >= baseline.oids()
            # ...and probabilities agreeing within discretisation error.
            for oid, probability in baseline_probs.items():
                assert enhanced_probs[oid] == pytest.approx(probability, abs=0.05)

    def test_iuq_answers_match(self, uncertain, workload):
        engine = ImpreciseQueryEngine(
            uncertain_db=UncertainDatabase.build(uncertain, index_kind="rtree")
        )
        basic = BasicEvaluator(issuer_samples=2_500)
        for issuer in workload.issuers(3):
            enhanced, _ = engine.evaluate(RangeQuery.iuq(issuer, workload.spec)).as_tuple()
            query = ImpreciseRangeQuery(issuer=issuer, spec=workload.spec)
            baseline, _ = basic.evaluate_iuq(query, uncertain)
            enhanced_probs = enhanced.probabilities()
            for oid, probability in baseline.probabilities().items():
                assert enhanced_probs[oid] == pytest.approx(probability, abs=0.05)


class TestIndexIndependence:
    """Query answers must not depend on which spatial index is used."""

    @pytest.mark.parametrize("index_kind", ["rtree", "grid", "linear"])
    def test_ipq_same_answers_for_all_indexes(self, points, workload, index_kind):
        reference = ImpreciseQueryEngine(point_db=PointDatabase.build(points, index_kind="rtree"))
        other = ImpreciseQueryEngine(point_db=PointDatabase.build(points, index_kind=index_kind))
        issuer = next(workload.issuers(1))
        expected, _ = reference.evaluate(RangeQuery.ipq(issuer, workload.spec)).as_tuple()
        actual, _ = other.evaluate(RangeQuery.ipq(issuer, workload.spec)).as_tuple()
        assert actual.probabilities() == expected.probabilities()

    @pytest.mark.parametrize("index_kind", ["rtree", "pti", "grid", "linear"])
    def test_ciuq_same_answers_for_all_indexes(self, uncertain, workload, index_kind):
        threshold = 0.4
        reference = ImpreciseQueryEngine(
            uncertain_db=UncertainDatabase.build(uncertain, index_kind="rtree"),
            config=EngineConfig(use_p_expanded_query=False, use_pti_pruning=False),
        )
        other = ImpreciseQueryEngine(
            uncertain_db=UncertainDatabase.build(uncertain, index_kind=index_kind)
        )
        issuer = next(workload.issuers(1))
        expected, _ = reference.evaluate(
            RangeQuery.ciuq(issuer, workload.spec, threshold)
        ).as_tuple()
        actual, _ = other.evaluate(RangeQuery.ciuq(issuer, workload.spec, threshold)).as_tuple()
        assert actual.oids() == expected.oids()


class TestThresholdConsistency:
    """Constrained answers are exactly the unconstrained answers above Qp."""

    def test_cipq_answers_nested_in_threshold(self, points, workload):
        engine = ImpreciseQueryEngine(point_db=PointDatabase.build(points))
        issuer = next(workload.issuers(1))
        results = {}
        for threshold in (0.0, 0.2, 0.4, 0.6, 0.8):
            result, _ = engine.evaluate(
                RangeQuery.cipq(issuer, workload.spec, threshold)
            ).as_tuple()
            results[threshold] = result.oids()
        thresholds = sorted(results)
        for low, high in zip(thresholds, thresholds[1:]):
            assert results[high] <= results[low]

    def test_ciuq_probabilities_all_above_threshold(self, uncertain, workload):
        engine = ImpreciseQueryEngine(uncertain_db=UncertainDatabase.build(uncertain))
        issuer = next(workload.issuers(1))
        for threshold in (0.3, 0.7):
            result, _ = engine.evaluate(
                RangeQuery.ciuq(issuer, workload.spec, threshold)
            ).as_tuple()
            assert all(answer.probability >= threshold for answer in result)


class TestMonteCarloConvergence:
    """Sampled evaluation converges to the exact answers as samples grow."""

    def test_ciuq_monte_carlo_close_to_exact(self, uncertain, workload):
        database = UncertainDatabase.build(uncertain)
        exact_engine = ImpreciseQueryEngine(uncertain_db=database)
        sampled_engine = ImpreciseQueryEngine(
            uncertain_db=database,
            config=EngineConfig(probability_method="monte_carlo", monte_carlo_samples=3_000),
        )
        issuer = next(workload.issuers(1))
        exact, _ = exact_engine.evaluate(RangeQuery.iuq(issuer, workload.spec)).as_tuple()
        sampled, _ = sampled_engine.evaluate(RangeQuery.iuq(issuer, workload.spec)).as_tuple()
        exact_probs = exact.probabilities()
        matched = 0
        for oid, probability in sampled.probabilities().items():
            if oid in exact_probs:
                assert probability == pytest.approx(exact_probs[oid], abs=0.06)
                matched += 1
        assert matched > 0


class TestDeterminism:
    """Evaluations over the same data and seeds are fully reproducible."""

    def test_engine_results_deterministic(self, points, uncertain, workload):
        def run():
            engine = ImpreciseQueryEngine(
                point_db=PointDatabase.build(points),
                uncertain_db=UncertainDatabase.build(uncertain),
                config=EngineConfig(rng_seed=5),
            )
            issuer = next(workload.issuers(1))
            ipq, _ = engine.evaluate(RangeQuery.ipq(issuer, workload.spec)).as_tuple()
            ciuq, _ = engine.evaluate(RangeQuery.ciuq(issuer, workload.spec, 0.5)).as_tuple()
            return ipq.probabilities(), ciuq.probabilities()

        assert run() == run()

    def test_workload_rng_independent_of_numpy_global_state(self, workload):
        first = [issuer.region for issuer in workload.issuers(3)]
        np.random.seed(0)
        np.random.random(100)
        second = [issuer.region for issuer in workload.issuers(3)]
        assert first == second
