"""Unit tests for the continuous-query subscription registry.

Covers the subscription lifecycle, JOIN/LEAVE/SCORE_CHANGE delta emission
with trigger/epoch attribution, the registry-wide delta ordering, the
affected-only selectivity proofs (serial candidate windows and sharded
scope tokens), and :func:`repro.core.continuous.replay_deltas`.
"""

from __future__ import annotations

import pytest

from repro.core.continuous import (
    AnswerDelta,
    DeltaKind,
    SubscriptionRegistry,
    replay_deltas,
)
from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.parallel import ParallelEngine
from repro.core.queries import NearestNeighborQuery, RangeQuery, RangeQuerySpec
from repro.core.sharding import ShardedDatabase
from repro.core.updates import UpdateBatch
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.region import PointObject, UncertainObject


def _issuer(oid: int, x: float, y: float, half: float = 50.0) -> UncertainObject:
    return UncertainObject.uniform(oid, Rect.from_center(Point(x, y), half, half))


def _watch(x: float, y: float, half_size: float = 200.0) -> RangeQuery:
    """A standing IPQ geofence centred at (x, y)."""
    return RangeQuery.ipq(_issuer(900, x, y), RangeQuerySpec.square(half_size))


def _points() -> list[PointObject]:
    """A near cluster around (500, 500) and a far one around (9000, 9000)."""
    return [
        PointObject.at(1, 450.0, 450.0),
        PointObject.at(2, 500.0, 500.0),
        PointObject.at(3, 550.0, 550.0),
        PointObject.at(11, 8_900.0, 9_000.0),
        PointObject.at(12, 9_000.0, 9_100.0),
        PointObject.at(13, 9_100.0, 8_950.0),
    ]


def _registry(database=None, **kwargs) -> SubscriptionRegistry:
    if database is None:
        database = PointDatabase.build(_points())
    return SubscriptionRegistry(point_db=database, config=EngineConfig(), **kwargs)


def _cold_answer(database, query) -> dict[int, float]:
    """A from-scratch evaluation of ``query`` over the database's live state."""
    if isinstance(database, ShardedDatabase):
        engine = ParallelEngine(
            point_db=database, config=EngineConfig(draw_plan="query_keyed"), workers=1
        )
    else:
        engine = ImpreciseQueryEngine(
            point_db=database, config=EngineConfig(draw_plan="query_keyed")
        )
    return engine.evaluate(query).probabilities()


class TestRegistryConstruction:
    def test_requires_at_least_one_database(self):
        with pytest.raises(ValueError, match="at least one database"):
            SubscriptionRegistry(config=EngineConfig())

    def test_rejects_mixed_sharded_and_unsharded(self, small_uncertain):
        from repro.core.engine import UncertainDatabase

        with pytest.raises(ValueError, match="cannot mix sharded and unsharded"):
            SubscriptionRegistry(
                point_db=ShardedDatabase.build_points(_points(), 2),
                uncertain_db=UncertainDatabase.build(small_uncertain),
                config=EngineConfig(),
            )

    def test_forces_content_keyed_draws(self):
        registry = _registry()
        assert registry.config.draw_plan == "query_keyed"
        explicit = SubscriptionRegistry(
            point_db=PointDatabase.build(_points()),
            config=EngineConfig(draw_plan="query_keyed"),
        )
        assert explicit.config.draw_plan == "query_keyed"

    def test_subscribe_rejects_non_query_objects(self):
        with pytest.raises(TypeError, match="RangeQuery or NearestNeighborQuery"):
            _registry().subscribe("not a query")

    def test_subscribe_rejects_queries_without_their_database(self):
        with pytest.raises(RuntimeError, match="no uncertain-object database"):
            _registry().subscribe(
                RangeQuery.iuq(_issuer(901, 500.0, 500.0), RangeQuerySpec.square(200.0))
            )


class TestDeltaEmission:
    def test_initial_answer_matches_cold_evaluation(self):
        database = PointDatabase.build(_points())
        subscription = _registry(database).subscribe(_watch(500.0, 500.0))
        assert subscription.answer() == _cold_answer(database, subscription.query)
        assert subscription.initial_answer() == subscription.answer()

    def test_insert_into_window_emits_join(self):
        database = PointDatabase.build(_points())
        subscription = _registry(database).subscribe(_watch(500.0, 500.0))
        database.insert(PointObject.at(21, 520.0, 480.0))
        (delta,) = subscription.poll()
        assert delta.kind is DeltaKind.JOIN
        assert delta.oid == 21
        assert delta.probability is not None and delta.previous_probability is None
        assert delta.op is not None and delta.op.action == "insert"
        assert delta.epoch == ("points", database.uid, database.epoch)
        assert 21 in subscription.answer()

    def test_delete_emits_leave(self):
        database = PointDatabase.build(_points())
        subscription = _registry(database).subscribe(_watch(500.0, 500.0))
        assert 2 in subscription.answer()
        database.delete(2)
        (delta,) = subscription.poll()
        assert delta.kind is DeltaKind.LEAVE
        assert delta.oid == 2
        assert delta.probability is None and delta.previous_probability is not None
        assert delta.op is not None and delta.op.action == "delete"
        assert 2 not in subscription.answer()

    def test_partial_overlap_move_emits_score_change(self):
        # Issuer spans x in [450, 550]; a point at x=680 is in range only for
        # issuer positions with x >= 480 (p = 0.7); at x=700 only x >= 500
        # (p = 0.5) -- the same oid stays in the answer with a new score.
        database = PointDatabase.build(_points() + [PointObject.at(31, 680.0, 500.0)])
        subscription = _registry(database).subscribe(_watch(500.0, 500.0))
        before = subscription.answer()[31]
        assert 0.0 < before < 1.0
        database.move(31, x=700.0, y=500.0)
        (delta,) = subscription.poll()
        assert delta.kind is DeltaKind.SCORE_CHANGE
        assert delta.previous_probability == before
        assert delta.probability == subscription.answer()[31] != before
        assert delta.op is not None and delta.op.action == "move"

    def test_move_out_of_window_emits_leave(self):
        database = PointDatabase.build(_points())
        subscription = _registry(database).subscribe(_watch(500.0, 500.0))
        database.move(3, x=7_000.0, y=7_000.0)
        kinds = {(delta.oid, delta.kind) for delta in subscription.poll()}
        assert (3, DeltaKind.LEAVE) in kinds

    def test_registry_poll_merges_streams_in_sequence_order(self):
        database = PointDatabase.build(_points())
        registry = _registry(database)
        near = registry.subscribe(_watch(500.0, 500.0))
        far = registry.subscribe(_watch(9_000.0, 9_000.0))
        database.insert(PointObject.at(41, 480.0, 520.0))
        database.insert(PointObject.at(42, 9_020.0, 9_020.0))
        merged = registry.poll()
        assert [delta.sequence for delta in merged] == sorted(
            delta.sequence for delta in merged
        )
        assert {delta.subscription_id for delta in merged} == {near.id, far.id}
        assert len(set(delta.sequence for delta in merged)) == len(merged)
        # Drained at the registry: the per-subscription queues are now empty.
        assert near.poll() == [] and far.poll() == []


class TestSelectivity:
    def test_far_subscription_is_skipped_with_untouched_answer(self):
        database = PointDatabase.build(_points())
        registry = _registry(database)
        near = registry.subscribe(_watch(500.0, 500.0))
        far = registry.subscribe(_watch(9_000.0, 9_000.0))
        far_before = far.answer()
        database.insert(PointObject.at(51, 510.0, 490.0))
        assert len(near.poll()) == 1
        assert far.poll() == [] and far.answer() == far_before
        stats = registry.stats()
        assert stats["reevaluations"] == 1 and stats["skipped"] == 1

    def test_one_reevaluation_per_pump_regardless_of_batch_size(self):
        database = PointDatabase.build(_points())
        registry = _registry(database)
        subscription = registry.subscribe(_watch(500.0, 500.0))
        for step in range(4):  # four buffered in-window mutations, one pump
            database.move(1, x=450.0 + 10.0 * step, y=450.0)
        stats = registry.stats()
        assert stats["rounds"] == 1 and stats["reevaluations"] == 1
        assert subscription.answer() == _cold_answer(database, subscription.query)

    def test_nearest_neighbor_reevaluates_on_any_point_mutation(self):
        database = PointDatabase.build(_points())
        registry = _registry(database)
        subscription = registry.subscribe(
            NearestNeighborQuery(issuer=_issuer(902, 500.0, 500.0), samples=32)
        )
        assert subscription.window is None
        database.insert(PointObject.at(61, 9_500.0, 200.0))  # far corner
        stats = registry.stats()
        assert stats["reevaluations"] == 1 and stats["skipped"] == 0
        assert subscription.answer() == _cold_answer(database, subscription.query)

    def test_mutating_the_other_database_skips_point_subscriptions(self, small_uncertain):
        from repro.core.engine import UncertainDatabase
        from repro.uncertainty.pdf import UniformPdf

        uncertain = UncertainDatabase.build(small_uncertain)
        registry = SubscriptionRegistry(
            point_db=PointDatabase.build(_points()),
            uncertain_db=uncertain,
            config=EngineConfig(),
        )
        registry.subscribe(_watch(500.0, 500.0))
        uncertain.move(1, UniformPdf(Rect.from_center(Point(500.0, 500.0), 40.0, 40.0)))
        stats = registry.stats()
        assert stats["reevaluations"] == 0 and stats["skipped"] == 1


class TestLifecycle:
    def test_unsubscribe_discards_pending_deltas(self):
        database = PointDatabase.build(_points())
        registry = _registry(database)
        subscription = registry.subscribe(_watch(500.0, 500.0))
        database.insert(PointObject.at(71, 500.0, 520.0))
        registry.pump()  # queue the JOIN, do not drain it
        registry.unsubscribe(subscription)
        assert not subscription.active
        assert subscription.poll() == []
        assert registry.poll() == []
        assert len(registry) == 0

    def test_unsubscribe_by_id_and_unknown_id(self):
        registry = _registry()
        subscription = registry.subscribe(_watch(500.0, 500.0))
        registry.unsubscribe(subscription.id)
        with pytest.raises(KeyError, match="no active subscription"):
            registry.unsubscribe(subscription.id)

    def test_close_detaches_from_the_databases(self):
        database = PointDatabase.build(_points())
        registry = _registry(database)
        subscription = registry.subscribe(_watch(500.0, 500.0))
        before = subscription.answer()
        registry.close()
        registry.close()  # idempotent
        database.insert(PointObject.at(81, 500.0, 480.0))
        stats = registry.stats()
        assert stats["rounds"] == 0 and subscription.answer() == before


class TestReplay:
    def test_replay_reconstructs_the_maintained_answer(self):
        database = PointDatabase.build(_points())
        subscription = _registry(database).subscribe(_watch(500.0, 500.0))
        deltas: list[AnswerDelta] = []
        database.insert(PointObject.at(91, 520.0, 520.0))
        deltas.extend(subscription.poll())
        database.move(91, x=680.0, y=500.0)  # partial overlap: score change
        database.delete(1)
        deltas.extend(subscription.poll())
        database.move(2, x=3_000.0, y=3_000.0)  # leaves the window
        deltas.extend(subscription.poll())
        assert {delta.kind for delta in deltas} == {
            DeltaKind.JOIN,
            DeltaKind.LEAVE,
            DeltaKind.SCORE_CHANGE,
        }
        final = subscription.answer()
        assert replay_deltas(subscription.initial_answer(), deltas) == final
        assert final == _cold_answer(database, subscription.query)

    def test_replay_of_empty_stream_is_identity(self):
        assert replay_deltas({1: 0.5}, []) == {1: 0.5}


class TestShardedRegistry:
    def test_mutation_in_unrouted_shard_is_skipped_by_scope_token(self):
        database = ShardedDatabase.build_points(_points(), 2)
        registry = _registry(database)
        subscription = registry.subscribe(_watch(500.0, 500.0))
        database.insert(PointObject.at(101, 9_050.0, 9_050.0))  # far shard
        stats = registry.stats()
        assert stats["reevaluations"] == 0 and stats["skipped"] == 1
        database.insert(PointObject.at(102, 500.0, 540.0))  # routed shard
        assert any(delta.oid == 102 for delta in subscription.poll())
        stats = registry.stats()
        assert stats["reevaluations"] == 1

    def test_cross_shard_move_into_window_emits_join(self):
        database = ShardedDatabase.build_points(_points(), 2)
        subscription = _registry(database).subscribe(_watch(500.0, 500.0))
        database.move(11, x=490.0, y=510.0)  # from the far cluster into the fence
        deltas = subscription.poll()
        assert any(
            delta.oid == 11 and delta.kind is DeltaKind.JOIN for delta in deltas
        )
        assert subscription.answer() == _cold_answer(database, subscription.query)

    def test_answer_survives_a_hot_shard_resplit(self):
        database = ShardedDatabase.build_points(_points(), 2, hot_threshold=8)
        subscription = _registry(database).subscribe(_watch(500.0, 500.0))
        k_before = database.k
        batch = UpdateBatch()
        for offset in range(10):
            batch.insert(PointObject.at(200 + offset, 420.0 + offset * 20.0, 500.0))
        for op in batch:
            from repro.core.updates import apply_update_op

            apply_update_op(database, op)
        assert database.k > k_before  # the watched shard actually re-split
        assert subscription.answer() == _cold_answer(database, subscription.query)
        assert replay_deltas(
            subscription.initial_answer(), subscription.poll()
        ) == subscription.answer()
