"""An R-tree (Guttman, 1984) with quadratic split and STR bulk loading.

The paper uses the Spatial Index Library's R-tree with a 4 KB node size as
its disk-based index and measures query cost in terms of response time.  This
implementation mirrors the structure of that index — a height-balanced tree of
fixed-capacity nodes, capacity derived from a page size and a per-entry byte
cost — and counts node accesses so that experiments can report I/O costs that
do not depend on the host machine.

Two construction paths are offered:

* incremental :meth:`RTree.insert` using Guttman's least-enlargement descent
  and quadratic node split, and
* :meth:`RTree.bulk_load` using Sort-Tile-Recursive packing, which is what the
  experiment harness uses to index the 50–60 K object datasets quickly.
"""

from __future__ import annotations
from repro.errors import EngineStateError, MissingItemError, SpatialIndexError

import heapq
import math
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import bulk_pairs, items_match
from repro.index.iostats import IOStatistics

#: Modelled byte cost of one node entry: a 4-double MBR (32 bytes) plus a
#: child pointer / record id (8 bytes).  With the paper's 4 KB pages this
#: yields a fan-out of ~100.
DEFAULT_ENTRY_BYTES = 40
DEFAULT_PAGE_BYTES = 4096


def _bounds_area(bounds: np.ndarray) -> float:
    """Area of one ``(xmin, ymin, xmax, ymax)`` row (rows are never empty)."""
    return float((bounds[2] - bounds[0]) * (bounds[3] - bounds[1]))


def _bounds_enlargements(group: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Area growth of a group bounds row to include each of ``rows`` (K, 4)."""
    width = np.maximum(group[2], rows[:, 2]) - np.minimum(group[0], rows[:, 0])
    height = np.maximum(group[3], rows[:, 3]) - np.minimum(group[1], rows[:, 1])
    return width * height - _bounds_area(group)


class _Entry:
    """One slot of a node: an MBR plus either a child node or a stored item."""

    __slots__ = ("mbr", "child", "item")

    def __init__(self, mbr: Rect, child: "_Node | None" = None, item: Any = None) -> None:
        self.mbr = mbr
        self.child = child
        self.item = item


class _Node:
    """A fixed-capacity R-tree node (leaf or internal)."""

    __slots__ = ("is_leaf", "entries", "aug")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []
        # Optional augmentation payload maintained by subclasses (e.g. the
        # PTI's per-probability-level bounding rectangles).
        self.aug: dict[float, Rect] | None = None

    def mbr(self) -> Rect:
        """Minimum bounding rectangle of all entries in this node."""
        return Rect.bounding([entry.mbr for entry in self.entries])


class RTree:
    """A height-balanced R-tree over arbitrary items keyed by their MBR."""

    def __init__(
        self,
        max_entries: int | None = None,
        min_entries: int | None = None,
        *,
        page_size: int = DEFAULT_PAGE_BYTES,
        entry_size: int = DEFAULT_ENTRY_BYTES,
        split_algorithm: str = "quadratic",
    ) -> None:
        if max_entries is None:
            max_entries = max(4, page_size // entry_size)
        if max_entries < 2:
            raise SpatialIndexError("max_entries must be at least 2")
        if min_entries is None:
            min_entries = max(2, (max_entries * 2) // 5)
        if not 1 <= min_entries <= max_entries // 2:
            raise SpatialIndexError(
                f"min_entries must lie in [1, max_entries // 2]; "
                f"got min={min_entries}, max={max_entries}"
            )
        if split_algorithm not in ("quadratic", "linear"):
            raise SpatialIndexError(
                f"split_algorithm must be 'quadratic' or 'linear', got {split_algorithm!r}"
            )
        self._max_entries = max_entries
        self._min_entries = min_entries
        self._split_algorithm = split_algorithm
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._stats = IOStatistics()
        self._on_node_updated(self._root)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> IOStatistics:
        """Access counters accumulated by this index."""
        return self._stats

    @property
    def max_entries(self) -> int:
        """Maximum node fan-out."""
        return self._max_entries

    @property
    def min_entries(self) -> int:
        """Minimum fill of non-root nodes."""
        return self._min_entries

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels in the tree (1 for a lone leaf root)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            height += 1
        return height

    @property
    def node_count(self) -> int:
        """Total number of nodes (pages) in the tree."""
        return sum(1 for _ in self._iter_nodes())

    def bounds(self) -> Rect:
        """Bounding rectangle of the entire indexed dataset."""
        return self._root.mbr()

    def _iter_nodes(self) -> Iterable[_Node]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)  # type: ignore[misc]

    def items(self) -> Iterable[Any]:
        """Iterate over every stored item (no particular order)."""
        for node in self._iter_nodes():
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.item

    # ------------------------------------------------------------------ #
    # Subclass hook
    # ------------------------------------------------------------------ #
    def _on_node_updated(self, node: _Node) -> None:
        """Called whenever a node's entry list changes.

        The base R-tree keeps no per-node augmentation; the PTI subclass
        overrides this to maintain per-probability-level bounds.
        """

    # ------------------------------------------------------------------ #
    # Insertion (Guttman)
    # ------------------------------------------------------------------ #
    def insert(self, mbr: Rect, item: Any) -> None:
        """Insert ``item`` with bounding rectangle ``mbr``."""
        if mbr.is_empty:
            raise SpatialIndexError("cannot index an empty rectangle")
        entry = _Entry(mbr=mbr, item=item)
        self._insert_entry(entry, target_leaf=True)
        self._size += 1

    def _insert_entry(self, entry: _Entry, *, target_leaf: bool) -> None:
        path = self._choose_path(entry.mbr, target_leaf=target_leaf)
        node = path[-1]
        node.entries.append(entry)
        self._on_node_updated(node)
        self._adjust_path(path)

    def _choose_path(self, mbr: Rect, *, target_leaf: bool) -> list[_Node]:
        """Descend by least enlargement, returning the root-to-target path."""
        path = [self._root]
        node = self._root
        while not node.is_leaf:
            if target_leaf is False and self._node_level(node) == 1:
                break
            best: _Entry | None = None
            best_enlargement = math.inf
            best_area = math.inf
            for child_entry in node.entries:
                enlargement = child_entry.mbr.enlargement_to_include(mbr)
                area = child_entry.mbr.area
                if enlargement < best_enlargement or (
                    enlargement == best_enlargement and area < best_area
                ):
                    best = child_entry
                    best_enlargement = enlargement
                    best_area = area
            assert best is not None and best.child is not None
            node = best.child
            path.append(node)
        return path

    def _node_level(self, node: _Node) -> int:
        """Level of ``node`` counted from the leaves (leaves are level 0)."""
        level = 0
        current = node
        while not current.is_leaf:
            current = current.entries[0].child  # type: ignore[assignment]
            level += 1
        return level

    def _adjust_path(self, path: list[_Node]) -> None:
        """Propagate MBR updates and splits from the insertion node upwards."""
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            overflow: _Node | None = None
            if len(node.entries) > self._max_entries:
                overflow = self._split_node(node)
            if depth == 0:
                if overflow is not None:
                    self._grow_root(node, overflow)
                return
            parent = path[depth - 1]
            self._refresh_child_entry(parent, node)
            if overflow is not None:
                parent.entries.append(_Entry(mbr=overflow.mbr(), child=overflow))
            self._on_node_updated(parent)

    def _refresh_child_entry(self, parent: _Node, child: _Node) -> None:
        for entry in parent.entries:
            if entry.child is child:
                entry.mbr = child.mbr()
                return
        raise EngineStateError("child node not found in parent during adjustment")

    def _grow_root(self, old_root: _Node, sibling: _Node) -> None:
        new_root = _Node(is_leaf=False)
        new_root.entries.append(_Entry(mbr=old_root.mbr(), child=old_root))
        new_root.entries.append(_Entry(mbr=sibling.mbr(), child=sibling))
        self._root = new_root
        self._on_node_updated(new_root)

    def _split_node(self, node: _Node) -> _Node:
        """Distribute an overflowing node's entries over itself and a new sibling.

        Seed selection follows the configured split algorithm (Guttman's
        quadratic split by default, the cheaper linear split as an
        alternative); the remaining entries are then distributed with the
        standard least-enlargement rule and minimum-fill safeguards.

        The selection arithmetic runs over a NumPy bounds table: with the
        paper's ~100-entry nodes the quadratic seed pick alone is ~5,000
        rectangle unions, which live object streams (where splits are a hot
        path, unlike bulk loading) cannot afford per-method-call.  Decisions
        — including tie-breaking — are identical to the scalar formulation.
        """
        entries = node.entries
        n = len(entries)
        bounds = np.empty((n, 4), dtype=float)
        for row, entry in enumerate(entries):
            mbr = entry.mbr
            bounds[row, 0] = mbr.xmin
            bounds[row, 1] = mbr.ymin
            bounds[row, 2] = mbr.xmax
            bounds[row, 3] = mbr.ymax
        if self._split_algorithm == "linear":
            seed_a, seed_b = self._pick_seeds_linear(entries)
        else:
            seed_a, seed_b = self._pick_seeds_quadratic(bounds)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        remaining = [row for row in range(n) if row not in (seed_a, seed_b)]
        mbr_a = bounds[seed_a].copy()
        mbr_b = bounds[seed_b].copy()

        while remaining:
            # Force assignment when one group must take all remaining entries
            # to reach the minimum fill.
            if len(group_a) + len(remaining) == self._min_entries:
                group_a.extend(entries[row] for row in remaining)
                break
            if len(group_b) + len(remaining) == self._min_entries:
                group_b.extend(entries[row] for row in remaining)
                break
            rows = bounds[remaining]
            grow_a = _bounds_enlargements(mbr_a, rows)
            grow_b = _bounds_enlargements(mbr_b, rows)
            pick = int(np.argmax(np.abs(grow_a - grow_b)))
            if grow_a[pick] < grow_b[pick]:
                prefer_a = True
            elif grow_b[pick] < grow_a[pick]:
                prefer_a = False
            else:
                prefer_a = _bounds_area(mbr_a) <= _bounds_area(mbr_b)
            row = remaining.pop(pick)
            if prefer_a:
                group_a.append(entries[row])
                np.minimum(mbr_a[:2], bounds[row, :2], out=mbr_a[:2])
                np.maximum(mbr_a[2:], bounds[row, 2:], out=mbr_a[2:])
            else:
                group_b.append(entries[row])
                np.minimum(mbr_b[:2], bounds[row, :2], out=mbr_b[:2])
                np.maximum(mbr_b[2:], bounds[row, 2:], out=mbr_b[2:])

        node.entries = group_a
        sibling = _Node(is_leaf=node.is_leaf)
        sibling.entries = group_b
        self._on_node_updated(node)
        self._on_node_updated(sibling)
        return sibling

    @staticmethod
    def _pick_seeds_linear(entries: Sequence[_Entry]) -> tuple[int, int]:
        """Linear-split seed selection (Guttman's LinearPickSeeds).

        Along each axis, find the entry with the highest low side and the one
        with the lowest high side; normalise their separation by the extent of
        all entries along that axis and keep the pair with the greatest
        normalised separation.
        """
        best_pair = (0, 1)
        best_separation = -math.inf
        for axis in ("x", "y"):
            if axis == "x":
                lows = [entry.mbr.xmin for entry in entries]
                highs = [entry.mbr.xmax for entry in entries]
            else:
                lows = [entry.mbr.ymin for entry in entries]
                highs = [entry.mbr.ymax for entry in entries]
            highest_low_index = max(range(len(entries)), key=lambda i: lows[i])
            lowest_high_index = min(range(len(entries)), key=lambda i: highs[i])
            if highest_low_index == lowest_high_index:
                continue
            extent = max(highs) - min(lows)
            if extent <= 0.0:
                continue
            separation = (lows[highest_low_index] - highs[lowest_high_index]) / extent
            if separation > best_separation:
                best_separation = separation
                best_pair = (
                    min(highest_low_index, lowest_high_index),
                    max(highest_low_index, lowest_high_index),
                )
        return best_pair

    @staticmethod
    def _pick_seeds_quadratic(bounds: np.ndarray) -> tuple[int, int]:
        """Choose the pair of entries wasting the most area if grouped together.

        Guttman's quadratic PickSeeds over the ``(N, 4)`` bounds table: the
        full waste matrix is computed with outer min/max broadcasts, and the
        row-major argmax over the upper triangle reproduces the scalar
        double loop's first-maximum tie-breaking exactly.
        """
        xmin, ymin, xmax, ymax = bounds[:, 0], bounds[:, 1], bounds[:, 2], bounds[:, 3]
        union_w = np.maximum.outer(xmax, xmax) - np.minimum.outer(xmin, xmin)
        union_h = np.maximum.outer(ymax, ymax) - np.minimum.outer(ymin, ymin)
        areas = (xmax - xmin) * (ymax - ymin)
        waste = union_w * union_h - areas[:, None] - areas[None, :]
        waste[np.tril_indices(bounds.shape[0])] = -np.inf
        flat = int(np.argmax(waste))
        return flat // bounds.shape[0], flat % bounds.shape[0]

    # ------------------------------------------------------------------ #
    # Deletion (Guttman's condense-tree)
    # ------------------------------------------------------------------ #
    def delete(self, mbr: Rect, item: Any) -> None:
        """Remove ``item``, located by the bounding rectangle it was stored under.

        Follows Guttman's algorithm: find the leaf holding the entry, remove
        it, then *condense* the tree — dissolve nodes that fell below the
        minimum fill, re-insert the leaf items of every dissolved subtree,
        and collapse a single-child root.  Raises ``KeyError`` when no entry
        matches ``(mbr, item)``.
        """
        if mbr.is_empty:
            raise MissingItemError("cannot locate an item under an empty rectangle")
        found = self._find_leaf(self._root, [], mbr, item)
        if found is None:
            raise MissingItemError(f"item with MBR {mbr.as_tuple()} is not stored in this tree")
        path, entry_index = found
        leaf = path[-1]
        del leaf.entries[entry_index]
        self._on_node_updated(leaf)
        self._size -= 1
        self._condense(path)

    def update(
        self, old_mbr: Rect, new_mbr: Rect, item: Any, *, replacement: Any = None
    ) -> None:
        """Move ``item`` from ``old_mbr`` to ``new_mbr`` (delete + re-insert).

        ``replacement`` substitutes the stored payload — the moved object is
        usually a fresh immutable wrapper carrying the same oid.
        """
        self.delete(old_mbr, item)
        self.insert(new_mbr, replacement if replacement is not None else item)

    def _find_leaf(
        self, node: _Node, path: list[_Node], mbr: Rect, item: Any
    ) -> tuple[list[_Node], int] | None:
        """Depth-first search for the leaf entry storing ``(mbr, item)``.

        Returns the root-to-leaf path plus the entry's index in the leaf, or
        ``None`` when no entry matches.  Descent is pruned to subtrees whose
        MBR contains ``mbr``, mirroring how the entry got there.
        """
        path.append(node)
        if node.is_leaf:
            for entry_index, entry in enumerate(node.entries):
                if entry.mbr == mbr and items_match(entry.item, item):
                    return path, entry_index
        else:
            for entry in node.entries:
                if entry.child is not None and entry.mbr.contains_rect(mbr):
                    found = self._find_leaf(entry.child, path, mbr, item)
                    if found is not None:
                        return found
        path.pop()
        return None

    def _condense(self, path: list[_Node]) -> None:
        """Dissolve underfull nodes along ``path`` and re-insert their items."""
        orphans: list[_Entry] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self._min_entries:
                parent.entries = [
                    entry for entry in parent.entries if entry.child is not node
                ]
                orphans.extend(self._collect_leaf_entries(node))
            else:
                self._on_node_updated(node)
                self._refresh_child_entry(parent, node)
        self._on_node_updated(path[0])
        while not self._root.is_leaf:
            if len(self._root.entries) == 1:
                self._root = self._root.entries[0].child  # type: ignore[assignment]
            elif not self._root.entries:
                self._root = _Node(is_leaf=True)
                self._on_node_updated(self._root)
                break
            else:
                break
        for entry in orphans:
            self._insert_entry(_Entry(mbr=entry.mbr, item=entry.item), target_leaf=True)

    @staticmethod
    def _collect_leaf_entries(node: _Node) -> list[_Entry]:
        """All leaf-level entries stored beneath ``node`` (node included)."""
        collected: list[_Entry] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                collected.extend(current.entries)
            else:
                stack.extend(entry.child for entry in current.entries)  # type: ignore[misc]
        return collected

    # ------------------------------------------------------------------ #
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------ #
    @classmethod
    def bulk_load(
        cls,
        items: Iterable[Any],
        *,
        max_entries: int | None = None,
        min_entries: int | None = None,
        page_size: int = DEFAULT_PAGE_BYTES,
        entry_size: int = DEFAULT_ENTRY_BYTES,
    ) -> "RTree":
        """Build a packed R-tree from items exposing an ``mbr`` attribute."""
        pairs = bulk_pairs(items)
        if not pairs:
            raise SpatialIndexError("cannot index an empty collection")
        tree = cls(
            max_entries=max_entries,
            min_entries=min_entries,
            page_size=page_size,
            entry_size=entry_size,
        )
        tree._bulk_load_pairs(pairs)
        return tree

    def _bulk_load_pairs(self, pairs: list[tuple[Rect, Any]]) -> None:
        if self._size:
            raise EngineStateError("bulk loading requires an empty tree")
        if not pairs:
            return
        leaf_entries = [_Entry(mbr=mbr, item=item) for mbr, item in pairs]
        nodes = self._pack_level(leaf_entries, is_leaf=True)
        while len(nodes) > 1:
            upper_entries = [_Entry(mbr=node.mbr(), child=node) for node in nodes]
            nodes = self._pack_level(upper_entries, is_leaf=False)
        self._root = nodes[0]
        self._size = len(pairs)

    def _pack_level(self, entries: list[_Entry], *, is_leaf: bool) -> list[_Node]:
        """Pack a list of entries into nodes using Sort-Tile-Recursive order."""
        capacity = self._max_entries
        n = len(entries)
        node_estimate = math.ceil(n / capacity)
        slice_count = max(1, math.ceil(math.sqrt(node_estimate)))
        slice_size = slice_count * capacity

        by_x = sorted(entries, key=lambda e: (e.mbr.center.x, e.mbr.center.y))
        nodes: list[_Node] = []
        for start in range(0, n, slice_size):
            chunk = sorted(
                by_x[start : start + slice_size],
                key=lambda e: (e.mbr.center.y, e.mbr.center.x),
            )
            for node_start in range(0, len(chunk), capacity):
                node = _Node(is_leaf=is_leaf)
                node.entries = chunk[node_start : node_start + capacity]
                self._on_node_updated(node)
                nodes.append(node)
        return nodes

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def range_search(self, query: Rect) -> list[Any]:
        """Return every stored item whose MBR intersects ``query``."""
        results: list[Any] = []
        if query.is_empty or self._size == 0:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            self._stats.record_node(is_leaf=node.is_leaf)
            self._stats.record_entries(len(node.entries))
            for entry in node.entries:
                if not entry.mbr.overlaps(query):
                    continue
                if node.is_leaf:
                    results.append(entry.item)
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        self._stats.record_results(len(results))
        return results

    def range_search_filtered(
        self,
        query: Rect,
        *,
        node_filter: Callable[[_Entry], bool] | None = None,
        entry_filter: Callable[[_Entry], bool] | None = None,
    ) -> list[Any]:
        """Range search with extra subtree/entry pruning predicates.

        ``node_filter`` is consulted with the *internal entry* (whose ``child``
        is the subtree root and whose ``mbr`` is the subtree's bounding box)
        before descending, in addition to the MBR overlap test;
        ``entry_filter`` is consulted with the leaf entry before returning its
        item.  Both default to accepting everything.  This is the extension
        point used by the Probability Threshold Index.
        """
        results: list[Any] = []
        if query.is_empty or self._size == 0:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            self._stats.record_node(is_leaf=node.is_leaf)
            self._stats.record_entries(len(node.entries))
            for entry in node.entries:
                if not entry.mbr.overlaps(query):
                    continue
                if node.is_leaf:
                    if entry_filter is None or entry_filter(entry):
                        results.append(entry.item)
                else:
                    assert entry.child is not None
                    if node_filter is None or node_filter(entry):
                        stack.append(entry.child)
        self._stats.record_results(len(results))
        return results

    def nearest_neighbors(self, point: Point, k: int = 1) -> list[Any]:
        """Best-first k-nearest-neighbour search by MBR distance.

        Provided for the imprecise nearest-neighbour extension; not used by
        the range-query experiments of the paper.
        """
        if k <= 0:
            raise SpatialIndexError(f"k must be positive, got {k}")
        if self._size == 0:
            return []
        counter = 0
        heap: list[tuple[float, int, _Node | None, _Entry | None]] = []
        heapq.heappush(heap, (0.0, counter, self._root, None))
        results: list[Any] = []
        while heap and len(results) < k:
            _, __, node, entry = heapq.heappop(heap)
            if node is not None:
                self._stats.record_node(is_leaf=node.is_leaf)
                self._stats.record_entries(len(node.entries))
                for child_entry in node.entries:
                    distance = child_entry.mbr.min_distance_to_point(point)
                    counter += 1
                    if node.is_leaf:
                        heapq.heappush(heap, (distance, counter, None, child_entry))
                    else:
                        heapq.heappush(heap, (distance, counter, child_entry.child, None))
            else:
                assert entry is not None
                results.append(entry.item)
        self._stats.record_results(len(results))
        return results

    # ------------------------------------------------------------------ #
    # Structural validation (used by the test suite)
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` when any structural invariant is violated.

        Checks performed: every child MBR is contained in its parent entry's
        MBR, all leaves are at the same depth, and every non-root node holds
        at least ``min_entries`` entries (bulk-loaded trees are exempted from
        the minimum-fill check because STR packs greedily).
        """
        if self._size == 0:
            assert self._root.is_leaf and not self._root.entries
            return
        leaf_depths: set[int] = set()

        def visit(node: _Node, depth: int, is_root: bool) -> int:
            count = 0
            if node.is_leaf:
                leaf_depths.add(depth)
                return len(node.entries)
            assert node.entries, "internal node must have children"
            for entry in node.entries:
                child = entry.child
                assert child is not None, "internal entry without a child"
                assert entry.mbr.contains_rect(child.mbr()), (
                    "parent entry MBR does not cover its child node"
                )
                count += visit(child, depth + 1, False)
            if not is_root:
                assert len(node.entries) <= self._max_entries
            return count

        total = visit(self._root, 0, True)
        assert total == self._size, f"item count mismatch: {total} != {self._size}"
        assert len(leaf_depths) == 1, f"leaves at different depths: {leaf_depths}"
