"""Tests for the fluent Session facade."""

import pytest

from repro.core.engine import EngineConfig, ImpreciseQueryEngine
from repro.core.queries import Evaluation, NearestNeighborQuery, RangeQuery
from repro.core.session import Session
from repro.datasets.workload import QueryWorkload

from tests.conftest import TEST_SPACE


@pytest.fixture()
def session(small_points, small_uncertain) -> Session:
    return Session.from_objects(points=small_points, uncertain=small_uncertain)


class TestConstruction:
    def test_from_objects_builds_both_databases(self, session, small_points, small_uncertain):
        assert session.point_db is not None
        assert session.uncertain_db is not None
        assert len(session.point_db) == len(small_points)
        assert len(session.uncertain_db) == len(small_uncertain)
        assert session.point_db.kind == "rtree"
        assert session.uncertain_db.kind == "pti"

    def test_from_objects_honours_index_kinds(self, small_points, small_uncertain):
        session = Session.from_objects(
            points=small_points,
            uncertain=small_uncertain,
            point_index="grid",
            uncertain_index="linear",
        )
        assert session.point_db.kind == "grid"
        assert session.uncertain_db.kind == "linear"

    def test_wraps_prebuilt_engine(self, point_db):
        engine = ImpreciseQueryEngine(point_db=point_db)
        session = Session(engine=engine)
        assert session.engine is engine

    def test_engine_and_databases_are_mutually_exclusive(self, point_db):
        engine = ImpreciseQueryEngine(point_db=point_db)
        with pytest.raises(ValueError):
            Session(engine=engine, point_db=point_db)

    def test_config_reaches_engine(self, small_points):
        session = Session.from_objects(
            points=small_points, config=EngineConfig(monte_carlo_samples=42)
        )
        assert session.engine.config.monte_carlo_samples == 42

    def test_needs_at_least_one_database(self):
        with pytest.raises(ValueError):
            Session.from_objects()


class TestFluentRangeQueries:
    def test_full_chain_runs_a_constrained_query(self, session, uniform_issuer):
        evaluation = (
            session.range(half_width=500.0)
            .targets("uncertain")
            .threshold(0.5)
            .issued_by(uniform_issuer)
            .run()
        )
        assert isinstance(evaluation, Evaluation)
        assert evaluation.query.kind == "ciuq"
        assert all(answer.probability >= 0.5 for answer in evaluation)

    def test_build_returns_query_object(self, session, uniform_issuer):
        query = (
            session.range(half_width=500.0, half_height=250.0)
            .targets("points")
            .issued_by(uniform_issuer)
            .build()
        )
        assert isinstance(query, RangeQuery)
        assert query.spec.half_width == 500.0
        assert query.spec.half_height == 250.0
        assert query.threshold == 0.0

    def test_builder_is_immutable_and_reusable(self, session, uniform_issuer):
        base = session.range(half_width=500.0).targets("points").issued_by(uniform_issuer)
        constrained = base.threshold(0.7)
        assert base.build().threshold == 0.0
        assert constrained.build().threshold == 0.7

    def test_target_defaults_to_the_only_database(
        self, small_points, small_uncertain, uniform_issuer
    ):
        points_only = Session.from_objects(points=small_points)
        query = points_only.range(half_width=500.0).issued_by(uniform_issuer).build()
        assert query.target == "points"
        uncertain_only = Session.from_objects(uncertain=small_uncertain)
        query = uncertain_only.range(half_width=500.0).issued_by(uniform_issuer).build()
        assert query.target == "uncertain"

    def test_ambiguous_target_requires_explicit_choice(self, session, uniform_issuer):
        builder = session.range(half_width=500.0).issued_by(uniform_issuer)
        with pytest.raises(ValueError, match="targets"):
            builder.build()

    def test_missing_issuer_rejected(self, session):
        with pytest.raises(ValueError, match="issued_by"):
            session.range(half_width=500.0).targets("points").build()

    def test_run_many_uses_the_batch_path(self, session):
        workload = QueryWorkload(bounds=TEST_SPACE, seed=5)
        issuers = list(workload.issuers(8))
        evaluations = (
            session.range(half_width=500.0).targets("points").run_many(issuers)
        )
        assert len(evaluations) == 8
        assert [e.query.issuer for e in evaluations] == issuers
        # Same shape evaluated directly gives the same answers.
        direct = session.evaluate(
            RangeQuery.ipq(issuers[0], evaluations[0].query.spec)
        )
        assert direct.probabilities() == evaluations[0].probabilities()


class TestNearestNeighborBuilder:
    def test_nearest_chain(self, session, uniform_issuer):
        evaluation = (
            session.nearest()
            .sample_count(256)
            .threshold(0.1)
            .issued_by(uniform_issuer)
            .run()
        )
        assert evaluation.query.kind == "nn"
        assert all(answer.probability >= 0.1 for answer in evaluation)

    def test_nearest_build(self, session, uniform_issuer):
        query = session.nearest(samples=64).issued_by(uniform_issuer).build()
        assert isinstance(query, NearestNeighborQuery)
        assert query.samples == 64

    def test_nearest_missing_issuer_rejected(self, session):
        with pytest.raises(ValueError, match="issued_by"):
            session.nearest().build()


class TestDirectEvaluation:
    def test_session_evaluate_delegates_to_engine(self, session, uniform_issuer):
        query = RangeQuery.ipq(
            uniform_issuer, session.range(half_width=500.0).spec
        )
        via_session = session.evaluate(query)
        assert via_session.probabilities() == session.engine.evaluate(query).probabilities()

    def test_session_evaluate_many(self, session, uniform_issuer):
        spec = session.range(half_width=500.0).spec
        queries = [
            RangeQuery.ipq(uniform_issuer, spec),
            RangeQuery.iuq(uniform_issuer, spec),
        ]
        evaluations = session.evaluate_many(queries)
        assert [e.query.kind for e in evaluations] == ["ipq", "iuq"]


class TestStatsAfterMutations:
    """Satellite: epoch and subscription counters in SessionStats."""

    def test_serial_epochs_advance_through_every_mutator(self, small_points, small_uncertain):
        from repro.core.updates import UpdateBatch
        from repro.geometry.point import Point
        from repro.geometry.rect import Rect
        from repro.uncertainty.pdf import UniformPdf
        from repro.uncertainty.region import PointObject

        session = Session.from_objects(points=small_points, uncertain=small_uncertain)
        before = session.stats().epochs
        assert set(before) == {"points", "uncertain"}

        session.insert(PointObject.at(9301, 4_000.0, 4_000.0))
        after_insert = session.stats().epochs
        assert after_insert["points"] > before["points"]
        assert after_insert["uncertain"] == before["uncertain"]

        session.move(9301, x=4_500.0, y=4_500.0)
        after_move = session.stats().epochs
        assert after_move["points"] > after_insert["points"]

        session.delete(9301, target="points")
        after_delete = session.stats().epochs
        assert after_delete["points"] > after_move["points"]

        session.apply_updates(
            UpdateBatch().move(
                1, pdf=UniformPdf(Rect.from_center(Point(2_000.0, 2_000.0), 50.0, 50.0))
            )
        )
        after_batch = session.stats().epochs
        assert after_batch["uncertain"] > after_delete["uncertain"]
        assert after_batch["points"] == after_delete["points"]

    def test_sharded_epochs_advance_only_on_the_owning_shard(self, small_points):
        from repro.uncertainty.region import PointObject

        session = Session.from_objects(points=small_points).sharded(4)
        before = session.stats().epochs["points"]
        assert isinstance(before, dict) and len(before) >= 2

        stored = session.insert(PointObject.at(9302, 100.0, 100.0))
        owner = session.point_db.owner_of(stored.oid).sid
        after = session.stats().epochs["points"]
        assert after[owner] == before[owner] + 1
        assert all(after[sid] == before[sid] for sid in before if sid != owner)

    def test_subscription_counters_surface_in_stats(self, small_points):
        from repro.core.queries import RangeQuery, RangeQuerySpec
        from repro.geometry.point import Point
        from repro.geometry.rect import Rect
        from repro.uncertainty.region import PointObject, UncertainObject

        session = Session.from_objects(points=small_points)
        assert session.stats().subscriptions is None  # no registry yet

        issuer = UncertainObject.uniform(
            9400, Rect.from_center(Point(5_000.0, 5_000.0), 100.0, 100.0)
        )
        near = session.subscribe(RangeQuery.ipq(issuer, RangeQuerySpec.square(400.0)))
        far_issuer = UncertainObject.uniform(
            9401, Rect.from_center(Point(500.0, 9_500.0), 50.0, 50.0)
        )
        session.subscribe(RangeQuery.ipq(far_issuer, RangeQuerySpec.square(100.0)))

        counters = session.stats().subscriptions
        assert counters["active"] == 2
        assert counters["subscribed_total"] == 2
        assert counters["reevaluations"] == 0

        # One mutation inside `near`'s window: exactly one re-evaluation,
        # the far subscription is skipped.
        session.insert(PointObject.at(9402, 5_050.0, 5_050.0))
        counters = session.stats().subscriptions
        assert counters["reevaluations"] == 1
        assert counters["skipped"] == 1
        assert counters["deltas_emitted"] >= 1
        assert counters["rounds"] == 1

        assert 9402 in near.answer()
        session.unsubscribe(near)
        assert session.stats().subscriptions["active"] == 1
