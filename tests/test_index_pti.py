"""Unit tests for the Probability Threshold Index (PTI)."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.index.pti import ProbabilityThresholdIndex
from repro.index.rtree import RTree
from repro.uncertainty.region import UncertainObject


def _uncertain_objects(n: int, seed: int = 0, space: float = 2000.0) -> list[UncertainObject]:
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(n):
        x = rng.uniform(0.0, space - 60.0)
        y = rng.uniform(0.0, space - 60.0)
        w = rng.uniform(10.0, 60.0)
        h = rng.uniform(10.0, 60.0)
        objects.append(
            UncertainObject.uniform(i, Rect(x, y, x + w, y + h), with_catalog=True)
        )
    return objects


@pytest.fixture(scope="module")
def objects() -> list[UncertainObject]:
    return _uncertain_objects(300, seed=9)


@pytest.fixture(scope="module")
def pti(objects) -> ProbabilityThresholdIndex:
    return ProbabilityThresholdIndex.bulk_load(objects, max_entries=8)


class TestConstruction:
    def test_bulk_load(self, pti, objects):
        assert len(pti) == len(objects)
        pti.check_invariants()
        pti.check_augmentation()

    def test_rejects_objects_without_catalog(self):
        plain = UncertainObject.uniform(0, Rect(0.0, 0.0, 10.0, 10.0))
        with pytest.raises(ValueError):
            ProbabilityThresholdIndex.bulk_load([plain])

    def test_rejects_non_uncertain_items(self):
        tree = ProbabilityThresholdIndex(max_entries=4)
        with pytest.raises(TypeError):
            tree.insert(Rect(0.0, 0.0, 1.0, 1.0), "not an object")

    def test_rejects_mismatched_catalog_levels(self):
        a = UncertainObject.uniform(0, Rect(0.0, 0.0, 10.0, 10.0)).with_catalog([0.0, 0.2])
        b = UncertainObject.uniform(1, Rect(5.0, 5.0, 15.0, 15.0)).with_catalog([0.0, 0.3])
        tree = ProbabilityThresholdIndex(max_entries=4)
        tree.insert(a.mbr, a)
        with pytest.raises(ValueError):
            tree.insert(b.mbr, b)

    def test_incremental_insert_maintains_augmentation(self, objects):
        tree = ProbabilityThresholdIndex(max_entries=4)
        for obj in objects[:80]:
            tree.insert(obj.mbr, obj)
        tree.check_invariants()
        tree.check_augmentation()


class TestPlainSearch:
    def test_range_search_matches_rtree(self, pti, objects):
        rtree = RTree.bulk_load(objects, max_entries=8)
        query = Rect(200.0, 200.0, 900.0, 700.0)
        assert {o.oid for o in pti.range_search(query)} == {
            o.oid for o in rtree.range_search(query)
        }

    def test_pruning_level_for(self, pti):
        assert pti.pruning_level_for(0.0) is None
        assert pti.pruning_level_for(0.05) is None
        assert pti.pruning_level_for(0.25) == 0.2
        assert pti.pruning_level_for(0.9) == 0.5


class TestThresholdSearch:
    def test_invalid_threshold_rejected(self, pti):
        with pytest.raises(ValueError):
            pti.range_search_with_threshold(Rect(0.0, 0.0, 1.0, 1.0), 1.5)

    def test_threshold_zero_equals_plain_search(self, pti):
        query = Rect(100.0, 100.0, 800.0, 800.0)
        plain = {o.oid for o in pti.range_search(query)}
        thresh = {o.oid for o in pti.range_search_with_threshold(query, 0.0)}
        assert plain == thresh

    def test_threshold_search_returns_subset_of_plain(self, pti):
        query = Rect(100.0, 100.0, 800.0, 800.0)
        plain = {o.oid for o in pti.range_search(query)}
        thresh = {o.oid for o in pti.range_search_with_threshold(query, 0.5)}
        assert thresh <= plain

    def test_threshold_search_never_drops_fully_covered_objects(self, pti, objects):
        """An object whose region is fully inside the query must always survive.

        Such an object has probability mass 1 inside the query region, so no
        correct threshold pruning may remove it for any threshold <= 1.
        """
        query = Rect(100.0, 100.0, 1200.0, 1200.0)
        fully_inside = {o.oid for o in objects if query.contains_rect(o.region)}
        for threshold in (0.2, 0.5, 0.9):
            survivors = {o.oid for o in pti.range_search_with_threshold(query, threshold)}
            assert fully_inside <= survivors

    def test_threshold_search_reduces_node_accesses(self, objects):
        pti = ProbabilityThresholdIndex.bulk_load(objects, max_entries=8)
        query = Rect(0.0, 0.0, 2000.0, 2000.0)
        # A tight p-expanded window should prune most subtrees.
        small_window = Rect(900.0, 900.0, 1100.0, 1100.0)
        pti.stats.reset()
        pti.range_search(query)
        full_cost = pti.stats.node_accesses
        pti.stats.reset()
        pti.range_search_with_threshold(query, 0.5, small_window)
        pruned_cost = pti.stats.node_accesses
        assert pruned_cost < full_cost

    def test_p_expanded_window_restricts_results(self, pti, objects):
        query = Rect(0.0, 0.0, 2000.0, 2000.0)
        window = Rect(500.0, 500.0, 700.0, 700.0)
        results = pti.range_search_with_threshold(query, 0.3, window)
        assert all(o.region.overlaps(window) for o in results)
