"""Unit tests for experiment reporting and shape checks."""


from repro.experiments.reporting import (
    ShapeCheck,
    check_shape,
    figure_to_csv,
    format_figure,
    format_shape_checks,
)
from repro.experiments.runner import FigureResult, SeriesPoint


def _figure(figure_id: str, series: dict[str, list[tuple[float, float]]]) -> FigureResult:
    figure = FigureResult(figure_id=figure_id, title="test", x_label="x")
    for name, points in series.items():
        for x, ms in points:
            figure.add_point(name, SeriesPoint(x, ms, 10.0, 3.0, 2.0))
    return figure


class TestFormatting:
    def test_format_figure_contains_values(self):
        figure = _figure(
            "figure_11",
            {"minkowski_sum": [(0.0, 5.0)], "p_expanded_query": [(0.0, 4.0)]},
        )
        text = format_figure(figure)
        assert "figure_11" in text
        assert "minkowski_sum" in text
        assert "5.000" in text

    def test_format_figure_alternate_metric(self):
        figure = _figure("figure_11", {"minkowski_sum": [(0.0, 5.0)]})
        text = format_figure(figure, metric="candidates")
        assert "10.000" in text

    def test_figure_to_csv(self, tmp_path):
        figure = _figure("figure_09", {"range_size=500": [(100.0, 1.0), (250.0, 2.0)]})
        path = figure_to_csv(figure, tmp_path / "fig.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("figure_id,series,x")
        assert len(lines) == 3

    def test_format_shape_checks(self):
        text = format_shape_checks(
            [ShapeCheck("a", True, "ok"), ShapeCheck("b", False, "bad")]
        )
        assert "[PASS] a" in text
        assert "[FAIL] b" in text


class TestShapeChecks:
    def test_figure_08_pass(self):
        figure = _figure(
            "figure_08",
            {
                "basic": [(100.0, 100.0), (250.0, 200.0), (500.0, 400.0)],
                "enhanced": [(100.0, 5.0), (250.0, 8.0), (500.0, 12.0)],
            },
        )
        checks = check_shape(figure)
        assert checks
        assert all(check.passed for check in checks)

    def test_figure_08_fails_when_basic_is_fast(self):
        figure = _figure(
            "figure_08",
            {
                "basic": [(100.0, 5.0), (250.0, 6.0)],
                "enhanced": [(100.0, 5.0), (250.0, 6.0)],
            },
        )
        checks = check_shape(figure)
        assert any(not check.passed for check in checks)

    def test_figure_09_monotonic_pass(self):
        figure = _figure(
            "figure_09",
            {
                "range_size=500": [(100.0, 1.0), (500.0, 2.0), (1000.0, 3.0)],
                "range_size=1500": [(100.0, 2.0), (500.0, 4.0), (1000.0, 6.0)],
            },
        )
        assert all(check.passed for check in check_shape(figure))

    def test_figure_09_fails_on_decreasing_times(self):
        figure = _figure(
            "figure_09",
            {"range_size=500": [(100.0, 10.0), (500.0, 5.0), (1000.0, 1.0)]},
        )
        assert any(not check.passed for check in check_shape(figure))

    def test_figure_11_pass(self):
        figure = _figure(
            "figure_11",
            {
                "minkowski_sum": [(0.0, 10.0), (0.4, 10.0), (0.8, 10.0)],
                "p_expanded_query": [(0.0, 10.0), (0.4, 6.0), (0.8, 3.0)],
            },
        )
        assert all(check.passed for check in check_shape(figure))

    def test_figure_12_fails_when_pti_slower(self):
        figure = _figure(
            "figure_12",
            {
                "minkowski_sum": [(0.0, 10.0), (0.4, 10.0), (0.8, 10.0)],
                "pti_p_expanded_query": [(0.0, 10.0), (0.4, 20.0), (0.8, 30.0)],
            },
        )
        assert any(not check.passed for check in check_shape(figure))

    def test_unknown_figure_has_no_checks(self):
        figure = _figure("figure_99", {"a": [(0.0, 1.0)]})
        assert check_shape(figure) == []
