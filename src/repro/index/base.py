"""Common interface implemented by every spatial index in the package."""

from __future__ import annotations
from repro.errors import InvalidArgumentError

from typing import Any, Iterable, Protocol, runtime_checkable

from repro.geometry.rect import Rect
from repro.index.iostats import IOStatistics


@runtime_checkable
class SpatialIndex(Protocol):
    """Protocol shared by :class:`RTree`, :class:`GridFile`, :class:`LinearScanIndex`.

    An index stores arbitrary *items* keyed by their minimum bounding
    rectangle and answers window (range) queries: return every item whose MBR
    intersects the query rectangle.  Indexes expose an :class:`IOStatistics`
    object so callers can attribute page accesses to individual queries.

    ``delete`` and ``update`` make the index maintainable under live object
    streams; backends that cannot support them incrementally declare
    ``supports_delete=False`` in their registry capabilities, and the
    databases fall back to a full index rebuild per mutation instead.
    """

    @property
    def stats(self) -> IOStatistics:
        """Access counters accumulated by this index."""
        ...

    def __len__(self) -> int:
        """Number of stored items."""
        ...

    def insert(self, mbr: Rect, item: Any) -> None:
        """Insert one item with the given bounding rectangle."""
        ...

    def delete(self, mbr: Rect, item: Any) -> None:
        """Remove one stored item, located by its bounding rectangle.

        Raises ``KeyError`` when the item is not stored under ``mbr``.
        """
        ...

    def update(
        self, old_mbr: Rect, new_mbr: Rect, item: Any, *, replacement: Any = None
    ) -> None:
        """Move one stored item from ``old_mbr`` to ``new_mbr``.

        ``replacement`` substitutes the stored payload (immutable object
        wrappers are replaced, not mutated, when they move); it defaults to
        re-inserting ``item`` itself.
        """
        ...

    def range_search(self, query: Rect) -> list[Any]:
        """Return all items whose MBR intersects ``query``."""
        ...


def items_match(stored: Any, item: Any) -> bool:
    """Whether a stored payload is *the* item a delete refers to.

    Identity first (the usual case — databases pass the exact instance they
    stored), falling back to equality so value-style items (tuples, frozen
    dataclasses) can be removed by an equal copy.
    """
    return stored is item or stored == item


def extract_mbr(item: Any) -> Rect:
    """Best-effort extraction of an item's bounding rectangle.

    Accepts anything exposing an ``mbr`` attribute (the object wrappers in
    :mod:`repro.uncertainty.region`), a :class:`Rect`, or a 4-tuple.
    """
    if isinstance(item, Rect):
        return item
    mbr = getattr(item, "mbr", None)
    if isinstance(mbr, Rect):
        return mbr
    if isinstance(item, tuple) and len(item) == 4:
        return Rect(*item)
    raise InvalidArgumentError(f"cannot derive an MBR from {item!r}")


def bulk_pairs(items: Iterable[Any]) -> list[tuple[Rect, Any]]:
    """Pair every item with its extracted MBR, ready for bulk loading."""
    return [(extract_mbr(item), item) for item in items]
