"""Unit and integration tests for the end-to-end query engine."""

import pytest

from repro.geometry.rect import Rect
from repro.core.duality import ipq_probability, iuq_probability_exact_uniform
from repro.core.engine import (
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.pruning import PruningStrategy
from repro.core.queries import (
    ImpreciseRangeQuery,
    NearestNeighborQuery,
    RangeQuery,
    RangeQuerySpec,
)
from repro.core.updates import UpdateBatch
from repro.datasets.workload import QueryWorkload
from repro.geometry.point import Point
from repro.index.gridfile import GridFile
from repro.index.linear import LinearScanIndex
from repro.index.pti import ProbabilityThresholdIndex
from repro.index.rtree import RTree
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

from tests.conftest import TEST_SPACE


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.probability_method == "auto"
        assert config.use_p_expanded_query
        assert config.use_pti_pruning

    def test_with_overrides(self):
        config = EngineConfig().with_overrides(monte_carlo_samples=99)
        assert config.monte_carlo_samples == 99
        assert EngineConfig().monte_carlo_samples != 99


class TestDatabaseConstruction:
    def test_point_database_default_rtree(self, small_points):
        db = PointDatabase.build(small_points)
        assert isinstance(db.index, RTree)
        assert len(db) == len(small_points)

    def test_point_database_rejects_pti(self, small_points):
        with pytest.raises(ValueError):
            PointDatabase.build(small_points, index_kind="pti")

    def test_point_database_grid_and_linear(self, small_points):
        assert isinstance(PointDatabase.build(small_points, index_kind="grid").index, GridFile)
        assert isinstance(
            PointDatabase.build(small_points, index_kind="linear").index, LinearScanIndex
        )

    def test_unknown_index_kind_rejected(self, small_points):
        with pytest.raises(ValueError):
            PointDatabase.build(small_points, index_kind="btree")

    def test_uncertain_database_builds_catalogs(self):
        objects = [
            UncertainObject.uniform(i, Rect(i * 10.0, 0.0, i * 10.0 + 5.0, 5.0))
            for i in range(20)
        ]
        db = UncertainDatabase.build(objects, index_kind="pti")
        assert isinstance(db.index, ProbabilityThresholdIndex)
        assert all(obj.catalog is not None for obj in db.objects)

    def test_engine_requires_some_database(self):
        with pytest.raises(ValueError):
            ImpreciseQueryEngine()


class TestIPQEvaluation:
    def test_results_match_direct_computation(self, point_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(point_db=point_db)
        result, stats = engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec)).as_tuple()
        assert stats.candidates_examined >= len(result)
        for answer in result:
            obj = next(o for o in point_db.objects if o.oid == answer.oid)
            expected = ipq_probability(uniform_issuer.pdf, default_spec, obj.location)
            assert answer.probability == pytest.approx(expected)

    def test_every_returned_probability_positive(self, point_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(point_db=point_db)
        result, _ = engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec)).as_tuple()
        assert all(answer.probability > 0.0 for answer in result)

    def test_no_qualifying_object_missed(self, point_db, uniform_issuer, default_spec):
        """Every point object with non-zero probability must appear in the answer."""
        engine = ImpreciseQueryEngine(point_db=point_db)
        result, _ = engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec)).as_tuple()
        reported = result.oids()
        for obj in point_db.objects:
            probability = ipq_probability(uniform_issuer.pdf, default_spec, obj.location)
            if probability > 0.0:
                assert obj.oid in reported

    def test_missing_database_raises(self, uncertain_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(uncertain_db=uncertain_db)
        with pytest.raises(RuntimeError):
            engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec)).as_tuple()

    def test_io_statistics_populated(self, point_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(point_db=point_db)
        _, stats = engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec)).as_tuple()
        assert stats.io.node_accesses > 0
        assert stats.response_time > 0.0


class TestIUQEvaluation:
    def test_results_match_direct_computation(self, uncertain_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(uncertain_db=uncertain_db)
        result, _ = engine.evaluate(RangeQuery.iuq(uniform_issuer, default_spec)).as_tuple()
        assert len(result) > 0
        for answer in list(result)[:25]:
            obj = next(o for o in uncertain_db.objects if o.oid == answer.oid)
            expected = iuq_probability_exact_uniform(uniform_issuer.pdf, obj, default_spec)
            assert answer.probability == pytest.approx(expected)

    def test_no_qualifying_object_missed(self, uncertain_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(uncertain_db=uncertain_db)
        result, _ = engine.evaluate(RangeQuery.iuq(uniform_issuer, default_spec)).as_tuple()
        reported = result.oids()
        for obj in uncertain_db.objects:
            probability = iuq_probability_exact_uniform(uniform_issuer.pdf, obj, default_spec)
            if probability > 1e-12:
                assert obj.oid in reported

    def test_missing_database_raises(self, point_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(point_db=point_db)
        with pytest.raises(RuntimeError):
            engine.evaluate(RangeQuery.iuq(uniform_issuer, default_spec)).as_tuple()


class TestConstrainedQueries:
    @pytest.mark.parametrize("threshold", [0.2, 0.5, 0.8])
    def test_cipq_equals_filtered_ipq(self, point_db, uniform_issuer, default_spec, threshold):
        """C-IPQ must return exactly the IPQ answers with probability >= Qp."""
        engine = ImpreciseQueryEngine(point_db=point_db)
        full, _ = engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec)).as_tuple()
        constrained, _ = engine.evaluate(
            RangeQuery.cipq(uniform_issuer, default_spec, threshold)
        ).as_tuple()
        expected = {a.oid for a in full if a.probability >= threshold}
        assert constrained.oids() == expected

    @pytest.mark.parametrize("threshold", [0.2, 0.5, 0.8])
    def test_ciuq_equals_filtered_iuq(self, uncertain_db, uniform_issuer, default_spec, threshold):
        """C-IUQ must return exactly the IUQ answers with probability >= Qp."""
        engine = ImpreciseQueryEngine(uncertain_db=uncertain_db)
        full, _ = engine.evaluate(RangeQuery.iuq(uniform_issuer, default_spec)).as_tuple()
        constrained, _ = engine.evaluate(
            RangeQuery.ciuq(uniform_issuer, default_spec, threshold)
        ).as_tuple()
        expected = {a.oid for a in full if a.probability >= threshold}
        assert constrained.oids() == expected

    def test_minkowski_and_p_expanded_agree_on_answers(
        self, point_db, uniform_issuer, default_spec
    ):
        threshold = 0.6
        minkowski_engine = ImpreciseQueryEngine(
            point_db=point_db, config=EngineConfig(use_p_expanded_query=False)
        )
        expanded_engine = ImpreciseQueryEngine(
            point_db=point_db, config=EngineConfig(use_p_expanded_query=True)
        )
        a, stats_a = minkowski_engine.evaluate(
            RangeQuery.cipq(uniform_issuer, default_spec, threshold)
        ).as_tuple()
        b, stats_b = expanded_engine.evaluate(
            RangeQuery.cipq(uniform_issuer, default_spec, threshold)
        ).as_tuple()
        assert a.oids() == b.oids()
        # The p-expanded-query must never examine more candidates.
        assert stats_b.candidates_examined <= stats_a.candidates_examined

    def test_pti_and_rtree_agree_on_answers(
        self, uncertain_db, uncertain_db_rtree, uniform_issuer, default_spec
    ):
        threshold = 0.5
        pti_engine = ImpreciseQueryEngine(uncertain_db=uncertain_db)
        rtree_engine = ImpreciseQueryEngine(
            uncertain_db=uncertain_db_rtree,
            config=EngineConfig(use_p_expanded_query=False, use_pti_pruning=False),
        )
        a, stats_a = pti_engine.evaluate(
            RangeQuery.ciuq(uniform_issuer, default_spec, threshold)
        ).as_tuple()
        b, stats_b = rtree_engine.evaluate(
            RangeQuery.ciuq(uniform_issuer, default_spec, threshold)
        ).as_tuple()
        assert a.oids() == b.oids()
        assert stats_a.candidates_examined <= stats_b.candidates_examined

    def test_strategy_subset_configuration_respected(
        self, uncertain_db_rtree, uniform_issuer, default_spec
    ):
        engine = ImpreciseQueryEngine(
            uncertain_db=uncertain_db_rtree,
            config=EngineConfig(
                use_p_expanded_query=False,
                ciuq_strategies=(PruningStrategy.P_BOUND,),
            ),
        )
        result, stats = engine.evaluate(
            RangeQuery.ciuq(uniform_issuer, default_spec, 0.6)
        ).as_tuple()
        assert PruningStrategy.P_EXPANDED_QUERY.value not in stats.pruned
        assert all(answer.probability >= 0.6 for answer in result)


class TestMonteCarloEngine:
    def test_gaussian_issuer_uses_monte_carlo_when_forced(self, point_db, default_spec):
        # Centre the issuer on an existing point object so candidates exist.
        anchor = point_db.objects[0].location
        issuer_region = Rect.from_center(anchor, 250.0, 250.0)
        issuer = UncertainObject(oid=0, pdf=TruncatedGaussianPdf(issuer_region)).with_catalog()
        engine = ImpreciseQueryEngine(
            point_db=point_db,
            config=EngineConfig(probability_method="monte_carlo", monte_carlo_samples=200),
        )
        result, stats = engine.evaluate(RangeQuery.cipq(issuer, default_spec, 0.3)).as_tuple()
        assert stats.monte_carlo_samples > 0
        assert all(answer.probability >= 0.3 for answer in result)

    def test_monte_carlo_close_to_exact_for_uniform(self, point_db, uniform_issuer, default_spec):
        exact_engine = ImpreciseQueryEngine(point_db=point_db)
        mc_engine = ImpreciseQueryEngine(
            point_db=point_db,
            config=EngineConfig(probability_method="monte_carlo", monte_carlo_samples=2_000),
        )
        exact, _ = exact_engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec)).as_tuple()
        sampled, _ = mc_engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec)).as_tuple()
        exact_probs = exact.probabilities()
        for oid, probability in sampled.probabilities().items():
            assert probability == pytest.approx(exact_probs[oid], abs=0.05)


class TestEvaluateDispatch:
    def test_legacy_query_adapts_through_from_legacy(
        self, point_db, uniform_issuer, default_spec
    ):
        engine = ImpreciseQueryEngine(point_db=point_db)
        legacy = ImpreciseRangeQuery(issuer=uniform_issuer, spec=default_spec, threshold=0.4)
        result, _ = engine.evaluate(RangeQuery.from_legacy(legacy, "points")).as_tuple()
        assert all(answer.probability >= 0.4 for answer in result)

    def test_legacy_query_objects_rejected(self, point_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(point_db=point_db)
        legacy = ImpreciseRangeQuery(issuer=uniform_issuer, spec=default_spec)
        with pytest.raises(TypeError, match="from_legacy"):
            engine.evaluate(legacy)


class TestWorkloadIntegration:
    def test_engine_handles_workload_queries(self, point_db, uncertain_db):
        engine = ImpreciseQueryEngine(point_db=point_db, uncertain_db=uncertain_db)
        workload = QueryWorkload(bounds=TEST_SPACE, threshold=0.3, seed=99)
        for query in workload.queries(5):
            point_result, _ = engine.evaluate(
                RangeQuery.cipq(query.issuer, query.spec, query.threshold)
            ).as_tuple()
            uncertain_result, _ = engine.evaluate(
                RangeQuery.ciuq(query.issuer, query.spec, query.threshold)
            ).as_tuple()
            assert all(a.probability >= query.threshold for a in point_result)
            assert all(a.probability >= query.threshold for a in uncertain_result)


class TestLiveMutationVisibility:
    """Regression tests: mutate then query must never serve stale answers.

    The historical bug: the databases cached their columnar snapshot forever,
    so any mutation of ``.objects`` after ``columnar()`` had been built was
    invisible to every subsequent vectorized query.
    """

    def _engine(self, index_kind="rtree", **overrides):
        objects = [
            PointObject.at(1, 4_900.0, 4_900.0),
            PointObject.at(2, 9_500.0, 9_500.0),
        ]
        database = PointDatabase.build(objects, index_kind=index_kind)
        config = EngineConfig().with_overrides(**overrides)
        return ImpreciseQueryEngine(point_db=database, config=config)

    def _query(self, uniform_issuer):
        return RangeQuery.ipq(uniform_issuer, RangeQuerySpec.square(500.0))

    @pytest.mark.parametrize("index_kind", ["rtree", "grid", "linear"])
    def test_insert_is_visible_to_the_next_batch(self, uniform_issuer, index_kind):
        engine = self._engine(index_kind)
        query = self._query(uniform_issuer)
        before = engine.evaluate_many([query])[0]
        assert before.result.oids() == {1}
        engine.insert(PointObject.at(3, 5_050.0, 5_050.0))
        after = engine.evaluate_many([query])[0]
        assert after.result.oids() == {1, 3}

    @pytest.mark.parametrize("index_kind", ["rtree", "grid", "linear"])
    def test_delete_and_move_are_visible(self, uniform_issuer, index_kind):
        engine = self._engine(index_kind)
        query = self._query(uniform_issuer)
        engine.delete(1)
        assert engine.evaluate_many([query])[0].result.oids() == set()
        engine.move(2, x=5_000.0, y=5_100.0)
        assert engine.evaluate_many([query])[0].result.oids() == {2}

    def test_direct_objects_append_is_visible(self, uniform_issuer):
        """Even out-of-band list mutation cannot leave the snapshot stale."""
        engine = self._engine()
        query = self._query(uniform_issuer)
        database = engine.point_db
        assert engine.evaluate_many([query])[0].result.oids() == {1}
        new = PointObject.at(4, 5_020.0, 4_980.0)
        database.objects.append(new)
        database.index.insert(new.mbr, new)
        assert engine.evaluate_many([query])[0].result.oids() == {1, 4}

    def test_scalar_backend_sees_mutations_too(self, uniform_issuer):
        engine = self._engine(vectorized=False)
        query = self._query(uniform_issuer)
        engine.insert(PointObject.at(3, 5_050.0, 5_050.0))
        assert engine.evaluate_many([query])[0].result.oids() == {1, 3}

    def test_nearest_sampler_rebuilt_after_mutation(self, uniform_issuer):
        engine = self._engine()
        nn = NearestNeighborQuery(issuer=uniform_issuer, samples=16)
        assert engine.evaluate(nn).result.oids() == {1}
        engine.move(2, x=5_000.0, y=5_000.0)
        engine.delete(1)
        assert engine.evaluate(nn).result.oids() == {2}

    def test_uncertain_mutations_visible(self, uniform_issuer):
        objects = [
            UncertainObject.uniform(
                1, Rect.from_center(Point(5_000.0, 5_000.0), 100.0, 100.0)
            )
        ]
        database = UncertainDatabase.build(objects)
        engine = ImpreciseQueryEngine(uncertain_db=database)
        query = RangeQuery.iuq(uniform_issuer, RangeQuerySpec.square(500.0))
        assert engine.evaluate_many([query])[0].result.oids() == {1}
        engine.move(1, pdf=UniformPdf(Rect.from_center(Point(9_000.0, 9_000.0), 100.0, 100.0)))
        assert engine.evaluate_many([query])[0].result.oids() == set()

    def test_interleaved_update_batch_applies_in_stream_order(self, uniform_issuer):
        engine = self._engine()
        query = self._query(uniform_issuer)
        batch = UpdateBatch().insert(PointObject.at(3, 5_050.0, 5_050.0)).delete(1)
        evaluations = engine.evaluate_many([query, batch, query])
        assert evaluations[0].result.oids() == {1}
        assert evaluations[1].result.oids() == {3}

    def test_duplicate_oid_rejected(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="already stored"):
            engine.insert(PointObject.at(1, 0.0, 0.0))

    def test_missing_oid_raises_key_error(self):
        engine = self._engine()
        with pytest.raises(KeyError, match="999"):
            engine.delete(999)
