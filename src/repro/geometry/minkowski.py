"""Minkowski sums.

The paper's query-expansion technique (Section 4.1) builds the Minkowski sum
of the query range ``R`` and the issuer's uncertainty region ``U0`` and uses
it as a conventional range query: an object that does not touch ``R ⊕ U0``
cannot have a non-zero qualification probability (Lemma 1).

For the rectangular regions the paper assumes, the sum is obtained in constant
time by extending ``U0`` by the query half-width ``w`` to the left and right
and by the half-height ``h`` on the top and bottom.  The general convex-
polygon sum is provided for the non-rectangular extension.
"""

from __future__ import annotations
from repro.errors import GeometryError

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.algorithms import convex_hull


def minkowski_sum_rects(a: Rect, b: Rect) -> Rect:
    """Minkowski sum of two axis-parallel rectangles.

    The result is again an axis-parallel rectangle whose per-axis interval is
    the sum of the operands' intervals.
    """
    return a.minkowski_sum(b)


def expand_query_region(uncertainty_region: Rect, half_width: float, half_height: float) -> Rect:
    """Expanded query range ``R ⊕ U0`` for a range query of the given half-extents.

    This is Figure 2 of the paper: ``U0`` extended by ``w`` on the left and
    right and ``h`` on the top and bottom.
    """
    if half_width < 0 or half_height < 0:
        raise GeometryError("query half-extents must be non-negative")
    return uncertainty_region.expand(half_width, half_height)


def minkowski_sum_convex_polygons(a: list[Point], b: list[Point]) -> list[Point]:
    """Minkowski sum of two convex polygons given as vertex lists.

    A brute-force but robust implementation: sum every pair of vertices and
    take the convex hull.  For an ``m``-gon and ``n``-gon this is
    ``O(mn log(mn))`` — acceptable for the tiny polygons involved in query
    expansion — whereas the optimal rotating-sweep algorithm is ``O(m + n)``.
    The hull of pairwise sums equals the true Minkowski sum for convex
    operands.
    """
    if not a or not b:
        return []
    sums = [Point(pa.x + pb.x, pa.y + pb.y) for pa in a for pb in b]
    return convex_hull(sums)
