"""Unit tests for the TIGER-like dataset stand-ins."""

import pytest

from repro.datasets.tiger import (
    CALIFORNIA_SIZE,
    DATA_SPACE,
    LONG_BEACH_SIZE,
    california_points,
    long_beach_uncertain_objects,
)


class TestDataSpace:
    def test_matches_paper(self):
        assert DATA_SPACE.width == 10_000.0
        assert DATA_SPACE.height == 10_000.0

    def test_cardinalities_match_paper(self):
        assert CALIFORNIA_SIZE == 62_000
        assert LONG_BEACH_SIZE == 53_000


class TestCaliforniaPoints:
    def test_scaled_cardinality(self):
        points = california_points(scale=0.01)
        assert len(points) == round(CALIFORNIA_SIZE * 0.01)

    def test_objects_inside_data_space(self):
        points = california_points(scale=0.005)
        assert all(DATA_SPACE.contains_point(p.location) for p in points)

    def test_deterministic(self):
        assert california_points(scale=0.002) == california_points(scale=0.002)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            california_points(scale=0.0)


class TestLongBeachObjects:
    def test_scaled_cardinality(self):
        objects = long_beach_uncertain_objects(scale=0.01)
        assert len(objects) == round(LONG_BEACH_SIZE * 0.01)

    def test_regions_inside_data_space_with_positive_area(self):
        objects = long_beach_uncertain_objects(scale=0.005)
        for obj in objects:
            assert DATA_SPACE.contains_rect(obj.region)
            assert obj.region.area > 0.0

    def test_region_sizes_match_generator_contract(self):
        objects = long_beach_uncertain_objects(scale=0.005)
        for obj in objects:
            assert obj.region.width <= 200.0 + 1e-9
            assert obj.region.height <= 200.0 + 1e-9

    def test_deterministic(self):
        a = long_beach_uncertain_objects(scale=0.002)
        b = long_beach_uncertain_objects(scale=0.002)
        assert [o.region for o in a] == [o.region for o in b]

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            long_beach_uncertain_objects(scale=-1.0)
