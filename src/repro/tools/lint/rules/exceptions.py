"""RPL008 — no silently-swallowed broad excepts.

``except Exception: pass`` converts every future bug in the guarded block —
typos, wrong attributes, violated invariants — into silence.  The shm lease
bookkeeping shipped exactly this shape and hid a double-release for a full
PR cycle.

Flagged: an ``except`` handler whose type is ``Exception`` /
``BaseException`` / omitted (bare) and whose body does nothing (``pass`` /
``...`` / a lone docstring).  Narrow the exception (``except OSError:``)
or, when discarding any failure is genuinely the contract, say so with
``contextlib.suppress(Exception)`` — an explicit, greppable marker.

Exempt: handlers inside ``__del__``.  Finalizers run during interpreter
teardown where *importing* contextlib or raising can itself fail; a bare
swallow is the only safe shape there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import Module, Rule, register
from repro.tools.lint.rules._ast_helpers import is_docstring_or_pass

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    node = handler.type
    if isinstance(node, ast.Attribute):
        return node.attr in _BROAD
    return isinstance(node, ast.Name) and node.id in _BROAD


def _swallows(handler: ast.ExceptHandler) -> bool:
    return all(is_docstring_or_pass(stmt) for stmt in handler.body)


@register
class NoSilentBroadExcept(Rule):
    rule_id = "RPL008"
    severity = "error"
    description = (
        "no `except Exception: pass` — narrow the type or use "
        "contextlib.suppress; __del__ finalizers are exempt"
    )

    def applies_to(self, module: Module) -> bool:
        return module.in_package("repro/") or module.in_package("tests/")

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        exempt: set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and node.name == "__del__":
                for child in ast.walk(node):
                    exempt.add(id(child))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler) or id(node) in exempt:
                continue
            if _is_broad(node) and _swallows(node):
                label = (
                    "bare except"
                    if node.type is None
                    else f"except {ast.unparse(node.type)}"
                )
                yield (
                    node.lineno,
                    f"{label} with an empty body swallows every failure: "
                    "narrow the exception type, or make the intent explicit "
                    "with contextlib.suppress(...)",
                )
