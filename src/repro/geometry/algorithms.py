"""General planar-geometry algorithms.

Only a handful of classical algorithms are needed beyond rectangle
arithmetic: convex hulls and polygon areas (for the convex-polygon Minkowski
sum used by the non-rectangular extension), and a clipping helper shared by
the probability-evaluation code.
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def clip_rect(subject: Rect, clip: Rect) -> Rect:
    """Clip ``subject`` against ``clip`` (simple rectangle intersection)."""
    return subject.intersect(clip)


def rect_union_bounds(rects: list[Rect]) -> Rect:
    """Minimum bounding rectangle of a list of rectangles."""
    return Rect.bounding(rects)


def _cross(o: Point, a: Point, b: Point) -> float:
    """Z-component of the cross product of vectors OA and OB."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def convex_hull(points: list[Point]) -> list[Point]:
    """Convex hull of a point set (Andrew's monotone chain, ``O(n log n)``).

    Returns the hull vertices in counter-clockwise order, without repeating
    the first vertex.  Collinear points on the hull boundary are dropped.
    """
    unique = sorted(set((p.x, p.y) for p in points))
    if len(unique) <= 2:
        return [Point(x, y) for x, y in unique]

    pts = [Point(x, y) for x, y in unique]

    lower: list[Point] = []
    for p in pts:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)

    upper: list[Point] = []
    for p in reversed(pts):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)

    return lower[:-1] + upper[:-1]


def polygon_area(vertices: list[Point]) -> float:
    """Area of a simple polygon via the shoelace formula.

    Vertices may be given in either orientation; the absolute value is
    returned.
    """
    n = len(vertices)
    if n < 3:
        return 0.0
    twice_area = 0.0
    for i in range(n):
        j = (i + 1) % n
        twice_area += vertices[i].x * vertices[j].y - vertices[j].x * vertices[i].y
    return abs(twice_area) / 2.0


def point_in_convex_polygon(point: Point, vertices: list[Point]) -> bool:
    """True when ``point`` lies inside (or on the boundary of) a convex polygon.

    The polygon must be given in counter-clockwise order, as produced by
    :func:`convex_hull`.
    """
    n = len(vertices)
    if n == 0:
        return False
    if n == 1:
        return vertices[0].x == point.x and vertices[0].y == point.y
    if n == 2:
        a, b = vertices
        if _cross(a, b, point) != 0:
            return False
        return (
            min(a.x, b.x) <= point.x <= max(a.x, b.x)
            and min(a.y, b.y) <= point.y <= max(a.y, b.y)
        )
    for i in range(n):
        a = vertices[i]
        b = vertices[(i + 1) % n]
        if _cross(a, b, point) < 0:
            return False
    return True


def polygon_bounding_rect(vertices: list[Point]) -> Rect:
    """Axis-parallel bounding rectangle of a polygon."""
    if not vertices:
        return Rect.empty()
    xs = [p.x for p in vertices]
    ys = [p.y for p in vertices]
    return Rect(min(xs), min(ys), max(xs), max(ys))
