"""Unit tests for :mod:`repro.geometry.algorithms`."""

import pytest

from repro.geometry.algorithms import (
    clip_rect,
    convex_hull,
    point_in_convex_polygon,
    polygon_area,
    polygon_bounding_rect,
    rect_union_bounds,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestClipAndBounds:
    def test_clip_rect(self):
        subject = Rect(0.0, 0.0, 10.0, 10.0)
        clip = Rect(5.0, 5.0, 15.0, 15.0)
        assert clip_rect(subject, clip) == Rect(5.0, 5.0, 10.0, 10.0)

    def test_rect_union_bounds(self):
        rects = [Rect(0.0, 0.0, 1.0, 1.0), Rect(-1.0, 2.0, 0.5, 3.0)]
        assert rect_union_bounds(rects) == Rect(-1.0, 0.0, 1.0, 3.0)


class TestConvexHull:
    def test_hull_of_square_with_interior_points(self):
        points = [
            Point(0.0, 0.0),
            Point(4.0, 0.0),
            Point(4.0, 4.0),
            Point(0.0, 4.0),
            Point(2.0, 2.0),
            Point(1.0, 3.0),
        ]
        hull = convex_hull(points)
        assert len(hull) == 4
        assert polygon_area(hull) == pytest.approx(16.0)

    def test_hull_drops_collinear_points(self):
        points = [Point(0.0, 0.0), Point(1.0, 1.0), Point(2.0, 2.0), Point(0.0, 2.0)]
        hull = convex_hull(points)
        assert len(hull) == 3

    def test_hull_of_two_points(self):
        hull = convex_hull([Point(0.0, 0.0), Point(1.0, 1.0)])
        assert len(hull) == 2

    def test_hull_deduplicates(self):
        hull = convex_hull([Point(0.0, 0.0)] * 5)
        assert hull == [Point(0.0, 0.0)]

    def test_hull_is_counter_clockwise(self):
        points = [Point(0.0, 0.0), Point(2.0, 0.0), Point(2.0, 2.0), Point(0.0, 2.0)]
        hull = convex_hull(points)
        # Shoelace sum is positive for counter-clockwise orientation.
        signed = sum(
            hull[i].x * hull[(i + 1) % len(hull)].y - hull[(i + 1) % len(hull)].x * hull[i].y
            for i in range(len(hull))
        )
        assert signed > 0


class TestPolygonArea:
    def test_triangle_area(self):
        triangle = [Point(0.0, 0.0), Point(4.0, 0.0), Point(0.0, 3.0)]
        assert polygon_area(triangle) == pytest.approx(6.0)

    def test_orientation_independent(self):
        square_ccw = [Point(0.0, 0.0), Point(1.0, 0.0), Point(1.0, 1.0), Point(0.0, 1.0)]
        square_cw = list(reversed(square_ccw))
        assert polygon_area(square_ccw) == polygon_area(square_cw) == pytest.approx(1.0)

    def test_degenerate_polygon_has_zero_area(self):
        assert polygon_area([Point(0.0, 0.0), Point(1.0, 1.0)]) == 0.0


class TestPointInConvexPolygon:
    SQUARE = [Point(0.0, 0.0), Point(4.0, 0.0), Point(4.0, 4.0), Point(0.0, 4.0)]

    def test_inside(self):
        assert point_in_convex_polygon(Point(2.0, 2.0), self.SQUARE)

    def test_boundary(self):
        assert point_in_convex_polygon(Point(0.0, 2.0), self.SQUARE)

    def test_outside(self):
        assert not point_in_convex_polygon(Point(5.0, 2.0), self.SQUARE)

    def test_empty_polygon(self):
        assert not point_in_convex_polygon(Point(0.0, 0.0), [])

    def test_segment_polygon(self):
        segment = [Point(0.0, 0.0), Point(2.0, 2.0)]
        assert point_in_convex_polygon(Point(1.0, 1.0), segment)
        assert not point_in_convex_polygon(Point(1.0, 0.0), segment)


class TestPolygonBoundingRect:
    def test_bounding_rect(self):
        polygon = [Point(0.0, 1.0), Point(5.0, -2.0), Point(3.0, 4.0)]
        assert polygon_bounding_rect(polygon) == Rect(0.0, -2.0, 5.0, 4.0)

    def test_empty_polygon_gives_empty_rect(self):
        assert polygon_bounding_rect([]).is_empty
