"""RPL002 — all sampling in ``repro/core`` flows through seeded generators.

The engines promise *bitwise parity*: the same query against the same data
yields the same Monte-Carlo draws in serial, parallel and replayed runs,
because every draw is derived from a draw-plan token (seed, query sequence,
oid) via ``np.random.default_rng(SeedSequence(...))``.  One call into the
stdlib ``random`` module or numpy's legacy global state (``np.random.seed``,
``np.random.rand``, …) silently breaks that contract — the draw depends on
interpreter-global mutable state no plan token controls.

Flagged inside ``repro/core/``:

* ``import random`` / ``from random import …`` (stdlib global RNG),
* calls through numpy's legacy global namespace (``np.random.<fn>(…)`` for
  anything but the generator constructors), and
* ``default_rng()`` with *no* seed argument — an OS-entropy generator no
  replay can reproduce.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import Module, Rule, register

#: Constructors of the explicit-seed Generator API, allowed through the
#: ``np.random`` namespace.
_GENERATOR_API = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "SFC64"}


@register
class SeededRandomness(Rule):
    rule_id = "RPL002"
    severity = "error"
    description = (
        "core/ must not touch global RNG state (stdlib random, legacy "
        "np.random.*) or create unseeded generators"
    )

    def applies_to(self, module: Module) -> bool:
        return module.in_package("repro/core/")

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield (
                            node.lineno,
                            "stdlib 'random' uses interpreter-global state; "
                            "derive draws from the draw-plan via "
                            "np.random.default_rng(SeedSequence(...))",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield (
                        node.lineno,
                        "stdlib 'random' uses interpreter-global state; "
                        "derive draws from the draw-plan via "
                        "np.random.default_rng(SeedSequence(...))",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(node)

    def _check_call(self, call: ast.Call) -> Iterator[tuple[int, str]]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        # Match <numpy-ish>.random.<name>(...) — the legacy global API.
        base = func.value
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
        ):
            if func.attr not in _GENERATOR_API:
                yield (
                    call.lineno,
                    f"np.random.{func.attr}() drives numpy's legacy global "
                    "RNG; use a Generator built from a draw-plan seed",
                )
                return
        if func.attr == "default_rng" and not call.args and not call.keywords:
            yield (
                call.lineno,
                "default_rng() with no seed draws OS entropy and cannot be "
                "replayed; pass a seed or SeedSequence from the draw-plan",
            )
