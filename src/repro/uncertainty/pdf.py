"""Uncertainty probability density functions.

Definition 2 of the paper: the uncertainty pdf ``fi(x, y)`` of object ``Oi``
is a pdf that is zero outside the object's uncertainty region ``Ui`` and
integrates to one over it.  The paper's techniques are pdf-agnostic; the
experiments use the uniform distribution (the "worst case" of knowing nothing
beyond the region) and a truncated Gaussian (Section 6.2, Figure 13).

Every pdf exposes:

* ``region`` — the uncertainty region (an axis-parallel :class:`Rect`, or the
  bounding rectangle for non-rectangular supports),
* ``probability_in_rect(rect)`` — the probability mass inside ``rect``,
* per-axis marginal CDFs and quantiles (used to compute p-bounds),
* ``sample(rng, n)`` — draws for Monte-Carlo evaluation,
* ``density(x, y)`` — the raw density value.

Two batched counterparts back the vectorized evaluation backend:
``density_array(xs, ys)`` evaluates the density at many locations at once and
``probability_in_rects(bounds)`` computes the mass of many rectangles at once.
Both have scalar-loop fallbacks on the base class, so every pdf works with the
vectorized engine.  The uniform and truncated-Gaussian pdfs override
``probability_in_rects`` with true array kernels producing bitwise-identical
values to their scalar counterparts; the histogram and circle pdfs keep the
per-rectangle fallback (their rectangle masses need per-rect bin/segment
work), so batched calls against them run at scalar speed.
"""

from __future__ import annotations
from repro.errors import DistributionError

import abc
import math
from typing import Sequence

import numpy as np
from scipy import stats

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect

# NOTE: the wire helpers (repro.core.wire / repro.core.errors) are imported
# lazily inside the serialization methods: importing them at module level
# would pull in repro.core.__init__, whose query model imports this module
# right back (uncertainty.pdf is near the bottom of the package layering).

#: Schema name of the pdf wire payloads (see :mod:`repro.core.wire`).
PDF_SCHEMA = "repro.pdf"


def _tagged(payload: dict) -> dict:
    from repro.core.wire import tagged

    return tagged(PDF_SCHEMA, payload)


class UncertaintyPdf(abc.ABC):
    """Abstract base class for two-dimensional location-uncertainty pdfs."""

    #: Whether :meth:`probability_in_rect` is exact (closed form) rather than
    #: a numerical approximation.  The evaluation engines use this to decide
    #: between analytic and Monte-Carlo integration paths.
    has_closed_form: bool = False

    @property
    @abc.abstractmethod
    def region(self) -> Rect:
        """The uncertainty region (bounding rectangle of the support)."""

    @abc.abstractmethod
    def probability_in_rect(self, rect: Rect) -> float:
        """Probability mass of the object's location falling inside ``rect``."""

    @abc.abstractmethod
    def density(self, x: float, y: float) -> float:
        """Density value at ``(x, y)`` (zero outside the region)."""

    @abc.abstractmethod
    def marginal_cdf_x(self, x: float) -> float:
        """Probability that the object's x-coordinate is at most ``x``."""

    @abc.abstractmethod
    def marginal_cdf_y(self, y: float) -> float:
        """Probability that the object's y-coordinate is at most ``y``."""

    @abc.abstractmethod
    def marginal_quantile_x(self, p: float) -> float:
        """Smallest ``x`` such that ``marginal_cdf_x(x) >= p``."""

    @abc.abstractmethod
    def marginal_quantile_y(self, p: float) -> float:
        """Smallest ``y`` such that ``marginal_cdf_y(y) >= p``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` locations; returns an ``(n, 2)`` array of ``(x, y)`` pairs."""

    def sample_into(self, rng: np.random.Generator, out: np.ndarray) -> None:
        """Draw ``len(out)`` locations into a preallocated ``(n, 2)`` view.

        Generator consumption and values are identical to :meth:`sample`;
        batch kernels use this to fill one contiguous draw tensor without a
        per-object stack-and-copy.  The base implementation delegates to
        :meth:`sample`; closed-form pdfs override it to write in place.
        """
        out[:] = self.sample(rng, out.shape[0])

    def sample_batch(self, rng: np.random.Generator, n: int, k: int) -> np.ndarray:
        """``k`` independent groups of ``n`` draws as a ``(k, n, 2)`` tensor.

        This is the per-query Monte-Carlo *draw plan*: one call provides the
        draws for a whole candidate batch, and both the scalar and the
        vectorized evaluation backends consume the identical tensor — which
        is what keeps sampled probabilities bitwise comparable between them.
        The base implementation loops :meth:`sample_into` per group; pdfs
        with batchable transforms override it with one flat draw for the
        whole batch.  Each override is deterministic given the generator
        state, but the stream-to-group layout is implementation-defined, so
        different pdf classes (or the base fallback) produce different —
        equally valid — plans.
        """
        out = np.empty((k, n, 2), dtype=float)
        for i in range(k):
            self.sample_into(rng, out[i])
        return out

    # ------------------------------------------------------------------ #
    # Batched evaluation (vectorized backend)
    # ------------------------------------------------------------------ #
    def density_array(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Density values at many locations; same shape as ``xs``/``ys``.

        The base implementation is a scalar loop, so any pdf — including
        third-party subclasses that know nothing about the vectorized
        backend — evaluates correctly; closed-form pdfs override it with a
        true array kernel.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        flat = np.fromiter(
            (self.density(float(x), float(y)) for x, y in zip(xs.ravel(), ys.ravel())),
            dtype=float,
            count=xs.size,
        )
        return flat.reshape(xs.shape)

    def probability_in_rects(self, bounds: np.ndarray) -> np.ndarray:
        """Probability mass inside each rectangle of ``bounds``.

        ``bounds`` is an ``(M, 4)`` array of ``(xmin, ymin, xmax, ymax)``
        rows (the layout of :meth:`repro.geometry.rect.Rect.as_tuple`).
        The base implementation loops over :meth:`probability_in_rect`;
        closed-form pdfs override it with an array kernel.
        """
        bounds = self._as_bounds_array(bounds)
        return np.fromiter(
            (
                self.probability_in_rect(Rect(row[0], row[1], row[2], row[3]))
                for row in bounds
            ),
            dtype=float,
            count=bounds.shape[0],
        )

    @staticmethod
    def _as_bounds_array(bounds: np.ndarray) -> np.ndarray:
        """Validate and coerce an ``(M, 4)`` rectangle-bounds array."""
        bounds = np.asarray(bounds, dtype=float)
        if bounds.ndim != 2 or bounds.shape[1] != 4:
            raise DistributionError(f"bounds must have shape (M, 4), got {bounds.shape}")
        return bounds

    # ------------------------------------------------------------------ #
    # Wire serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A JSON-safe, versioned description of this pdf.

        Decode with :func:`pdf_from_dict`; the reconstructed pdf computes
        probabilities bit-for-bit like the original (every shipped parameter
        round-trips exactly through JSON, and every derived quantity is
        recomputed by the same constructor arithmetic).  Third-party pdfs
        that want to cross the wire override this and register a decoder via
        :func:`register_pdf_codec`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not define a wire schema; override "
            "to_dict() and register a decoder with register_pdf_codec()"
        )

    @staticmethod
    def _rect_payload(region: Rect) -> list[float]:
        return [region.xmin, region.ymin, region.xmax, region.ymax]

    # ------------------------------------------------------------------ #
    # Convenience helpers shared by all implementations
    # ------------------------------------------------------------------ #
    def mean(self) -> Point:
        """Mean location (defaults to the region centre; subclasses may refine)."""
        return self.region.center

    def probability_outside_rect(self, rect: Rect) -> float:
        """Probability mass outside ``rect`` (clipped to ``[0, 1]``)."""
        return min(1.0, max(0.0, 1.0 - self.probability_in_rect(rect)))

    def _validate_probability(self, p: float) -> float:
        if not 0.0 <= p <= 1.0:
            raise DistributionError(f"probability must lie in [0, 1], got {p}")
        return p


class UniformPdf(UncertaintyPdf):
    """Uniform distribution over an axis-parallel rectangle.

    This is the paper's "worst-case" pdf (``fi(x, y) = 1 / |Ui|``) and the
    default in all experiments.  All quantities are closed-form.
    """

    has_closed_form = True

    def __init__(self, region: Rect) -> None:
        if region.is_empty:
            raise DistributionError("uncertainty region must be non-empty")
        if region.area == 0.0:
            raise DistributionError(
                "uniform pdf requires a region of positive area; "
                "use PointObject for degenerate locations"
            )
        self._region = region
        self._density = 1.0 / region.area

    @property
    def region(self) -> Rect:
        return self._region

    def probability_in_rect(self, rect: Rect) -> float:
        return self._region.intersection_area(rect) * self._density

    def probability_in_rects(self, bounds: np.ndarray) -> np.ndarray:
        bounds = self._as_bounds_array(bounds)
        region = self._region
        # Same arithmetic as the scalar path (overlap width × overlap height
        # × density), so the values are bitwise identical.
        ox = np.minimum(bounds[:, 2], region.xmax) - np.maximum(bounds[:, 0], region.xmin)
        oy = np.minimum(bounds[:, 3], region.ymax) - np.maximum(bounds[:, 1], region.ymin)
        np.maximum(ox, 0.0, out=ox)
        np.maximum(oy, 0.0, out=oy)
        return ox * oy * self._density

    def density(self, x: float, y: float) -> float:
        if self._region.contains_point(Point(x, y)):
            return self._density
        return 0.0

    def density_array(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        region = self._region
        inside = (
            (xs >= region.xmin)
            & (xs <= region.xmax)
            & (ys >= region.ymin)
            & (ys <= region.ymax)
        )
        return np.where(inside, self._density, 0.0)

    def marginal_cdf_x(self, x: float) -> float:
        return self._region.x_interval.fraction_below(x)

    def marginal_cdf_y(self, y: float) -> float:
        return self._region.y_interval.fraction_below(y)

    def marginal_quantile_x(self, p: float) -> float:
        self._validate_probability(p)
        return self._region.xmin + p * self._region.width

    def marginal_quantile_y(self, p: float) -> float:
        self._validate_probability(p)
        return self._region.ymin + p * self._region.height

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        xs = rng.uniform(self._region.xmin, self._region.xmax, size=n)
        ys = rng.uniform(self._region.ymin, self._region.ymax, size=n)
        return np.column_stack([xs, ys])

    def sample_into(self, rng: np.random.Generator, out: np.ndarray) -> None:
        n = out.shape[0]
        out[:, 0] = rng.uniform(self._region.xmin, self._region.xmax, size=n)
        out[:, 1] = rng.uniform(self._region.ymin, self._region.ymax, size=n)

    def sample_batch(self, rng: np.random.Generator, n: int, k: int) -> np.ndarray:
        # One flat standard-uniform draw scaled into the region: the same
        # low + (high - low) * u transform rng.uniform applies, but with a
        # single generator call for the whole batch.
        u = rng.random((2, k, n))
        region = self._region
        out = np.empty((k, n, 2), dtype=float)
        out[:, :, 0] = region.xmin + (region.xmax - region.xmin) * u[0]
        out[:, :, 1] = region.ymin + (region.ymax - region.ymin) * u[1]
        return out

    def to_dict(self) -> dict:
        return _tagged({"type": "uniform", "region": self._rect_payload(self._region)})


class TruncatedGaussianPdf(UncertaintyPdf):
    """Independent per-axis Gaussian truncated to the uncertainty region.

    This matches the paper's non-uniform experiment (Section 6.2): "the mean
    of the Gaussian distribution is the center of its uncertainty region,
    while the variance is one-sixth of the size of its uncertainty region".
    We interpret that as a per-axis standard deviation of ``extent / 6`` so
    that the region spans ±3σ; the constructor also accepts explicit sigmas.

    Rectangle probabilities are closed-form (products of truncated-normal CDF
    differences), so the engine can use the analytic path; the experiments
    nonetheless exercise the Monte-Carlo path against this pdf to reproduce
    Figure 13, where the paper treats the Gaussian as "no closed form".
    """

    has_closed_form = True

    def __init__(
        self,
        region: Rect,
        sigma_x: float | None = None,
        sigma_y: float | None = None,
    ) -> None:
        if region.is_empty or region.area == 0.0:
            raise DistributionError("uncertainty region must have positive area")
        self._region = region
        self._mu_x = region.center.x
        self._mu_y = region.center.y
        self._sigma_x = sigma_x if sigma_x is not None else max(region.width / 6.0, 1e-12)
        self._sigma_y = sigma_y if sigma_y is not None else max(region.height / 6.0, 1e-12)
        if self._sigma_x <= 0 or self._sigma_y <= 0:
            raise DistributionError("standard deviations must be positive")

        # Per-axis truncation masses (the Gaussian mass that falls inside the
        # region); used to renormalise CDFs so that the pdf integrates to one
        # over the region.
        self._x_dist = stats.norm(loc=self._mu_x, scale=self._sigma_x)
        self._y_dist = stats.norm(loc=self._mu_y, scale=self._sigma_y)
        self._x_lo_cdf = float(self._x_dist.cdf(region.xmin))
        self._x_hi_cdf = float(self._x_dist.cdf(region.xmax))
        self._y_lo_cdf = float(self._y_dist.cdf(region.ymin))
        self._y_hi_cdf = float(self._y_dist.cdf(region.ymax))
        self._x_mass = self._x_hi_cdf - self._x_lo_cdf
        self._y_mass = self._y_hi_cdf - self._y_lo_cdf
        if self._x_mass <= 0 or self._y_mass <= 0:
            raise DistributionError("truncation region carries no Gaussian mass")

    @property
    def region(self) -> Rect:
        return self._region

    @property
    def sigma(self) -> tuple[float, float]:
        """Per-axis standard deviations of the untruncated Gaussian."""
        return (self._sigma_x, self._sigma_y)

    def mean(self) -> Point:
        return Point(self._mu_x, self._mu_y)

    def _axis_prob_x(self, low: float, high: float) -> float:
        low = max(low, self._region.xmin)
        high = min(high, self._region.xmax)
        if high <= low:
            return 0.0
        return (float(self._x_dist.cdf(high)) - float(self._x_dist.cdf(low))) / self._x_mass

    def _axis_prob_y(self, low: float, high: float) -> float:
        low = max(low, self._region.ymin)
        high = min(high, self._region.ymax)
        if high <= low:
            return 0.0
        return (float(self._y_dist.cdf(high)) - float(self._y_dist.cdf(low))) / self._y_mass

    def probability_in_rect(self, rect: Rect) -> float:
        if rect.is_empty:
            return 0.0
        return self._axis_prob_x(rect.xmin, rect.xmax) * self._axis_prob_y(rect.ymin, rect.ymax)

    def probability_in_rects(self, bounds: np.ndarray) -> np.ndarray:
        bounds = self._as_bounds_array(bounds)
        region = self._region
        lox = np.maximum(bounds[:, 0], region.xmin)
        hix = np.minimum(bounds[:, 2], region.xmax)
        loy = np.maximum(bounds[:, 1], region.ymin)
        hiy = np.minimum(bounds[:, 3], region.ymax)
        px = np.where(
            hix > lox,
            (self._x_dist.cdf(hix) - self._x_dist.cdf(lox)) / self._x_mass,
            0.0,
        )
        py = np.where(
            hiy > loy,
            (self._y_dist.cdf(hiy) - self._y_dist.cdf(loy)) / self._y_mass,
            0.0,
        )
        return px * py

    def density(self, x: float, y: float) -> float:
        if not self._region.contains_point(Point(x, y)):
            return 0.0
        fx = float(self._x_dist.pdf(x)) / self._x_mass
        fy = float(self._y_dist.pdf(y)) / self._y_mass
        return fx * fy

    def density_array(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        region = self._region
        inside = (
            (xs >= region.xmin)
            & (xs <= region.xmax)
            & (ys >= region.ymin)
            & (ys <= region.ymax)
        )
        fx = self._x_dist.pdf(xs) / self._x_mass
        fy = self._y_dist.pdf(ys) / self._y_mass
        return np.where(inside, fx * fy, 0.0)

    def marginal_cdf_x(self, x: float) -> float:
        if x <= self._region.xmin:
            return 0.0
        if x >= self._region.xmax:
            return 1.0
        return (float(self._x_dist.cdf(x)) - self._x_lo_cdf) / self._x_mass

    def marginal_cdf_y(self, y: float) -> float:
        if y <= self._region.ymin:
            return 0.0
        if y >= self._region.ymax:
            return 1.0
        return (float(self._y_dist.cdf(y)) - self._y_lo_cdf) / self._y_mass

    def marginal_quantile_x(self, p: float) -> float:
        self._validate_probability(p)
        if p <= 0.0:
            return self._region.xmin
        if p >= 1.0:
            return self._region.xmax
        target = self._x_lo_cdf + p * self._x_mass
        return float(self._x_dist.ppf(target))

    def marginal_quantile_y(self, p: float) -> float:
        self._validate_probability(p)
        if p <= 0.0:
            return self._region.ymin
        if p >= 1.0:
            return self._region.ymax
        target = self._y_lo_cdf + p * self._y_mass
        return float(self._y_dist.ppf(target))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Inverse-transform sampling on the truncated marginals keeps the draw
        # count deterministic (rejection sampling would not).
        ux = rng.uniform(0.0, 1.0, size=n)
        uy = rng.uniform(0.0, 1.0, size=n)
        xs = self._x_dist.ppf(self._x_lo_cdf + ux * self._x_mass)
        ys = self._y_dist.ppf(self._y_lo_cdf + uy * self._y_mass)
        xs = np.clip(xs, self._region.xmin, self._region.xmax)
        ys = np.clip(ys, self._region.ymin, self._region.ymax)
        return np.column_stack([xs, ys])

    def sample_into(self, rng: np.random.Generator, out: np.ndarray) -> None:
        n = out.shape[0]
        ux = rng.uniform(0.0, 1.0, size=n)
        uy = rng.uniform(0.0, 1.0, size=n)
        xs = self._x_dist.ppf(self._x_lo_cdf + ux * self._x_mass)
        ys = self._y_dist.ppf(self._y_lo_cdf + uy * self._y_mass)
        np.clip(xs, self._region.xmin, self._region.xmax, out=out[:, 0])
        np.clip(ys, self._region.ymin, self._region.ymax, out=out[:, 1])

    def sample_batch(self, rng: np.random.Generator, n: int, k: int) -> np.ndarray:
        # One vectorized ppf evaluation for the whole batch — the ppf call
        # overhead, not the draw itself, dominates per-group sampling.
        ux = rng.uniform(0.0, 1.0, size=(k, n))
        uy = rng.uniform(0.0, 1.0, size=(k, n))
        xs = self._x_dist.ppf(self._x_lo_cdf + ux * self._x_mass)
        ys = self._y_dist.ppf(self._y_lo_cdf + uy * self._y_mass)
        out = np.empty((k, n, 2), dtype=float)
        np.clip(xs, self._region.xmin, self._region.xmax, out=out[:, :, 0])
        np.clip(ys, self._region.ymin, self._region.ymax, out=out[:, :, 1])
        return out

    def to_dict(self) -> dict:
        return _tagged(
            {
                "type": "gaussian",
                "region": self._rect_payload(self._region),
                "sigma": [self._sigma_x, self._sigma_y],
            },
        )


class HistogramPdf(UncertaintyPdf):
    """Piecewise-constant pdf over a regular grid of bins inside a rectangle.

    The paper stresses that its methods "can deal with any type of probability
    distribution about the object's location"; a histogram is the standard way
    such arbitrary distributions are shipped to a query processor.  Bin
    weights need not be normalised — the constructor normalises them.
    """

    has_closed_form = True

    def __init__(self, region: Rect, weights: Sequence[Sequence[float]]) -> None:
        if region.is_empty or region.area == 0.0:
            raise DistributionError("uncertainty region must have positive area")
        grid = np.asarray(weights, dtype=float)
        if grid.ndim != 2 or grid.size == 0:
            raise DistributionError("weights must be a non-empty 2-D array (rows = y bins)")
        if np.any(grid < 0):
            raise DistributionError("bin weights must be non-negative")
        total = float(grid.sum())
        if total <= 0:
            raise DistributionError("at least one bin weight must be positive")
        self._region = region
        # The caller's (pre-normalisation) weights are what the wire schema
        # ships: re-normalising the normalised grid would not be bitwise
        # stable (its sum is only approximately 1), replaying the original
        # weights through this constructor is.
        self._weights = grid
        self._grid = grid / total
        self._ny, self._nx = grid.shape
        self._bin_w = region.width / self._nx
        self._bin_h = region.height / self._ny

    @property
    def region(self) -> Rect:
        return self._region

    @property
    def shape(self) -> tuple[int, int]:
        """Grid shape as ``(ny, nx)``."""
        return (self._ny, self._nx)

    def _bin_rect(self, ix: int, iy: int) -> Rect:
        x0 = self._region.xmin + ix * self._bin_w
        y0 = self._region.ymin + iy * self._bin_h
        return Rect(x0, y0, x0 + self._bin_w, y0 + self._bin_h)

    def probability_in_rect(self, rect: Rect) -> float:
        clipped = rect.intersect(self._region)
        if clipped.is_empty:
            return 0.0
        total = 0.0
        # Only the bins overlapping the clipped rectangle contribute.
        ix_lo = max(0, int((clipped.xmin - self._region.xmin) / self._bin_w))
        ix_hi = min(self._nx - 1, int((clipped.xmax - self._region.xmin) / self._bin_w))
        iy_lo = max(0, int((clipped.ymin - self._region.ymin) / self._bin_h))
        iy_hi = min(self._ny - 1, int((clipped.ymax - self._region.ymin) / self._bin_h))
        for iy in range(iy_lo, iy_hi + 1):
            for ix in range(ix_lo, ix_hi + 1):
                weight = self._grid[iy, ix]
                if weight == 0.0:
                    continue
                cell = self._bin_rect(ix, iy)
                fraction = cell.intersection_area(clipped) / cell.area
                total += weight * fraction
        return min(1.0, total)

    def density(self, x: float, y: float) -> float:
        if not self._region.contains_point(Point(x, y)):
            return 0.0
        ix = min(self._nx - 1, int((x - self._region.xmin) / self._bin_w))
        iy = min(self._ny - 1, int((y - self._region.ymin) / self._bin_h))
        cell_area = self._bin_w * self._bin_h
        return self._grid[iy, ix] / cell_area

    def density_array(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        region = self._region
        inside = (
            (xs >= region.xmin)
            & (xs <= region.xmax)
            & (ys >= region.ymin)
            & (ys <= region.ymax)
        )
        # Bin indices follow the scalar rule: truncate, then clamp to the last
        # bin so points on the far edge land in the final row/column.  The
        # lower clamp only protects the lookup for out-of-region points,
        # whose density is masked to zero below anyway.
        ix = np.clip(((xs - region.xmin) / self._bin_w).astype(int), 0, self._nx - 1)
        iy = np.clip(((ys - region.ymin) / self._bin_h).astype(int), 0, self._ny - 1)
        cell_area = self._bin_w * self._bin_h
        return np.where(inside, self._grid[iy, ix] / cell_area, 0.0)

    def marginal_cdf_x(self, x: float) -> float:
        return self.probability_in_rect(
            Rect(self._region.xmin, self._region.ymin, x, self._region.ymax)
        )

    def marginal_cdf_y(self, y: float) -> float:
        return self.probability_in_rect(
            Rect(self._region.xmin, self._region.ymin, self._region.xmax, y)
        )

    def _invert_monotone(self, cdf, low: float, high: float, p: float) -> float:
        for _ in range(60):
            mid = (low + high) / 2.0
            if cdf(mid) < p:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    def marginal_quantile_x(self, p: float) -> float:
        self._validate_probability(p)
        if p <= 0.0:
            return self._region.xmin
        if p >= 1.0:
            return self._region.xmax
        return self._invert_monotone(self.marginal_cdf_x, self._region.xmin, self._region.xmax, p)

    def marginal_quantile_y(self, p: float) -> float:
        self._validate_probability(p)
        if p <= 0.0:
            return self._region.ymin
        if p >= 1.0:
            return self._region.ymax
        return self._invert_monotone(self.marginal_cdf_y, self._region.ymin, self._region.ymax, p)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        flat = self._grid.ravel()
        choices = rng.choice(flat.size, size=n, p=flat)
        iys, ixs = np.divmod(choices, self._nx)
        xs = self._region.xmin + (ixs + rng.uniform(0.0, 1.0, size=n)) * self._bin_w
        ys = self._region.ymin + (iys + rng.uniform(0.0, 1.0, size=n)) * self._bin_h
        return np.column_stack([xs, ys])

    def to_dict(self) -> dict:
        return _tagged(
            {
                "type": "histogram",
                "region": self._rect_payload(self._region),
                "weights": self._weights.tolist(),
            },
        )


class UniformCirclePdf(UncertaintyPdf):
    """Uniform distribution over a disc — the non-rectangular extension.

    The paper's conclusion mentions supporting non-rectangular uncertainty
    regions; a uniform disc (the usual privacy "cloaking circle") is the
    simplest useful case.  Rectangle probabilities use the circle–rectangle
    intersection area, so they are numerical but deterministic.
    """

    has_closed_form = False

    def __init__(self, circle: Circle, *, resolution: int = 256) -> None:
        if circle.radius <= 0:
            raise DistributionError("circle radius must be positive")
        self._circle = circle
        self._resolution = resolution
        self._region = circle.bounding_rect()
        self._density = 1.0 / circle.area

    @property
    def region(self) -> Rect:
        return self._region

    @property
    def circle(self) -> Circle:
        """The circular support of the pdf."""
        return self._circle

    def probability_in_rect(self, rect: Rect) -> float:
        area = self._circle.intersection_area_with_rect(rect, resolution=self._resolution)
        return min(1.0, area * self._density)

    def density(self, x: float, y: float) -> float:
        if self._circle.contains_point(Point(x, y)):
            return self._density
        return 0.0

    def density_array(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        center = self._circle.center
        # The scalar test uses math.hypot; np.hypot applies the same
        # correctly-rounded algorithm, keeping boundary decisions aligned.
        inside = np.hypot(xs - center.x, ys - center.y) <= self._circle.radius
        return np.where(inside, self._density, 0.0)

    def marginal_cdf_x(self, x: float) -> float:
        c, r = self._circle.center, self._circle.radius
        if x <= c.x - r:
            return 0.0
        if x >= c.x + r:
            return 1.0
        t = (x - c.x) / r
        # Area of the circular segment left of x, normalised by the disc area.
        return (t * math.sqrt(1 - t * t) + math.asin(t)) / math.pi + 0.5

    def marginal_cdf_y(self, y: float) -> float:
        c, r = self._circle.center, self._circle.radius
        if y <= c.y - r:
            return 0.0
        if y >= c.y + r:
            return 1.0
        t = (y - c.y) / r
        return (t * math.sqrt(1 - t * t) + math.asin(t)) / math.pi + 0.5

    def _invert(self, cdf, low: float, high: float, p: float) -> float:
        for _ in range(60):
            mid = (low + high) / 2.0
            if cdf(mid) < p:
                low = mid
            else:
                high = mid
        return (low + high) / 2.0

    def marginal_quantile_x(self, p: float) -> float:
        self._validate_probability(p)
        return self._invert(self.marginal_cdf_x, self._region.xmin, self._region.xmax, p)

    def marginal_quantile_y(self, p: float) -> float:
        self._validate_probability(p)
        return self._invert(self.marginal_cdf_y, self._region.ymin, self._region.ymax, p)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Uniform sampling on a disc via the radius/angle transform.
        radii = self._circle.radius * np.sqrt(rng.uniform(0.0, 1.0, size=n))
        angles = rng.uniform(0.0, 2.0 * math.pi, size=n)
        xs = self._circle.center.x + radii * np.cos(angles)
        ys = self._circle.center.y + radii * np.sin(angles)
        return np.column_stack([xs, ys])

    def to_dict(self) -> dict:
        return _tagged(
            {
                "type": "circle",
                "center": [self._circle.center.x, self._circle.center.y],
                "radius": self._circle.radius,
                "resolution": self._resolution,
            },
        )


# --------------------------------------------------------------------------- #
# Wire decoding
# --------------------------------------------------------------------------- #
def _require(payload, field: str):
    from repro.core.wire import require

    return require(payload, PDF_SCHEMA, field)


def _decode_region(payload) -> Rect:
    xmin, ymin, xmax, ymax = (float(v) for v in payload)
    return Rect(xmin, ymin, xmax, ymax)


def _decode_uniform(payload) -> UniformPdf:
    return UniformPdf(_decode_region(_require(payload, "region")))


def _decode_gaussian(payload) -> TruncatedGaussianPdf:
    sigma_x, sigma_y = (float(v) for v in _require(payload, "sigma"))
    return TruncatedGaussianPdf(
        _decode_region(_require(payload, "region")),
        sigma_x=sigma_x,
        sigma_y=sigma_y,
    )


def _decode_histogram(payload) -> HistogramPdf:
    return HistogramPdf(
        _decode_region(_require(payload, "region")),
        _require(payload, "weights"),
    )


def _decode_circle(payload) -> UniformCirclePdf:
    x, y = (float(v) for v in _require(payload, "center"))
    return UniformCirclePdf(
        Circle(Point(x, y), float(_require(payload, "radius"))),
        resolution=int(_require(payload, "resolution")),
    )


#: ``type`` discriminator → decoder.  Third-party pdfs register here.
_PDF_CODECS: dict[str, "object"] = {
    "uniform": _decode_uniform,
    "gaussian": _decode_gaussian,
    "histogram": _decode_histogram,
    "circle": _decode_circle,
}


def register_pdf_codec(type_name: str, decoder) -> None:
    """Register a decoder for a third-party pdf's wire ``type``.

    ``decoder`` takes the checked payload mapping and returns the pdf; the
    class's :meth:`UncertaintyPdf.to_dict` must emit the same ``type``.
    """
    _PDF_CODECS[str(type_name)] = decoder


def pdf_from_dict(payload) -> UncertaintyPdf:
    """Decode a pdf from its :meth:`UncertaintyPdf.to_dict` payload."""
    from repro.core.wire import check_schema

    from repro.core.errors import SchemaError

    payload = check_schema(payload, PDF_SCHEMA)
    type_name = _require(payload, "type")
    decoder = _PDF_CODECS.get(type_name)
    if decoder is None:
        raise SchemaError(
            f"unknown pdf type {type_name!r}; known types: {sorted(_PDF_CODECS)}"
        )
    return decoder(payload)
