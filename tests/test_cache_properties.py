"""Property test: the result cache is invisible to query semantics.

A Hypothesis-driven interleaved stream of queries and insert/delete/move
mutations, run against two independently built engine stacks over the same
data — one with the cache enabled, one without — must produce bitwise
identical answers at every position.  The cache can never serve a stale
answer (mutations bump the epoch embedded in every key) nor a cross-config
answer (the configuration fingerprint is embedded too), and under the
``query_keyed`` draw plan even Monte-Carlo answers are cacheable because a
query's draws depend only on its content.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import ResultCache
from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase, UncertainDatabase
from repro.core.queries import NearestNeighborQuery, RangeQuery, RangeQuerySpec
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

SPACE = Rect(0.0, 0.0, 2_000.0, 2_000.0)
SPEC = RangeQuerySpec.square(300.0)

#: A fixed pool of issuers so the generated streams naturally repeat
#: queries (repetition is what exercises cache hits).  The Gaussian issuers
#: route their probability computations through Monte-Carlo sampling.
ISSUERS = [
    UncertainObject(
        oid=10_000 + position,
        pdf=UniformPdf(Rect.from_center(Point(x, y), 150.0, 150.0)),
    ).with_catalog()
    for position, (x, y) in enumerate([(400.0, 400.0), (1_200.0, 900.0)])
] + [
    UncertainObject(
        oid=10_100 + position,
        pdf=TruncatedGaussianPdf(Rect.from_center(Point(x, y), 150.0, 150.0)),
    ).with_catalog()
    for position, (x, y) in enumerate([(700.0, 1_300.0), (1_000.0, 600.0)])
]


def _base_points() -> list[PointObject]:
    return [
        PointObject.at(i, 37.0 + (i * 97.0) % 1_900.0, 53.0 + (i * 61.0) % 1_900.0)
        for i in range(120)
    ]


def _base_uncertain() -> list[UncertainObject]:
    objects = []
    for i in range(80):
        center = Point(91.0 + (i * 83.0) % 1_800.0, 71.0 + (i * 59.0) % 1_800.0)
        region = Rect.from_center(center, 20.0 + (i % 5) * 8.0, 25.0 + (i % 4) * 7.0)
        objects.append(UncertainObject(oid=1_000 + i, pdf=UniformPdf(region)).with_catalog())
    return objects


def _query_op(draw_issuer, kind, threshold):
    issuer = ISSUERS[draw_issuer]
    if kind == "nn":
        return ("query", NearestNeighborQuery(issuer=issuer, samples=48))
    target = "points" if kind in ("ipq", "cipq") else "uncertain"
    qp = threshold if kind in ("cipq", "ciuq") else 0.0
    return ("query", RangeQuery(issuer=issuer, spec=SPEC, threshold=qp, target=target))


_ops = st.one_of(
    st.builds(
        _query_op,
        st.integers(min_value=0, max_value=len(ISSUERS) - 1),
        st.sampled_from(["ipq", "cipq", "iuq", "ciuq", "nn"]),
        st.sampled_from([0.2, 0.5]),
    ),
    st.builds(
        lambda x, y: ("insert", x, y),
        st.floats(min_value=10.0, max_value=1_990.0),
        st.floats(min_value=10.0, max_value=1_990.0),
    ),
    st.builds(lambda i: ("delete", i), st.integers(min_value=0, max_value=119)),
    st.builds(
        lambda i, x, y: ("move", i, x, y),
        st.integers(min_value=0, max_value=119),
        st.floats(min_value=10.0, max_value=1_990.0),
        st.floats(min_value=10.0, max_value=1_990.0),
    ),
)


def _build_engine(cache: ResultCache | None) -> ImpreciseQueryEngine:
    config = EngineConfig(draw_plan="query_keyed", cache=cache, monte_carlo_samples=48)
    return ImpreciseQueryEngine(
        point_db=PointDatabase.build(_base_points()),
        uncertain_db=UncertainDatabase.build(_base_uncertain()),
        config=config,
    )


def _apply(engine: ImpreciseQueryEngine, ops) -> list[dict]:
    answers = []
    next_oid = [500]
    for op in ops:
        if op[0] == "query":
            answers.append(engine.evaluate(op[1]).probabilities())
        elif op[0] == "insert":
            engine.insert(PointObject.at(next_oid[0], op[1], op[2]))
            next_oid[0] += 1
        elif op[0] == "delete":
            if op[1] in engine.point_db and len(engine.point_db) > 1:
                engine.delete(op[1], target="points")
        else:  # move
            if op[1] in engine.point_db:
                engine.move(op[1], x=op[2], y=op[3], target="points")
    return answers


@settings(max_examples=20, deadline=None)
@given(st.lists(_ops, min_size=4, max_size=24))
def test_cached_stream_bitwise_identical_to_uncached(ops):
    """Interleaved queries + mutations: cached answers == uncached, bitwise.

    Floating-point dict equality is exact, so any cache entry surviving a
    relevant mutation — or any draw depending on query position — would
    fail this property immediately.
    """
    cache = ResultCache(capacity=64)
    cached = _apply(_build_engine(cache), ops)
    uncached = _apply(_build_engine(None), ops)
    assert cached == uncached


@settings(max_examples=10, deadline=None)
@given(st.lists(_ops, min_size=6, max_size=24))
def test_repeated_stream_hits_cache(ops):
    """Replaying a stream twice without mutations in between serves hits."""
    queries = [op for op in ops if op[0] == "query"]
    if not queries:
        return
    cache = ResultCache(capacity=256)
    engine = _build_engine(cache)
    first = _apply(engine, queries)
    hits_before = cache.stats.hits
    second = _apply(engine, queries)
    assert second == first
    # No mutation ran in between, so every replayed query is a hit.
    assert cache.stats.hits == hits_before + len(queries)
