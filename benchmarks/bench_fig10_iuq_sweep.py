"""Figure 10 — IUQ response time vs uncertainty-region size for several range sizes.

Same sweep as Figure 9 but over the uncertain-object (Long-Beach-like)
database; expected shape is identical (cost grows with both ``u`` and ``w``),
with higher absolute values because every candidate needs an Equation-8
integration instead of a point containment test.
"""

import pytest

from repro.core.queries import RangeQuery
from repro.core.engine import ImpreciseQueryEngine

from benchmarks.conftest import workload_for

U_VALUES = [100.0, 250.0, 500.0, 1000.0]
W_VALUES = [500.0, 1000.0, 1500.0]


@pytest.mark.parametrize("w", W_VALUES)
@pytest.mark.parametrize("u", U_VALUES)
def test_iuq_response_time(benchmark, uncertain_db_rtree, u, w):
    """One point of Figure 10: IUQ at issuer size ``u`` and range size ``w``."""
    engine = ImpreciseQueryEngine(uncertain_db=uncertain_db_rtree)
    workload = workload_for(u, w)
    issuer = next(workload.issuers(1))
    spec = workload.spec
    result = benchmark(lambda: engine.evaluate(RangeQuery.iuq(issuer, spec)))
    assert result.statistics.candidates_examined >= 0
