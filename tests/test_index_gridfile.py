"""Unit tests for the grid-file index."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.index.gridfile import GridFile
from repro.uncertainty.region import PointObject

SPACE = Rect(0.0, 0.0, 1000.0, 1000.0)


def _objects(n: int, seed: int = 0) -> list[PointObject]:
    rng = np.random.default_rng(seed)
    return [
        PointObject.at(i, float(x), float(y))
        for i, (x, y) in enumerate(
            zip(rng.uniform(0.0, 1000.0, size=n), rng.uniform(0.0, 1000.0, size=n))
        )
    ]


class TestConstruction:
    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            GridFile(Rect.empty())

    def test_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            GridFile(SPACE, cells_per_axis=0)

    def test_rejects_empty_mbr_insert(self):
        grid = GridFile(SPACE)
        with pytest.raises(ValueError):
            grid.insert(Rect.empty(), "x")

    def test_bulk_load(self):
        grid = GridFile.bulk_load(_objects(100), bounds=SPACE, cells_per_axis=16)
        assert len(grid) == 100
        assert grid.cells_per_axis == 16


class TestQueries:
    @pytest.fixture()
    def grid(self):
        objects = _objects(400, seed=4)
        return GridFile.bulk_load(objects, bounds=SPACE, cells_per_axis=20), objects

    def test_range_search_matches_brute_force(self, grid):
        index, objects = grid
        query = Rect(100.0, 200.0, 400.0, 600.0)
        expected = {o.oid for o in objects if query.contains_point(o.location)}
        assert {o.oid for o in index.range_search(query)} == expected

    def test_whole_space_returns_everything(self, grid):
        index, objects = grid
        assert len(index.range_search(SPACE)) == len(objects)

    def test_empty_query(self, grid):
        index, _ = grid
        assert index.range_search(Rect.empty()) == []

    def test_query_outside_bounds(self, grid):
        index, _ = grid
        assert index.range_search(Rect(2000.0, 2000.0, 3000.0, 3000.0)) == []

    def test_no_duplicates_for_spanning_rectangles(self):
        grid = GridFile(SPACE, cells_per_axis=10)
        big = Rect(50.0, 50.0, 650.0, 650.0)  # spans many cells
        grid.insert(big, "big")
        results = grid.range_search(Rect(0.0, 0.0, 1000.0, 1000.0))
        assert results == ["big"]

    def test_bucket_access_counting(self, grid):
        index, _ = grid
        index.stats.reset()
        index.range_search(Rect(0.0, 0.0, 100.0, 100.0))
        small = index.stats.node_accesses
        index.stats.reset()
        index.range_search(SPACE)
        full = index.stats.node_accesses
        assert 0 < small < full
        assert full == index.cells_per_axis ** 2
