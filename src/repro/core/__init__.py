"""Core query model and evaluation engines — the paper's contribution.

The package is organised around the paper's structure:

* :mod:`repro.core.queries` — query and answer types (IPQ, IUQ, C-IPQ, C-IUQ).
* :mod:`repro.core.basic` — the basic evaluation method of Section 3.3
  (direct numerical integration of Equations 2 and 4).
* :mod:`repro.core.expansion` — query expansion via the Minkowski sum
  (Section 4.1) and the p-expanded-query (Section 5.1).
* :mod:`repro.core.duality` — query–data duality probability computation
  (Section 4.2, Lemmas 2–4).
* :mod:`repro.core.pruning` — threshold pruning strategies (Section 5.2).
* :mod:`repro.core.database` — live point / uncertain databases with epoch
  counters that invalidate every derived cache.
* :mod:`repro.core.plan` — per-query execution plans (candidate window,
  index probe, pruner, draw-plan slot, cache key).
* :mod:`repro.core.pipeline` — the staged
  plan → cache? → candidates → prune → evaluate → merge runner shared by
  the serial engine, per-shard execution and the parallel worker loop.
* :mod:`repro.core.cache` — the epoch-keyed LRU result cache consulted and
  filled by the pipeline in every engine.
* :mod:`repro.core.engine` — the serial engine front over the pipeline
  (Sections 4.3 and 5.3).
* :mod:`repro.core.columnar` — columnar database snapshots backing the
  vectorized (NumPy) evaluation paths.
* :mod:`repro.core.nearest` — imprecise nearest-neighbour extension
  (the paper's future work).
* :mod:`repro.core.sharding` — spatial partitioning of databases into
  independently indexed shards, with window / best-distance shard routing
  and live per-shard mutation (insert/delete/move, hot-shard re-splits).
* :mod:`repro.core.parallel` — shard-parallel workload execution across
  worker processes, with results identical to the single-shard engine.
* :mod:`repro.core.updates` — ordered insert/delete/move batches that both
  engines apply directly or interleave with query workloads, plus the
  mutation-observer hook continuous subscriptions listen on.
* :mod:`repro.core.continuous` — standing query subscriptions maintained
  incrementally: affected-only re-evaluation after each update, with
  ordered JOIN/LEAVE/SCORE_CHANGE answer deltas.
* :mod:`repro.core.quality` — answer-quality metrics (expected cardinality,
  precision, recall) for reasoning about the privacy/quality trade-off.
* :mod:`repro.core.errors` — the typed exception hierarchy shared by the
  engines and the serving layer (every subclass keeps the builtin its call
  sites historically raised as a second base).
* :mod:`repro.core.wire` — shared plumbing for the versioned ``to_dict`` /
  ``from_dict`` wire schemas used by :mod:`repro.serve` and the CLI client.
"""

from repro.core.queries import (
    RangeQuerySpec,
    ImpreciseRangeQuery,
    Query,
    RangeQuery,
    NearestNeighborQuery,
    Evaluation,
    QueryAnswer,
    QueryResult,
    query_from_dict,
)
from repro.core.errors import (
    BackpressureError,
    ConfigurationError,
    InvalidQueryError,
    InvalidUpdateError,
    ReproError,
    SchemaError,
    SchemaVersionError,
    UnknownObjectError,
)
from repro.core.wire import WIRE_VERSION, check_schema, tagged
from repro.core.expansion import (
    minkowski_expanded_query,
    p_expanded_query,
    p_expanded_query_from_catalog,
)
from repro.core.columnar import ColumnarPoints, ColumnarUncertain
from repro.core.duality import (
    ipq_probabilities,
    ipq_probabilities_monte_carlo,
    ipq_probability,
    ipq_probability_monte_carlo,
    iuq_probabilities_exact_uniform,
    iuq_probabilities_monte_carlo,
    iuq_probability,
    iuq_probability_exact_uniform,
    iuq_probability_monte_carlo,
)
from repro.core.basic import (
    BasicEvaluator,
    basic_ipq_probabilities,
    basic_ipq_probability,
    basic_iuq_probabilities,
    basic_iuq_probability,
    issuer_grid_arrays,
)
from repro.core.pruning import CIPQPruner, CIUQPruner, PruneDecision, PruningStrategy
from repro.core.statistics import EvaluationStatistics, aggregate_statistics
from repro.core.cache import CachedAnswer, CacheStats, ResultCache
from repro.core.continuous import (
    AnswerDelta,
    DeltaKind,
    Subscription,
    SubscriptionRegistry,
    replay_deltas,
)
from repro.core.database import PointDatabase, UncertainDatabase
from repro.core.engine import (
    ImpreciseQueryEngine,
    EngineConfig,
)
from repro.core.nearest import ImpreciseNearestNeighborEngine
from repro.core.plan import QueryPlan, plan_query, query_fingerprint
from repro.core.pipeline import QueryPipeline
from repro.core.sharding import Shard, ShardedDatabase
from repro.core.updates import MutationObservable, UpdateBatch, UpdateEvent, UpdateOp
from repro.core.parallel import ParallelEngine, ParallelEvaluation, ShardTiming
from repro.core.session import (
    NearestNeighborQueryBuilder,
    RangeQueryBuilder,
    Session,
    SessionStats,
)
from repro.core.quality import (
    expected_cardinality,
    expected_precision,
    expected_recall,
    certainty_score,
    f_score,
    threshold_sweep,
)

__all__ = [
    "RangeQuerySpec",
    "query_from_dict",
    "ReproError",
    "ConfigurationError",
    "InvalidQueryError",
    "InvalidUpdateError",
    "UnknownObjectError",
    "BackpressureError",
    "SchemaError",
    "SchemaVersionError",
    "WIRE_VERSION",
    "tagged",
    "check_schema",
    "ImpreciseRangeQuery",
    "Query",
    "RangeQuery",
    "NearestNeighborQuery",
    "Evaluation",
    "QueryAnswer",
    "QueryResult",
    "Session",
    "RangeQueryBuilder",
    "NearestNeighborQueryBuilder",
    "minkowski_expanded_query",
    "p_expanded_query",
    "p_expanded_query_from_catalog",
    "ipq_probabilities",
    "ipq_probabilities_monte_carlo",
    "ipq_probability",
    "ipq_probability_monte_carlo",
    "iuq_probabilities_exact_uniform",
    "iuq_probabilities_monte_carlo",
    "iuq_probability",
    "iuq_probability_exact_uniform",
    "iuq_probability_monte_carlo",
    "BasicEvaluator",
    "basic_ipq_probabilities",
    "basic_ipq_probability",
    "basic_iuq_probabilities",
    "basic_iuq_probability",
    "issuer_grid_arrays",
    "ColumnarPoints",
    "ColumnarUncertain",
    "CIPQPruner",
    "CIUQPruner",
    "PruneDecision",
    "PruningStrategy",
    "EvaluationStatistics",
    "aggregate_statistics",
    "PointDatabase",
    "UncertainDatabase",
    "ImpreciseQueryEngine",
    "EngineConfig",
    "ImpreciseNearestNeighborEngine",
    "CachedAnswer",
    "CacheStats",
    "ResultCache",
    "QueryPlan",
    "QueryPipeline",
    "plan_query",
    "query_fingerprint",
    "SessionStats",
    "Shard",
    "ShardedDatabase",
    "MutationObservable",
    "UpdateBatch",
    "UpdateEvent",
    "UpdateOp",
    "AnswerDelta",
    "DeltaKind",
    "Subscription",
    "SubscriptionRegistry",
    "replay_deltas",
    "ParallelEngine",
    "ParallelEvaluation",
    "ShardTiming",
    "expected_cardinality",
    "expected_precision",
    "expected_recall",
    "certainty_score",
    "f_score",
    "threshold_sweep",
]
