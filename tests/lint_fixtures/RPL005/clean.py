# lint-fixture-path: repro/core/example.py
"""Complete wire contracts: tagged payloads with decode paths."""

from repro.core.wire import check_schema, require, tagged

ANSWER_SCHEMA = "repro.example.answer"


class Answer:
    def __init__(self, oid, score):
        self.oid = oid
        self.score = score

    def to_dict(self):
        return tagged(ANSWER_SCHEMA, {"oid": self.oid, "score": self.score})

    @classmethod
    def from_dict(cls, payload):
        payload = check_schema(payload, ANSWER_SCHEMA)
        return cls(require(payload, ANSWER_SCHEMA, "oid"), payload.get("score"))


class PluginPdf:
    """Decoded through the module codec registry, keyed by 'type'."""

    def to_dict(self):
        return _tagged({"type": "plugin", "params": []})


def _decode_plugin(payload):
    return PluginPdf()


_PDF_CODECS = {"plugin": _decode_plugin}


class DerivedAnswer(Answer):
    def to_dict(self):
        payload = super().to_dict()
        payload["extra"] = True
        return payload

    @classmethod
    def from_dict(cls, payload):
        base = Answer.from_dict(payload)
        return cls(base.oid, base.score)
