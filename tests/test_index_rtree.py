"""Unit tests for the R-tree."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.uncertainty.region import PointObject


def _random_rects(n: int, seed: int = 0, space: float = 1000.0) -> list[tuple[Rect, int]]:
    rng = np.random.default_rng(seed)
    rects = []
    for i in range(n):
        x = rng.uniform(0.0, space)
        y = rng.uniform(0.0, space)
        w = rng.uniform(1.0, 20.0)
        h = rng.uniform(1.0, 20.0)
        rects.append((Rect(x, y, x + w, y + h), i))
    return rects


def _brute_force(pairs: list[tuple[Rect, int]], query: Rect) -> set[int]:
    return {item for mbr, item in pairs if mbr.overlaps(query)}


class TestConstruction:
    def test_capacity_derived_from_page_size(self):
        tree = RTree(page_size=4096, entry_size=40)
        assert tree.max_entries == 102

    def test_explicit_capacity(self):
        tree = RTree(max_entries=8, min_entries=3)
        assert tree.max_entries == 8
        assert tree.min_entries == 3

    def test_invalid_min_entries_rejected(self):
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)

    def test_empty_tree(self):
        tree = RTree(max_entries=4)
        assert len(tree) == 0
        assert tree.height == 1
        assert tree.range_search(Rect(0.0, 0.0, 10.0, 10.0)) == []


class TestInsertion:
    def test_insert_and_count(self):
        tree = RTree(max_entries=4)
        for mbr, item in _random_rects(50):
            tree.insert(mbr, item)
        assert len(tree) == 50
        tree.check_invariants()

    def test_insert_empty_rect_rejected(self):
        tree = RTree(max_entries=4)
        with pytest.raises(ValueError):
            tree.insert(Rect.empty(), "x")

    def test_tree_grows_in_height(self):
        tree = RTree(max_entries=4)
        for mbr, item in _random_rects(100):
            tree.insert(mbr, item)
        assert tree.height >= 3

    def test_incremental_range_search_matches_brute_force(self):
        pairs = _random_rects(300, seed=3)
        tree = RTree(max_entries=8)
        for mbr, item in pairs:
            tree.insert(mbr, item)
        tree.check_invariants()
        for query_seed in range(10):
            rng = np.random.default_rng(query_seed)
            x, y = rng.uniform(0.0, 900.0, size=2)
            query = Rect(x, y, x + 150.0, y + 150.0)
            assert set(tree.range_search(query)) == _brute_force(pairs, query)

    def test_duplicate_rectangles_supported(self):
        tree = RTree(max_entries=4)
        mbr = Rect(0.0, 0.0, 1.0, 1.0)
        for i in range(20):
            tree.insert(mbr, i)
        assert len(tree.range_search(mbr)) == 20


class TestBulkLoad:
    def test_bulk_load_point_objects(self):
        objects = [PointObject.at(i, float(i), float(i * 2 % 97)) for i in range(500)]
        tree = RTree.bulk_load(objects, max_entries=16)
        assert len(tree) == 500
        tree.check_invariants()

    def test_bulk_load_matches_brute_force(self):
        pairs = _random_rects(400, seed=7)
        items = [type("Item", (), {"mbr": mbr, "value": value})() for mbr, value in pairs]
        tree = RTree.bulk_load(items, max_entries=10)
        query = Rect(100.0, 100.0, 400.0, 350.0)
        expected = {item.value for item in items if item.mbr.overlaps(query)}
        found = {item.value for item in tree.range_search(query)}
        assert found == expected

    def test_bulk_load_into_non_empty_tree_rejected(self):
        tree = RTree(max_entries=4)
        tree.insert(Rect(0.0, 0.0, 1.0, 1.0), 0)
        with pytest.raises(RuntimeError):
            tree._bulk_load_pairs([(Rect(0.0, 0.0, 1.0, 1.0), 1)])

    def test_bulk_load_empty_iterable_rejected(self):
        with pytest.raises(ValueError, match="cannot index an empty collection"):
            RTree.bulk_load([])

    def test_bulk_loaded_tree_is_shallower_than_incremental(self):
        pairs = _random_rects(600, seed=11)
        incremental = RTree(max_entries=8)
        for mbr, item in pairs:
            incremental.insert(mbr, item)
        packed = RTree.bulk_load(
            [type("Item", (), {"mbr": mbr, "value": v})() for mbr, v in pairs], max_entries=8
        )
        assert packed.node_count <= incremental.node_count


class TestQueries:
    @pytest.fixture()
    def loaded_tree(self):
        pairs = _random_rects(400, seed=5)
        tree = RTree(max_entries=8)
        for mbr, item in pairs:
            tree.insert(mbr, item)
        return tree, pairs

    def test_empty_query_returns_nothing(self, loaded_tree):
        tree, _ = loaded_tree
        assert tree.range_search(Rect.empty()) == []

    def test_whole_space_query_returns_everything(self, loaded_tree):
        tree, pairs = loaded_tree
        assert len(tree.range_search(Rect(-10.0, -10.0, 2000.0, 2000.0))) == len(pairs)

    def test_node_access_counting(self, loaded_tree):
        tree, _ = loaded_tree
        tree.stats.reset()
        tree.range_search(Rect(0.0, 0.0, 100.0, 100.0))
        small_accesses = tree.stats.node_accesses
        tree.stats.reset()
        tree.range_search(Rect(0.0, 0.0, 1000.0, 1000.0))
        large_accesses = tree.stats.node_accesses
        assert 0 < small_accesses < large_accesses

    def test_items_iterates_everything(self, loaded_tree):
        tree, pairs = loaded_tree
        assert sorted(tree.items()) == sorted(item for _, item in pairs)

    def test_bounds_cover_all_items(self, loaded_tree):
        tree, pairs = loaded_tree
        bounds = tree.bounds()
        assert all(bounds.contains_rect(mbr) for mbr, _ in pairs)

    def test_range_search_filtered_entry_filter(self, loaded_tree):
        tree, pairs = loaded_tree
        query = Rect(0.0, 0.0, 1000.0, 1000.0)
        evens = tree.range_search_filtered(query, entry_filter=lambda e: e.item % 2 == 0)
        assert evens
        assert all(item % 2 == 0 for item in evens)

    def test_range_search_filtered_node_filter_can_prune_everything(self, loaded_tree):
        tree, _ = loaded_tree
        query = Rect(0.0, 0.0, 1000.0, 1000.0)
        nothing = tree.range_search_filtered(query, node_filter=lambda node: False)
        # Only items stored directly in the root (if it is a leaf) could
        # survive; with 400 items the root is internal, so nothing survives.
        assert nothing == []


class TestNearestNeighbors:
    def test_nearest_neighbor_matches_brute_force(self):
        objects = [
            PointObject.at(i, float((i * 37) % 500), float((i * 91) % 500))
            for i in range(200)
        ]
        tree = RTree.bulk_load(objects, max_entries=8)
        query_point = Point(123.0, 456.0)
        expected = min(objects, key=lambda o: o.location.distance_to(query_point))
        found = tree.nearest_neighbors(query_point, k=1)[0]
        assert found.location.distance_to(query_point) == pytest.approx(
            expected.location.distance_to(query_point)
        )

    def test_k_nearest_ordering(self):
        objects = [PointObject.at(i, float(i * 10), 0.0) for i in range(20)]
        tree = RTree.bulk_load(objects, max_entries=4)
        found = tree.nearest_neighbors(Point(0.0, 0.0), k=5)
        assert [o.oid for o in found] == [0, 1, 2, 3, 4]

    def test_k_larger_than_size(self):
        objects = [PointObject.at(i, float(i), 0.0) for i in range(3)]
        tree = RTree.bulk_load(objects)
        assert len(tree.nearest_neighbors(Point(0.0, 0.0), k=10)) == 3

    def test_invalid_k_rejected(self):
        tree = RTree.bulk_load([PointObject.at(0, 0.0, 0.0)])
        with pytest.raises(ValueError):
            tree.nearest_neighbors(Point(0.0, 0.0), k=0)

    def test_empty_tree_returns_nothing(self):
        tree = RTree(max_entries=4)
        assert tree.nearest_neighbors(Point(0.0, 0.0), k=3) == []


class TestDeletion:
    def test_delete_removes_exactly_one_item(self):
        pairs = _random_rects(120, seed=9)
        tree = RTree(max_entries=4)
        for rect, i in pairs:
            tree.insert(rect, i)
        rect, victim = pairs[37]
        tree.delete(rect, victim)
        assert len(tree) == 119
        query = Rect(0.0, 0.0, 1_000.0, 1_000.0)
        assert set(tree.range_search(query)) == _brute_force(pairs, query) - {victim}
        tree.check_invariants()

    def test_delete_unknown_item_raises(self):
        tree = RTree(max_entries=4)
        tree.insert(Rect(0.0, 0.0, 10.0, 10.0), "a")
        with pytest.raises(KeyError):
            tree.delete(Rect(0.0, 0.0, 10.0, 10.0), "b")
        with pytest.raises(KeyError):
            tree.delete(Rect(5.0, 5.0, 6.0, 6.0), "a")

    def test_delete_from_bulk_loaded_tree(self):
        pairs = _random_rects(200, seed=13)
        items = [PointObject.at(i, rect.center.x, rect.center.y) for rect, i in pairs]
        tree = RTree.bulk_load(items, max_entries=8)
        for item in items[:100]:
            tree.delete(item.mbr, item)
            tree.check_invariants()
        survivors = {item.oid for item in tree.range_search(Rect(0.0, 0.0, 2_000.0, 2_000.0))}
        assert survivors == {item.oid for item in items[100:]}

    def test_delete_shrinks_height(self):
        pairs = _random_rects(300, seed=17)
        tree = RTree(max_entries=4)
        for rect, i in pairs:
            tree.insert(rect, i)
        tall = tree.height
        for rect, i in pairs[:295]:
            tree.delete(rect, i)
        tree.check_invariants()
        assert tree.height < tall
        assert len(tree) == 5

    def test_update_relocates_item(self):
        pairs = _random_rects(60, seed=21)
        tree = RTree(max_entries=4)
        for rect, i in pairs:
            tree.insert(rect, i)
        rect, item = pairs[11]
        destination = Rect(2_000.0, 2_000.0, 2_010.0, 2_010.0)
        tree.update(rect, destination, item)
        tree.check_invariants()
        assert len(tree) == 60
        assert item in tree.range_search(Rect(1_990.0, 1_990.0, 2_020.0, 2_020.0))
        assert item not in tree.range_search(rect)

    def test_update_with_replacement_payload(self):
        tree = RTree(max_entries=4)
        old = PointObject.at(1, 10.0, 10.0)
        tree.insert(old.mbr, old)
        new = PointObject.at(1, 500.0, 500.0)
        tree.update(old.mbr, new.mbr, old, replacement=new)
        (found,) = tree.range_search(Rect(499.0, 499.0, 501.0, 501.0))
        assert found is new
