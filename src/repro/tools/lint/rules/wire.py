"""RPL005 — wire-schema completeness: every encoder has a decoder and a tag.

A class that ships ``to_dict`` payloads is a wire contract.  The contract
is complete only when

1. the payload is *versioned* — built through ``tagged(...)`` / a
   ``*_SCHEMA`` constant (or by delegating to another ``to_dict``), so a
   reader can reject payloads from an incompatible build, and
2. something can *decode* it — a ``from_dict`` on the same class, or (for
   the pdf plugin surface) a codec registered for the payload's ``"type"``
   discriminator in the module's codec table.

An encoder without a decoder is how one-way payloads sneak into snapshots
and wire traffic, discovered only when somebody finally tries to read one.

Beyond the per-file AST check, this module registers *import-time
cross-checks* run by ``lint_paths``: the live ``wire_code`` → class table
in :mod:`repro.serve.schemas` must cover every :class:`repro.errors.ReproError`
subclass bijectively, and the pdf codec registry must hold callables.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import (
    Diagnostic,
    Module,
    Rule,
    register,
    register_cross_check,
)
from repro.tools.lint.rules._ast_helpers import classes, only_raises, referenced_names


def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name == name:
                return stmt
    return None


def _has_schema_tag(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when the body versions its payload (or delegates to one that does)."""
    for name in referenced_names(func):
        if (
            "tagged" in name.lower()
            or name.endswith("_SCHEMA")
            or name == "SCHEMA_VERSION"
        ):
            return True
        # super().to_dict() / other.to_dict() delegation inherits the tag.
        if name == "to_dict":
            return True
    return False


def _type_discriminators(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """String literals bound to a ``"type"`` key in dicts built by ``func``."""
    literals: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "type"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                literals.add(value.value)
    return literals


def _registered_codec_keys(tree: ast.Module) -> set[str]:
    """``"type"`` keys the module registers a decoder for.

    Covers both the literal registry dict (``_PDF_CODECS = {"uniform": …}``)
    and explicit ``register_pdf_codec("name", …)`` calls.
    """
    keys: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            raw_targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            targets = [t.id for t in raw_targets if isinstance(t, ast.Name)]
            if any("CODEC" in name.upper() for name in targets) and isinstance(
                node.value, ast.Dict
            ):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        keys.add(key.value)
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            if name and "register" in name and "codec" in name:
                if node.args and isinstance(node.args[0], ast.Constant):
                    if isinstance(node.args[0].value, str):
                        keys.add(node.args[0].value)
    return keys


@register
class WireCompleteness(Rule):
    rule_id = "RPL005"
    severity = "error"
    description = (
        "a class with to_dict needs a from_dict or a registered codec for "
        "its 'type' discriminator, and its payload must carry a schema tag"
    )

    def applies_to(self, module: Module) -> bool:
        # Dev tooling (this analyzer included) emits one-way JSON for CI
        # consumption — not a wire contract anything decodes.
        return module.in_package("repro/") and not module.in_package("repro/tools/")

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        codec_keys = _registered_codec_keys(module.tree)
        for cls in classes(module.tree):
            to_dict = _method(cls, "to_dict")
            if to_dict is None or only_raises(to_dict):
                continue  # no encoder, or abstract must-override stub
            if not _has_schema_tag(to_dict):
                yield (
                    to_dict.lineno,
                    f"{cls.name}.to_dict builds an unversioned payload: wrap "
                    "it with tagged(<SCHEMA>, ...) so decoders can reject "
                    "payloads from incompatible builds",
                )
            if _method(cls, "from_dict") is not None:
                continue
            discriminators = _type_discriminators(to_dict)
            if discriminators and discriminators <= codec_keys:
                continue  # decodable via the module's codec registry
            yield (
                cls.lineno,
                f"{cls.name} defines to_dict but no decode path: add a "
                "from_dict classmethod, or register a codec for its 'type' "
                "discriminator — one-way payloads fail at read time",
            )


@register_cross_check
def _check_error_wire_codes() -> list[Diagnostic]:
    """Every ReproError subclass must round-trip through the serve decode table."""
    from repro.errors import ReproError
    from repro.serve.schemas import _ERROR_CLASSES

    diagnostics: list[Diagnostic] = []
    stack: list[type[ReproError]] = [ReproError]
    seen: dict[str, type[ReproError]] = {}
    while stack:
        cls = stack.pop()
        stack.extend(cls.__subclasses__())
        code = cls.wire_code
        if code in seen and seen[code] is not cls:
            diagnostics.append(
                Diagnostic(
                    "RPL005",
                    "error",
                    "repro/errors.py",
                    1,
                    f"duplicate wire_code {code!r}: {seen[code].__name__} and "
                    f"{cls.__name__} cannot both decode from it",
                )
            )
        seen[code] = cls
        if _ERROR_CLASSES.get(code) is None:
            diagnostics.append(
                Diagnostic(
                    "RPL005",
                    "error",
                    "repro/serve/schemas.py",
                    1,
                    f"error class {cls.__name__} (wire_code {code!r}) is "
                    "missing from the serve decode table",
                )
            )
    return diagnostics


@register_cross_check
def _check_pdf_codecs() -> list[Diagnostic]:
    """The pdf codec registry must exist, be non-empty, and hold callables."""
    from repro.uncertainty.pdf import _PDF_CODECS

    diagnostics: list[Diagnostic] = []
    if not _PDF_CODECS:
        diagnostics.append(
            Diagnostic(
                "RPL005",
                "error",
                "repro/uncertainty/pdf.py",
                1,
                "the pdf codec registry is empty: no pdf payload can decode",
            )
        )
    for key, decoder in _PDF_CODECS.items():
        if not callable(decoder):
            diagnostics.append(
                Diagnostic(
                    "RPL005",
                    "error",
                    "repro/uncertainty/pdf.py",
                    1,
                    f"pdf codec {key!r} is not callable",
                )
            )
    return diagnostics
