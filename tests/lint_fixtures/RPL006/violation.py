# lint-fixture-path: repro/core/pipeline.py
"""Ambient-state reads inside replay-executed pipeline code."""

import os
import time
import uuid
from datetime import datetime


def evaluate(query):
    started = time.time()
    token = uuid.uuid4()
    stamp = datetime.now()
    worker = os.getpid()
    return started, token, stamp, worker
