"""Shard-parallel workload execution over shared-memory snapshots.

:class:`ParallelEngine` runs whole workloads against a
:class:`~repro.core.sharding.ShardedDatabase`: a shard planner routes every
query to only the shards its expanded window (Minkowski-expanded for range
queries, best-distance-bounded for nearest-neighbour queries) can touch, the
routed per-shard batches execute either in-process or on a persistent pool
of worker processes, and the per-shard partial results are merged back into
ordinary :class:`~repro.core.queries.Evaluation` envelopes — answers in
global oid order, work counters summed, and per-shard wall-clock attribution
attached (:class:`ParallelEvaluation.shard_timings`).

Per-shard execution is the *same staged pipeline* the serial engine runs
(:mod:`repro.core.pipeline`): this engine owns no evaluation code of its
own, only routing, the worker pool and the merge.  The result-cache stage,
however, runs **here in the parent**, not inside the shards: a cache entry
must hold a whole-query answer, and fills performed inside pool workers
would die with the worker anyway.  Cache keys embed the *per-shard epoch
vector* of the routed shards (plus the sharded database's structure
version), so a mutation in one shard does not evict answers that only
touched others — the fine-grained invalidation a single global epoch cannot
give.

**Worker protocol.**  No bulk data crosses the pool pipes in either
direction.  Each shard's snapshot — columnar arrays laid out raw, object
list and index pickled once — lives in a named shared-memory block published
by a :class:`~repro.core.shm.SnapshotStore`; workers attach by name and map
the arrays zero-copy.  Tasks carry only :class:`~repro.core.plan.PlanToken`
records (a few hundred bytes per query) plus the block name; results travel
the same way in reverse — the worker packs ``(oid, probability)`` answer
arrays and :class:`~repro.core.statistics.StatsPack` counter rows into a
one-shot block (:func:`~repro.core.shm.publish_arrays`) and ships back just
its name, which the parent consumes and unlinks.  Because attachment is by
*name*, the protocol works under any start method: ``fork`` is used where
available (cheapest), ``spawn`` everywhere else — macOS and Windows get real
parallelism, not a serial fallback.  Set ``REPRO_PARALLEL_START_METHOD`` to
force a method.

Results are **identical** to a single-shard
:class:`~repro.core.engine.ImpreciseQueryEngine` running the same workload
under a position-independent draw plan (``draw_plan="per_oid"``, which this
engine forces when handed the streaming plan, or ``"query_keyed"``): the
shards partition the objects, pruning decisions are per-object, and every
Monte-Carlo draw is a pure function of ``(rng_seed, draw token, oid)`` — so
sampled probabilities match bitwise no matter how the objects are spread
over shards or how many workers run them.  One caveat applies to
nearest-neighbour queries: when two objects are at *exactly* the same
distance from a sampled position, the sharded merge breaks the tie towards
the smaller oid while the single-shard engine keeps whichever its R-tree
traversal found first.  Under the continuous pdfs used throughout this
reproduction exact ties have probability zero; datasets with symmetric,
grid-aligned point layouts can hit them.

The engine also carries the live-mutation surface (``insert`` / ``delete``
/ ``move`` / ``apply_updates``, with :class:`~repro.core.updates.UpdateBatch`
items accepted inline in ``evaluate_many``): mutations route to the owning
shard through :class:`ShardedDatabase`, and the **pool survives** — the next
parallel batch republishes just the mutated shard's snapshot under a fresh
versioned name, and workers re-attach on the name mismatch.  Updates consume
no query sequence numbers, so the per-oid parity guarantee extends to live
data: a mutated sharded database answers bitwise-identically to a
from-scratch rebuild of the same final collection.  Worker processes are
reused across :meth:`ParallelEngine.evaluate_many` calls; call
:meth:`ParallelEngine.close` (or use the engine as a context manager) to
release them and unlink the shared-memory blocks.
"""

from __future__ import annotations

import contextlib
import hashlib
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.core.cache import copy_statistics, fill_allowed
from repro.core.engine import EngineConfig
from repro.core.errors import ConfigurationError, EngineStateError, InvalidArgumentError
from repro.core.expansion import minkowski_expanded_query
from repro.core.nearest import nn_query_draws
from repro.core.pipeline import DEFAULT_NN_SAMPLES, QueryPipeline, partition_workload
from repro.core.plan import PlanToken, query_cache_key, resolve_draw_token
from repro.core.queries import (
    Evaluation,
    NearestNeighborQuery,
    Query,
    QueryAnswer,
    QueryResult,
    RangeQuery,
)
from repro.core.sharding import Shard, ShardedDatabase
from repro.core.shm import (
    AttachedSnapshot,
    SnapshotStore,
    publish_arrays,
    read_arrays,
)
from repro.core.statistics import EvaluationStatistics, StatsPack
from repro.core.updates import (
    UpdateBatch,
    apply_update_op,
    pick_mutation_database,
    resolve_move_target,
)
from repro.uncertainty.region import PointObject, UncertainObject

#: Environment knob forcing the pool start method (``fork`` / ``spawn`` /
#: ``forkserver``).  Unset, the engine picks ``fork`` where available.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"

#: Environment knob (any non-empty value) disabling the cpu-count clamp on
#: the worker count.  The clamp exists because pooling *costs* on an
#: oversubscribed host — task serialization plus context switches with no
#: spare core to run on, a measured ~3x slowdown on single-core containers —
#: so ``workers=4`` on one core silently degrades to serial shard execution.
#: Tests that assert real pool behaviour (distinct worker pids, published
#: snapshot blocks) set this to opt back into oversubscription.
FORCE_WORKERS_ENV = "REPRO_PARALLEL_FORCE_WORKERS"


@dataclass(frozen=True)
class ShardTiming:
    """Wall-clock seconds one shard spent on one query."""

    sid: int
    seconds: float


@dataclass(frozen=True)
class ParallelEvaluation(Evaluation):
    """An :class:`Evaluation` carrying per-shard timing attribution.

    ``elapsed_seconds`` is the slowest shard's time (the parallel critical
    path); ``statistics.response_time`` sums the shards' times (the total
    work performed); ``shard_timings`` breaks that total down per shard.
    An answer served from the result cache carries no shard timings — no
    shard ran.
    """

    shard_timings: tuple[ShardTiming, ...] = ()

    def to_dict(self) -> dict:
        """The :meth:`Evaluation.to_dict` payload plus ``shard_timings`` rows."""
        payload = super().to_dict()
        payload["shard_timings"] = [[t.sid, t.seconds] for t in self.shard_timings]
        return payload

    @classmethod
    def from_dict(cls, payload) -> "ParallelEvaluation":
        """Decode a :meth:`to_dict` payload (``shard_timings`` optional)."""
        base = Evaluation.from_dict(payload)
        return cls(
            query=base.query,
            result=base.result,
            statistics=base.statistics,
            elapsed_seconds=base.elapsed_seconds,
            shard_timings=tuple(
                ShardTiming(sid=int(sid), seconds=float(seconds))
                for sid, seconds in payload.get("shard_timings", [])
            ),
        )


@dataclass
class _RangePartial:
    """One shard's contribution to a range query."""

    result: QueryResult
    statistics: EvaluationStatistics
    elapsed_seconds: float


@dataclass
class _NNPartial:
    """One shard's per-draw nearest-neighbour winners."""

    oids: np.ndarray
    distances: np.ndarray
    statistics: EvaluationStatistics
    elapsed_seconds: float


# --------------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ShardTask:
    """One pool task: routed plan tokens against one shard snapshot.

    Everything here is a few hundred bytes — the snapshot *name*, not the
    snapshot; plan tokens, not queries.  The config digest guards against a
    task reaching a worker initialised under a different configuration
    (impossible through the public API, cheap to verify).
    """

    kind: str
    sid: int
    block_name: str
    config_digest: str
    #: ``(position, query_seq, token)`` triples per query family.
    range_items: tuple[tuple[int, int, PlanToken], ...]
    nn_items: tuple[tuple[int, int, PlanToken], ...]


@dataclass(frozen=True)
class _AnswerPack:
    """One query's packed partial answer (flattened into the result block)."""

    kind: str
    position: int
    #: Answer oids (range) or per-draw winner oids (nearest-neighbour).
    oids: np.ndarray
    #: Qualification probabilities (range) or winner distances (nearest).
    values: np.ndarray
    stats: StatsPack
    elapsed_seconds: float


@dataclass(frozen=True)
class _ShardResult:
    """Everything one task sends back *over the pipe*: a block name.

    The answer data itself — packed oid/probability arrays and the per-pack
    counter rows — lives in a one-shot shared-memory block the worker
    published (:func:`repro.core.shm.publish_arrays`); the parent attaches,
    copies the arrays out and unlinks it.  Only the pruning-strategy names
    ride along here (short memoized strings; everything else in the block is
    numeric).
    """

    sid: int
    pid: int
    block_name: str
    pruned_names: tuple[str, ...]


#: Order assigning integer codes to answer-pack kinds inside result blocks.
_PACK_KINDS = ("range", "nn")


def _pack_answers(
    packs: list[_AnswerPack],
) -> tuple[dict[str, np.ndarray], tuple[str, ...]]:
    """Flatten a task's answer packs into the arrays of one result block.

    ``meta`` rows are ``(position, kind code, answer count)``; ``timing``
    rows ``(response_time, elapsed_seconds)``; ``counters`` rows the five
    scalar work counters followed by the five I/O counters; ``pruned`` rows
    the per-strategy pruned counts (−1 marking a strategy absent from that
    pack, since 0 is a recordable count).  ``oids`` / ``values`` concatenate
    every pack's answer arrays in row order.
    """
    pruned_names: list[str] = []
    for pack in packs:
        for strategy, _ in pack.stats.pruned:
            if strategy not in pruned_names:
                pruned_names.append(strategy)
    rows = len(packs)
    meta = np.zeros((rows, 3), dtype=np.int64)
    timing = np.zeros((rows, 2), dtype=np.float64)
    counters = np.zeros((rows, 9), dtype=np.int64)
    pruned = np.full((rows, len(pruned_names)), -1, dtype=np.int64)
    for row, pack in enumerate(packs):
        stats = pack.stats
        meta[row] = (pack.position, _PACK_KINDS.index(pack.kind), pack.oids.size)
        timing[row] = (stats.response_time, pack.elapsed_seconds)
        counters[row] = (
            stats.candidates_examined,
            stats.probability_computations,
            stats.monte_carlo_samples,
            stats.results_returned,
            *stats.io,
        )
        for strategy, count in stats.pruned:
            pruned[row, pruned_names.index(strategy)] = count
    arrays = {
        "meta": meta,
        "timing": timing,
        "counters": counters,
        "pruned": pruned,
        "oids": (
            np.concatenate([pack.oids for pack in packs])
            if packs
            else np.zeros(0, dtype=np.int64)
        ),
        "values": (
            np.concatenate([pack.values for pack in packs])
            if packs
            else np.zeros(0, dtype=np.float64)
        ),
    }
    return arrays, tuple(pruned_names)


def _unpack_answers(
    arrays: dict[str, np.ndarray], pruned_names: tuple[str, ...]
) -> list[_AnswerPack]:
    """Rebuild the answer packs of one result block (inverse of pack)."""
    packs: list[_AnswerPack] = []
    offset = 0
    meta = arrays["meta"]
    for row in range(meta.shape[0]):
        position, kind_code, count = (int(value) for value in meta[row])
        counters = arrays["counters"][row]
        stats = StatsPack(
            response_time=float(arrays["timing"][row, 0]),
            candidates_examined=int(counters[0]),
            probability_computations=int(counters[1]),
            monte_carlo_samples=int(counters[2]),
            results_returned=int(counters[3]),
            pruned=tuple(
                (strategy, int(pruned_count))
                for strategy, pruned_count in zip(pruned_names, arrays["pruned"][row])
                if pruned_count >= 0
            ),
            io=tuple(int(value) for value in counters[4:9]),
        )
        packs.append(
            _AnswerPack(
                kind=_PACK_KINDS[kind_code],
                position=position,
                oids=arrays["oids"][offset : offset + count],
                values=arrays["values"][offset : offset + count],
                stats=stats,
                elapsed_seconds=float(arrays["timing"][row, 1]),
            )
        )
        offset += count
    return packs


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
#: Per-process worker state: the engine configuration (set once by the pool
#: initializer) and the attached snapshots/pipelines, keyed by (kind, sid).
#: A worker holds at most one snapshot per shard; a task naming a different
#: block than the attached one means the shard was republished — drop the
#: old attachment and re-attach.  No locks: each worker process owns its own
#: copy of these globals.
_WORKER_CONFIG: EngineConfig | None = None
_WORKER_SNAPSHOTS: dict[tuple[str, int], AttachedSnapshot] = {}
_WORKER_PIPELINES: dict[tuple[str, int], QueryPipeline] = {}


def _worker_init(config_blob: bytes) -> None:
    """Pool initializer: install the engine configuration (cache stripped)."""
    global _WORKER_CONFIG
    _WORKER_CONFIG = pickle.loads(config_blob)


def _worker_pid() -> int:
    """No-op task used to spin up and identify workers."""
    return os.getpid()


def _worker_attach(kind: str, sid: int, name: str) -> QueryPipeline:
    """The pipeline over one shard snapshot, (re-)attaching on staleness."""
    key = (kind, sid)
    snapshot = _WORKER_SNAPSHOTS.get(key)
    if snapshot is None or snapshot.name != name:
        if snapshot is not None:
            _WORKER_PIPELINES.pop(key, None)
            snapshot.close()
        snapshot = AttachedSnapshot(name)
        _WORKER_SNAPSHOTS[key] = snapshot
        if kind == "points":
            pipeline = QueryPipeline(
                point_db=snapshot.database, config=_WORKER_CONFIG, cache=None
            )
        else:
            pipeline = QueryPipeline(
                uncertain_db=snapshot.database, config=_WORKER_CONFIG, cache=None
            )
        _WORKER_PIPELINES[key] = pipeline
    return _WORKER_PIPELINES[key]


def execute_token_items(
    pipeline: QueryPipeline,
    config: EngineConfig,
    range_items: Iterable[tuple[int, int, PlanToken]],
    nn_items: Iterable[tuple[int, int, PlanToken]],
) -> list[_AnswerPack]:
    """Run routed plan tokens through one shard pipeline, packing the answers.

    The single shard-side execution routine: both the shared-memory pool
    worker (:func:`_worker_run`) and the RPC shard daemon
    (:mod:`repro.rpc.shardd`) call it, so the two transports cannot drift in
    how queries are rebuilt from tokens, how draws are keyed, or how the
    partial answers are packed.  Items are ``(position, query_seq, token)``
    triples; the result preserves range-before-nn pack order.
    """
    answers: list[_AnswerPack] = []
    range_items = list(range_items)
    if range_items:
        batch = [token.to_query() for _, _, token in range_items]
        seqs = [int(seq) for _, seq, _ in range_items]
        evaluations = pipeline.run_batch(batch, seqs)
        for (position, _, _), evaluation in zip(range_items, evaluations):
            rows = evaluation.result.answers
            answers.append(
                _AnswerPack(
                    kind="range",
                    position=position,
                    oids=np.fromiter(
                        (a.oid for a in rows), dtype=np.int64, count=len(rows)
                    ),
                    values=np.fromiter(
                        (a.probability for a in rows),
                        dtype=np.float64,
                        count=len(rows),
                    ),
                    stats=StatsPack.from_statistics(evaluation.statistics),
                    elapsed_seconds=evaluation.elapsed_seconds,
                )
            )
    for position, seq, token in nn_items:
        query = token.to_query()
        samples = token.samples if token.samples is not None else DEFAULT_NN_SAMPLES
        draw_token = resolve_draw_token(config, query, seq)
        draws = nn_query_draws(query.issuer.pdf, samples, config.rng_seed, draw_token)
        nn_engine = pipeline.nearest_engine(samples)
        oids, distances, stats = nn_engine.per_draw_winners(draws)
        answers.append(
            _AnswerPack(
                kind="nn",
                position=position,
                oids=oids,
                values=distances,
                stats=StatsPack.from_statistics(stats),
                elapsed_seconds=stats.response_time,
            )
        )
    return answers


def _worker_run(task: _ShardTask) -> _ShardResult:
    """Run one shard task inside a pool worker.

    Rebuilds queries from their plan tokens, runs them through the very same
    staged pipeline the serial engine uses (over the zero-copy snapshot) and
    packs the answers into flat arrays for the trip back.
    """
    config = _WORKER_CONFIG
    if config is None:
        raise EngineStateError("worker used before its pool initializer ran")
    if task.config_digest != _config_digest(config):
        raise EngineStateError(
            "task configuration does not match this worker's configuration"
        )
    pipeline = _worker_attach(task.kind, task.sid, task.block_name)
    answers = execute_token_items(pipeline, config, task.range_items, task.nn_items)
    arrays, pruned_names = _pack_answers(answers)
    return _ShardResult(
        sid=task.sid,
        pid=os.getpid(),
        block_name=publish_arrays(arrays),
        pruned_names=pruned_names,
    )


def _config_digest(config: EngineConfig) -> str:
    """A short stable digest of a configuration fingerprint (wire-friendly)."""
    return hashlib.blake2b(
        repr(config.fingerprint()).encode(), digest_size=8
    ).hexdigest()


class ParallelEngine:
    """Evaluates workloads across the shards of a :class:`ShardedDatabase`.

    Drop-in compatible with :class:`ImpreciseQueryEngine` for the query
    surface (``evaluate`` / ``evaluate_many`` / ``config`` / database
    properties), so a :class:`~repro.core.session.Session` can swap one in
    transparently.  ``workers=1`` (the default) executes the routed shard
    batches serially in-process; ``workers > 1`` fans them out over a
    persistent pool of worker processes fed through shared memory.
    """

    engine_kind = "parallel"

    def __init__(
        self,
        *,
        point_db: ShardedDatabase | None = None,
        uncertain_db: ShardedDatabase | None = None,
        config: EngineConfig | None = None,
        workers: int | None = None,
    ) -> None:
        if point_db is None and uncertain_db is None:
            raise ConfigurationError("the engine needs at least one sharded database to query")
        if point_db is not None and point_db.kind != "points":
            raise ConfigurationError("point_db must be a ShardedDatabase of kind 'points'")
        if uncertain_db is not None and uncertain_db.kind != "uncertain":
            raise ConfigurationError("uncertain_db must be a ShardedDatabase of kind 'uncertain'")
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self._point_db = point_db
        self._uncertain_db = uncertain_db
        config = config if config is not None else EngineConfig()
        if config.draw_plan == "stream":
            # Sharded execution is only well-defined under a position- or
            # content-keyed plan: the streaming plan ties draws to batch
            # composition, which no shard can reproduce.  (stream + cache is
            # already rejected by EngineConfig itself.)
            config = config.with_overrides(draw_plan="per_oid")
        self._config = config
        self._config_fingerprint = config.fingerprint()
        self._config_digest = _config_digest(config)
        requested = 1 if workers is None else int(workers)
        self._requested_workers = requested
        # Clamp to the machine: pooling on an oversubscribed core is strictly
        # slower than serial shard execution (there is nothing to run the
        # extra processes on, and the task traffic still costs), so excess
        # workers fall back to the in-process path.
        if os.environ.get(FORCE_WORKERS_ENV):
            self._workers = requested
        else:
            self._workers = min(requested, os.cpu_count() or 1)
        self._query_seq = 0
        self._pool: ProcessPoolExecutor | None = None
        self._store = SnapshotStore()
        self._observed_worker_pids: set[int] = set()
        #: When True, every pool task and result is additionally pickled in
        #: the parent to account IPC bytes (benchmark instrumentation; off by
        #: default because the extra pickling is pure overhead).
        self.ipc_accounting = False
        self._ipc_task_bytes = 0
        self._ipc_result_bytes = 0
        self._result_shm_bytes = 0

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def config(self) -> EngineConfig:
        """The engine configuration (draw plan never ``"stream"``)."""
        return self._config

    @property
    def point_db(self) -> ShardedDatabase | None:
        """The sharded point-object database, if any."""
        return self._point_db

    @property
    def uncertain_db(self) -> ShardedDatabase | None:
        """The sharded uncertain-object database, if any."""
        return self._uncertain_db

    @property
    def workers(self) -> int:
        """Effective worker-process count (1 = serial in-process).

        May sit below :attr:`requested_workers` on machines with fewer cores
        than requested workers (see :data:`FORCE_WORKERS_ENV`).
        """
        return self._workers

    @property
    def requested_workers(self) -> int:
        """The worker count the caller asked for, before the cpu clamp."""
        return self._requested_workers

    def reconfigured(self, config: EngineConfig) -> "ParallelEngine":
        """A fresh engine of the same class, databases shared, new config.

        The polymorphic hook :meth:`Session.with_config` uses so a subclass
        (e.g. the RPC :class:`~repro.rpc.engine.RemoteEngine`) is not
        silently downgraded to a local pool when its session is re-tuned.
        """
        return type(self)(
            point_db=self._point_db,
            uncertain_db=self._uncertain_db,
            config=config,
            workers=self._requested_workers,
        )

    @property
    def snapshot_store(self) -> SnapshotStore:
        """The shared-memory snapshot store backing the worker pool."""
        return self._store

    @property
    def observed_worker_pids(self) -> frozenset[int]:
        """Pids of every pool worker that has returned a result or ping."""
        return frozenset(self._observed_worker_pids)

    @property
    def ipc_task_bytes(self) -> int:
        """Serialized task bytes accounted while ``ipc_accounting`` was on."""
        return self._ipc_task_bytes

    @property
    def ipc_result_bytes(self) -> int:
        """Serialized result bytes accounted while ``ipc_accounting`` was on."""
        return self._ipc_result_bytes

    @property
    def result_shm_bytes(self) -> int:
        """One-shot result-block bytes accounted while ``ipc_accounting`` was on.

        These bytes move through shared memory, not the pool pipes — kept
        separate from :attr:`ipc_result_bytes` so benchmarks can report both
        the serialized traffic and the total answer volume.
        """
        return self._result_shm_bytes

    def reset_ipc_accounting(self) -> None:
        """Zero the IPC byte counters."""
        self._ipc_task_bytes = 0
        self._ipc_result_bytes = 0
        self._result_shm_bytes = 0

    def warm(self) -> None:
        """Start the pool, publish every shard snapshot, await the workers.

        Optional — the first parallel batch does all of this lazily — but
        separating spin-up from query time lets benchmarks report the two
        costs apart, and a server can pay the spin-up before taking traffic.
        No-op for ``workers=1``.
        """
        if self._workers <= 1:
            return
        for kind in ("points", "uncertain"):
            database = self._point_db if kind == "points" else self._uncertain_db
            if database is None:
                continue
            for shard in database.non_empty_shards():
                self._store.ensure(kind, shard.sid, shard.database)
        pool = self._ensure_pool()
        for future in [pool.submit(_worker_pid) for _ in range(self._workers)]:
            self._observed_worker_pids.add(future.result())

    def close(self) -> None:
        """Shut down the worker pool and unlink every shared-memory block.

        The engine stays usable afterwards: the next parallel batch starts a
        fresh pool and republishes snapshots into a fresh store.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._store.close()
        self._store = SnapshotStore()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # Last-resort cleanup so engines dropped without close() release
        # their workers and shared-memory blocks.  Unlike close(), the pool
        # shutdown must not block: __del__ can run during interpreter
        # teardown, where waiting on worker processes may hang or raise.
        try:
            pool = self.__dict__.get("_pool")
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            store = self.__dict__.get("_store")
            if store is not None:
                store.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def evaluate(self, query: Query) -> Evaluation:
        """Evaluate one query across the shards it routes to."""
        return self.evaluate_many([query])[0]

    def evaluate_many(self, queries: Iterable[Query | UpdateBatch]) -> list[Evaluation]:
        """Evaluate a workload shard-parallel, preserving input order.

        Each query is routed to the shards its window can touch, the routed
        per-shard batches run through the shared staged pipeline (one
        pipeline per shard), and the partial results are merged.  Queries
        whose window misses every shard return empty evaluations without
        touching any worker; queries answerable from the result cache are
        served in the parent without routing any shard work at all.

        An :class:`~repro.core.updates.UpdateBatch` may be interleaved with
        the queries: it is applied at exactly its position in the stream
        (earlier queries see the old data, later ones the new) and produces
        no :class:`Evaluation`.  The worker pool survives the mutation —
        only the owning shard's snapshot is republished, and workers
        re-attach to it on their next task.  Updates consume no query
        sequence numbers, so the surrounding queries' per-oid Monte-Carlo
        draws are unaffected — a live-updated sharded database answers
        bitwise-identically to a from-scratch rebuild of the same final
        collection.
        """
        evaluations: list[Evaluation] = []
        for kind, payload in partition_workload(queries):
            if kind == "updates":
                self.apply_updates(payload)
            else:
                evaluations.extend(self._run_query_batch(payload))
        return evaluations

    # ------------------------------------------------------------------ #
    # Cache stage (parent-side)
    # ------------------------------------------------------------------ #
    def _cache_key(self, query: Query, kind: str, shards: list[Shard]) -> Hashable:
        """The sharded cache key: structure version + routed epoch vector.

        Only the *routed* shards' epochs participate, so a mutation in a
        shard the query never touches leaves the entry reachable.  The
        structure version guards against ``(sid, epoch)`` collisions across
        wholesale database replacements (re-splits restart epochs at zero).
        """
        database = self._require(kind)
        scope = (
            "shards",
            kind,
            database.uid,
            database.version,
            tuple((shard.sid, shard.database.epoch) for shard in shards),
        )
        return (scope, query_cache_key(query), self._config_fingerprint)

    def _run_query_batch(self, batch: list[Query]) -> list[Evaluation]:
        """Consult the cache, then route, execute and merge the misses."""
        base_seq = self._query_seq
        self._query_seq += len(batch)
        cache = self._config.cache

        evaluations: list[Evaluation | None] = [None] * len(batch)
        fill_keys: dict[int, Hashable] = {}
        tasks: dict[tuple[str, int], list[tuple[int, int, Query]]] = {}
        for position, query in enumerate(batch):
            seq = base_seq + position
            kind = "points" if self._targets_points(query) else "uncertain"
            shards = self._route(query)
            if cache is not None:
                started = time.perf_counter()
                key = self._cache_key(query, kind, shards)
                entry = cache.lookup(key, query.issuer)
                if entry is not None:
                    result, stats = entry.materialise()
                    evaluations[position] = ParallelEvaluation(
                        query=query,
                        result=result,
                        statistics=stats,
                        elapsed_seconds=time.perf_counter() - started,
                        shard_timings=(),
                    )
                    continue
                fill_keys[position] = key
            for shard in shards:
                tasks.setdefault((kind, shard.sid), []).append((position, seq, query))

        partials: dict[int, list[tuple[int, _RangePartial | _NNPartial]]] = {}
        for position, (sid, payload) in self._execute(tasks):
            partials.setdefault(position, []).append((sid, payload))

        for position, query in enumerate(batch):
            if evaluations[position] is not None:
                continue
            merged = self._merge(query, partials.get(position, []))
            key = fill_keys.get(position)
            if key is not None and fill_allowed(self._config.draw_plan, merged.statistics):
                cache.store(key, query.issuer, merged.result, merged.statistics)
            evaluations[position] = merged
        return evaluations

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def _mutation_db(self, target: str | None) -> ShardedDatabase:
        return pick_mutation_database(self._point_db, self._uncertain_db, target)

    def insert(self, obj: PointObject | UncertainObject):
        """Insert one object into its owning shard (chosen by nearest cover).

        Returns the stored object.  The worker pool survives: the owning
        shard's shared-memory snapshot is republished lazily before the next
        parallel batch that routes to it.
        """
        if isinstance(obj, PointObject):
            return self._require("points").insert(obj)
        if isinstance(obj, UncertainObject):
            return self._require("uncertain").insert(obj)
        raise InvalidArgumentError(
            f"expected a PointObject or UncertainObject, got {type(obj).__name__}"
        )

    def delete(self, oid: int, *, target: str | None = None):
        """Remove one object from its owning shard; returns the removed object."""
        return self._mutation_db(target).delete(oid)

    def move(
        self,
        oid: int,
        *,
        x: float | None = None,
        y: float | None = None,
        pdf=None,
        target: str | None = None,
    ):
        """Relocate one object, re-homing it across shards when needed.

        ``x``/``y`` move a point object, ``pdf`` an uncertain one.  Returns
        the stored replacement object.
        """
        if resolve_move_target(x, y, pdf, target) == "points":
            return self._require("points").move(oid, x=float(x), y=float(y))
        return self._require("uncertain").move(oid, pdf=pdf)

    def apply_updates(self, batch: UpdateBatch) -> None:
        """Apply an ordered batch of mutations to the sharded databases."""
        for op in batch:
            apply_update_op(self, op)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _targets_points(query: Query) -> bool:
        return isinstance(query, NearestNeighborQuery) or query.target == "points"

    def _require(self, kind: str) -> ShardedDatabase:
        database = self._point_db if kind == "points" else self._uncertain_db
        if database is None:
            noun = "point-object" if kind == "points" else "uncertain-object"
            raise EngineStateError(f"no {noun} database configured")
        return database

    def _route(self, query: Query) -> list[Shard]:
        if isinstance(query, NearestNeighborQuery):
            return self._require("points").route_nearest(query.issuer.region)
        database = self._require("points" if query.target == "points" else "uncertain")
        # The Minkowski window is the widest filter any configuration uses
        # (the Qp-expanded-query is a subset), so routing by it is always
        # complete; shards it over-includes contribute zero candidates.
        window = minkowski_expanded_query(query.issuer.region, query.spec)
        return database.route_window(window)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _execute_shard(
        self, kind: str, sid: int, items: list[tuple[int, int, Query]]
    ) -> list[tuple[int, tuple[int, _RangePartial | _NNPartial]]]:
        """Run one shard's routed queries in-process (the ``workers=1`` path).

        Range queries run through the shard's staged pipeline
        (:meth:`ShardedDatabase.execute_on_shard`) — the identical stage
        runner the serial engine uses.  Nearest-neighbour queries use the
        shard pipeline's sampler in per-draw mode, because their merge is a
        per-draw argmin across shards rather than an answer-list union.
        """
        database = self._require(kind)
        results: list[tuple[int, tuple[int, _RangePartial | _NNPartial]]] = []
        range_items = [item for item in items if isinstance(item[2], RangeQuery)]
        nn_items = [item for item in items if isinstance(item[2], NearestNeighborQuery)]
        if range_items:
            evaluations = database.execute_on_shard(
                sid, [(seq, query) for _, seq, query in range_items], self._config
            )
            for (position, _, _), evaluation in zip(range_items, evaluations):
                payload = _RangePartial(
                    result=evaluation.result,
                    statistics=evaluation.statistics,
                    elapsed_seconds=evaluation.elapsed_seconds,
                )
                results.append((position, (sid, payload)))
        for position, seq, query in nn_items:
            samples = query.samples if query.samples is not None else DEFAULT_NN_SAMPLES
            token = resolve_draw_token(self._config, query, seq)
            draws = nn_query_draws(
                query.issuer.pdf, samples, self._config.rng_seed, token
            )
            nn_engine = database.shard_pipeline(sid, self._config).nearest_engine(samples)
            oids, distances, stats = nn_engine.per_draw_winners(draws)
            payload = _NNPartial(
                oids=oids,
                distances=distances,
                statistics=stats,
                elapsed_seconds=stats.response_time,
            )
            results.append((position, (sid, payload)))
        return results

    @staticmethod
    def _pick_start_method() -> str:
        forced = os.environ.get(START_METHOD_ENV)
        if forced:
            return forced
        return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is not None:
            return self._pool
        context = multiprocessing.get_context(self._pick_start_method())
        # Workers never see the result cache: shards compute partial
        # answers, and fills die with the worker anyway.  The stripped
        # configuration pickles once, at pool creation — not per task.
        worker_config = self._config.with_overrides(cache=None)
        config_blob = pickle.dumps(worker_config, protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(config_blob,),
        )
        return self._pool

    def _execute(
        self, tasks: dict[tuple[str, int], list[tuple[int, int, Query]]]
    ) -> list[tuple[int, tuple[int, _RangePartial | _NNPartial]]]:
        ordered = sorted(tasks.items())
        if self._workers > 1 and len(ordered) > 1:
            return self._execute_pooled(ordered)
        return [
            result
            for (kind, sid), items in ordered
            for result in self._execute_shard(kind, sid, items)
        ]

    def _execute_pooled(
        self, ordered: list[tuple[tuple[str, int], list[tuple[int, int, Query]]]]
    ) -> list[tuple[int, tuple[int, _RangePartial | _NNPartial]]]:
        """Fan the routed shard batches out over the worker pool.

        Publishes (or refreshes) each routed shard's shared-memory snapshot,
        ships plan tokens, and unpacks the returned answer arrays into the
        same partial shapes the in-process path produces.  Each in-flight
        task leases its snapshot block, so a concurrent republication (an
        interleaved mutation) cannot unlink a block a worker may still
        attach by name.
        """
        pool = self._ensure_pool()
        store = self._store
        submitted = []
        for (kind, sid), items in ordered:
            shard = self._require(kind).shards[sid]
            block = store.ensure(kind, sid, shard.database)
            task = _ShardTask(
                kind=kind,
                sid=sid,
                block_name=block.name,
                config_digest=self._config_digest,
                range_items=tuple(
                    (position, seq, PlanToken.from_query(query))
                    for position, seq, query in items
                    if isinstance(query, RangeQuery)
                ),
                nn_items=tuple(
                    (position, seq, PlanToken.from_query(query))
                    for position, seq, query in items
                    if isinstance(query, NearestNeighborQuery)
                ),
            )
            if self.ipc_accounting:
                self._ipc_task_bytes += len(
                    pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)
                )
            store.lease(block)
            submitted.append((block, pool.submit(_worker_run, task)))
        results: list[tuple[int, tuple[int, _RangePartial | _NNPartial]]] = []
        pending = list(submitted)
        try:
            while pending:
                block, future = pending.pop(0)
                try:
                    shard_result: _ShardResult = future.result()
                finally:
                    store.release(block)
                if self.ipc_accounting:
                    self._ipc_result_bytes += len(
                        pickle.dumps(shard_result, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                self._observed_worker_pids.add(shard_result.pid)
                arrays, block_nbytes = read_arrays(shard_result.block_name)
                if self.ipc_accounting:
                    self._result_shm_bytes += block_nbytes
                for pack in _unpack_answers(arrays, shard_result.pruned_names):
                    results.append(
                        (pack.position, (shard_result.sid, self._unpack(pack)))
                    )
        except BaseException:
            # A failed task must not orphan the *other* tasks' one-shot
            # result blocks: drain every remaining future and unlink the
            # block each one published before re-raising.
            for block, future in pending:
                store.release(block)
                # ``future.result()`` re-raises whatever the task died with,
                # and a sibling that never published has no block to unlink —
                # either way the drain must keep going.
                with contextlib.suppress(Exception):
                    read_arrays(future.result().block_name)
            raise
        return results

    @staticmethod
    def _unpack(pack: _AnswerPack) -> _RangePartial | _NNPartial:
        """Rehydrate one packed partial into the in-process partial shape."""
        stats = pack.stats.to_statistics()
        if pack.kind == "nn":
            return _NNPartial(
                oids=pack.oids,
                distances=pack.values,
                statistics=stats,
                elapsed_seconds=pack.elapsed_seconds,
            )
        result = QueryResult(
            answers=[
                QueryAnswer(oid=int(oid), probability=float(probability))
                for oid, probability in zip(pack.oids, pack.values)
            ]
        )
        return _RangePartial(
            result=result, statistics=stats, elapsed_seconds=pack.elapsed_seconds
        )

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #
    @staticmethod
    def _merge_statistics(parts: list[EvaluationStatistics]) -> EvaluationStatistics:
        merged = EvaluationStatistics()
        for stats in parts:
            merged.response_time += stats.response_time
            merged.candidates_examined += stats.candidates_examined
            merged.probability_computations += stats.probability_computations
            merged.monte_carlo_samples += stats.monte_carlo_samples
            for strategy, count in stats.pruned.items():
                merged.record_pruned(strategy, count)
            merged.io.merge(stats.io)
        return merged

    def _merge(
        self, query: Query, contributions: list[tuple[int, _RangePartial | _NNPartial]]
    ) -> ParallelEvaluation:
        contributions = sorted(contributions, key=lambda item: item[0])
        timings = tuple(
            ShardTiming(sid=sid, seconds=payload.elapsed_seconds)
            for sid, payload in contributions
        )
        if isinstance(query, NearestNeighborQuery):
            result, stats = self._merge_nearest(query, contributions)
        elif len(contributions) == 1:
            # One contributing shard: its result *is* the query's (already
            # sorted), but the statistics are copied before the mutation
            # below — the payload's object may be aliased by pipeline-side
            # state, and a shared statistics object must never be edited.
            _, payload = contributions[0]
            result = payload.result
            stats = copy_statistics(payload.statistics)
        else:
            answers = []
            for _, payload in contributions:
                answers.extend(payload.result.answers)
            result = QueryResult(answers=answers)
            result.sort()
            stats = self._merge_statistics(
                [payload.statistics for _, payload in contributions]
            )
        stats.results_returned = len(result)
        elapsed = max((timing.seconds for timing in timings), default=0.0)
        return ParallelEvaluation(
            query=query,
            result=result,
            statistics=stats,
            elapsed_seconds=elapsed,
            shard_timings=timings,
        )

    def _merge_nearest(
        self, query: NearestNeighborQuery, contributions: list[tuple[int, _NNPartial]]
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Combine per-shard per-draw winners into global win probabilities.

        For every draw of the shared per-query plan the globally nearest
        shard winner is kept (ties broken towards the smaller oid, the same
        order answers are ranked in); win counts over the draws then divide
        into probabilities exactly as in the single-shard engine.
        """
        stats = self._merge_statistics(
            [payload.statistics for _, payload in contributions]
        )
        result = QueryResult()
        if not contributions:
            return result, stats
        samples = query.samples if query.samples is not None else DEFAULT_NN_SAMPLES
        # The per-shard passes each draw the full plan, so the sample count
        # is a per-query quantity, not a per-shard one.
        stats.monte_carlo_samples = samples
        best_oids = contributions[0][1].oids.copy()
        best_distances = contributions[0][1].distances.copy()
        for _, payload in contributions[1:]:
            closer = payload.distances < best_distances
            tie = (payload.distances == best_distances) & (payload.oids < best_oids)
            take = closer | tie
            best_oids[take] = payload.oids[take]
            best_distances[take] = payload.distances[take]
        winners, counts = np.unique(best_oids, return_counts=True)
        stats.candidates_examined = int(winners.size)
        for oid, count in zip(winners, counts):
            probability = float(count) / samples
            if probability > 0.0 and probability >= query.threshold:
                result.add(int(oid), probability)
        result.sort()
        return result, stats
