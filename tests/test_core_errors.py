"""Tests for the typed exception hierarchy and its builtin-base compatibility."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    BackpressureError,
    ConfigurationError,
    InvalidQueryError,
    InvalidUpdateError,
    ReproError,
    SchemaError,
    SchemaVersionError,
    UnknownObjectError,
)
from repro.core.queries import NearestNeighborQuery, RangeQuery, RangeQuerySpec
from repro.core.session import Session
from repro.core.updates import UpdateBatch, resolve_move_target
from repro.geometry.rect import Rect
from repro.uncertainty.region import PointObject, UncertainObject


def issuer() -> UncertainObject:
    return UncertainObject.uniform(0, Rect(0.0, 0.0, 100.0, 100.0))


class TestHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for cls in (
            ConfigurationError,
            InvalidQueryError,
            InvalidUpdateError,
            UnknownObjectError,
            BackpressureError,
            SchemaError,
            SchemaVersionError,
        ):
            assert issubclass(cls, ReproError)

    def test_builtin_bases_preserved(self):
        # `except ValueError` handlers written against the old raises keep working.
        for cls in (
            ConfigurationError,
            InvalidQueryError,
            InvalidUpdateError,
            UnknownObjectError,
            SchemaError,
            SchemaVersionError,
        ):
            assert issubclass(cls, ValueError)
        assert issubclass(BackpressureError, RuntimeError)

    def test_wire_codes_are_distinct(self):
        codes = [
            cls.wire_code
            for cls in (
                ReproError,
                ConfigurationError,
                InvalidQueryError,
                InvalidUpdateError,
                UnknownObjectError,
                BackpressureError,
                SchemaError,
                SchemaVersionError,
            )
        ]
        assert len(codes) == len(set(codes))


class TestQueryRaises:
    def test_bad_spec(self):
        with pytest.raises(InvalidQueryError):
            RangeQuerySpec(-1.0, 5.0)

    def test_bad_threshold(self):
        with pytest.raises(InvalidQueryError):
            RangeQuery.cipq(issuer(), RangeQuerySpec.square(10.0), 1.5)

    def test_bad_samples(self):
        with pytest.raises(InvalidQueryError):
            NearestNeighborQuery(issuer=issuer(), samples=0)

    def test_old_value_error_handlers_still_catch(self):
        with pytest.raises(ValueError):
            RangeQuerySpec(-1.0, 5.0)

    def test_builder_without_issuer(self):
        session = Session.from_objects(points=[PointObject.at(1, 5.0, 5.0)])
        with pytest.raises(InvalidQueryError):
            session.range(half_width=10.0).build()


class TestUpdateRaises:
    def test_contradictory_move(self):
        with pytest.raises(InvalidUpdateError):
            resolve_move_target(1.0, 2.0, object(), None)

    def test_incomplete_move(self):
        with pytest.raises(InvalidUpdateError):
            UpdateBatch().move(1, x=3.0)

    def test_unknown_oid_delete(self):
        session = Session.from_objects(points=[PointObject.at(1, 5.0, 5.0)])
        with pytest.raises(UnknownObjectError):
            session.apply_updates(UpdateBatch().delete(999))

    def test_unknown_oid_move(self):
        session = Session.from_objects(points=[PointObject.at(1, 5.0, 5.0)])
        with pytest.raises(UnknownObjectError):
            session.apply_updates(UpdateBatch().move(999, x=1.0, y=2.0))

    def test_unknown_object_is_a_value_error(self):
        session = Session.from_objects(points=[PointObject.at(1, 5.0, 5.0)])
        with pytest.raises(ValueError):
            session.apply_updates(UpdateBatch().delete(999))


class TestSessionRaises:
    def test_engine_and_databases_mutually_exclusive(self):
        from repro.core.engine import ImpreciseQueryEngine, PointDatabase

        database = PointDatabase.build([PointObject.at(1, 5.0, 5.0)])
        engine = ImpreciseQueryEngine(point_db=database)
        with pytest.raises(ConfigurationError):
            Session(engine=engine, point_db=database)
