"""Quickstart: evaluate imprecise location-dependent range queries.

This example builds a small database of point objects (e.g. restaurants) and
uncertain objects (e.g. moving taxis), then issues the paper's two query
types from a user whose own location is only known up to an uncertainty
region — all through the fluent :class:`~repro.Session` API:

* IPQ  — which restaurants might be within 500 m of me, and how likely?
* C-IUQ — which taxis are within 500 m of me with probability at least 0.5?

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Point,
    PointObject,
    Rect,
    Session,
    UncertainObject,
    UniformPdf,
)


def build_session() -> Session:
    """A handful of restaurants (points) and taxis (uncertain regions)."""
    restaurants = [
        PointObject.at(1, 1_050.0, 980.0),
        PointObject.at(2, 1_420.0, 1_100.0),
        PointObject.at(3, 1_800.0, 1_750.0),
        PointObject.at(4, 300.0, 2_600.0),
        PointObject.at(5, 980.0, 1_210.0),
    ]
    # Each taxi reports its position infrequently, so the server only knows a
    # rectangle it must currently be in (last position + maximum speed).
    taxis = [
        UncertainObject.uniform(101, Rect(900.0, 900.0, 1_100.0, 1_100.0)),
        UncertainObject.uniform(102, Rect(1_300.0, 1_200.0, 1_700.0, 1_600.0)),
        UncertainObject.uniform(103, Rect(2_400.0, 2_400.0, 2_600.0, 2_600.0)),
        UncertainObject.uniform(104, Rect(700.0, 1_400.0, 1_000.0, 1_700.0)),
    ]
    return Session.from_objects(points=restaurants, uncertain=taxis)


def main() -> None:
    session = build_session()

    # The query issuer's own location is imprecise: somewhere in a
    # 200 x 200 box centred at (1000, 1000) (GPS error or privacy cloaking).
    me = UncertainObject(
        oid=0, pdf=UniformPdf(Rect.from_center(Point(1_000.0, 1_000.0), 100.0, 100.0))
    ).with_catalog()

    # "... restaurants within 500 units of my current location."
    print("IPQ — restaurants possibly within 500 units of me")
    evaluation = (
        session.range(half_width=500.0).targets("points").issued_by(me).run()
    )
    for answer in evaluation:
        print(f"  restaurant {answer.oid}: qualification probability {answer.probability:.3f}")
    stats = evaluation.statistics
    print(f"  ({stats.candidates_examined} candidates, {stats.response_time_ms:.2f} ms)")

    print()
    print("C-IUQ — taxis within 500 units of me with probability >= 0.5")
    evaluation = (
        session.range(half_width=500.0)
        .targets("uncertain")
        .threshold(0.5)
        .issued_by(me)
        .run()
    )
    for answer in evaluation:
        print(f"  taxi {answer.oid}: qualification probability {answer.probability:.3f}")
    stats = evaluation.statistics
    print(
        f"  ({stats.candidates_examined} candidates, "
        f"{stats.total_pruned} pruned by threshold rules, {stats.response_time_ms:.2f} ms)"
    )

    print()
    print("NN — which restaurant is most likely the closest one?")
    best = session.nearest(samples=2_000).issued_by(me).run().top(1)
    for answer in best:
        print(f"  restaurant {answer.oid} ({answer.probability:.0%} of the time)")


if __name__ == "__main__":
    main()
