"""Serve a session over TCP: ``python -m repro.serve``.

Builds the synthetic California/Long Beach datasets at the requested scale,
wraps them in a :class:`~repro.core.session.Session` through the experiment
configuration plumbing (so sharding, worker counts and result caching use
the exact same knobs as the experiment harness), and listens with a
micro-batching :class:`~repro.serve.server.QueryServer`::

    python -m repro.serve --port 8707 --window-ms 2 --scale 0.05
    python -m repro.serve --shards 4 --workers 4 --cache-capacity 1024
"""

from __future__ import annotations

import argparse
import asyncio

from repro.core.session import Session
from repro.datasets.tiger import california_points, long_beach_uncertain_objects
from repro.experiments.config import ExperimentConfig
from repro.serve.server import DEFAULT_MAX_PENDING, DEFAULT_WINDOW, QueryServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve an imprecise-query session over JSON lines.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8707)
    parser.add_argument(
        "--window-ms",
        type=float,
        default=DEFAULT_WINDOW * 1000.0,
        help="coalescing window in milliseconds (0 = per-request dispatch)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=DEFAULT_MAX_PENDING,
        help="pending-request high-water mark (rejections past it)",
    )
    parser.add_argument(
        "--max-wave",
        type=int,
        default=None,
        help="cap on requests coalesced into one wave (default: queue depth)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05, help="dataset scale (1.0 = paper size)"
    )
    parser.add_argument(
        "--no-points", action="store_true", help="serve without the point dataset"
    )
    parser.add_argument(
        "--no-uncertain",
        action="store_true",
        help="serve without the uncertain dataset",
    )
    parser.add_argument("--shards", type=int, default=0, help="spatial shards (0 = serial)")
    parser.add_argument("--workers", type=int, default=1, help="shard worker processes")
    parser.add_argument(
        "--cache-capacity", type=int, default=0, help="result-cache entries (0 = uncached)"
    )
    return parser


def build_session(args: argparse.Namespace) -> Session:
    """Assemble the served session from the CLI flags."""
    config = ExperimentConfig(
        dataset_scale=args.scale,
        shards=args.shards,
        shard_workers=args.workers,
        cache_capacity=args.cache_capacity,
    )
    points = None if args.no_points else california_points(scale=config.dataset_scale)
    uncertain = (
        None
        if args.no_uncertain
        else long_beach_uncertain_objects(scale=config.dataset_scale)
    )
    session = Session.from_objects(
        points=points, uncertain=uncertain, config=config.engine_config()
    )
    return config.sharded_session(session)


async def _amain(args: argparse.Namespace) -> int:
    session = build_session(args)
    front_end = QueryServer(
        session,
        window=args.window_ms / 1000.0,
        max_pending=args.queue_depth,
        max_wave=args.max_wave,
    )
    server = await front_end.serve(args.host, args.port)
    sockets = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}" for sock in server.sockets
    )
    databases = ", ".join(
        f"{name}={entry['objects']}"
        for name, entry in front_end.session.describe()["databases"].items()
    )
    print(
        f"serving on {sockets} (window={args.window_ms:g} ms, "
        f"queue depth {args.queue_depth}; {databases})",
        flush=True,
    )
    try:
        async with server:
            await server.serve_forever()
    finally:
        await front_end.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
