"""Developer tooling shipped with the reproduction (not part of the library API)."""
