"""U-catalogs: pre-computed tables of p-bounds (Section 5.1 of the paper).

Because a p-bound cannot be pre-computed for every possible ``p``, each
uncertain object carries a small *U-catalog* — a table of
``{probability level -> p-bound}`` entries at a fixed set of levels.  Query
pruning then rounds the requested threshold to the nearest stored level in
the conservative direction:

* when an *upper* bound on the pruned mass is needed (Strategies 1 and 2),
  the largest stored level ``M <= Qp`` is used;
* when the Strategy-3 product bound needs the tightest valid level at least
  ``Qp``, the smallest stored level ``>= Qp`` is used.

The paper's experiments store levels ``0, 0.1, ..., 1``; values above 0.5 are
clamped by the p-bound computation, so the effective catalog resolution is
``0 .. 0.5``.
"""

from __future__ import annotations
from repro.errors import DistributionError, MissingItemError

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.geometry.rect import Rect
from repro.uncertainty.pbound import PBound, compute_pbound
from repro.uncertainty.pdf import UncertaintyPdf

#: Default catalog levels used throughout the reproduction.  Six levels from
#: 0 to 0.5 match the storage described in Section 5.2 ("we store six
#: probability values and their p-bounds").
DEFAULT_CATALOG_LEVELS: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

#: The ten-level catalog mentioned in the experimental setup (Section 6.1).
PAPER_CATALOG_LEVELS: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(11))


@dataclass(frozen=True)
class UCatalog:
    """An immutable, sorted table of ``(level, PBound)`` entries."""

    levels: tuple[float, ...]
    bounds: tuple[PBound, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.bounds):
            raise DistributionError("levels and bounds must have the same length")
        if not self.levels:
            raise DistributionError("a U-catalog needs at least one level")
        if list(self.levels) != sorted(self.levels):
            raise DistributionError("catalog levels must be sorted in increasing order")
        if len(set(self.levels)) != len(self.levels):
            raise DistributionError("catalog levels must be distinct")
        for level in self.levels:
            if not 0.0 <= level <= 1.0:
                raise DistributionError(f"catalog level {level} outside [0, 1]")
        # Pre-computed lookup structures: catalog lookups sit on the hot path
        # of index-level and object-level pruning, so avoid linear scans and
        # repeated Rect construction there.
        object.__setattr__(
            self,
            "_bound_by_level",
            {level: bound for level, bound in zip(self.levels, self.bounds)},
        )
        object.__setattr__(
            self,
            "_rect_by_level",
            {level: bound.rect for level, bound in zip(self.levels, self.bounds)},
        )
        object.__setattr__(
            self,
            "_level_rects",
            tuple((level, bound.rect) for level, bound in zip(self.levels, self.bounds)),
        )

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def build(
        pdf: UncertaintyPdf,
        levels: Sequence[float] = DEFAULT_CATALOG_LEVELS,
    ) -> "UCatalog":
        """Pre-compute a catalog for ``pdf`` at the given probability levels."""
        ordered = tuple(sorted(set(float(level) for level in levels)))
        bounds = tuple(compute_pbound(pdf, level) for level in ordered)
        return UCatalog(levels=ordered, bounds=bounds)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.levels)

    def __iter__(self) -> Iterator[tuple[float, PBound]]:
        return iter(zip(self.levels, self.bounds))

    def bound_at(self, level: float) -> PBound:
        """Return the stored bound for an exact level (raises if absent)."""
        try:
            return self._bound_by_level[level]  # type: ignore[attr-defined]
        except KeyError as exc:
            raise MissingItemError(f"level {level} not stored in catalog") from exc

    def rect_at(self, level: float) -> "Rect":
        """Return the pre-built bound rectangle for an exact level."""
        try:
            return self._rect_by_level[level]  # type: ignore[attr-defined]
        except KeyError as exc:
            raise MissingItemError(f"level {level} not stored in catalog") from exc

    def level_rects(self) -> "tuple[tuple[float, Rect], ...]":
        """All ``(level, bound rectangle)`` pairs in increasing level order.

        The returned tuple is the catalog's pre-built cache; bound rectangles
        shrink (or stay equal) as the level grows.
        """
        return self._level_rects  # type: ignore[attr-defined]

    def largest_level_at_most(self, p: float) -> float | None:
        """Largest stored level ``M`` with ``M <= p`` (None when none exists)."""
        candidate: float | None = None
        for level in self.levels:
            if level <= p:
                candidate = level
            else:
                break
        return candidate

    def smallest_level_at_least(self, p: float) -> float | None:
        """Smallest stored level ``M`` with ``M >= p`` (None when none exists)."""
        for level in self.levels:
            if level >= p:
                return level
        return None

    def bound_for_threshold(self, p: float) -> PBound | None:
        """Bound usable for threshold-``p`` pruning (rounded down conservatively).

        Returns the bound at the largest stored level not exceeding ``p``.
        Pruning with this rounded bound is still correct: a looser (smaller
        level) bound can only prune *fewer* objects, never a qualifying one.
        """
        level = self.largest_level_at_most(p)
        if level is None:
            return None
        return self.bound_at(level)

    def tightest_bound_at_least(self, p: float) -> PBound | None:
        """Bound at the smallest stored level that is at least ``p``.

        Used by the Strategy-3 product bound, which needs a level that is a
        valid *upper* bound on the mass beyond the line while being as small
        as possible.
        """
        level = self.smallest_level_at_least(p)
        if level is None:
            return None
        return self.bound_at(level)
