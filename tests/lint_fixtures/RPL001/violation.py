# lint-fixture-path: repro/core/example.py
"""Derived-state memo with no epoch guard, plus an lru_cache'd method."""

from functools import lru_cache


class Database:
    def columnar(self):
        if self._columnar is None:
            self._columnar = build_columnar(self.objects)
        return self._columnar

    @lru_cache(maxsize=8)
    def snapshot(self, level):
        return build_snapshot(self.objects, level)
