# lint-fixture-path: repro/rpc/wire.py
"""The sanctioned wire path: JSON headers plus raw numpy array frames."""

import json
import struct

import numpy as np

_PREFIX = struct.Struct(">I")


def encode_header(header):
    payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(len(payload)) + payload


def encode_arrays(arrays):
    return b"".join(np.ascontiguousarray(a).tobytes() for a in arrays)
