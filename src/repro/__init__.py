"""repro — a reproduction of "Efficient Evaluation of Imprecise Location-Dependent Queries".

The package implements the query model, evaluation algorithms, spatial
indexes and experiment harness of Chen & Cheng (ICDE 2007).  The most common
entry points are re-exported here:

* :class:`~repro.core.engine.ImpreciseQueryEngine` — evaluates IPQ, IUQ,
  C-IPQ and C-IUQ queries over indexed databases;
* :class:`~repro.core.queries.RangeQuerySpec` and
  :class:`~repro.uncertainty.region.UncertainObject` — building blocks for
  queries and data;
* :mod:`repro.datasets` — synthetic stand-ins for the paper's datasets and
  query workloads;
* :mod:`repro.experiments` — the per-figure experiment harness.
"""

from repro.geometry import Point, Rect
from repro.uncertainty import (
    UniformPdf,
    TruncatedGaussianPdf,
    HistogramPdf,
    UniformCirclePdf,
    PointObject,
    UncertainObject,
    UCatalog,
)
from repro.core import (
    RangeQuerySpec,
    ImpreciseRangeQuery,
    QueryAnswer,
    QueryResult,
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
    BasicEvaluator,
    ImpreciseNearestNeighborEngine,
)
from repro.index import RTree, ProbabilityThresholdIndex, GridFile, LinearScanIndex

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Rect",
    "UniformPdf",
    "TruncatedGaussianPdf",
    "HistogramPdf",
    "UniformCirclePdf",
    "PointObject",
    "UncertainObject",
    "UCatalog",
    "RangeQuerySpec",
    "ImpreciseRangeQuery",
    "QueryAnswer",
    "QueryResult",
    "EngineConfig",
    "ImpreciseQueryEngine",
    "PointDatabase",
    "UncertainDatabase",
    "BasicEvaluator",
    "ImpreciseNearestNeighborEngine",
    "RTree",
    "ProbabilityThresholdIndex",
    "GridFile",
    "LinearScanIndex",
    "__version__",
]
