"""The paper's motivating scenario: "find the available cabs within two miles
of my current location" — at city scale.

A fleet of a few thousand cabs is modelled as uncertain objects (each cab's
position is only known up to a box derived from its last report), the rider's
own position is imprecise, and the dispatcher only wants cabs that are within
range *with high confidence*.  The example contrasts three server-side
evaluation strategies on the same query:

1. the basic method (direct numerical integration of Equation 4),
2. the enhanced method (Minkowski expansion + query–data duality), and
3. the constrained query with a probability threshold (PTI + p-expanded-query),

and prints their answers and costs.  This is Figure 8 / Figure 12 of the
paper condensed into a single narrative.

Run with::

    python examples/find_nearby_cabs.py
"""

from __future__ import annotations

import time

from repro import (
    Point,
    RangeQuery,
    RangeQuerySpec,
    Rect,
    Session,
    UncertainDatabase,
    UncertainObject,
    UniformPdf,
)
from repro.core.basic import BasicEvaluator
from repro.core.queries import ImpreciseRangeQuery
from repro.datasets.synthetic import clustered_rectangles

CITY = Rect(0.0, 0.0, 10_000.0, 10_000.0)
TWO_MILES = 1_000.0  # scaled units
CONFIDENCE = 0.6


def build_fleet(n_cabs: int = 4_000) -> UncertainDatabase:
    """Cabs with uncertainty boxes of 50–250 units, clustered around hot spots."""
    cabs = clustered_rectangles(n_cabs, CITY, size_range=(50.0, 250.0), seed=20_070_415)
    return UncertainDatabase.build(cabs, index_kind="pti")


def main() -> None:
    print("building the cab fleet and its Probability Threshold Index ...")
    started = time.perf_counter()
    fleet = build_fleet()
    print(f"  {len(fleet)} cabs indexed in {time.perf_counter() - started:.2f} s")

    # The rider's phone reports a cloaked location: a 400 x 400 box.
    rider = UncertainObject(
        oid=0, pdf=UniformPdf(Rect.from_center(Point(5_200.0, 4_800.0), 200.0, 200.0))
    ).with_catalog()
    spec = RangeQuerySpec.square(TWO_MILES)

    # --- 1. basic method (the paper's Section 3.3 baseline) ----------------
    basic = BasicEvaluator(issuer_samples=400)
    started = time.perf_counter()
    basic_result, _ = basic.evaluate_iuq(
        ImpreciseRangeQuery(issuer=rider, spec=spec), fleet.objects
    )
    basic_time = (time.perf_counter() - started) * 1000.0

    # --- 2. enhanced method (Section 4) ------------------------------------
    session = Session(uncertain_db=fleet)
    enhanced = session.evaluate(RangeQuery.iuq(rider, spec))
    enhanced_result, enhanced_stats = enhanced.result, enhanced.statistics
    enhanced_time = enhanced.elapsed_ms

    # --- 3. constrained query (Section 5): only confident answers ----------
    confident = (
        session.range(half_width=TWO_MILES)
        .threshold(CONFIDENCE)
        .issued_by(rider)
        .run()
    )
    confident_result, confident_stats = confident.result, confident.statistics
    constrained_time = confident.elapsed_ms

    print()
    print(f"cabs possibly in range        : {len(enhanced_result)}")
    print(f"cabs in range with p >= {CONFIDENCE:.1f}  : {len(confident_result)}")
    best = list(confident_result)[:5]
    for answer in best:
        print(f"  cab {answer.oid}: probability {answer.probability:.3f}")

    print()
    print("evaluation cost (one query):")
    print(f"  basic method (Eq. 4)                : {basic_time:10.1f} ms")
    print(
        f"  enhanced method (Eq. 8)              : {enhanced_time:10.1f} ms"
        f"   [{enhanced_stats.candidates_examined} candidates]"
    )
    print(
        f"  constrained, PTI + p-expanded-query  : {constrained_time:10.1f} ms"
        f"   [{confident_stats.candidates_examined} candidates]"
    )

    # Sanity: the enhanced answers agree with the basic ones.
    basic_probs = basic_result.probabilities()
    drift = max(
        (abs(basic_probs.get(a.oid, 0.0) - a.probability) for a in enhanced_result),
        default=0.0,
    )
    print(f"\nmax |basic - enhanced| probability difference: {drift:.4f}")


if __name__ == "__main__":
    main()
