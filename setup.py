"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools/pip versions predate full PEP 660 support
(``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
