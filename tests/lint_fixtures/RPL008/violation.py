# lint-fixture-path: repro/core/example.py
"""Broad excepts that silently swallow every failure."""


def release(block):
    try:
        block.close()
    except Exception:
        pass
    try:
        block.unlink()
    except BaseException:
        ...


def probe(path):
    try:
        return path.stat()
    except:  # noqa: E722
        pass
