"""Query–data duality probability computation (Section 4.2 of the paper).

Lemma 2 states that a point object ``Si`` satisfies the range query centred
at ``Sq`` iff ``Sq`` satisfies the (equally sized) range query centred at
``Si``.  This lets the qualification probability of a point object be written
as a single integral of the *issuer's* pdf over ``R(xi, yi) ∩ U0`` (Lemma 3),
and the qualification probability of an uncertain object as
``∫_{Ui ∩ (R ⊕ U0)} fi(x, y) · Q(x, y) dxdy`` (Lemma 4), where ``Q(x, y)`` is
the point-object probability at ``(x, y)``.

For the uniform pdfs used in the paper's main experiments both quantities are
closed-form:

* IPQ — the fraction of ``U0`` covered by ``R(xi, yi)`` (Equation 6);
* IUQ — because ``Q(x, y)`` separates into a product of per-axis overlap
  lengths, Equation 8 reduces to a product of two one-dimensional integrals
  of piecewise-linear functions, which are integrated exactly here.

For other pdfs a "semi-analytic" path (closed-form ``Q`` from the issuer,
sampled expectation over the object) and a fully sampled Monte-Carlo path
(used by the paper's Gaussian experiments, Figure 13) are provided.
"""

from __future__ import annotations
from repro.core.errors import InvalidArgumentError, InvalidQueryError

import numpy as np

from repro.geometry.interval import Interval
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.queries import RangeQuerySpec
from repro.uncertainty.pdf import UncertaintyPdf, UniformPdf
from repro.uncertainty.region import UncertainObject
from repro.uncertainty.sampling import grid_expectation


# --------------------------------------------------------------------------- #
# IPQ — point objects
# --------------------------------------------------------------------------- #
def ipq_probability(
    issuer_pdf: UncertaintyPdf, spec: RangeQuerySpec, location: Point
) -> float:
    """Qualification probability of a point object at ``location`` (Lemma 3).

    By duality the probability equals the issuer's probability mass inside
    the range rectangle centred at the *object's* location.  For a uniform
    issuer this is Equation 6 (fraction of ``U0`` overlapped); for any issuer
    pdf exposing a closed-form rectangle probability it stays exact.
    """
    dual_range = spec.region_at(location)
    return issuer_pdf.probability_in_rect(dual_range)


def ipq_probabilities(
    issuer_pdf: UncertaintyPdf, spec: RangeQuerySpec, locations: np.ndarray
) -> np.ndarray:
    """Batched Lemma 3: qualification probabilities for many point objects.

    ``locations`` is a ``(K, 2)`` coordinate array; the result is the ``(K,)``
    array of the issuer's masses inside the dual ranges centred at each
    location.  For pdfs with an array kernel (uniform, truncated Gaussian)
    this is one NumPy evaluation; other pdfs fall back to a per-rectangle
    loop.  Either way the values are bitwise identical to ``K`` scalar
    :func:`ipq_probability` calls.
    """
    locations = np.asarray(locations, dtype=float)
    if locations.ndim != 2 or locations.shape[1] != 2:
        raise InvalidQueryError(f"locations must have shape (K, 2), got {locations.shape}")
    dual_bounds = np.empty((locations.shape[0], 4), dtype=float)
    dual_bounds[:, 0] = locations[:, 0] - spec.half_width
    dual_bounds[:, 1] = locations[:, 1] - spec.half_height
    dual_bounds[:, 2] = locations[:, 0] + spec.half_width
    dual_bounds[:, 3] = locations[:, 1] + spec.half_height
    return issuer_pdf.probability_in_rects(dual_bounds)


def ipq_probability_monte_carlo(
    issuer_pdf: UncertaintyPdf,
    spec: RangeQuerySpec,
    location: Point,
    samples: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of a point object's qualification probability.

    Samples issuer positions and counts how often the object falls inside the
    range centred at the sampled position — this is Equation 2 evaluated by
    sampling, the path the paper uses when the issuer pdf has no convenient
    closed form (Section 6.2).
    """
    if samples <= 0:
        raise InvalidQueryError(f"samples must be positive, got {samples}")
    draws = issuer_pdf.sample(rng, samples)
    dx = np.abs(draws[:, 0] - location.x)
    dy = np.abs(draws[:, 1] - location.y)
    inside = (dx <= spec.half_width) & (dy <= spec.half_height)
    return float(np.count_nonzero(inside)) / samples


def ipq_probabilities_monte_carlo(
    issuer_pdf: UncertaintyPdf,
    spec: RangeQuerySpec,
    locations: np.ndarray,
    samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Batched Monte-Carlo IPQ probabilities for many point objects.

    The draws come from the per-query draw plan
    (:meth:`~repro.uncertainty.pdf.UncertaintyPdf.sample_batch` — one batched
    issuer draw, object ``i`` owning the ``i``-th block) and the containment
    test runs once over the whole ``(K, samples)`` batch.  A scalar loop over
    the same plan produces bitwise-identical probabilities.
    """
    if samples <= 0:
        raise InvalidQueryError(f"samples must be positive, got {samples}")
    locations = np.asarray(locations, dtype=float)
    k = locations.shape[0]
    draws = issuer_pdf.sample_batch(rng, samples, k)
    dx = np.abs(draws[:, :, 0] - locations[:, 0, None])
    dy = np.abs(draws[:, :, 1] - locations[:, 1, None])
    inside = (dx <= spec.half_width) & (dy <= spec.half_height)
    return np.count_nonzero(inside, axis=1) / samples


# --------------------------------------------------------------------------- #
# Per-oid draw plan (sharded / parallel execution)
# --------------------------------------------------------------------------- #
def per_oid_rng(rng_seed: int, query_seq: int, oid: int) -> np.random.Generator:
    """Deterministic generator for one ``(query, object)`` pair.

    The streaming draw plan (one batched draw consumed from a shared,
    advancing generator) makes a survivor's draws depend on its position in
    the candidate batch and on every query evaluated before it — which is
    exactly what a sharded executor cannot reproduce, because each shard only
    sees its own slice of the batch.  The per-oid plan instead derives an
    independent generator from ``(engine seed, query sequence number, object
    id)``, so a survivor's draws are identical no matter which shard — or how
    many shards — evaluate it.  Object ids must be non-negative (a
    ``SeedSequence`` entropy requirement); every dataset builder in this
    repository numbers objects from zero.
    """
    return np.random.default_rng(
        np.random.SeedSequence((int(rng_seed), int(query_seq), int(oid)))
    )


def ipq_probabilities_monte_carlo_per_oid(
    issuer_pdf: UncertaintyPdf,
    spec: RangeQuerySpec,
    locations: np.ndarray,
    oids: np.ndarray,
    samples: int,
    rng_seed: int,
    query_seq: int,
) -> np.ndarray:
    """Monte-Carlo IPQ probabilities under the per-oid draw plan.

    Each point object's issuer draws come from :func:`per_oid_rng`, so the
    estimate for a given ``(query_seq, oid)`` pair is a pure function of the
    engine seed — shard-parallel evaluation returns bitwise-identical
    probabilities to a single-shard engine running the same plan.  Both
    evaluation backends call this same function, so scalar/vectorized parity
    is preserved by construction.
    """
    if samples <= 0:
        raise InvalidQueryError(f"samples must be positive, got {samples}")
    locations = np.asarray(locations, dtype=float)
    probabilities = np.empty(locations.shape[0], dtype=float)
    for i, oid in enumerate(oids):
        rng = per_oid_rng(rng_seed, query_seq, int(oid))
        draws = issuer_pdf.sample_batch(rng, samples, 1)[0]
        dx = np.abs(draws[:, 0] - locations[i, 0])
        dy = np.abs(draws[:, 1] - locations[i, 1])
        inside = (dx <= spec.half_width) & (dy <= spec.half_height)
        probabilities[i] = float(np.count_nonzero(inside)) / samples
    return probabilities


def iuq_probabilities_monte_carlo_per_oid(
    issuer_pdf: UncertaintyPdf,
    targets: "list[UncertainObject]",
    spec: RangeQuerySpec,
    samples: int,
    rng_seed: int,
    query_seq: int,
) -> np.ndarray:
    """Fully sampled IUQ probabilities under the per-oid draw plan.

    Per target, the issuer's draws come first and the target's second from
    the same :func:`per_oid_rng` generator (the order is part of the plan's
    contract).  Like its IPQ counterpart, the result only depends on
    ``(engine seed, query_seq, oid)``, making shard-parallel evaluation
    bitwise-identical to single-shard evaluation.
    """
    if samples <= 0:
        raise InvalidQueryError(f"samples must be positive, got {samples}")
    probabilities = np.empty(len(targets), dtype=float)
    for i, target in enumerate(targets):
        rng = per_oid_rng(rng_seed, query_seq, target.oid)
        issuer_draws = issuer_pdf.sample_batch(rng, samples, 1)[0]
        target_draws = target.pdf.sample_batch(rng, samples, 1)[0]
        dx = np.abs(target_draws[:, 0] - issuer_draws[:, 0])
        dy = np.abs(target_draws[:, 1] - issuer_draws[:, 1])
        inside = (dx <= spec.half_width) & (dy <= spec.half_height)
        probabilities[i] = float(np.count_nonzero(inside)) / samples
    return probabilities


# --------------------------------------------------------------------------- #
# IUQ — uncertain objects
# --------------------------------------------------------------------------- #
def _overlap_length_integral(
    object_interval: Interval, issuer_interval: Interval, half_extent: float
) -> float:
    """Exact value of ``∫ g(t) dt`` over the object's interval.

    ``g(t)`` is the length of the overlap between ``[t - half_extent,
    t + half_extent]`` and the issuer's interval — a piecewise-linear
    "trapezoid" function of ``t`` with breakpoints where the moving window's
    edges cross the issuer interval's edges.  Each linear piece is integrated
    exactly with the trapezoid rule.
    """
    lo, hi = object_interval.low, object_interval.high
    if hi <= lo:
        # Degenerate (zero-width) object interval: the 1-D integral is zero,
        # but the caller handles this case by treating the axis as a point.
        return 0.0

    a1, a2 = issuer_interval.low, issuer_interval.high

    def g(t: float) -> float:
        return max(0.0, min(t + half_extent, a2) - max(t - half_extent, a1))

    breakpoints = sorted(
        {lo, hi, a1 - half_extent, a1 + half_extent, a2 - half_extent, a2 + half_extent}
    )
    total = 0.0
    previous = lo
    for bp in breakpoints:
        if bp <= lo or bp >= hi:
            continue
        total += (g(previous) + g(bp)) / 2.0 * (bp - previous)
        previous = bp
    total += (g(previous) + g(hi)) / 2.0 * (hi - previous)
    return total


def iuq_probability_exact_uniform(
    issuer_pdf: UniformPdf, target: UncertainObject, spec: RangeQuerySpec
) -> float:
    """Closed-form Equation 8 for a uniform issuer and a uniform target.

    ``Q(x, y)`` separates into per-axis overlap lengths, so the double
    integral factors into two exact one-dimensional integrals of
    piecewise-linear functions divided by the issuer's and target's areas.
    """
    target_pdf = target.pdf
    if not isinstance(target_pdf, UniformPdf):
        raise InvalidArgumentError("iuq_probability_exact_uniform requires a uniform target pdf")
    issuer_region = issuer_pdf.region
    target_region = target_pdf.region

    ix = _overlap_length_integral(
        target_region.x_interval, issuer_region.x_interval, spec.half_width
    )
    iy = _overlap_length_integral(
        target_region.y_interval, issuer_region.y_interval, spec.half_height
    )
    denominator = (
        target_region.width
        * target_region.height
        * issuer_region.width
        * issuer_region.height
    )
    if denominator == 0.0:
        raise InvalidQueryError("uniform regions must have positive area")
    probability = (ix * iy) / denominator
    return min(1.0, max(0.0, probability))


def _overlap_length_integrals(
    lows: np.ndarray,
    highs: np.ndarray,
    issuer_interval: Interval,
    half_extent: float,
) -> np.ndarray:
    """Vectorized :func:`_overlap_length_integral` over many object intervals.

    ``lows``/``highs`` are ``(K,)`` arrays of object-interval endpoints; the
    issuer interval and window half-extent are shared (they come from the
    query).  The moving-window overlap function ``g`` has at most four
    breakpoints, all derived from the issuer interval, so one sorted
    breakpoint row clipped per object reproduces the scalar piecewise
    trapezoid integration exactly (zero-width pieces contribute nothing).
    """
    a1, a2 = issuer_interval.low, issuer_interval.high
    breakpoints = np.sort(
        np.array(
            [
                a1 - half_extent,
                a1 + half_extent,
                a2 - half_extent,
                a2 + half_extent,
            ]
        )
    )
    # Piecewise nodes per object: lo, the four clipped breakpoints, hi.
    nodes = np.empty((lows.shape[0], 6), dtype=float)
    nodes[:, 0] = lows
    nodes[:, 1:5] = np.clip(breakpoints[None, :], lows[:, None], highs[:, None])
    nodes[:, 5] = highs
    g = np.maximum(
        0.0,
        np.minimum(nodes + half_extent, a2) - np.maximum(nodes - half_extent, a1),
    )
    widths = np.diff(nodes, axis=1)
    return np.sum((g[:, :-1] + g[:, 1:]) * widths, axis=1) / 2.0


def iuq_probabilities_exact_uniform(
    issuer_pdf: UniformPdf, bounds: np.ndarray, spec: RangeQuerySpec
) -> np.ndarray:
    """Batched closed-form Equation 8 for a uniform issuer and uniform targets.

    ``bounds`` is a ``(K, 4)`` array of target uncertainty-region rectangles
    ``(xmin, ymin, xmax, ymax)``; the result matches ``K`` scalar
    :func:`iuq_probability_exact_uniform` calls to within floating-point
    summation order (≪ 1e-12).
    """
    bounds = np.asarray(bounds, dtype=float)
    if bounds.ndim != 2 or bounds.shape[1] != 4:
        raise InvalidQueryError(f"bounds must have shape (K, 4), got {bounds.shape}")
    issuer_region = issuer_pdf.region
    ix = _overlap_length_integrals(
        bounds[:, 0], bounds[:, 2], issuer_region.x_interval, spec.half_width
    )
    iy = _overlap_length_integrals(
        bounds[:, 1], bounds[:, 3], issuer_region.y_interval, spec.half_height
    )
    widths = bounds[:, 2] - bounds[:, 0]
    heights = bounds[:, 3] - bounds[:, 1]
    denominator = widths * heights * issuer_region.width * issuer_region.height
    if np.any(denominator == 0.0):
        raise InvalidQueryError("uniform regions must have positive area")
    return np.clip((ix * iy) / denominator, 0.0, 1.0)


def iuq_probability(
    issuer_pdf: UncertaintyPdf,
    target: UncertainObject,
    spec: RangeQuerySpec,
    *,
    samples: int = 256,
    rng: np.random.Generator | None = None,
    grid_resolution: int | None = None,
) -> float:
    """Qualification probability of an uncertain object (Lemma 4 / Equation 8).

    Dispatches on the pdfs involved:

    * uniform issuer + uniform target → exact closed form;
    * any issuer with a closed-form rectangle probability → semi-analytic:
      ``Q(x, y)`` is evaluated exactly and the expectation over the target's
      pdf is taken by Monte-Carlo sampling (``samples`` draws) or, when
      ``grid_resolution`` is given, by a deterministic midpoint rule.

    The sampled expectation evaluates ``Q`` for all draws in one batched
    :func:`ipq_probabilities` call rather than ``samples`` Python calls.
    """
    if isinstance(issuer_pdf, UniformPdf) and isinstance(target.pdf, UniformPdf):
        return iuq_probability_exact_uniform(issuer_pdf, target, spec)

    if grid_resolution is not None:
        def point_probability(x: float, y: float) -> float:
            return ipq_probability(issuer_pdf, spec, Point(x, y))

        return min(1.0, grid_expectation(target.pdf, point_probability, grid_resolution))

    if rng is None:
        rng = np.random.default_rng(0)
    draws = target.pdf.sample(rng, samples)
    values = ipq_probabilities(issuer_pdf, spec, draws)
    return min(1.0, float(values.sum()) / samples)


def iuq_probability_monte_carlo(
    issuer_pdf: UncertaintyPdf,
    target: UncertainObject,
    spec: RangeQuerySpec,
    samples: int,
    rng: np.random.Generator,
) -> float:
    """Fully sampled estimate of an uncertain object's qualification probability.

    Both the issuer's and the object's positions are sampled (paired draws)
    and the fraction of pairs in which the object falls inside the range
    centred at the issuer's sampled position is returned.  This mirrors the
    paper's Monte-Carlo procedure for non-uniform pdfs (Section 6.2).
    """
    if samples <= 0:
        raise InvalidQueryError(f"samples must be positive, got {samples}")
    issuer_draws = issuer_pdf.sample(rng, samples)
    target_draws = target.pdf.sample(rng, samples)
    dx = np.abs(target_draws[:, 0] - issuer_draws[:, 0])
    dy = np.abs(target_draws[:, 1] - issuer_draws[:, 1])
    inside = (dx <= spec.half_width) & (dy <= spec.half_height)
    return float(np.count_nonzero(inside)) / samples


def monte_carlo_iuq_draws(
    issuer_pdf: UncertaintyPdf,
    targets: "list[UncertainObject]",
    samples: int,
    rng: np.random.Generator,
    *,
    target_bounds: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The per-query IUQ draw plan: paired issuer/target draw tensors.

    Issuer positions for all ``k`` targets come from one batched
    :meth:`~repro.uncertainty.pdf.UncertaintyPdf.sample_batch` call; target
    positions come from one flat standard-uniform draw when every target pdf
    is uniform (scaled into each region), and from per-target
    :meth:`~repro.uncertainty.pdf.UncertaintyPdf.sample_into` calls
    otherwise.  Both evaluation backends consume this identical plan, which
    is what keeps sampled probabilities bitwise comparable between them.

    ``target_bounds`` optionally supplies the targets' region rectangles as a
    pre-built ``(k, 4)`` array (e.g. a columnar-snapshot slice) so the
    uniform fast path need not re-collect them; values must equal
    ``target.region.as_tuple()`` row by row.
    """
    k = len(targets)
    if k == 0:
        empty = np.empty((0, samples, 2), dtype=float)
        return empty, np.empty((0, samples, 2), dtype=float)
    uniform_targets = all(type(target.pdf) is UniformPdf for target in targets)
    if uniform_targets and type(issuer_pdf) is UniformPdf:
        # Fully uniform batch: one flat standard-uniform draw covers issuer
        # and target positions, scaled per region with the same
        # low + (high - low) * u transform rng.uniform applies.
        u = rng.random((4, k, samples))
        issuer_region = issuer_pdf.region
        issuer_draws = np.empty((k, samples, 2), dtype=float)
        x_span = issuer_region.xmax - issuer_region.xmin
        y_span = issuer_region.ymax - issuer_region.ymin
        issuer_draws[:, :, 0] = issuer_region.xmin + x_span * u[0]
        issuer_draws[:, :, 1] = issuer_region.ymin + y_span * u[1]
        target_u = u[2:]
    else:
        issuer_draws = issuer_pdf.sample_batch(rng, samples, k)
        target_u = rng.random((2, k, samples)) if uniform_targets else None
    target_draws = np.empty((k, samples, 2), dtype=float)
    if uniform_targets:
        bounds = (
            target_bounds
            if target_bounds is not None
            else np.array([target.region.as_tuple() for target in targets])
        )
        widths = (bounds[:, 2] - bounds[:, 0])[:, None]
        heights = (bounds[:, 3] - bounds[:, 1])[:, None]
        target_draws[:, :, 0] = bounds[:, 0, None] + widths * target_u[0]
        target_draws[:, :, 1] = bounds[:, 1, None] + heights * target_u[1]
    else:
        for i, target in enumerate(targets):
            target.pdf.sample_into(rng, target_draws[i])
    return issuer_draws, target_draws


def iuq_probabilities_monte_carlo(
    issuer_pdf: UncertaintyPdf,
    targets: "list[UncertainObject]",
    spec: RangeQuerySpec,
    samples: int,
    rng: np.random.Generator,
    *,
    target_bounds: np.ndarray | None = None,
) -> np.ndarray:
    """Batched fully-sampled IUQ probabilities for many uncertain objects.

    Consumes the :func:`monte_carlo_iuq_draws` plan and fuses the paired
    containment test into one ``(K, samples)`` evaluation.  A scalar loop
    over the same plan produces bitwise-identical probabilities.
    """
    if samples <= 0:
        raise InvalidQueryError(f"samples must be positive, got {samples}")
    issuer_draws, target_draws = monte_carlo_iuq_draws(
        issuer_pdf, targets, samples, rng, target_bounds=target_bounds
    )
    d = np.abs(target_draws - issuer_draws)
    inside = (d[:, :, 0] <= spec.half_width) & (d[:, :, 1] <= spec.half_height)
    return np.count_nonzero(inside, axis=1) / samples


# --------------------------------------------------------------------------- #
# Restriction to the expanded query (the refinement of Lemma 4)
# --------------------------------------------------------------------------- #
def clipped_integration_region(target_region: Rect, expanded_query: Rect) -> Rect:
    """``Ui ∩ (R ⊕ U0)`` — the reduced integration region of Lemma 4.

    Points of ``Ui`` outside the expanded query contribute nothing to the
    integral because ``Q`` vanishes there (Lemma 1), so integrating over the
    clipped region is both correct and cheaper.
    """
    return target_region.intersect(expanded_query)
