# lint-fixture-path: repro/core/example.py
"""An encoder with no version tag and no decode path."""


class OneWayPayload:
    def __init__(self, oid, score):
        self.oid = oid
        self.score = score

    def to_dict(self):
        return {"oid": self.oid, "score": self.score}
