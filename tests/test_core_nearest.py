"""Unit tests for the imprecise nearest-neighbour extension."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.nearest import ImpreciseNearestNeighborEngine
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject


def _issuer(center: Point, half: float = 50.0) -> UncertainObject:
    return UncertainObject(oid=0, pdf=UniformPdf(Rect.from_center(center, half, half)))


class TestConstruction:
    def test_rejects_empty_object_list(self):
        with pytest.raises(ValueError):
            ImpreciseNearestNeighborEngine([])

    def test_rejects_bad_sample_count(self):
        with pytest.raises(ValueError):
            ImpreciseNearestNeighborEngine([PointObject.at(0, 0.0, 0.0)], samples=0)


class TestEvaluation:
    def test_single_object_always_wins(self):
        engine = ImpreciseNearestNeighborEngine([PointObject.at(7, 100.0, 100.0)], samples=64)
        result, stats = engine.evaluate(_issuer(Point(0.0, 0.0)))
        assert result.probabilities() == {7: pytest.approx(1.0)}
        assert stats.monte_carlo_samples == 64

    def test_unambiguous_nearest_neighbor(self):
        objects = [PointObject.at(1, 110.0, 100.0), PointObject.at(2, 900.0, 900.0)]
        engine = ImpreciseNearestNeighborEngine(objects, samples=128)
        result, _ = engine.evaluate(_issuer(Point(100.0, 100.0), half=10.0))
        assert result.probabilities()[1] == pytest.approx(1.0)
        assert 2 not in result.probabilities()

    def test_probabilities_sum_to_one(self):
        objects = [
            PointObject.at(1, 0.0, 0.0),
            PointObject.at(2, 200.0, 0.0),
            PointObject.at(3, 100.0, 180.0),
        ]
        engine = ImpreciseNearestNeighborEngine(objects, samples=512)
        result, _ = engine.evaluate(_issuer(Point(100.0, 60.0), half=120.0))
        assert sum(result.probabilities().values()) == pytest.approx(1.0)

    def test_symmetric_configuration_splits_evenly(self):
        objects = [PointObject.at(1, 0.0, 0.0), PointObject.at(2, 200.0, 0.0)]
        engine = ImpreciseNearestNeighborEngine(objects, samples=4_000, rng_seed=3)
        result, _ = engine.evaluate(_issuer(Point(100.0, 0.0), half=80.0))
        probabilities = result.probabilities()
        assert probabilities[1] == pytest.approx(0.5, abs=0.05)
        assert probabilities[2] == pytest.approx(0.5, abs=0.05)

    def test_threshold_filters_unlikely_winners(self):
        objects = [PointObject.at(1, 90.0, 100.0), PointObject.at(2, 400.0, 100.0)]
        engine = ImpreciseNearestNeighborEngine(objects, samples=1_000)
        result, _ = engine.evaluate(_issuer(Point(100.0, 100.0), half=120.0), threshold=0.5)
        assert set(result.oids()) == {1}

    def test_invalid_threshold_rejected(self):
        engine = ImpreciseNearestNeighborEngine([PointObject.at(0, 0.0, 0.0)])
        with pytest.raises(ValueError):
            engine.evaluate(_issuer(Point(0.0, 0.0)), threshold=2.0)

    def test_most_probable_neighbor(self):
        objects = [PointObject.at(1, 100.0, 100.0), PointObject.at(2, 500.0, 500.0)]
        engine = ImpreciseNearestNeighborEngine(objects, samples=256)
        best = engine.most_probable_neighbor(_issuer(Point(120.0, 120.0)))
        assert best is not None
        assert best.oid == 1
