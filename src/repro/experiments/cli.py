"""Command-line entry point regenerating every figure of the paper.

Usage::

    python -m repro.experiments.cli                 # default (reduced) scale
    python -m repro.experiments.cli --quick         # CI-sized smoke run
    python -m repro.experiments.cli --scale 1.0 --queries 500 --out results/

For every figure the script prints the measured table, evaluates the
qualitative shape checks against the paper and (optionally) writes a CSV.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.reporting import (
    check_shape,
    figure_to_csv,
    format_figure,
    format_shape_checks,
)


def build_parser() -> argparse.ArgumentParser:
    """Create the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation figures of Chen & Cheng (ICDE 2007).",
    )
    parser.add_argument(
        "--figures",
        nargs="*",
        default=sorted(ALL_FIGURES),
        choices=sorted(ALL_FIGURES),
        help="which figures to run (default: all)",
    )
    parser.add_argument("--scale", type=float, default=None, help="dataset scale factor")
    parser.add_argument("--queries", type=int, default=None, help="queries per data point")
    parser.add_argument("--quick", action="store_true", help="use the tiny CI configuration")
    parser.add_argument("--out", type=Path, default=None, help="directory for CSV exports")
    return parser


def make_config(args: argparse.Namespace) -> ExperimentConfig:
    """Translate CLI arguments into an experiment configuration."""
    config = ExperimentConfig.quick() if args.quick else ExperimentConfig()
    overrides = {}
    if args.scale is not None:
        overrides["dataset_scale"] = args.scale
    if args.queries is not None:
        overrides["queries_per_point"] = args.queries
    return config.scaled(**overrides) if overrides else config


def main(argv: list[str] | None = None) -> int:
    """Run the requested figures and print tables plus shape checks."""
    args = build_parser().parse_args(argv)
    config = make_config(args)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    all_passed = True
    for figure_id in args.figures:
        result = ALL_FIGURES[figure_id](config)
        print(format_figure(result))
        checks = check_shape(result)
        print(format_shape_checks(checks))
        print()
        all_passed = all_passed and all(check.passed for check in checks)
        if args.out is not None:
            figure_to_csv(result, args.out / f"{figure_id}.csv")
    return 0 if all_passed else 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    raise SystemExit(main())
