"""CLI of the invariant analyzer: ``python -m repro.tools.lint [paths]``.

Exit codes: 0 — clean; 1 — diagnostics reported; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.tools.lint.engine import all_rules, lint_paths
from repro.tools.lint.reporting import format_json, format_rule_listing, format_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="Check repository invariants (epoch-guarded caches, "
        "seeded RNG, shm lifecycles, typed raises, wire completeness, …).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--no-cross-checks",
        action="store_true",
        help="skip the import-time registry verifications",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(format_rule_listing(all_rules()))
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"error: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    diagnostics = lint_paths(args.paths, cross_checks=not args.no_cross_checks)
    rendered = (
        format_json(diagnostics) if args.format == "json" else format_text(diagnostics)
    )
    if rendered:
        print(rendered)
    return 1 if diagnostics else 0


if __name__ == "__main__":
    sys.exit(main())
