"""Experiment configuration.

:class:`PaperDefaults` captures Table 2 of the paper (the baseline parameter
values); :class:`ExperimentConfig` adds the knobs a reproduction needs —
dataset scale, number of queries per data point, random seeds — with defaults
small enough that the whole figure suite runs in minutes on a laptop.  Use
``ExperimentConfig.paper_scale()`` for a full-size run.
"""

from __future__ import annotations
from repro.core.errors import ConfigurationError

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.geometry.rect import Rect
from repro.datasets.tiger import DATA_SPACE
from repro.uncertainty.catalog import PAPER_CATALOG_LEVELS


@dataclass(frozen=True)
class PaperDefaults:
    """Baseline parameter values from Table 2 of the paper."""

    #: Half side-length of the issuer's square uncertainty region (``u``).
    issuer_half_size: float = 250.0
    #: Half side-length of the square range query (``w``).
    range_half_size: float = 500.0
    #: Probability threshold (``Qp``).
    threshold: float = 0.0
    #: Number of queries averaged per data point (the paper uses 500).
    queries_per_point: int = 500
    #: R-tree node (page) size in bytes.
    page_size: int = 4096
    #: The 10,000 × 10,000 data space.
    data_space: Rect = DATA_SPACE
    #: U-catalog levels (ten p-bounds for 0, 0.1, ..., 1).
    catalog_levels: tuple[float, ...] = PAPER_CATALOG_LEVELS
    #: Monte-Carlo samples per C-IPQ probability evaluation (Section 6.2).
    cipq_samples: int = 200
    #: Monte-Carlo samples per C-IUQ probability evaluation (Section 6.2).
    ciuq_samples: int = 250


#: The single shared instance of the paper's defaults.
PAPER_DEFAULTS = PaperDefaults()


@dataclass(frozen=True)
class ExperimentConfig:
    """Controls how faithfully (and how slowly) experiments are run.

    ``dataset_scale`` scales the cardinality of the California / Long Beach
    stand-ins; ``queries_per_point`` is the number of random queries averaged
    per plotted point.  The defaults (5 % of the data, 20 queries) keep a full
    figure-suite run to a few minutes while preserving the qualitative shapes;
    :meth:`paper_scale` restores the paper's full setting.
    """

    dataset_scale: float = 0.05
    queries_per_point: int = 20
    seed: int = 2007
    issuer_half_sizes: tuple[float, ...] = (100.0, 250.0, 500.0, 750.0, 1000.0)
    range_half_sizes: tuple[float, ...] = (500.0, 1000.0, 1500.0)
    thresholds: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8)
    catalog_levels: tuple[float, ...] = PAPER_DEFAULTS.catalog_levels
    basic_issuer_samples: int = 400
    monte_carlo_samples: int = PAPER_DEFAULTS.cipq_samples
    #: Which evaluation backend the experiments run on.  The figures compare
    #: *algorithms* by their relative costs (basic vs enhanced, Minkowski vs
    #: p-expanded-query, R-tree vs PTI), which is exactly the cost model of
    #: the paper's scalar implementation; the vectorized backend compresses
    #: those constants differently per method and would distort the figures'
    #: qualitative shapes.  Set to True to study the vectorized backend's
    #: behaviour instead (see ``benchmarks/bench_vectorized.py`` for the
    #: backend-vs-backend comparison).
    engine_vectorized: bool = False
    #: Spatial shard count for sharded-execution studies (0 = single-shard;
    #: the paper's figures always run single-shard so that index I/O counters
    #: keep their meaning).  When positive, harness code builds sessions via
    #: ``session.sharded(shards, workers=shard_workers)``.
    shards: int = 0
    #: Worker processes for sharded execution (1 = serial in-process).
    shard_workers: int = 1
    #: Run sharded execution over spawned RPC shard daemons instead of the
    #: in-process pool (only meaningful with ``shards > 0``).  Harness code
    #: then builds sessions via ``session.distributed(shards)`` — one local
    #: ``shardd`` process per shard; results are identical either way.
    shard_remote: bool = False
    #: Re-split a shard in place once live inserts push it past this many
    #: members (``0`` disables hot-shard re-splitting; only meaningful for
    #: update-workload studies on sharded sessions).
    shard_hot_threshold: int = 0
    #: Capacity of the epoch-keyed result cache threaded through the query
    #: pipeline (``0`` disables caching — the paper's figures always run
    #: uncached so that work counters keep their meaning).  When positive,
    #: :meth:`engine_config` attaches a fresh
    #: :class:`~repro.core.cache.ResultCache` and switches the draw plan to
    #: ``"query_keyed"`` so sampled answers are cacheable too.
    cache_capacity: int = 0
    defaults: PaperDefaults = field(default_factory=PaperDefaults)

    def __post_init__(self) -> None:
        if self.dataset_scale <= 0:
            raise ConfigurationError("dataset_scale must be positive")
        if self.queries_per_point <= 0:
            raise ConfigurationError("queries_per_point must be positive")
        if self.shards < 0:
            raise ConfigurationError("shards must be >= 0 (0 disables sharding)")
        if self.shard_workers < 1:
            raise ConfigurationError("shard_workers must be >= 1")
        if self.shard_hot_threshold < 0:
            raise ConfigurationError("shard_hot_threshold must be >= 0 (0 disables re-splits)")
        if self.shard_remote and self.shard_hot_threshold > 0:
            raise ConfigurationError(
                "hot-shard re-splitting is not supported over remote shard daemons"
            )
        if self.cache_capacity < 0:
            raise ConfigurationError("cache_capacity must be >= 0 (0 disables result caching)")

    @staticmethod
    def quick() -> "ExperimentConfig":
        """A configuration sized for unit tests and CI smoke runs.

        The Monte-Carlo sample count stays at the paper's value: the sampled
        probability work is what the threshold-aware methods save, so
        shrinking it (unlike the dataset or the query count) changes the
        figures' qualitative shapes, and the batched draw plan keeps even
        250-sample runs fast at this scale.
        """
        return ExperimentConfig(
            dataset_scale=0.01,
            queries_per_point=5,
            issuer_half_sizes=(250.0, 1000.0),
            range_half_sizes=(500.0, 1500.0),
            thresholds=(0.0, 0.4, 0.8),
            basic_issuer_samples=100,
            monte_carlo_samples=PAPER_DEFAULTS.ciuq_samples,
        )

    @staticmethod
    def paper_scale() -> "ExperimentConfig":
        """The full-fidelity configuration matching the paper's setup."""
        return ExperimentConfig(
            dataset_scale=1.0,
            queries_per_point=PAPER_DEFAULTS.queries_per_point,
            issuer_half_sizes=(100.0, 250.0, 500.0, 750.0, 1000.0),
            range_half_sizes=(500.0, 1000.0, 1500.0),
            thresholds=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
            basic_issuer_samples=900,
            monte_carlo_samples=PAPER_DEFAULTS.cipq_samples,
        )

    def scaled(self, **kwargs) -> "ExperimentConfig":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)

    def workload_seed(self, salt: int) -> int:
        """Derive a per-sweep-point workload seed so runs stay reproducible."""
        return self.seed * 1_000_003 + salt

    def sharded_session(self, session):
        """Apply the configured sharding to ``session`` (no-op when 0 shards).

        Harness code funnels sessions through this before issuing workloads,
        so flipping ``shards``/``shard_workers`` on a config switches the
        whole experiment to shard-parallel execution without touching the
        figure code (results are identical — see
        :mod:`repro.core.parallel`).
        """
        if self.shards <= 0:
            return session
        if self.shard_remote:
            return session.distributed(self.shards)
        return session.sharded(
            self.shards,
            workers=self.shard_workers,
            hot_threshold=self.shard_hot_threshold or None,
        )

    def engine_config(self, **overrides):
        """An :class:`~repro.core.engine.EngineConfig` on the experiment's backend.

        ``vectorized`` defaults to :attr:`engine_vectorized`; a positive
        :attr:`cache_capacity` attaches a fresh result cache (and the
        ``query_keyed`` draw plan it needs for sampled answers); every other
        engine field can be overridden per experiment.
        """
        from repro.core.cache import ResultCache
        from repro.core.engine import EngineConfig

        overrides.setdefault("vectorized", self.engine_vectorized)
        if self.cache_capacity > 0:
            overrides.setdefault("cache", ResultCache(capacity=self.cache_capacity))
            overrides.setdefault("draw_plan", "query_keyed")
        return EngineConfig(**overrides)


def default_sweep(values: Sequence[float]) -> tuple[float, ...]:
    """Normalise a sweep value list into a sorted tuple of floats."""
    return tuple(sorted(float(v) for v in values))
