"""RPL010 — no pickle on the RPC query hot path.

The distributed shard service exists to move plan-token batches and
columnar answer frames between processes *without* object serialization:
the wire format is JSON headers plus raw ``int64``/``float64`` array
frames (see ``repro/serve/framing.py``), and the 2 KiB/query transport
budget in ``benchmarks/check_regression.py`` assumes exactly that.  A
``pickle.dumps`` slipped into ``repro/rpc/`` would silently reintroduce
the per-query object-graph cost the shared-memory pool PR removed — and
would also widen the daemon's attack surface, since ``pickle.loads`` on
bytes read from a socket executes arbitrary reduction callables.

The rule therefore bans, anywhere under ``repro/rpc/``:

* importing ``pickle`` (or its spiritual kin ``cPickle``, ``dill``,
  ``cloudpickle``, ``marshal``, ``shelve``) at any scope, and
* calling ``pickle.dumps``/``loads``/``dump``/``load`` through any alias
  the import ban might have missed.

The launcher's use of ``multiprocessing`` is fine — spawn-context process
setup pickles the (empty) target args once at startup, which is control
plane, not the per-query path — so only explicit pickle imports/calls are
flagged, not multiprocessing itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import Module, Rule, register
from repro.tools.lint.rules._ast_helpers import dotted_name

#: Modules whose import anywhere under ``repro/rpc/`` defeats the binary
#: wire format (object serializers and serializer front-ends).
_BANNED_MODULES = {
    "pickle",
    "cPickle",
    "_pickle",
    "dill",
    "cloudpickle",
    "marshal",
    "shelve",
}

#: Serializer entry points, matched against dotted call targets so an
#: attribute call through a module alias is still caught.
_BANNED_CALLS = {f"{mod}.{fn}" for mod in _BANNED_MODULES for fn in (
    "dumps",
    "loads",
    "dump",
    "load",
)}


@register
class RpcNoPickle(Rule):
    rule_id = "RPL010"
    severity = "error"
    description = (
        "repro/rpc/ must not pickle: the shard protocol ships JSON headers "
        "plus raw array frames, and unpickling socket bytes executes code"
    )

    def applies_to(self, module: Module) -> bool:
        return module.in_package("repro/rpc/")

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield (
                            node.lineno,
                            f"import of serializer module {alias.name!r} in the "
                            "RPC package: encode through repro.rpc.wire / "
                            "repro.serve.framing instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES:
                    yield (
                        node.lineno,
                        f"import from serializer module {node.module!r} in the "
                        "RPC package: encode through repro.rpc.wire / "
                        "repro.serve.framing instead",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _BANNED_CALLS:
                    yield (
                        node.lineno,
                        f"{name}() on the RPC path: object serialization "
                        "breaks the raw-frame wire contract (and loads() on "
                        "socket bytes executes arbitrary code)",
                    )
