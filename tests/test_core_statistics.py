"""Unit tests for evaluation statistics."""

import pytest

from repro.core.statistics import EvaluationStatistics, aggregate_statistics
from repro.index.iostats import IOStatistics


class TestEvaluationStatistics:
    def test_defaults(self):
        stats = EvaluationStatistics()
        assert stats.response_time == 0.0
        assert stats.candidates_examined == 0
        assert stats.total_pruned == 0

    def test_response_time_ms(self):
        stats = EvaluationStatistics(response_time=0.125)
        assert stats.response_time_ms == 125.0

    def test_record_pruned_accumulates_by_strategy(self):
        stats = EvaluationStatistics()
        stats.record_pruned("p_bound")
        stats.record_pruned("p_bound", 2)
        stats.record_pruned("p_expanded_query")
        assert stats.pruned == {"p_bound": 3, "p_expanded_query": 1}
        assert stats.total_pruned == 4

    def test_io_statistics_attached(self):
        stats = EvaluationStatistics(io=IOStatistics(node_accesses=5))
        assert stats.io.node_accesses == 5


class TestAggregation:
    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            aggregate_statistics([])

    def test_single_element(self):
        stats = EvaluationStatistics(response_time=0.5, candidates_examined=10, results_returned=3)
        aggregate = aggregate_statistics([stats])
        assert aggregate.queries == 1
        assert aggregate.mean_response_time == 0.5
        assert aggregate.mean_candidates == 10
        assert aggregate.mean_results == 3

    def test_mean_over_multiple(self):
        batch = [
            EvaluationStatistics(response_time=0.1, candidates_examined=10),
            EvaluationStatistics(response_time=0.3, candidates_examined=30),
        ]
        aggregate = aggregate_statistics(batch)
        assert aggregate.mean_response_time == pytest.approx(0.2)
        assert aggregate.mean_candidates == pytest.approx(20.0)
        assert aggregate.mean_response_time_ms == pytest.approx(200.0)

    def test_pruned_and_node_accesses_averaged(self):
        first = EvaluationStatistics(io=IOStatistics(node_accesses=4))
        first.record_pruned("p_bound", 2)
        second = EvaluationStatistics(io=IOStatistics(node_accesses=8))
        aggregate = aggregate_statistics([first, second])
        assert aggregate.mean_node_accesses == pytest.approx(6.0)
        assert aggregate.mean_pruned == pytest.approx(1.0)
