# lint-fixture-path: repro/core/example.py
"""Mutators that emit, delegate, or are inherited-observable."""

from repro.core.updates import MutationObservable, UpdateEvent


class Database(MutationObservable):
    def insert(self, obj):
        self.objects.append(obj)
        self._emit_update(UpdateEvent(action="insert", obj=obj))
        return obj

    def delete(self, oid):
        obj = self.objects.pop(oid)
        self._emit_update(UpdateEvent(action="delete", obj=obj))
        return obj


class BulkDatabase(Database):
    def move(self, oid, x, y):
        # Delegation: the mutator it calls emits.
        self.delete(oid)
        return self.insert((oid, x, y))


class PlainBuffer:
    # Not observable: no emission contract applies.
    def insert(self, obj):
        self.items.append(obj)
