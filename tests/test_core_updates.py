"""Unit tests for the update-batch model and the engines' mutation surface."""

from __future__ import annotations

import pytest

from repro.core.engine import (
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.queries import RangeQuery, RangeQuerySpec
from repro.core.session import Session
from repro.core.updates import UpdateBatch, UpdateOp
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject


def _point_objects():
    return [PointObject.at(i, 100.0 * i, 50.0 * i) for i in range(1, 9)]


def _uncertain_objects():
    return [
        UncertainObject.uniform(
            i, Rect.from_center(Point(150.0 * i, 80.0 * i), 40.0, 30.0)
        )
        for i in range(1, 7)
    ]


class TestUpdateBatchBuilder:
    def test_builder_appends_in_order(self):
        batch = (
            UpdateBatch()
            .insert(PointObject.at(10, 1.0, 2.0))
            .move(3, x=5.0, y=6.0)
            .delete(4, target="points")
        )
        assert len(batch) == 3
        actions = [op.action for op in batch]
        assert actions == ["insert", "move", "delete"]

    def test_move_requires_exactly_one_position_form(self):
        with pytest.raises(ValueError, match="either x= and y="):
            UpdateBatch().move(1)
        with pytest.raises(ValueError, match="either x= and y="):
            UpdateBatch().move(1, x=1.0)
        with pytest.raises(ValueError, match="either x= and y="):
            UpdateBatch().move(1, x=1.0, y=2.0, pdf=UniformPdf(Rect(0, 0, 1, 1)))

    def test_ops_are_frozen_records(self):
        op = UpdateOp(action="delete", oid=7, target="points")
        with pytest.raises(AttributeError):
            op.oid = 8


class TestEngineMutationSurface:
    def _engine(self):
        return ImpreciseQueryEngine(
            point_db=PointDatabase.build(_point_objects()),
            uncertain_db=UncertainDatabase.build(_uncertain_objects()),
            config=EngineConfig(),
        )

    def test_insert_dispatches_on_object_type(self):
        engine = self._engine()
        engine.insert(PointObject.at(50, 1.0, 1.0))
        assert 50 in engine.point_db
        stored = engine.insert(
            UncertainObject.uniform(60, Rect.from_center(Point(10.0, 10.0), 5.0, 5.0))
        )
        assert 60 in engine.uncertain_db
        assert stored.catalog is not None  # attached at the database's levels

    def test_delete_requires_target_with_two_databases(self):
        engine = self._engine()
        with pytest.raises(ValueError, match="holds both databases"):
            engine.delete(1)
        engine.delete(1, target="points")
        assert 1 not in engine.point_db
        assert 1 in engine.uncertain_db

    def test_move_infers_target_from_arguments(self):
        engine = self._engine()
        moved = engine.move(2, x=999.0, y=999.0)
        assert isinstance(moved, PointObject)
        moved = engine.move(2, pdf=UniformPdf(Rect.from_center(Point(5.0, 5.0), 2.0, 2.0)))
        assert isinstance(moved, UncertainObject)
        with pytest.raises(ValueError, match="contradicts"):
            engine.move(3, x=1.0, y=1.0, target="uncertain")
        with pytest.raises(ValueError, match="not both"):
            engine.move(3, x=1.0, y=1.0, pdf=UniformPdf(Rect(0, 0, 1, 1)))

    def test_apply_updates_runs_in_order(self):
        engine = self._engine()
        batch = (
            UpdateBatch()
            .insert(PointObject.at(70, 3.0, 3.0))
            .move(70, x=4.0, y=4.0)
            .delete(70, target="points")
        )
        engine.apply_updates(batch)
        assert 70 not in engine.point_db

    def test_evaluate_many_rejects_foreign_items(self):
        engine = self._engine()
        with pytest.raises(TypeError, match="UpdateBatch"):
            engine.evaluate_many(["not-a-query"])


class TestSessionMutationSurface:
    def test_session_round_trip(self):
        session = Session.from_objects(points=_point_objects())
        session.insert(PointObject.at(90, 7.0, 7.0))
        session.move(90, x=8.0, y=8.0)
        removed = session.delete(90)
        assert removed.x == 8.0
        issuer = UncertainObject.uniform(
            0, Rect.from_center(Point(400.0, 200.0), 50.0, 50.0)
        )
        evaluations = session.evaluate_many(
            [
                RangeQuery.ipq(issuer, RangeQuerySpec.square(200.0)),
                UpdateBatch().insert(PointObject.at(91, 420.0, 210.0)),
                RangeQuery.ipq(issuer, RangeQuerySpec.square(200.0)),
            ]
        )
        assert len(evaluations) == 2
        assert 91 in evaluations[1].result.oids()
        assert 91 not in evaluations[0].result.oids()


class TestMutationAtomicity:
    """An index-side failure must leave the object list untouched."""

    def test_failed_pti_insert_leaves_database_unchanged(self):
        objects = _uncertain_objects()
        database = UncertainDatabase(
            objects=list(objects), index=None, kind="pti", catalog_levels=None
        )
        from repro.index.pti import ProbabilityThresholdIndex

        database.index = ProbabilityThresholdIndex.bulk_load(
            [obj.with_catalog() for obj in objects]
        )
        database.objects[:] = list(database.index.items())
        catalog_less = UncertainObject.uniform(999, Rect(0.0, 0.0, 10.0, 10.0))
        size_before = len(database)
        with pytest.raises(ValueError, match="U-catalog"):
            database.insert(catalog_less)
        assert len(database) == size_before
        assert 999 not in database

    def test_rebuild_fallback_last_delete_leaves_database_consistent(self):
        from repro.index.linear import LinearScanIndex
        from repro.index.registry import register_index, unregister_index
        from repro.index.registry import IndexCapabilities

        register_index(
            "norebuild-test",
            LinearScanIndex.bulk_load,
            capabilities=IndexCapabilities(supports_delete=False),
            replace=True,
        )
        try:
            database = PointDatabase.build(
                [PointObject.at(1, 5.0, 5.0)], index_kind="norebuild-test"
            )
            with pytest.raises(ValueError, match="last object"):
                database.delete(1)
            # The failed delete changed nothing: object and index both intact.
            assert 1 in database
            assert len(database.index.range_search(Rect(0.0, 0.0, 10.0, 10.0))) == 1
        finally:
            unregister_index("norebuild-test")


class TestPickleRoundTrip:
    def test_database_pickles_and_keeps_mutation_tracking(self):
        import pickle

        database = PointDatabase.build(_point_objects())
        stale = database.columnar()
        clone = pickle.loads(pickle.dumps(database))
        assert len(clone) == len(database)
        # The clone's tracked list still invalidates snapshots on mutation.
        snapshot = clone.columnar()
        clone.objects.append(PointObject.at(999, 1.0, 2.0))
        assert clone.columnar() is not snapshot
        assert 999 in clone.columnar().oids
        # The original is untouched by the clone's mutation.
        assert database.columnar() is stale


class TestMoveValidationConsistency:
    def test_batch_and_engines_reject_the_same_shapes(self):
        from repro.core.updates import resolve_move_target

        engine = ImpreciseQueryEngine(point_db=PointDatabase.build(_point_objects()))
        bad_shapes = [
            {"x": 1.0},  # partial coordinates
            {"x": 1.0, "pdf": UniformPdf(Rect(0, 0, 1, 1))},  # mixed forms
            {},  # neither form
        ]
        for kwargs in bad_shapes:
            with pytest.raises(ValueError):
                UpdateBatch().move(1, **kwargs)
            with pytest.raises(ValueError):
                engine.move(1, **kwargs)
            with pytest.raises(ValueError):
                resolve_move_target(
                    kwargs.get("x"), kwargs.get("y"), kwargs.get("pdf"), None
                )


class TestUnknownOidErrors:
    """Satellite: unknown oids in a batch raise descriptive ValueErrors."""

    def _point_engine(self):
        return ImpreciseQueryEngine(point_db=PointDatabase.build(_point_objects()))

    def test_delete_unknown_oid_names_oid_and_database(self):
        engine = self._point_engine()
        with pytest.raises(ValueError, match=r"cannot delete oid 999") as excinfo:
            engine.apply_updates(UpdateBatch().delete(999))
        assert "'points'" in str(excinfo.value)

    def test_move_unknown_oid_names_oid_and_database(self):
        engine = self._point_engine()
        with pytest.raises(ValueError, match=r"cannot move oid 999") as excinfo:
            engine.apply_updates(UpdateBatch().move(999, x=1.0, y=2.0))
        assert "'points'" in str(excinfo.value)

    def test_uncertain_target_named_in_message(self):
        engine = ImpreciseQueryEngine(
            point_db=PointDatabase.build(_point_objects()),
            uncertain_db=UncertainDatabase.build(_uncertain_objects()),
        )
        with pytest.raises(ValueError, match=r"cannot delete oid 404") as excinfo:
            engine.apply_updates(UpdateBatch().delete(404, target="uncertain"))
        assert "'uncertain'" in str(excinfo.value)
        moved = UpdateBatch().move(404, pdf=UniformPdf(Rect(0, 0, 10, 10)))
        with pytest.raises(ValueError, match=r"cannot move oid 404") as excinfo:
            engine.apply_updates(moved)
        assert "'uncertain'" in str(excinfo.value)

    def test_original_keyerror_is_chained(self):
        engine = self._point_engine()
        with pytest.raises(ValueError) as excinfo:
            engine.apply_updates(UpdateBatch().delete(999))
        assert isinstance(excinfo.value.__cause__, KeyError)

    def test_sharded_engine_wraps_the_owner_lookup(self):
        from repro.core.parallel import ParallelEngine
        from repro.core.sharding import ShardedDatabase

        engine = ParallelEngine(
            point_db=ShardedDatabase.build_points(_point_objects(), 2),
            config=EngineConfig(draw_plan="per_oid"),
        )
        with pytest.raises(ValueError, match=r"cannot delete oid 999"):
            engine.apply_updates(UpdateBatch().delete(999))

    def test_session_apply_updates_wraps_too(self):
        session = Session.from_objects(points=_point_objects())
        with pytest.raises(ValueError, match=r"cannot move oid 999"):
            session.apply_updates(UpdateBatch().move(999, x=1.0, y=2.0))

    def test_direct_database_calls_keep_raising_keyerror(self):
        # The wrapping lives in the batch layer; the low-level surface is
        # unchanged for callers that want the raw KeyError.
        database = PointDatabase.build(_point_objects())
        with pytest.raises(KeyError):
            database.delete(999)


class TestMutationObservers:
    """The MutationObservable hook on databases and sharded wrappers."""

    def test_events_report_action_oid_and_regions(self):
        database = PointDatabase.build(_point_objects())
        events = []
        database.add_update_observer(events.append)
        database.insert(PointObject.at(50, 10.0, 20.0))
        database.move(50, 30.0, 40.0)
        database.delete(50)
        assert [(e.op.action, e.oid, e.target) for e in events] == [
            ("insert", 50, "points"),
            ("move", 50, "points"),
            ("delete", 50, "points"),
        ]
        insert, move, delete = events
        assert insert.before is None and insert.after.as_tuple() == (10.0, 20.0, 10.0, 20.0)
        # A move's region bounds both endpoints.
        assert move.region.as_tuple() == (10.0, 20.0, 30.0, 40.0)
        assert delete.after is None and delete.before.as_tuple() == (30.0, 40.0, 30.0, 40.0)

    def test_uncertain_database_reports_uncertain_target(self):
        database = UncertainDatabase.build(_uncertain_objects())
        events = []
        database.add_update_observer(events.append)
        database.move(1, UniformPdf(Rect.from_center(Point(500.0, 500.0), 20.0, 20.0)))
        assert events[0].target == "uncertain"
        assert events[0].op.action == "move"

    def test_removed_observer_stops_receiving(self):
        database = PointDatabase.build(_point_objects())
        events = []
        database.add_update_observer(events.append)
        database.remove_update_observer(events.append)
        database.insert(PointObject.at(51, 1.0, 1.0))
        assert events == []
        # Removing again is a no-op.
        database.remove_update_observer(events.append)

    def test_sharded_events_carry_shard_ids(self):
        from repro.core.sharding import ShardedDatabase

        sharded = ShardedDatabase.build_points(_point_objects(), 2)
        events = []
        sharded.add_update_observer(events.append)
        stored = sharded.insert(PointObject.at(60, 120.0, 60.0))
        sharded.move(60, x=750.0, y=380.0)  # long move: crosses shards
        sharded.delete(60)
        assert stored.oid == 60
        insert, move, delete = events
        assert len(insert.sids) == 1
        assert len(move.sids) == 2 and move.sids[0] != move.sids[1]
        assert delete.sids == (move.sids[1],)

    def test_observers_excluded_from_pickles(self):
        import pickle

        database = PointDatabase.build(_point_objects())
        database.add_update_observer(lambda event: None)
        clone = pickle.loads(pickle.dumps(database))
        assert not hasattr(clone, "_update_observers")
        clone.insert(PointObject.at(70, 5.0, 5.0))  # must not fire anything
