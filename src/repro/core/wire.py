"""Shared plumbing for the versioned wire schemas.

Every ``to_dict`` in the repository tags its payload with the producing
schema's name and version; every ``from_dict`` runs :func:`check_schema`
first, so malformed payloads fail with a :class:`~repro.core.errors.SchemaError`
naming what was expected, and payloads from a newer protocol revision fail
with a :class:`~repro.core.errors.SchemaVersionError` instead of a confusing
``KeyError`` deep inside a constructor.  JSON is the interchange format of
record: Python's ``json`` round-trips floats through their shortest repr,
which is exact, so a decoded query plans, prunes and draws bit-for-bit like
the original — the property the serving layer's parity guarantees rest on.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.errors import SchemaError, SchemaVersionError

#: Version stamped into (and required from) every core wire payload.  Bump it
#: when a schema changes shape incompatibly; decoders reject other versions.
WIRE_VERSION = 1


def tagged(schema: str, payload: dict) -> dict:
    """Return ``payload`` with the schema name and version fields prepended."""
    return {"schema": schema, "version": WIRE_VERSION, **payload}


def check_schema(payload: Any, schema: str) -> Mapping:
    """Validate a decoded wire payload's envelope and return it.

    Checks that ``payload`` is a mapping, that it names the expected
    ``schema``, and that its ``version`` is one this build decodes.
    """
    if not isinstance(payload, Mapping):
        raise SchemaError(
            f"expected a {schema!r} payload (a mapping), got {type(payload).__name__!r}"
        )
    found = payload.get("schema")
    if found != schema:
        raise SchemaError(f"expected schema {schema!r}, got {found!r}")
    version = payload.get("version")
    if version != WIRE_VERSION:
        raise SchemaVersionError(
            f"cannot decode {schema!r} version {version!r}; "
            f"this build speaks version {WIRE_VERSION}"
        )
    return payload


def require(payload: Mapping, schema: str, field: str) -> Any:
    """Fetch a required field, failing with a schema error naming it."""
    try:
        return payload[field]
    except KeyError as error:
        raise SchemaError(f"{schema!r} payload is missing field {field!r}") from error
