"""Micro-benchmark: scalar vs vectorized evaluation backends.

Times the four hot probability paths of the reproduction through both
backends over the TIGER-like datasets:

* ``basic_ipq`` / ``basic_iuq`` — the Section-3.3 baseline method through
  :class:`~repro.core.basic.BasicEvaluator` (scalar loop vs broadcast
  ``samples × candidates`` kernels; both share the per-issuer grid cache, so
  the comparison isolates the vectorization, not the grid hoisting);
* ``ciuq_sampled`` — a batch of constrained IUQs through the engine with
  Monte-Carlo probabilities (``EngineConfig(vectorized=...)``); both
  backends share the per-query draw plan, so the comparison isolates the
  evaluation machinery.  The workload point (``u`` = 500, ``w`` = 1500,
  ``Qp`` = 0.3, 250 samples, R-tree + query expansion) sits inside the
  paper's parameter sweeps and is candidate-heavy enough that probability
  work, not index traversal, dominates;
* ``evaluate_many`` — a closed-form IPQ workload through the batch path,
  which additionally amortises the columnar snapshot and window filter.

Results are written to ``BENCH_vectorized.json`` next to the repository root.
Run with::

    PYTHONPATH=src python benchmarks/bench_vectorized.py

Environment knobs: ``REPRO_BENCH_SCALE`` (dataset scale, default 0.02),
``REPRO_BENCH_QUERIES`` (queries per scenario, default 20) and
``REPRO_BENCH_REPEATS`` (timing repetitions, default 3).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.basic import BasicEvaluator
from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase, UncertainDatabase
from repro.core.queries import ImpreciseRangeQuery, RangeQuery
from repro.datasets.tiger import california_points, long_beach_uncertain_objects
from repro.datasets.workload import QueryWorkload
from repro.uncertainty.catalog import PAPER_CATALOG_LEVELS

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_vectorized.json"

ISSUER_HALF_SIZE = 250.0
RANGE_HALF_SIZE = 500.0
BASIC_ISSUER_SAMPLES = 400
CIUQ_ISSUER_HALF_SIZE = 500.0
CIUQ_RANGE_HALF_SIZE = 1500.0
CIUQ_THRESHOLD = 0.3


def _issuers(
    count: int,
    *,
    issuer_half_size: float = ISSUER_HALF_SIZE,
    range_half_size: float = RANGE_HALF_SIZE,
    threshold: float = 0.0,
    seed: int = 4711,
):
    workload = QueryWorkload(
        issuer_half_size=issuer_half_size,
        range_half_size=range_half_size,
        threshold=threshold,
        catalog_levels=PAPER_CATALOG_LEVELS,
        seed=seed,
    )
    return list(workload.issuers(count)), workload.spec


def _best_of(run, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _timed_pair(scalar_run, vectorized_run, repeats: int) -> dict:
    """Interleaved best-of timings so warm-up drift favours neither backend."""
    scalar_best = float("inf")
    vectorized_best = float("inf")
    scalar_run()
    vectorized_run()
    for _ in range(repeats):
        started = time.perf_counter()
        scalar_run()
        scalar_best = min(scalar_best, time.perf_counter() - started)
        started = time.perf_counter()
        vectorized_run()
        vectorized_best = min(vectorized_best, time.perf_counter() - started)
    return {
        "scalar_seconds": scalar_best,
        "vectorized_seconds": vectorized_best,
        "speedup": scalar_best / vectorized_best,
    }


def bench_basic_ipq(points, queries, spec, repeats: int) -> dict:
    scalar = BasicEvaluator(issuer_samples=BASIC_ISSUER_SAMPLES, vectorized=False)
    vectorized = BasicEvaluator(issuer_samples=BASIC_ISSUER_SAMPLES, vectorized=True)

    def run(evaluator):
        for issuer in queries:
            evaluator.evaluate_ipq(ImpreciseRangeQuery(issuer=issuer, spec=spec), points)

    return _timed_pair(lambda: run(scalar), lambda: run(vectorized), repeats)


def bench_basic_iuq(objects, queries, spec, repeats: int) -> dict:
    scalar = BasicEvaluator(issuer_samples=BASIC_ISSUER_SAMPLES, vectorized=False)
    vectorized = BasicEvaluator(issuer_samples=BASIC_ISSUER_SAMPLES, vectorized=True)

    def run(evaluator):
        for issuer in queries:
            evaluator.evaluate_iuq(ImpreciseRangeQuery(issuer=issuer, spec=spec), objects)

    return _timed_pair(lambda: run(scalar), lambda: run(vectorized), repeats)


def bench_ciuq_sampled(uncertain_db, queries, spec, repeats: int) -> dict:
    scalar_engine = ImpreciseQueryEngine(
        uncertain_db=uncertain_db,
        config=EngineConfig(probability_method="monte_carlo", vectorized=False),
    )
    vectorized_engine = ImpreciseQueryEngine(
        uncertain_db=uncertain_db,
        config=EngineConfig(probability_method="monte_carlo", vectorized=True),
    )
    batch = [RangeQuery.ciuq(issuer, spec, CIUQ_THRESHOLD) for issuer in queries]

    return _timed_pair(
        lambda: scalar_engine.evaluate_many(batch),
        lambda: vectorized_engine.evaluate_many(batch),
        repeats,
    )


def bench_evaluate_many(point_db, queries, spec, repeats: int) -> dict:
    scalar_engine = ImpreciseQueryEngine(
        point_db=point_db, config=EngineConfig(vectorized=False)
    )
    vectorized_engine = ImpreciseQueryEngine(
        point_db=point_db, config=EngineConfig(vectorized=True)
    )
    batch = [RangeQuery.ipq(issuer, spec) for issuer in queries]

    return _timed_pair(
        lambda: scalar_engine.evaluate_many(batch),
        lambda: vectorized_engine.evaluate_many(batch),
        repeats,
    )


def main() -> dict:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
    count = int(os.environ.get("REPRO_BENCH_QUERIES", "20"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))

    points = california_points(scale=scale)
    uncertain = [
        obj.with_catalog(PAPER_CATALOG_LEVELS)
        for obj in long_beach_uncertain_objects(scale=scale)
    ]
    point_db = PointDatabase.build(points)
    uncertain_db = UncertainDatabase.build(uncertain, index_kind="rtree")
    queries, spec = _issuers(count)
    ciuq_queries, ciuq_spec = _issuers(
        count,
        issuer_half_size=CIUQ_ISSUER_HALF_SIZE,
        range_half_size=CIUQ_RANGE_HALF_SIZE,
        threshold=CIUQ_THRESHOLD,
    )

    report = {
        "benchmark": "vectorized",
        "dataset_scale": scale,
        "queries_per_scenario": count,
        "repeats": repeats,
        "issuer_samples_basic": BASIC_ISSUER_SAMPLES,
        "ciuq_workload": {
            "issuer_half_size": CIUQ_ISSUER_HALF_SIZE,
            "range_half_size": CIUQ_RANGE_HALF_SIZE,
            "threshold": CIUQ_THRESHOLD,
            "index": "rtree",
        },
        # The C-IUQ scenario runs first: its ~2x margin is the tightest, so
        # it should not inherit thermal throttle from the heavy basic runs.
        "ciuq_sampled": bench_ciuq_sampled(uncertain_db, ciuq_queries, ciuq_spec, repeats),
        "evaluate_many": bench_evaluate_many(point_db, queries, spec, repeats),
        "basic_ipq": bench_basic_ipq(points, queries, spec, repeats),
        "basic_iuq": bench_basic_iuq(uncertain, queries, spec, repeats),
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {OUTPUT_PATH}")
    return report


if __name__ == "__main__":
    main()
