"""Unit tests for the uniform uncertainty pdf."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.sampling import monte_carlo_rect_probability

REGION = Rect(0.0, 0.0, 100.0, 50.0)


@pytest.fixture()
def pdf() -> UniformPdf:
    return UniformPdf(REGION)


class TestConstruction:
    def test_rejects_empty_region(self):
        with pytest.raises(ValueError):
            UniformPdf(Rect.empty())

    def test_rejects_degenerate_region(self):
        with pytest.raises(ValueError):
            UniformPdf(Rect(0.0, 0.0, 0.0, 10.0))

    def test_region_exposed(self, pdf):
        assert pdf.region == REGION

    def test_has_closed_form(self, pdf):
        assert pdf.has_closed_form


class TestDensity:
    def test_density_inside_is_inverse_area(self, pdf):
        assert pdf.density(50.0, 25.0) == pytest.approx(1.0 / REGION.area)

    def test_density_outside_is_zero(self, pdf):
        assert pdf.density(200.0, 25.0) == 0.0

    def test_density_integrates_to_one(self, pdf):
        assert pdf.density(1.0, 1.0) * REGION.area == pytest.approx(1.0)


class TestRectProbability:
    def test_full_region_gives_one(self, pdf):
        assert pdf.probability_in_rect(REGION) == pytest.approx(1.0)

    def test_superset_gives_one(self, pdf):
        assert pdf.probability_in_rect(REGION.expand(10.0)) == pytest.approx(1.0)

    def test_disjoint_gives_zero(self, pdf):
        assert pdf.probability_in_rect(Rect(200.0, 200.0, 300.0, 300.0)) == 0.0

    def test_half_region(self, pdf):
        left_half = Rect(0.0, 0.0, 50.0, 50.0)
        assert pdf.probability_in_rect(left_half) == pytest.approx(0.5)

    def test_quarter_region(self, pdf):
        quarter = Rect(0.0, 0.0, 50.0, 25.0)
        assert pdf.probability_in_rect(quarter) == pytest.approx(0.25)

    def test_matches_monte_carlo(self, pdf, rng):
        rect = Rect(10.0, 5.0, 60.0, 45.0)
        exact = pdf.probability_in_rect(rect)
        estimate = monte_carlo_rect_probability(pdf, rect, 20_000, rng)
        assert estimate == pytest.approx(exact, abs=0.02)


class TestMarginals:
    def test_cdf_endpoints(self, pdf):
        assert pdf.marginal_cdf_x(0.0) == 0.0
        assert pdf.marginal_cdf_x(100.0) == 1.0
        assert pdf.marginal_cdf_y(0.0) == 0.0
        assert pdf.marginal_cdf_y(50.0) == 1.0

    def test_cdf_linear(self, pdf):
        assert pdf.marginal_cdf_x(25.0) == pytest.approx(0.25)
        assert pdf.marginal_cdf_y(25.0) == pytest.approx(0.5)

    def test_quantile_inverts_cdf(self, pdf):
        for p in (0.0, 0.1, 0.33, 0.5, 0.9, 1.0):
            assert pdf.marginal_cdf_x(pdf.marginal_quantile_x(p)) == pytest.approx(p)
            assert pdf.marginal_cdf_y(pdf.marginal_quantile_y(p)) == pytest.approx(p)

    def test_quantile_out_of_range_rejected(self, pdf):
        with pytest.raises(ValueError):
            pdf.marginal_quantile_x(1.5)


class TestSampling:
    def test_samples_inside_region(self, pdf, rng):
        draws = pdf.sample(rng, 1_000)
        assert draws.shape == (1_000, 2)
        assert np.all(draws[:, 0] >= REGION.xmin) and np.all(draws[:, 0] <= REGION.xmax)
        assert np.all(draws[:, 1] >= REGION.ymin) and np.all(draws[:, 1] <= REGION.ymax)

    def test_sample_mean_near_center(self, pdf, rng):
        draws = pdf.sample(rng, 20_000)
        assert float(draws[:, 0].mean()) == pytest.approx(REGION.center.x, rel=0.02)
        assert float(draws[:, 1].mean()) == pytest.approx(REGION.center.y, rel=0.02)

    def test_mean_is_region_center(self, pdf):
        assert pdf.mean() == Point(50.0, 25.0)
