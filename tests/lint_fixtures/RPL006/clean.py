# lint-fixture-path: repro/core/pipeline.py
"""Only perf_counter (statistics channel) and caller-threaded values."""

import time


def evaluate(query, run_stamp):
    started = time.perf_counter()
    result = compute(query, run_stamp)
    elapsed = time.perf_counter() - started
    return result, elapsed
