"""Unit tests for the columnar snapshots and the batched probability kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.basic import (
    basic_ipq_probabilities,
    basic_ipq_probability,
    basic_iuq_probabilities,
    basic_iuq_probability,
    issuer_grid_arrays,
)
from repro.core.columnar import ColumnarPoints, ColumnarUncertain
from repro.core.duality import (
    ipq_probabilities,
    ipq_probabilities_monte_carlo,
    ipq_probability,
    iuq_probabilities_exact_uniform,
    iuq_probabilities_monte_carlo,
    iuq_probability_exact_uniform,
    monte_carlo_iuq_draws,
)
from repro.core.engine import PointDatabase, UncertainDatabase
from repro.core.queries import RangeQuerySpec
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import (
    HistogramPdf,
    TruncatedGaussianPdf,
    UniformCirclePdf,
    UniformPdf,
)
from repro.uncertainty.region import PointObject, UncertainObject
from repro.uncertainty.sampling import monte_carlo_expectation, sample_array, sample_points

SPEC = RangeQuerySpec.square(300.0)
ISSUER_REGION = Rect(1_000.0, 1_000.0, 1_600.0, 1_500.0)


def _points(n=40, seed=5):
    rng = np.random.default_rng(seed)
    coordinates = rng.uniform(0.0, 4_000.0, size=(n, 2))
    return [PointObject.at(i + 1, float(x), float(y)) for i, (x, y) in enumerate(coordinates)]


def _uncertain(n=30, seed=6, with_catalog=True):
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(n):
        x, y = rng.uniform(500.0, 3_500.0, size=2)
        obj = UncertainObject.uniform(
            i + 1, Rect.from_center(Point(float(x), float(y)), 80.0, 60.0)
        )
        objects.append(obj.with_catalog() if with_catalog else obj)
    return objects


class TestColumnarPoints:
    def test_row_alignment(self):
        objects = _points()
        snapshot = ColumnarPoints(objects)
        assert len(snapshot) == len(objects)
        for row, obj in enumerate(objects):
            assert snapshot.oids[row] == obj.oid
            assert snapshot.xy[row, 0] == obj.location.x
            assert snapshot.xy[row, 1] == obj.location.y

    def test_window_rows_matches_brute_force(self):
        objects = _points(200)
        snapshot = ColumnarPoints(objects)
        window = Rect(800.0, 900.0, 2_500.0, 2_400.0)
        expected = [row for row, obj in enumerate(objects) if window.contains_point(obj.location)]
        assert snapshot.window_rows(window).tolist() == expected

    def test_empty_window(self):
        snapshot = ColumnarPoints(_points())
        assert snapshot.window_rows(Rect.empty()).size == 0
        assert ColumnarPoints([]).window_rows(Rect(0, 0, 1, 1)).size == 0

    def test_arrays_read_only(self):
        snapshot = ColumnarPoints(_points())
        with pytest.raises(ValueError):
            snapshot.xy[0, 0] = 0.0
        with pytest.raises(ValueError):
            snapshot.oids[0] = 7


class TestColumnarUncertain:
    def test_bounds_and_rows_for(self):
        objects = _uncertain()
        snapshot = ColumnarUncertain(objects)
        for row, obj in enumerate(objects):
            assert tuple(snapshot.bounds[row]) == obj.region.as_tuple()
        rows = snapshot.rows_for([objects[7], objects[2]])
        assert rows.tolist() == [7, 2]

    def test_window_rows_matches_brute_force(self):
        objects = _uncertain(80)
        snapshot = ColumnarUncertain(objects)
        window = Rect(1_000.0, 1_000.0, 2_200.0, 2_600.0)
        expected = [row for row, obj in enumerate(objects) if obj.region.overlaps(window)]
        assert snapshot.window_rows(window).tolist() == expected

    def test_rows_for_names_the_foreign_oid(self):
        """An object from a different database raises a descriptive ValueError."""
        snapshot = ColumnarUncertain(_uncertain())
        foreign = UncertainObject.uniform(
            4_321, Rect.from_center(Point(100.0, 100.0), 10.0, 10.0)
        )
        with pytest.raises(ValueError, match="4321"):
            snapshot.rows_for([foreign])

    def test_catalog_snapshot_homogeneous(self):
        objects = _uncertain(with_catalog=True)
        snapshot = ColumnarUncertain(objects)
        assert snapshot.catalog_levels is not None
        assert snapshot.catalog_bounds.shape == (
            len(objects),
            len(objects[0].catalog.levels),
            4,
        )
        for li, (_, rect) in enumerate(objects[3].catalog.level_rects()):
            assert tuple(snapshot.catalog_bounds[3, li]) == rect.as_tuple()

    def test_catalog_snapshot_absent_when_heterogeneous(self):
        objects = _uncertain(with_catalog=True)
        objects[4] = UncertainObject(oid=objects[4].oid, pdf=objects[4].pdf)  # no catalog
        snapshot = ColumnarUncertain(objects)
        assert snapshot.catalog_levels is None
        assert snapshot.catalog_bounds is None


class TestDatabaseSnapshotCaching:
    def test_point_snapshot_built_lazily_and_cached(self):
        database = PointDatabase.build(_points())
        assert database._columnar is None
        snapshot = database.columnar()
        assert database.columnar() is snapshot

    def test_uncertain_snapshot_built_lazily_and_cached(self):
        database = UncertainDatabase.build(_uncertain(), index_kind="rtree")
        assert database._columnar is None
        snapshot = database.columnar()
        assert database.columnar() is snapshot

    def test_rebuild_starts_fresh(self):
        objects = _points()
        first = PointDatabase.build(objects)
        first_snapshot = first.columnar()
        rebuilt = PointDatabase.build(objects)
        assert rebuilt.columnar() is not first_snapshot

    def test_mutator_invalidates_snapshot(self):
        database = PointDatabase.build(_points())
        stale = database.columnar()
        database.insert(PointObject.at(4_000, 1_234.0, 2_345.0))
        fresh = database.columnar()
        assert fresh is not stale
        assert 4_000 in fresh.oids
        assert database.columnar() is fresh  # re-cached at the new epoch

    def test_direct_objects_mutation_invalidates_snapshot(self):
        """The historical staleness bug: append to ``db.objects``, query old data."""
        database = PointDatabase.build(_points())
        stale = database.columnar()
        database.objects.append(PointObject.at(4_001, 111.0, 222.0))
        fresh = database.columnar()
        assert fresh is not stale
        assert 4_001 in fresh.oids

    def test_uncertain_mutator_invalidates_snapshot(self):
        database = UncertainDatabase.build(_uncertain(), index_kind="rtree")
        stale = database.columnar()
        database.delete(database.objects[0].oid)
        assert database.columnar() is not stale
        assert len(database.columnar()) == len(stale) - 1


class TestBatchedPdfApi:
    RECTS = np.array(
        [
            (900.0, 900.0, 1_200.0, 1_300.0),
            (1_100.0, 1_050.0, 1_500.0, 1_450.0),
            (0.0, 0.0, 10.0, 10.0),          # disjoint
            (900.0, 900.0, 2_000.0, 2_000.0),  # covers the region
            (1_300.0, 1_200.0, 1_300.0, 1_200.0),  # degenerate
        ]
    )

    def _pdfs(self):
        return [
            UniformPdf(ISSUER_REGION),
            TruncatedGaussianPdf(ISSUER_REGION),
            HistogramPdf(ISSUER_REGION, [[1.0, 2.0], [0.5, 0.0], [3.0, 1.0]]),
            UniformCirclePdf(Circle(Point(1_300.0, 1_250.0), 240.0)),
        ]

    def test_probability_in_rects_matches_scalar(self):
        for pdf in self._pdfs():
            batched = pdf.probability_in_rects(self.RECTS)
            for row, bounds in enumerate(self.RECTS):
                scalar = pdf.probability_in_rect(Rect(*bounds))
                assert batched[row] == pytest.approx(scalar, abs=1e-12), type(pdf)

    def test_probability_in_rects_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            UniformPdf(ISSUER_REGION).probability_in_rects(np.zeros((3, 3)))

    def test_density_array_matches_scalar(self):
        rng = np.random.default_rng(11)
        xs = rng.uniform(800.0, 1_800.0, size=50)
        ys = rng.uniform(800.0, 1_700.0, size=50)
        for pdf in self._pdfs():
            batched = pdf.density_array(xs, ys)
            for x, y, value in zip(xs, ys, batched):
                assert value == pytest.approx(pdf.density(float(x), float(y)), abs=1e-15)

    def test_density_array_preserves_shape(self):
        pdf = UniformPdf(ISSUER_REGION)
        xs = np.full((4, 5), 1_200.0)
        ys = np.full((4, 5), 1_250.0)
        assert pdf.density_array(xs, ys).shape == (4, 5)


class TestSamplingHelpers:
    def test_sample_array_matches_sample_points(self):
        pdf = UniformPdf(ISSUER_REGION)
        array = sample_array(pdf, 32, np.random.default_rng(3))
        points = sample_points(pdf, 32, np.random.default_rng(3))
        assert array.shape == (32, 2)
        for row, point in zip(array, points):
            assert (float(row[0]), float(row[1])) == (point.x, point.y)

    def test_sample_array_validates_count(self):
        with pytest.raises(ValueError):
            sample_array(UniformPdf(ISSUER_REGION), 0, np.random.default_rng(0))

    def test_monte_carlo_expectation_vectorized_matches_scalar(self):
        pdf = UniformPdf(ISSUER_REGION)
        scalar = monte_carlo_expectation(
            pdf, lambda x, y: x + 2.0 * y, 500, np.random.default_rng(21)
        )
        vectorized = monte_carlo_expectation(
            pdf,
            lambda xs, ys: xs + 2.0 * ys,
            500,
            np.random.default_rng(21),
            vectorized=True,
        )
        assert vectorized == pytest.approx(scalar, rel=1e-12)

    def test_monte_carlo_expectation_vectorized_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            monte_carlo_expectation(
                UniformPdf(ISSUER_REGION),
                lambda xs, ys: np.zeros(3),
                10,
                np.random.default_rng(0),
                vectorized=True,
            )


class TestDualityKernels:
    def test_ipq_probabilities_match_scalar(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        locations = np.array([[1_200.0, 1_100.0], [1_700.0, 1_600.0], [9_000.0, 9_000.0]])
        batched = ipq_probabilities(issuer_pdf, SPEC, locations)
        for row, (x, y) in enumerate(locations):
            assert batched[row] == ipq_probability(issuer_pdf, SPEC, Point(x, y))

    def test_iuq_exact_uniform_matches_scalar(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        targets = _uncertain(25, seed=13, with_catalog=False)
        bounds = np.array([obj.region.as_tuple() for obj in targets])
        batched = iuq_probabilities_exact_uniform(issuer_pdf, bounds, SPEC)
        for row, target in enumerate(targets):
            scalar = iuq_probability_exact_uniform(issuer_pdf, target, SPEC)
            assert batched[row] == pytest.approx(scalar, abs=1e-12)

    @pytest.mark.parametrize("pdf_cls", [UniformPdf, TruncatedGaussianPdf])
    def test_ipq_monte_carlo_batch_bitwise(self, pdf_cls):
        """The batch kernel equals a scalar loop over the same draw plan."""
        issuer_pdf = pdf_cls(ISSUER_REGION)
        locations = np.array([[1_250.0, 1_150.0], [1_500.0, 1_400.0], [1_800.0, 1_000.0]])
        batched = ipq_probabilities_monte_carlo(
            issuer_pdf, SPEC, locations, 128, np.random.default_rng(17)
        )
        draws = issuer_pdf.sample_batch(np.random.default_rng(17), 128, len(locations))
        for row, (x, y) in enumerate(locations):
            dx = np.abs(draws[row, :, 0] - x)
            dy = np.abs(draws[row, :, 1] - y)
            inside = (dx <= SPEC.half_width) & (dy <= SPEC.half_height)
            assert batched[row] == float(np.count_nonzero(inside)) / 128

    def test_iuq_monte_carlo_batch_bitwise(self):
        """The batch kernel equals a scalar loop over the same draw plan."""
        issuer_pdf = UniformPdf(ISSUER_REGION)
        targets = _uncertain(8, seed=19, with_catalog=False)
        batched = iuq_probabilities_monte_carlo(
            issuer_pdf, targets, SPEC, 96, np.random.default_rng(23)
        )
        issuer_draws, target_draws = monte_carlo_iuq_draws(
            issuer_pdf, targets, 96, np.random.default_rng(23)
        )
        for row in range(len(targets)):
            dx = np.abs(target_draws[row, :, 0] - issuer_draws[row, :, 0])
            dy = np.abs(target_draws[row, :, 1] - issuer_draws[row, :, 1])
            inside = (dx <= SPEC.half_width) & (dy <= SPEC.half_height)
            assert batched[row] == float(np.count_nonzero(inside)) / 96

    def test_iuq_draw_plan_deterministic_and_in_region(self):
        """The plan is reproducible and every draw lies in its target region."""
        issuer_pdf = UniformPdf(ISSUER_REGION)
        targets = _uncertain(6, seed=31, with_catalog=False)
        first = monte_carlo_iuq_draws(issuer_pdf, targets, 64, np.random.default_rng(5))
        second = monte_carlo_iuq_draws(issuer_pdf, targets, 64, np.random.default_rng(5))
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
        for row, target in enumerate(targets):
            region = target.region
            assert np.all(first[1][row, :, 0] >= region.xmin)
            assert np.all(first[1][row, :, 0] <= region.xmax)
            assert np.all(first[1][row, :, 1] >= region.ymin)
            assert np.all(first[1][row, :, 1] <= region.ymax)

    def test_sample_batch_matches_sample_into_for_gaussian(self):
        """Gaussian batch draws: one ppf call, same uniforms per block."""
        pdf = TruncatedGaussianPdf(ISSUER_REGION)
        batched = pdf.sample_batch(np.random.default_rng(41), 32, 1)
        single = np.empty((32, 2), dtype=float)
        pdf.sample_into(np.random.default_rng(41), single)
        assert np.array_equal(batched[0], single)


class TestBasicKernels:
    def test_issuer_grid_cached_per_pdf_and_samples(self):
        pdf = UniformPdf(ISSUER_REGION)
        first = issuer_grid_arrays(pdf, 100)
        assert issuer_grid_arrays(pdf, 100)[0] is first[0]
        assert issuer_grid_arrays(pdf, 400)[0] is not first[0]

    def test_grid_weights_normalised(self):
        for pdf in (UniformPdf(ISSUER_REGION), TruncatedGaussianPdf(ISSUER_REGION)):
            points, weights = issuer_grid_arrays(pdf, 225)
            assert points.shape == (weights.size, 2)
            assert float(weights.sum()) == pytest.approx(1.0)

    def test_basic_ipq_probabilities_match_scalar(self):
        pdf = TruncatedGaussianPdf(ISSUER_REGION)
        locations = np.array([[1_300.0, 1_250.0], [1_900.0, 1_100.0], [5_000.0, 5_000.0]])
        batched = basic_ipq_probabilities(pdf, SPEC, locations, issuer_samples=100)
        for row, (x, y) in enumerate(locations):
            scalar = basic_ipq_probability(pdf, SPEC, Point(x, y), issuer_samples=100)
            assert batched[row] == pytest.approx(scalar, abs=1e-12)

    def test_basic_iuq_probabilities_match_scalar(self):
        pdf = UniformPdf(ISSUER_REGION)
        targets = _uncertain(12, seed=29, with_catalog=False)
        # Mixed-pdf targets exercise the per-target fallback branch too.
        mixed = targets + [
            UncertainObject(
                oid=100, pdf=TruncatedGaussianPdf(Rect(1_000.0, 1_000.0, 1_400.0, 1_300.0))
            )
        ]
        batched = basic_iuq_probabilities(pdf, mixed, SPEC, issuer_samples=100)
        for row, target in enumerate(mixed):
            scalar = basic_iuq_probability(pdf, target, SPEC, issuer_samples=100)
            assert batched[row] == pytest.approx(scalar, abs=1e-12)
