"""Unit tests for point and uncertain object wrappers."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.catalog import DEFAULT_CATALOG_LEVELS
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

REGION = Rect(10.0, 20.0, 110.0, 220.0)


class TestPointObject:
    def test_at_constructor(self):
        obj = PointObject.at(3, 1.0, 2.0)
        assert obj.oid == 3
        assert obj.location == Point(1.0, 2.0)
        assert obj.x == 1.0 and obj.y == 2.0

    def test_mbr_is_degenerate(self):
        obj = PointObject.at(0, 5.0, 6.0)
        assert obj.mbr.area == 0.0
        assert obj.mbr.contains_point(obj.location)

    def test_equality(self):
        assert PointObject.at(1, 2.0, 3.0) == PointObject.at(1, 2.0, 3.0)


class TestUncertainObject:
    def test_uniform_constructor(self):
        obj = UncertainObject.uniform(7, REGION)
        assert obj.oid == 7
        assert isinstance(obj.pdf, UniformPdf)
        assert obj.region == REGION
        assert obj.catalog is None

    def test_uniform_constructor_with_catalog(self):
        obj = UncertainObject.uniform(7, REGION, with_catalog=True)
        assert obj.catalog is not None
        assert obj.catalog.levels == DEFAULT_CATALOG_LEVELS

    def test_mbr_equals_region(self):
        obj = UncertainObject.uniform(0, REGION)
        assert obj.mbr == obj.region

    def test_with_catalog_builds_requested_levels(self):
        obj = UncertainObject.uniform(0, REGION).with_catalog([0.0, 0.25])
        assert obj.catalog is not None
        assert obj.catalog.levels == (0.0, 0.25)

    def test_with_catalog_preserves_identity_and_pdf(self):
        base = UncertainObject(oid=5, pdf=TruncatedGaussianPdf(REGION))
        enriched = base.with_catalog()
        assert enriched.oid == base.oid
        assert enriched.pdf is base.pdf

    def test_probability_in_rect_delegates_to_pdf(self):
        obj = UncertainObject.uniform(0, Rect(0.0, 0.0, 10.0, 10.0))
        assert obj.probability_in_rect(Rect(0.0, 0.0, 5.0, 10.0)) == pytest.approx(0.5)

    def test_catalog_excluded_from_equality(self):
        plain = UncertainObject.uniform(1, REGION)
        with_cat = plain.with_catalog()
        assert plain == with_cat
