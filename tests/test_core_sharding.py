"""Sharded databases: construction, covers, and shard routing edge cases."""

from __future__ import annotations

import pytest

from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.parallel import ParallelEngine
from repro.core.queries import NearestNeighborQuery, RangeQuery, RangeQuerySpec
from repro.core.sharding import ShardedDatabase
from repro.datasets.synthetic import uniform_points
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.registry import (
    IndexCapabilities,
    register_index,
    unregister_index,
)
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

from tests.conftest import TEST_SPACE


def _issuer(x: float, y: float, half: float = 250.0) -> UncertainObject:
    region = Rect.from_center(Point(x, y), half, half)
    return UncertainObject(oid=0, pdf=UniformPdf(region)).with_catalog()


class TestBuild:
    def test_partition_preserves_every_object(self, small_points):
        sharded = ShardedDatabase.build_points(small_points, 4)
        assert sharded.k == 4
        assert len(sharded) == len(small_points)
        oids = sorted(
            obj.oid
            for shard in sharded.non_empty_shards()
            for obj in shard.database.objects
        )
        assert oids == sorted(obj.oid for obj in small_points)

    def test_covers_contain_their_members(self, small_uncertain):
        sharded = ShardedDatabase.build_uncertain(small_uncertain, 4, catalog_levels=None)
        for shard in sharded.non_empty_shards():
            for obj in shard.database.objects:
                assert shard.cover.contains_rect(obj.region)

    def test_each_shard_gets_its_own_index(self, small_uncertain):
        sharded = ShardedDatabase.build_uncertain(small_uncertain, 2, catalog_levels=None)
        indexes = [shard.database.index for shard in sharded.non_empty_shards()]
        assert len(indexes) == 2
        assert indexes[0] is not indexes[1]

    def test_empty_shards_are_kept_as_placeholders(self):
        # All objects crowd into the bottom-left quadrant, so a 2x2 grid over
        # the full space leaves three cells empty.
        corner = [PointObject.at(i, 10.0 + i, 10.0 + i) for i in range(20)]
        sharded = ShardedDatabase.build_points(corner, 4, bounds=TEST_SPACE)
        assert sharded.k == 4
        empties = [shard for shard in sharded.shards if shard.is_empty]
        assert len(empties) == 3
        assert all(shard.cover.is_empty for shard in empties)
        assert len(sharded.non_empty_shards()) == 1
        assert len(sharded) == 20

    def test_k_one_reproduces_the_collection_in_order(self, small_points):
        sharded = ShardedDatabase.build_points(small_points, 1)
        (shard,) = sharded.shards
        assert shard.database.objects == list(small_points)

    def test_rejects_empty_collections_and_bad_k(self, small_points):
        with pytest.raises(ValueError, match="empty collection"):
            ShardedDatabase.build_points([], 2)
        with pytest.raises(ValueError, match="shard count"):
            ShardedDatabase.build_points(small_points, 0)

    def test_rejects_backends_that_cannot_build_per_shard(self, small_points):
        register_index(
            "global-only",
            lambda items, **kwargs: object(),
            capabilities=IndexCapabilities(supports_shard_build=False),
        )
        try:
            with pytest.raises(ValueError, match="cannot be built per shard"):
                ShardedDatabase.build_points(small_points, 2, index_kind="global-only")
        finally:
            unregister_index("global-only")

    def test_median_partitioner_balances_shards(self, small_points):
        sharded = ShardedDatabase.build_points(small_points, 4, partitioner="median")
        sizes = [len(shard) for shard in sharded.shards]
        assert sum(sizes) == len(small_points)
        assert max(sizes) - min(sizes) <= 2


class TestWindowRouting:
    def test_window_spanning_all_shards_routes_everywhere(self, small_points):
        sharded = ShardedDatabase.build_points(small_points, 4)
        routed = sharded.route_window(TEST_SPACE)
        assert [shard.sid for shard in routed] == [
            shard.sid for shard in sharded.non_empty_shards()
        ]

    def test_window_outside_the_dataset_routes_nowhere(self, small_points):
        sharded = ShardedDatabase.build_points(small_points, 4)
        far_away = Rect(50_000.0, 50_000.0, 51_000.0, 51_000.0)
        assert sharded.route_window(far_away) == []

    def test_empty_window_routes_nowhere(self, small_points):
        sharded = ShardedDatabase.build_points(small_points, 4)
        assert sharded.route_window(Rect.empty()) == []

    def test_small_window_skips_distant_shards(self):
        objects = uniform_points(400, TEST_SPACE, seed=9)
        sharded = ShardedDatabase.build_points(objects, 4, bounds=TEST_SPACE)
        window = Rect(100.0, 100.0, 600.0, 600.0)  # bottom-left corner
        routed = sharded.route_window(window)
        assert len(routed) == 1
        assert routed[0].cover.overlaps(window)

    def test_empty_shards_never_routed(self):
        corner = [PointObject.at(i, 10.0 + i, 10.0 + i) for i in range(20)]
        sharded = ShardedDatabase.build_points(corner, 4, bounds=TEST_SPACE)
        routed = sharded.route_window(TEST_SPACE)
        assert all(not shard.is_empty for shard in routed)
        assert len(routed) == 1


class TestNearestRouting:
    def test_routes_include_the_shard_holding_the_nearest_object(self):
        objects = uniform_points(400, TEST_SPACE, seed=11)
        sharded = ShardedDatabase.build_points(objects, 4, bounds=TEST_SPACE)
        issuer_region = Rect.from_center(Point(1_000.0, 1_000.0), 100.0, 100.0)
        routed = sharded.route_nearest(issuer_region)
        assert routed
        nearest = min(
            objects, key=lambda obj: issuer_region.center.distance_to(obj.location)
        )
        routed_oids = {
            obj.oid for shard in routed for obj in shard.database.objects
        }
        assert nearest.oid in routed_oids

    def test_distant_shards_are_pruned(self):
        objects = uniform_points(400, TEST_SPACE, seed=11)
        sharded = ShardedDatabase.build_points(objects, 4, bounds=TEST_SPACE)
        issuer_region = Rect.from_center(Point(500.0, 500.0), 50.0, 50.0)
        routed = sharded.route_nearest(issuer_region)
        # An issuer deep inside the bottom-left cell cannot be served by the
        # diagonally opposite shard.
        assert len(routed) < sharded.k

    def test_uncertain_databases_reject_nearest_routing(self, small_uncertain):
        sharded = ShardedDatabase.build_uncertain(small_uncertain, 2, catalog_levels=None)
        with pytest.raises(ValueError, match="point-object database"):
            sharded.route_nearest(Rect.from_center(Point(0.0, 0.0), 10.0, 10.0))


class TestRoutingThroughTheEngine:
    """End-to-end edge cases: routed execution stays correct."""

    def test_query_outside_the_data_returns_an_empty_evaluation(self, small_points):
        sharded = ShardedDatabase.build_points(small_points, 4)
        engine = ParallelEngine(point_db=sharded)
        issuer = _issuer(80_000.0, 80_000.0)
        evaluation = engine.evaluate(RangeQuery.ipq(issuer, RangeQuerySpec.square(200.0)))
        assert len(evaluation) == 0
        assert evaluation.statistics.candidates_examined == 0
        assert evaluation.shard_timings == ()

    def test_k_one_matches_the_plain_engine(self, small_points):
        config = EngineConfig(draw_plan="per_oid")
        plain = ImpreciseQueryEngine(
            point_db=PointDatabase.build(small_points), config=config
        )
        sharded = ParallelEngine(
            point_db=ShardedDatabase.build_points(small_points, 1), config=config
        )
        issuer = _issuer(5_000.0, 5_000.0)
        queries = [
            RangeQuery.ipq(issuer, RangeQuerySpec.square(500.0)),
            RangeQuery.cipq(issuer, RangeQuerySpec.square(500.0), 0.3),
            NearestNeighborQuery(issuer=issuer, samples=32),
        ]
        for expected, got in zip(plain.evaluate_many(queries), sharded.evaluate_many(queries)):
            assert expected.probabilities() == got.probabilities()

    def test_queries_over_empty_shard_regions_work(self):
        corner = [PointObject.at(i, 10.0 + 5.0 * i, 10.0 + 5.0 * i) for i in range(30)]
        sharded = ShardedDatabase.build_points(corner, 4, bounds=TEST_SPACE)
        engine = ParallelEngine(point_db=sharded)
        # The issuer sits in an empty grid cell; the window still reaches the
        # populated corner shard.
        issuer = _issuer(7_000.0, 7_000.0, half=200.0)
        evaluation = engine.evaluate(RangeQuery.ipq(issuer, RangeQuerySpec.square(400.0)))
        assert len(evaluation) == 0  # populated corner is out of range
        nearby = _issuer(200.0, 200.0, half=100.0)
        evaluation = engine.evaluate(RangeQuery.ipq(nearby, RangeQuerySpec.square(400.0)))
        assert len(evaluation) > 0


class TestLiveMutation:
    def _points_db(self, n=200, k=4, **kwargs):
        return ShardedDatabase.build_points(
            uniform_points(n, TEST_SPACE, seed=8), k, **kwargs
        )

    def test_insert_routes_to_nearest_cover_and_grows_it(self):
        database = self._points_db()
        stored = database.insert(PointObject.at(7_001, 123.0, 456.0))
        owner = database.owner_of(7_001)
        assert owner.cover.contains_rect(stored.mbr)
        assert len(database) == 201
        assert any(obj.oid == 7_001 for obj in database.objects)

    def test_insert_duplicate_oid_rejected(self):
        database = self._points_db()
        existing = database.objects[0].oid
        with pytest.raises(ValueError, match="already stored"):
            database.insert(PointObject.at(existing, 1.0, 1.0))

    def test_delete_maintains_only_the_owning_shard(self):
        database = self._points_db()
        victim = database.objects[10].oid
        owner = database.owner_of(victim)
        untouched = [s for s in database.non_empty_shards() if s.sid != owner.sid]
        before = [(s.sid, len(s), s.cover) for s in untouched]
        database.delete(victim)
        assert [(s.sid, len(s), s.cover) for s in untouched] == before
        with pytest.raises(KeyError):
            database.owner_of(victim)
        assert len(database) == 199

    def test_deleting_every_member_empties_the_shard(self):
        database = self._points_db(n=60, k=4)
        shard = min(database.non_empty_shards(), key=len)
        for obj in list(shard.database.objects):
            database.delete(obj.oid)
        assert shard.is_empty
        assert shard.cover.is_empty
        assert shard.anchor is None
        # Routing skips it without blowing up.
        assert shard not in database.route_window(TEST_SPACE)

    def test_move_within_shard_updates_cover_and_anchor(self):
        database = self._points_db()
        shard = max(database.non_empty_shards(), key=len)
        obj = shard.database.objects[0]
        moved = database.move(obj.oid, x=obj.x + 5.0, y=obj.y + 5.0)
        owner = database.owner_of(obj.oid)
        assert owner.cover.contains_rect(moved.mbr)
        members = list(owner.database.objects)
        assert any(member.location == owner.anchor for member in members)

    def test_move_across_shards_re_homes_the_object(self):
        database = self._points_db()
        # Pick an object and send it to the far corner of another shard.
        obj = database.objects[0]
        source = database.owner_of(obj.oid)
        target_corner = None
        for shard in database.non_empty_shards():
            if shard.sid != source.sid:
                target_corner = shard.cover.center
                break
        assert target_corner is not None
        moved = database.move(obj.oid, x=target_corner.x, y=target_corner.y)
        owner = database.owner_of(obj.oid)
        assert owner.cover.contains_rect(moved.mbr)
        assert len(database) == 200
        total = sum(len(s) for s in database.non_empty_shards())
        assert total == 200

    def test_uncertain_insert_attaches_catalog(self):
        objects = [
            UncertainObject.uniform(
                i, Rect.from_center(Point(100.0 + i * 40.0, 100.0 + i * 30.0), 30.0, 20.0)
            )
            for i in range(40)
        ]
        database = ShardedDatabase.build_uncertain(objects, 2)
        stored = database.insert(
            UncertainObject.uniform(900, Rect.from_center(Point(500.0, 400.0), 25.0, 25.0))
        )
        assert stored.catalog is not None
        owner = database.owner_of(900)
        owner.database.index.check_augmentation()

    def test_hot_threshold_resplit_keeps_shards_bounded(self):
        database = self._points_db(n=100, k=2, hot_threshold=80)
        k_before = database.k
        for offset in range(120):
            database.insert(
                PointObject.at(8_000 + offset, 5_000.0 + offset, 5_000.0 + offset * 0.5)
            )
        assert database.k > k_before
        assert max(len(s) for s in database.non_empty_shards()) <= 80
        # Shard map and global list stay consistent through re-splits.
        assert sorted(obj.oid for obj in database.objects) == sorted(
            obj.oid for s in database.non_empty_shards() for obj in s.database.objects
        )
        for shard in database.non_empty_shards():
            assert shard is database.owner_of(shard.database.objects[0].oid)

    def test_hot_threshold_validation(self):
        with pytest.raises(ValueError, match="hot_threshold"):
            self._points_db(hot_threshold=1)

    def test_move_argument_validation(self):
        database = self._points_db()
        oid = database.objects[0].oid
        with pytest.raises(ValueError, match="x= and y="):
            database.move(oid, pdf=UniformPdf(Rect(0.0, 0.0, 10.0, 10.0)))

    def test_drained_database_accepts_inserts_again(self):
        database = self._points_db(n=20, k=2)
        for oid in [obj.oid for obj in list(database.objects)]:
            database.delete(oid)
        assert len(database) == 0
        stored = database.insert(PointObject.at(500, 123.0, 456.0))
        assert len(database) == 1
        owner = database.owner_of(500)
        assert owner.cover.contains_rect(stored.mbr)
        assert database.route_window(Rect(100.0, 400.0, 200.0, 500.0)) == [owner]
