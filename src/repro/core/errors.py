"""Typed exception hierarchy shared by the engines and the serving layer.

The hierarchy itself lives in :mod:`repro.errors` (the package root) so the
low-level packages ``repro.core`` imports during its own initialisation —
geometry, uncertainty, datasets, index — can raise the same types without
re-entering a half-initialised ``repro.core``.  This module re-exports every
class under the historical import path; both spellings name the *same*
objects, so ``except repro.core.errors.SchemaError`` catches what
``repro.errors.SchemaError`` raises and vice versa.
"""

from __future__ import annotations

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    DatasetError,
    DistributionError,
    EngineStateError,
    GeometryError,
    InvalidArgumentError,
    InvalidQueryError,
    InvalidUpdateError,
    MissingItemError,
    ReproError,
    SchemaError,
    SchemaVersionError,
    SpatialIndexError,
    UnknownObjectError,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "InvalidQueryError",
    "InvalidUpdateError",
    "UnknownObjectError",
    "BackpressureError",
    "SchemaError",
    "SchemaVersionError",
    "GeometryError",
    "DistributionError",
    "DatasetError",
    "SpatialIndexError",
    "MissingItemError",
    "InvalidArgumentError",
    "EngineStateError",
]
