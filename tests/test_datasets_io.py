"""Unit tests for dataset persistence."""

import pytest

from repro.geometry.rect import Rect
from repro.datasets.io import (
    load_point_objects,
    load_uncertain_objects,
    save_point_objects,
    save_uncertain_objects,
)
from repro.datasets.synthetic import uniform_points, uniform_rectangles
from repro.uncertainty.pdf import TruncatedGaussianPdf
from repro.uncertainty.region import UncertainObject

SPACE = Rect(0.0, 0.0, 1_000.0, 1_000.0)


class TestPointRoundTrip:
    def test_round_trip(self, tmp_path):
        objects = uniform_points(100, SPACE, seed=1)
        path = tmp_path / "points.txt"
        save_point_objects(objects, path)
        assert load_point_objects(path) == objects

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("# comment\n\n1 2.0 3.0\n")
        loaded = load_point_objects(path)
        assert len(loaded) == 1
        assert loaded[0].oid == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "points.txt"
        path.write_text("1 2.0\n")
        with pytest.raises(ValueError):
            load_point_objects(path)


class TestUncertainRoundTrip:
    def test_round_trip(self, tmp_path):
        objects = uniform_rectangles(80, SPACE, seed=2)
        path = tmp_path / "uncertain.txt"
        save_uncertain_objects(objects, path)
        loaded = load_uncertain_objects(path)
        assert [o.oid for o in loaded] == [o.oid for o in objects]
        assert [o.region for o in loaded] == [o.region for o in objects]

    def test_round_trip_with_catalog(self, tmp_path):
        objects = uniform_rectangles(10, SPACE, seed=3)
        path = tmp_path / "uncertain.txt"
        save_uncertain_objects(objects, path)
        loaded = load_uncertain_objects(path, with_catalog=True)
        assert all(obj.catalog is not None for obj in loaded)

    def test_non_uniform_pdf_rejected(self, tmp_path):
        gaussian = UncertainObject(oid=0, pdf=TruncatedGaussianPdf(Rect(0.0, 0.0, 10.0, 10.0)))
        with pytest.raises(TypeError):
            save_uncertain_objects([gaussian], tmp_path / "bad.txt")

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "uncertain.txt"
        path.write_text("0 1.0 2.0 3.0\n")
        with pytest.raises(ValueError):
            load_uncertain_objects(path)
