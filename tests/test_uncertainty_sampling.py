"""Unit tests for the sampling / numerical-integration helpers."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.sampling import (
    PAPER_SAMPLES_CIPQ,
    PAPER_SAMPLES_CIUQ,
    grid_expectation,
    grid_rect_probability,
    monte_carlo_expectation,
    monte_carlo_rect_probability,
    sample_points,
)

REGION = Rect(0.0, 0.0, 100.0, 100.0)


class TestConstants:
    def test_paper_sample_counts(self):
        # Section 6.2: at least 200 samples for C-IPQ and 250 for C-IUQ.
        assert PAPER_SAMPLES_CIPQ == 200
        assert PAPER_SAMPLES_CIUQ == 250


class TestSamplePoints:
    def test_returns_points_inside_region(self, rng):
        points = sample_points(UniformPdf(REGION), 100, rng)
        assert len(points) == 100
        assert all(isinstance(p, Point) for p in points)
        assert all(REGION.contains_point(p) for p in points)

    def test_rejects_non_positive_count(self, rng):
        with pytest.raises(ValueError):
            sample_points(UniformPdf(REGION), 0, rng)


class TestMonteCarloRectProbability:
    def test_uniform_half(self, rng):
        estimate = monte_carlo_rect_probability(
            UniformPdf(REGION), Rect(0.0, 0.0, 50.0, 100.0), 20_000, rng
        )
        assert estimate == pytest.approx(0.5, abs=0.02)

    def test_empty_rect_gives_zero(self, rng):
        assert monte_carlo_rect_probability(UniformPdf(REGION), Rect.empty(), 100, rng) == 0.0

    def test_rejects_non_positive_samples(self, rng):
        with pytest.raises(ValueError):
            monte_carlo_rect_probability(UniformPdf(REGION), REGION, -1, rng)


class TestMonteCarloExpectation:
    def test_expectation_of_constant(self, rng):
        value = monte_carlo_expectation(UniformPdf(REGION), lambda x, y: 0.7, 500, rng)
        assert value == pytest.approx(0.7)

    def test_expectation_of_coordinate(self, rng):
        value = monte_carlo_expectation(UniformPdf(REGION), lambda x, y: x, 20_000, rng)
        assert value == pytest.approx(50.0, rel=0.03)


class TestGridIntegration:
    def test_grid_probability_matches_uniform_closed_form(self):
        pdf = UniformPdf(REGION)
        rect = Rect(10.0, 20.0, 60.0, 90.0)
        assert grid_rect_probability(pdf, rect, resolution=50) == pytest.approx(
            pdf.probability_in_rect(rect), abs=1e-6
        )

    def test_grid_probability_matches_gaussian_closed_form(self):
        pdf = TruncatedGaussianPdf(REGION)
        rect = Rect(25.0, 25.0, 75.0, 75.0)
        assert grid_rect_probability(pdf, rect, resolution=80) == pytest.approx(
            pdf.probability_in_rect(rect), abs=0.01
        )

    def test_grid_probability_disjoint_is_zero(self):
        assert grid_rect_probability(UniformPdf(REGION), Rect(500.0, 0.0, 600.0, 10.0)) == 0.0

    def test_grid_expectation_of_constant(self):
        assert grid_expectation(UniformPdf(REGION), lambda x, y: 2.5, 16) == pytest.approx(2.5)

    def test_grid_expectation_of_coordinate(self):
        value = grid_expectation(UniformPdf(REGION), lambda x, y: y, 32)
        assert value == pytest.approx(50.0, rel=1e-6)

    def test_rejects_non_positive_resolution(self):
        with pytest.raises(ValueError):
            grid_rect_probability(UniformPdf(REGION), REGION, resolution=0)
        with pytest.raises(ValueError):
            grid_expectation(UniformPdf(REGION), lambda x, y: 1.0, 0)

    def test_monte_carlo_agrees_with_grid_for_gaussian(self, rng):
        pdf = TruncatedGaussianPdf(REGION)
        rect = Rect(30.0, 10.0, 80.0, 60.0)
        mc = monte_carlo_rect_probability(pdf, rect, 30_000, rng)
        grid = grid_rect_probability(pdf, rect, resolution=80)
        assert mc == pytest.approx(grid, abs=0.02)
