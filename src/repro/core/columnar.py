"""Columnar snapshots of object collections for the vectorized backend.

The scalar evaluation paths walk ``Point``/``Rect`` dataclasses object by
object; every geometric test is a Python method call.  The vectorized backend
instead snapshots a database's objects into contiguous NumPy arrays once and
evaluates filters and probability kernels as array operations:

* :class:`ColumnarPoints` — point-object coordinates as an ``(N, 2)`` array;
* :class:`ColumnarUncertain` — uncertain-region bounds as an ``(N, 4)`` array
  plus, when every object carries a U-catalog over the same levels, the
  catalog bound rectangles as an ``(N, L, 4)`` array.

Snapshots are immutable views of the object list they were built from; the
databases in :mod:`repro.core.engine` build them lazily on first use and
rebuild them when their epoch counter says the object list has mutated since
(live inserts/deletes/moves), so a snapshot can never be served stale.

Array layouts follow :meth:`repro.geometry.rect.Rect.as_tuple`:
``(xmin, ymin, xmax, ymax)`` columns for every bounds array.
"""

from __future__ import annotations
from repro.core.errors import DatasetError

from typing import Sequence

import numpy as np

from repro.geometry.rect import Rect
from repro.uncertainty.region import PointObject, UncertainObject


def points_in_window_mask(xy: np.ndarray, window: Rect) -> np.ndarray:
    """Row-wise closed-window containment for an ``(N, 2)`` coordinate array.

    The single definition of the point-vs-window predicate used by every
    vectorized filter, mirroring :meth:`Rect.contains_point` (closed bounds).
    """
    xs = xy[:, 0]
    ys = xy[:, 1]
    return (
        (xs >= window.xmin)
        & (xs <= window.xmax)
        & (ys >= window.ymin)
        & (ys <= window.ymax)
    )


def bounds_overlap_window_mask(bounds: np.ndarray, window: Rect) -> np.ndarray:
    """Row-wise closed-rectangle overlap for an ``(N, 4)`` bounds array.

    The single definition of the region-vs-window predicate used by every
    vectorized filter, mirroring :meth:`Rect.overlaps` for non-empty rows.
    """
    return (
        (bounds[:, 0] <= window.xmax)
        & (window.xmin <= bounds[:, 2])
        & (bounds[:, 1] <= window.ymax)
        & (window.ymin <= bounds[:, 3])
    )


class ColumnarPoints:
    """Immutable columnar snapshot of a point-object collection."""

    __slots__ = ("objects", "oids", "xy")

    def __init__(self, objects: Sequence[PointObject]) -> None:
        self.objects: tuple[PointObject, ...] = tuple(objects)
        n = len(self.objects)
        self.oids: np.ndarray = np.fromiter(
            (obj.oid for obj in self.objects), dtype=np.int64, count=n
        )
        xy = np.empty((n, 2), dtype=float)
        for row, obj in enumerate(self.objects):
            location = obj.location
            xy[row, 0] = location.x
            xy[row, 1] = location.y
        xy.setflags(write=False)
        self.oids.setflags(write=False)
        self.xy = xy

    @classmethod
    def from_arrays(
        cls,
        objects: Sequence[PointObject],
        oids: np.ndarray,
        xy: np.ndarray,
    ) -> "ColumnarPoints":
        """Wrap pre-built arrays (e.g. shared-memory views) without copying.

        The arrays must describe ``objects`` row for row — this is how
        :mod:`repro.core.shm` rebuilds a snapshot inside a worker process as
        zero-copy views into a shared mapping instead of re-deriving the
        arrays from the object list.
        """
        snapshot = object.__new__(cls)
        snapshot.objects = tuple(objects)
        if len(oids) != len(snapshot.objects) or len(xy) != len(snapshot.objects):
            raise DatasetError(
                "array row counts must match the object list "
                f"({len(snapshot.objects)} objects, {len(oids)} oids, {len(xy)} rows)"
            )
        oids.setflags(write=False)
        xy.setflags(write=False)
        snapshot.oids = oids
        snapshot.xy = xy
        return snapshot

    def __len__(self) -> int:
        return len(self.objects)

    def window_rows(self, window: Rect) -> np.ndarray:
        """Rows of the points inside the closed ``window`` (ascending order).

        Matches the index filter step for point objects: a degenerate MBR
        overlaps the window exactly when the point lies inside it.
        """
        if window.is_empty or not self.objects:
            return np.empty(0, dtype=np.intp)
        return np.flatnonzero(points_in_window_mask(self.xy, window))


class ColumnarUncertain:
    """Immutable columnar snapshot of an uncertain-object collection."""

    __slots__ = ("objects", "oids", "bounds", "catalog_levels", "catalog_bounds", "_row_of_oid")

    def __init__(self, objects: Sequence[UncertainObject]) -> None:
        self.objects: tuple[UncertainObject, ...] = tuple(objects)
        n = len(self.objects)
        self.oids: np.ndarray = np.fromiter(
            (obj.oid for obj in self.objects), dtype=np.int64, count=n
        )
        bounds = np.empty((n, 4), dtype=float)
        for row, obj in enumerate(self.objects):
            bounds[row] = obj.region.as_tuple()
        bounds.setflags(write=False)
        self.oids.setflags(write=False)
        self.bounds = bounds
        self._row_of_oid: dict[int, int] = {
            obj.oid: row for row, obj in enumerate(self.objects)
        }
        self.catalog_levels, self.catalog_bounds = self._snapshot_catalogs()

    @classmethod
    def from_arrays(
        cls,
        objects: Sequence[UncertainObject],
        oids: np.ndarray,
        bounds: np.ndarray,
        *,
        catalog_levels: np.ndarray | None = None,
        catalog_bounds: np.ndarray | None = None,
    ) -> "ColumnarUncertain":
        """Wrap pre-built arrays (e.g. shared-memory views) without copying.

        The arrays must describe ``objects`` row for row; the two catalog
        arrays are either both present or both absent, mirroring what
        :meth:`_snapshot_catalogs` would have derived.
        """
        snapshot = object.__new__(cls)
        snapshot.objects = tuple(objects)
        n = len(snapshot.objects)
        if len(oids) != n or len(bounds) != n:
            raise DatasetError(
                "array row counts must match the object list "
                f"({n} objects, {len(oids)} oids, {len(bounds)} bounds rows)"
            )
        if (catalog_levels is None) != (catalog_bounds is None):
            raise DatasetError(
                "catalog_levels and catalog_bounds must be given together"
            )
        for array in (oids, bounds, catalog_levels, catalog_bounds):
            if array is not None:
                array.setflags(write=False)
        snapshot.oids = oids
        snapshot.bounds = bounds
        snapshot.catalog_levels = catalog_levels
        snapshot.catalog_bounds = catalog_bounds
        snapshot._row_of_oid = {
            obj.oid: row for row, obj in enumerate(snapshot.objects)
        }
        return snapshot

    def _snapshot_catalogs(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Catalog bound rectangles as ``(N, L, 4)``, when homogeneous.

        Vectorized Strategy-1 pruning needs every object's bound rectangle at
        one shared level; that only works when all objects store catalogs over
        identical levels (the common case — workload builders attach the same
        level set everywhere).  Heterogeneous or missing catalogs yield
        ``(None, None)`` and the engine falls back to per-object pruning.
        """
        if not self.objects:
            return None, None
        first = self.objects[0].catalog
        if first is None:
            return None, None
        levels = first.levels
        n = len(self.objects)
        table = np.empty((n, len(levels), 4), dtype=float)
        for row, obj in enumerate(self.objects):
            catalog = obj.catalog
            if catalog is None or catalog.levels != levels:
                return None, None
            for li, (_, rect) in enumerate(catalog.level_rects()):
                table[row, li] = rect.as_tuple()
        table.setflags(write=False)
        level_array = np.asarray(levels, dtype=float)
        level_array.setflags(write=False)
        return level_array, table

    def __len__(self) -> int:
        return len(self.objects)

    def rows_for(self, candidates: Sequence[UncertainObject]) -> np.ndarray:
        """Snapshot rows of ``candidates`` (by object id), in candidate order.

        Raises a descriptive ``ValueError`` for objects that are not part of
        the snapshot — candidates must come from the same database the
        snapshot was built on.
        """
        row_of = self._row_of_oid
        rows = np.empty(len(candidates), dtype=np.intp)
        for position, obj in enumerate(candidates):
            row = row_of.get(obj.oid)
            if row is None:
                raise DatasetError(
                    f"object with oid {obj.oid} is not part of this columnar "
                    "snapshot; candidates must come from the database the "
                    "snapshot was built on"
                )
            rows[position] = row
        return rows

    def window_rows(self, window: Rect) -> np.ndarray:
        """Rows of the objects whose region overlaps ``window`` (ascending)."""
        if window.is_empty or not self.objects:
            return np.empty(0, dtype=np.intp)
        return np.flatnonzero(bounds_overlap_window_mask(self.bounds, window))
