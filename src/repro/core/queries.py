"""Query and answer types (Section 3.2 of the paper).

An imprecise location-dependent range query is described by

* the *query issuer* ``O0`` — an uncertain object whose pdf models the
  imprecision of the issuer's own location,
* the range rectangle's half-width ``w`` and half-height ``h`` (the range is
  centred at the issuer's true, unknown position), and
* an optional *probability threshold* ``Qp``; answers with qualification
  probability below the threshold are not reported (Definitions 5 and 6).

The module also defines the unified query-object model that the engine's
single ``evaluate()`` entry point dispatches on:

* :class:`Query` — abstract base of every request;
* :class:`RangeQuery` — one type covering all four paper query flavours
  (IPQ, IUQ, C-IPQ, C-IUQ) via a target kind plus an optional threshold;
* :class:`NearestNeighborQuery` — the imprecise nearest-neighbour extension;
* :class:`Evaluation` — the response envelope bundling the answers, the
  work counters, the wall-clock time and an echo of the query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal

from repro.core.errors import InvalidQueryError, SchemaError
from repro.core.statistics import EvaluationStatistics
from repro.core.wire import check_schema, require, tagged
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.region import UncertainObject

#: Wire schema names of the query and answer-envelope payloads.
QUERY_SCHEMA = "repro.query"
EVALUATION_SCHEMA = "repro.evaluation"


@dataclass(frozen=True, slots=True)
class RangeQuerySpec:
    """The shape of a location-dependent range query: half-width and half-height."""

    half_width: float
    half_height: float

    def __post_init__(self) -> None:
        if self.half_width < 0 or self.half_height < 0:
            raise InvalidQueryError("query half-extents must be non-negative")

    @staticmethod
    def square(half_size: float) -> "RangeQuerySpec":
        """A square range, the shape used throughout the paper's experiments."""
        return RangeQuerySpec(half_size, half_size)

    def region_at(self, center: Point) -> Rect:
        """The concrete range rectangle ``R(x, y)`` for an issuer located at ``center``."""
        return Rect.from_center(center, self.half_width, self.half_height)

    @property
    def area(self) -> float:
        """Area of the range rectangle."""
        return (2.0 * self.half_width) * (2.0 * self.half_height)


@dataclass(frozen=True)
class ImpreciseRangeQuery:
    """A fully specified imprecise location-dependent range query.

    ``threshold == 0`` corresponds to the unconstrained IPQ / IUQ of
    Definitions 3–4 (return every object with non-zero probability);
    a positive threshold yields the constrained C-IPQ / C-IUQ of
    Definitions 5–6.
    """

    issuer: UncertainObject
    spec: RangeQuerySpec
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise InvalidQueryError(f"threshold must lie in [0, 1], got {self.threshold}")

    @property
    def issuer_region(self) -> Rect:
        """The issuer's uncertainty region ``U0``."""
        return self.issuer.region

    @property
    def is_constrained(self) -> bool:
        """True when a positive probability threshold applies."""
        return self.threshold > 0.0

    def range_at(self, center: Point) -> Rect:
        """Range rectangle for a hypothetical issuer position ``center``."""
        return self.spec.region_at(center)


@dataclass(frozen=True, slots=True)
class QueryAnswer:
    """One tuple of a query result: an object identity and its qualification probability."""

    oid: int
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0 + 1e-9:
            raise InvalidQueryError(f"probability out of range: {self.probability}")


@dataclass
class QueryResult:
    """An ordered collection of query answers.

    Answers are kept sorted by decreasing probability so that the "most
    certainly qualifying" objects come first, matching how a location-based
    service would present them.
    """

    answers: list[QueryAnswer] = field(default_factory=list)

    def add(self, oid: int, probability: float) -> None:
        """Append an answer (re-sorting is deferred to :meth:`sort`)."""
        self.answers.append(QueryAnswer(oid=oid, probability=probability))

    def sort(self) -> None:
        """Sort answers by decreasing probability, ties broken by object id."""
        self.answers.sort(key=lambda a: (-a.probability, a.oid))

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[QueryAnswer]:
        return iter(self.answers)

    def probabilities(self) -> dict[int, float]:
        """Return a ``{oid: probability}`` mapping of the answers."""
        return {answer.oid: answer.probability for answer in self.answers}

    def oids(self) -> set[int]:
        """Return the set of object identities in the answer."""
        return {answer.oid for answer in self.answers}

    def above_threshold(self, threshold: float) -> "QueryResult":
        """Return a new result keeping only answers with probability ≥ threshold."""
        filtered = [a for a in self.answers if a.probability >= threshold]
        return QueryResult(answers=filtered)


# --------------------------------------------------------------------------- #
# Unified query-object model
# --------------------------------------------------------------------------- #

#: Which database a range query runs against: the point-object collection
#: (IPQ / C-IPQ) or the uncertain-object collection (IUQ / C-IUQ).
RangeQueryTarget = Literal["points", "uncertain"]

RANGE_QUERY_TARGETS: tuple[RangeQueryTarget, ...] = ("points", "uncertain")


@dataclass(frozen=True)
class Query:
    """Base class of every request accepted by ``engine.evaluate()``.

    All queries are issued by an uncertain object ``O0`` whose pdf models the
    imprecision of the issuer's own location.
    """

    issuer: UncertainObject

    @property
    def kind(self) -> str:
        """Short machine-readable name of the query flavour."""
        raise NotImplementedError

    @property
    def issuer_region(self) -> Rect:
        """The issuer's uncertainty region ``U0``."""
        return self.issuer.region


@dataclass(frozen=True)
class RangeQuery(Query):
    """A location-dependent range query in the unified model.

    One type covers all four flavours of the paper: the ``target`` selects
    the database (points → IPQ family, uncertain → IUQ family) and a
    positive ``threshold`` turns the query into its constrained variant
    (C-IPQ / C-IUQ, Definitions 5–6).
    """

    spec: RangeQuerySpec
    threshold: float = 0.0
    target: RangeQueryTarget = "points"

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise InvalidQueryError(f"threshold must lie in [0, 1], got {self.threshold}")
        if self.target not in RANGE_QUERY_TARGETS:
            raise InvalidQueryError(
                f"unknown range-query target {self.target!r}; "
                f"expected one of {RANGE_QUERY_TARGETS}"
            )

    # -- constructors named after the paper's query types ----------------- #
    @classmethod
    def ipq(cls, issuer: UncertainObject, spec: RangeQuerySpec) -> "RangeQuery":
        """Imprecise range query over point objects (Definition 3)."""
        return cls(issuer=issuer, spec=spec, threshold=0.0, target="points")

    @classmethod
    def iuq(cls, issuer: UncertainObject, spec: RangeQuerySpec) -> "RangeQuery":
        """Imprecise range query over uncertain objects (Definition 4)."""
        return cls(issuer=issuer, spec=spec, threshold=0.0, target="uncertain")

    @classmethod
    def cipq(
        cls, issuer: UncertainObject, spec: RangeQuerySpec, threshold: float
    ) -> "RangeQuery":
        """Constrained imprecise range query over point objects (Definition 5)."""
        return cls(issuer=issuer, spec=spec, threshold=threshold, target="points")

    @classmethod
    def ciuq(
        cls, issuer: UncertainObject, spec: RangeQuerySpec, threshold: float
    ) -> "RangeQuery":
        """Constrained imprecise range query over uncertain objects (Definition 6)."""
        return cls(issuer=issuer, spec=spec, threshold=threshold, target="uncertain")

    @classmethod
    def from_legacy(
        cls, query: "ImpreciseRangeQuery", target: RangeQueryTarget
    ) -> "RangeQuery":
        """Adapt a legacy :class:`ImpreciseRangeQuery` plus target kind."""
        return cls(
            issuer=query.issuer,
            spec=query.spec,
            threshold=query.threshold,
            target=target,
        )

    # -- properties -------------------------------------------------------- #
    @property
    def kind(self) -> str:
        """``"ipq"``, ``"iuq"``, ``"cipq"`` or ``"ciuq"``."""
        constrained = "c" if self.is_constrained else ""
        flavour = "ipq" if self.target == "points" else "iuq"
        return constrained + flavour

    @property
    def is_constrained(self) -> bool:
        """True when a positive probability threshold applies."""
        return self.threshold > 0.0

    def range_at(self, center: Point) -> Rect:
        """Range rectangle for a hypothetical issuer position ``center``."""
        return self.spec.region_at(center)

    def to_dict(self) -> dict:
        """A JSON-safe, versioned description of this query."""
        return tagged(
            QUERY_SCHEMA,
            {
                "kind": "range",
                "issuer": self.issuer.to_dict(),
                "half_width": self.spec.half_width,
                "half_height": self.spec.half_height,
                "threshold": self.threshold,
                "target": self.target,
            },
        )

    @classmethod
    def from_dict(cls, payload) -> "RangeQuery":
        """Decode a :meth:`to_dict` payload (exact: extents round-trip bitwise)."""
        payload = check_schema(payload, QUERY_SCHEMA)
        kind = require(payload, QUERY_SCHEMA, "kind")
        if kind != "range":
            raise SchemaError(f"expected a 'range' query payload, got kind {kind!r}")
        return cls(
            issuer=UncertainObject.from_dict(require(payload, QUERY_SCHEMA, "issuer")),
            spec=RangeQuerySpec(
                float(require(payload, QUERY_SCHEMA, "half_width")),
                float(require(payload, QUERY_SCHEMA, "half_height")),
            ),
            threshold=float(require(payload, QUERY_SCHEMA, "threshold")),
            target=require(payload, QUERY_SCHEMA, "target"),
        )


@dataclass(frozen=True)
class NearestNeighborQuery(Query):
    """An imprecise nearest-neighbour query over point objects.

    The paper's stated future work: report each point object's probability
    (under the issuer's pdf) of being the issuer's nearest neighbour.
    ``samples`` overrides the Monte-Carlo sample count; when ``None`` the
    engine uses its default.
    """

    threshold: float = 0.0
    samples: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.threshold <= 1.0:
            raise InvalidQueryError(f"threshold must lie in [0, 1], got {self.threshold}")
        if self.samples is not None and self.samples <= 0:
            raise InvalidQueryError(f"samples must be positive, got {self.samples}")

    @property
    def kind(self) -> str:
        return "nn"

    def to_dict(self) -> dict:
        """A JSON-safe, versioned description of this query."""
        return tagged(
            QUERY_SCHEMA,
            {
                "kind": "nn",
                "issuer": self.issuer.to_dict(),
                "threshold": self.threshold,
                "samples": self.samples,
            },
        )

    @classmethod
    def from_dict(cls, payload) -> "NearestNeighborQuery":
        """Decode a :meth:`to_dict` payload."""
        payload = check_schema(payload, QUERY_SCHEMA)
        kind = require(payload, QUERY_SCHEMA, "kind")
        if kind != "nn":
            raise SchemaError(f"expected an 'nn' query payload, got kind {kind!r}")
        samples = require(payload, QUERY_SCHEMA, "samples")
        return cls(
            issuer=UncertainObject.from_dict(require(payload, QUERY_SCHEMA, "issuer")),
            threshold=float(require(payload, QUERY_SCHEMA, "threshold")),
            samples=None if samples is None else int(samples),
        )


def query_from_dict(payload) -> Query:
    """Decode any query payload, dispatching on its ``kind`` discriminator."""
    payload = check_schema(payload, QUERY_SCHEMA)
    kind = require(payload, QUERY_SCHEMA, "kind")
    if kind == "range":
        return RangeQuery.from_dict(payload)
    if kind == "nn":
        return NearestNeighborQuery.from_dict(payload)
    raise SchemaError(f"unknown query kind {kind!r}; expected 'range' or 'nn'")


@dataclass(frozen=True)
class Evaluation:
    """The response envelope returned by ``engine.evaluate()``.

    Bundles the ranked answers with the per-query work counters, the
    wall-clock time of the whole evaluation (including dispatch overhead,
    hence ≥ ``statistics.response_time``) and an echo of the query so that
    batch results remain self-describing.
    """

    query: Query
    result: QueryResult
    statistics: EvaluationStatistics
    elapsed_seconds: float

    @property
    def answers(self) -> list[QueryAnswer]:
        """The ranked answers."""
        return self.result.answers

    @property
    def elapsed_ms(self) -> float:
        """Wall-clock time in milliseconds."""
        return self.elapsed_seconds * 1000.0

    def __len__(self) -> int:
        return len(self.result)

    def __iter__(self) -> Iterator[QueryAnswer]:
        return iter(self.result)

    def probabilities(self) -> dict[int, float]:
        """``{oid: probability}`` mapping of the answers."""
        return self.result.probabilities()

    def oids(self) -> set[int]:
        """Object identities in the answer."""
        return self.result.oids()

    def top(self, count: int = 1) -> list[QueryAnswer]:
        """The ``count`` most probable answers."""
        return self.result.answers[:count]

    def as_tuple(self) -> tuple[QueryResult, EvaluationStatistics]:
        """The legacy ``(result, statistics)`` shape of the old engine API."""
        return self.result, self.statistics

    def to_dict(self) -> dict:
        """A JSON-safe, versioned description of the full answer envelope.

        Answers are shipped as ``[oid, probability]`` pairs in ranked order;
        JSON preserves float values exactly, so a decoded envelope carries
        bitwise-identical probabilities.
        """
        return tagged(
            EVALUATION_SCHEMA,
            {
                "query": self.query.to_dict(),
                "answers": [[a.oid, a.probability] for a in self.result.answers],
                "statistics": self.statistics.to_dict(),
                "elapsed_seconds": self.elapsed_seconds,
            },
        )

    @classmethod
    def from_dict(cls, payload) -> "Evaluation":
        """Decode a :meth:`to_dict` payload."""
        payload = check_schema(payload, EVALUATION_SCHEMA)
        return cls(
            query=query_from_dict(require(payload, EVALUATION_SCHEMA, "query")),
            result=QueryResult(
                answers=[
                    QueryAnswer(oid=int(oid), probability=float(probability))
                    for oid, probability in require(payload, EVALUATION_SCHEMA, "answers")
                ]
            ),
            statistics=EvaluationStatistics.from_dict(
                require(payload, EVALUATION_SCHEMA, "statistics")
            ),
            elapsed_seconds=float(require(payload, EVALUATION_SCHEMA, "elapsed_seconds")),
        )
