"""Spatial sharding of point / uncertain databases.

A :class:`ShardedDatabase` partitions an object collection into ``k``
spatial shards (grid cells or recursive-median splits, see
:mod:`repro.datasets.partition`), builds one index from the registry per
non-empty shard, and answers the *shard planner* questions of the parallel
executor:

* :meth:`ShardedDatabase.route_window` — which shards can a range query's
  expanded window touch?  A shard is consulted iff the window overlaps the
  shard's *cover* rectangle (the union of its members' MBRs), which is exact
  for point members and conservative-and-complete for uncertain members
  because an object's whole region is contained in its shard's cover.
* :meth:`ShardedDatabase.route_nearest` — which shards can hold a
  nearest-neighbour winner for an issuer region?  Every shard keeps an
  *anchor* (the member location closest to the cover centre); the smallest
  max-distance from the issuer region to any anchor upper-bounds the best
  possible distance, and shards whose cover lies entirely beyond that bound
  are skipped.

Shards own ordinary :class:`~repro.core.engine.PointDatabase` /
:class:`~repro.core.engine.UncertainDatabase` instances, so every engine
feature — columnar snapshots, PTI node-level pruning, pruner caching — works
unchanged per shard.  Partitioning preserves input order inside each shard,
so ``k = 1`` reproduces the unsharded database exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

from repro.core.engine import PointDatabase, UncertainDatabase
from repro.datasets.partition import (
    PartitionMethod,
    mbr_centers,
    partition_assignments,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import extract_mbr
from repro.index.registry import get_index_backend
from repro.uncertainty.catalog import DEFAULT_CATALOG_LEVELS
from repro.uncertainty.region import PointObject, UncertainObject

ShardKind = Literal["points", "uncertain"]


@dataclass
class Shard:
    """One spatial partition: its database (if non-empty) plus routing metadata."""

    sid: int
    database: PointDatabase | UncertainDatabase | None
    #: Union of the members' MBRs; ``Rect.empty()`` for an empty shard.
    cover: Rect
    #: A representative member location used by nearest-neighbour routing
    #: (``None`` for empty or uncertain shards).
    anchor: Point | None = None

    @property
    def is_empty(self) -> bool:
        """True when the partition received no objects."""
        return self.database is None

    def __len__(self) -> int:
        return 0 if self.database is None else len(self.database)


@dataclass
class ShardedDatabase:
    """A database partitioned into ``k`` spatial shards, each independently indexed."""

    kind: ShardKind
    shards: list[Shard]
    index_kind: str
    partitioner: PartitionMethod
    objects: list = field(repr=False)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _plan(
        objects: list, k: int, partitioner: PartitionMethod, bounds: Rect | None
    ) -> list[list]:
        if k < 1:
            raise ValueError(f"shard count must be >= 1, got {k}")
        if not objects:
            raise ValueError("cannot shard an empty collection")
        if bounds is None and partitioner == "grid":
            bounds = Rect.bounding([extract_mbr(obj) for obj in objects])
        assignments = partition_assignments(
            mbr_centers(objects), k, method=partitioner, bounds=bounds
        )
        parts: list[list] = [[] for _ in range(k)]
        for obj, sid in zip(objects, assignments):
            parts[int(sid)].append(obj)
        return parts

    @staticmethod
    def _check_shardable(index_kind: str) -> None:
        backend = get_index_backend(index_kind)
        if not backend.capabilities.supports_shard_build:
            raise ValueError(
                f"index kind {index_kind!r} cannot be built per shard "
                "(its registry capabilities declare supports_shard_build=False)"
            )

    @staticmethod
    def _cover(members: list) -> Rect:
        return Rect.bounding([extract_mbr(obj) for obj in members])

    @staticmethod
    def _anchor(members: list[PointObject], cover: Rect) -> Point:
        center = cover.center
        best = min(members, key=lambda obj: obj.location.distance_to(center))
        return best.location

    @classmethod
    def build_points(
        cls,
        objects: Iterable[PointObject],
        k: int,
        *,
        partitioner: PartitionMethod = "grid",
        index_kind: str = "rtree",
        bounds: Rect | None = None,
        **index_kwargs,
    ) -> "ShardedDatabase":
        """Partition point objects into ``k`` shards and index each one.

        ``bounds`` fixes the grid partitioner's data space (default: the
        collection's bounding rectangle).  Empty partitions are kept as
        index-less shards so shard ids stay aligned with the partitioner's
        cells.
        """
        materialised = list(objects)
        cls._check_shardable(index_kind)
        parts = cls._plan(materialised, k, partitioner, bounds)
        shards: list[Shard] = []
        for sid, members in enumerate(parts):
            if not members:
                shards.append(Shard(sid=sid, database=None, cover=Rect.empty()))
                continue
            database = PointDatabase.build(members, index_kind=index_kind, **index_kwargs)
            cover = cls._cover(members)
            shards.append(
                Shard(
                    sid=sid,
                    database=database,
                    cover=cover,
                    anchor=cls._anchor(members, cover),
                )
            )
        return cls(
            kind="points",
            shards=shards,
            index_kind=index_kind,
            partitioner=partitioner,
            objects=materialised,
        )

    @classmethod
    def build_uncertain(
        cls,
        objects: Iterable[UncertainObject],
        k: int,
        *,
        partitioner: PartitionMethod = "grid",
        index_kind: str = "pti",
        catalog_levels: Sequence[float] | None = DEFAULT_CATALOG_LEVELS,
        bounds: Rect | None = None,
        **index_kwargs,
    ) -> "ShardedDatabase":
        """Partition uncertain objects into ``k`` shards and index each one.

        Each shard gets its own PTI (or other registry backend) built over
        only its members — the per-partition index construction the paper's
        production deployments would use.  ``catalog_levels`` behaves as in
        :meth:`UncertainDatabase.build`.
        """
        materialised = list(objects)
        cls._check_shardable(index_kind)
        parts = cls._plan(materialised, k, partitioner, bounds)
        shards: list[Shard] = []
        rebuilt: list[UncertainObject] = []
        for sid, members in enumerate(parts):
            if not members:
                shards.append(Shard(sid=sid, database=None, cover=Rect.empty()))
                continue
            database = UncertainDatabase.build(
                members,
                index_kind=index_kind,
                catalog_levels=catalog_levels,
                **index_kwargs,
            )
            # The database may have attached catalogs; keep the global object
            # list consistent with what the shards actually store.
            rebuilt.extend(database.objects)
            shards.append(Shard(sid=sid, database=database, cover=cls._cover(members)))
        return cls(
            kind="uncertain",
            shards=shards,
            index_kind=index_kind,
            partitioner=partitioner,
            objects=rebuilt if rebuilt else materialised,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """Number of partitions (including empty ones)."""
        return len(self.shards)

    def non_empty_shards(self) -> list[Shard]:
        """The shards that actually hold objects."""
        return [shard for shard in self.shards if not shard.is_empty]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # ------------------------------------------------------------------ #
    # Shard planning
    # ------------------------------------------------------------------ #
    def route_window(self, window: Rect) -> list[Shard]:
        """Shards whose cover overlaps ``window`` (in shard-id order).

        The window of a range query is its Minkowski-expanded region (or any
        subset of it, e.g. the Qp-expanded-query); shards the window misses
        cannot contribute candidates, because every member's MBR lies inside
        its shard's cover.  An empty window — or one entirely outside the
        data — routes to no shard at all.
        """
        if window.is_empty:
            return []
        return [
            shard
            for shard in self.shards
            if not shard.is_empty and shard.cover.overlaps(window)
        ]

    def route_nearest(self, issuer_region: Rect) -> list[Shard]:
        """Shards that can hold a nearest-neighbour winner for ``issuer_region``.

        For any issuer position, the anchor of any shard is a real object, so
        ``min_s max_{x ∈ U0} dist(x, anchor_s)`` upper-bounds the best
        achievable distance; a shard whose cover's minimum distance to the
        issuer region exceeds that bound can never win a draw.  Only defined
        for point shards (nearest-neighbour queries run over point objects).
        """
        if self.kind != "points":
            raise ValueError("nearest-neighbour routing requires a point-object database")
        candidates = self.non_empty_shards()
        if not candidates:
            return []
        bound = min(
            issuer_region.max_distance_to_point(shard.anchor)
            for shard in candidates
            if shard.anchor is not None
        )
        return [
            shard
            for shard in candidates
            if shard.cover.min_distance_to_rect(issuer_region) <= bound
        ]
