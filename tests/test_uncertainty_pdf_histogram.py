"""Unit tests for the histogram (piecewise-constant) uncertainty pdf."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.uncertainty.pdf import HistogramPdf, UniformPdf

REGION = Rect(0.0, 0.0, 100.0, 100.0)


class TestConstruction:
    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            HistogramPdf(REGION, [[1.0, -1.0]])

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            HistogramPdf(REGION, [[0.0, 0.0], [0.0, 0.0]])

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            HistogramPdf(REGION, [])

    def test_rejects_degenerate_region(self):
        with pytest.raises(ValueError):
            HistogramPdf(Rect(0.0, 0.0, 0.0, 1.0), [[1.0]])

    def test_shape(self):
        pdf = HistogramPdf(REGION, [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert pdf.shape == (2, 3)


class TestProbability:
    def test_single_bin_matches_uniform(self, rng):
        histogram = HistogramPdf(REGION, [[1.0]])
        uniform = UniformPdf(REGION)
        for rect in (
            Rect(0.0, 0.0, 50.0, 50.0),
            Rect(25.0, 10.0, 80.0, 90.0),
            Rect(-10.0, -10.0, 10.0, 10.0),
        ):
            assert histogram.probability_in_rect(rect) == pytest.approx(
                uniform.probability_in_rect(rect)
            )

    def test_mass_concentrated_in_one_bin(self):
        # All mass in the lower-left quadrant bin.
        pdf = HistogramPdf(REGION, [[1.0, 0.0], [0.0, 0.0]])
        lower_left = Rect(0.0, 0.0, 50.0, 50.0)
        upper_right = Rect(50.0, 50.0, 100.0, 100.0)
        assert pdf.probability_in_rect(lower_left) == pytest.approx(1.0)
        assert pdf.probability_in_rect(upper_right) == pytest.approx(0.0)

    def test_full_region_gives_one(self):
        pdf = HistogramPdf(REGION, [[1.0, 2.0], [3.0, 4.0]])
        assert pdf.probability_in_rect(REGION) == pytest.approx(1.0)

    def test_partial_bin_overlap_is_proportional(self):
        pdf = HistogramPdf(REGION, [[1.0]])
        quarter_bin = Rect(0.0, 0.0, 25.0, 100.0)
        assert pdf.probability_in_rect(quarter_bin) == pytest.approx(0.25)

    def test_weights_are_normalised(self):
        pdf = HistogramPdf(REGION, [[2.0, 2.0], [2.0, 2.0]])
        half = Rect(0.0, 0.0, 100.0, 50.0)
        assert pdf.probability_in_rect(half) == pytest.approx(0.5)


class TestDensityAndMarginals:
    def test_density_outside_region_is_zero(self):
        pdf = HistogramPdf(REGION, [[1.0]])
        assert pdf.density(150.0, 50.0) == 0.0

    def test_density_reflects_bin_weight(self):
        pdf = HistogramPdf(REGION, [[3.0, 1.0]])
        assert pdf.density(10.0, 50.0) > pdf.density(90.0, 50.0)

    def test_marginal_cdf_monotone(self):
        pdf = HistogramPdf(REGION, [[1.0, 3.0], [2.0, 1.0]])
        xs = np.linspace(0.0, 100.0, 21)
        values = [pdf.marginal_cdf_x(float(x)) for x in xs]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert values[0] == pytest.approx(0.0)
        assert values[-1] == pytest.approx(1.0)

    def test_quantile_inverts_cdf(self):
        pdf = HistogramPdf(REGION, [[1.0, 3.0], [2.0, 1.0]])
        for p in (0.1, 0.5, 0.9):
            x = pdf.marginal_quantile_x(p)
            assert pdf.marginal_cdf_x(x) == pytest.approx(p, abs=1e-3)


class TestSampling:
    def test_samples_follow_bin_weights(self, rng):
        pdf = HistogramPdf(REGION, [[1.0, 0.0], [0.0, 0.0]])
        draws = pdf.sample(rng, 2_000)
        assert np.all(draws[:, 0] <= 50.0 + 1e-9)
        assert np.all(draws[:, 1] <= 50.0 + 1e-9)

    def test_sampled_fraction_matches_weight(self, rng):
        pdf = HistogramPdf(REGION, [[3.0, 1.0]])
        draws = pdf.sample(rng, 20_000)
        left_fraction = float(np.count_nonzero(draws[:, 0] < 50.0)) / len(draws)
        assert left_fraction == pytest.approx(0.75, abs=0.02)
