"""Patrol dispatch: the paper's "policeman" scenario plus the NN extension.

Section 6.1 motivates the experiments with a policeman who "may wish to look
for suspect vehicles (in the database) within some distance from his
(imprecise) location".  This example runs that scenario end to end:

1. a constrained imprecise range query (C-IUQ) over a database of suspect
   vehicles whose own positions are uncertain, returning only vehicles that
   are nearby with probability at least 0.4, and
2. the imprecise nearest-neighbour extension (the paper's future work): which
   police station is most likely the closest one to the officer right now?

Run with::

    python examples/patrol_dispatch.py
"""

from __future__ import annotations

from repro import (
    Point,
    PointObject,
    Rect,
    Session,
    UncertainObject,
    UniformPdf,
)
from repro.datasets.synthetic import clustered_rectangles

CITY = Rect(0.0, 0.0, 10_000.0, 10_000.0)


def main() -> None:
    # --- the officer's imprecise location -----------------------------------
    officer = UncertainObject(
        oid=0, pdf=UniformPdf(Rect.from_center(Point(3_200.0, 6_400.0), 300.0, 300.0))
    ).with_catalog()

    # --- suspect vehicles: uncertain objects tracked from sporadic sightings,
    # --- police stations: precisely known points, in one session ------------
    vehicles = clustered_rectangles(2_000, CITY, size_range=(40.0, 300.0), seed=99)
    stations = [
        PointObject.at(1, 2_800.0, 6_000.0),
        PointObject.at(2, 3_900.0, 6_900.0),
        PointObject.at(3, 3_100.0, 7_400.0),
        PointObject.at(4, 1_500.0, 5_200.0),
    ]
    session = Session.from_objects(points=stations, uncertain=vehicles)

    threshold = 0.4
    evaluation = (
        session.range(half_width=800.0)
        .targets("uncertain")
        .threshold(threshold)
        .issued_by(officer)
        .run()
    )
    result, stats = evaluation.result, evaluation.statistics

    print(f"suspect vehicles within 800 units with probability >= {threshold}:")
    if not result.answers:
        print("  none — widen the range or lower the threshold")
    for answer in list(result)[:8]:
        print(f"  vehicle {answer.oid}: probability {answer.probability:.3f}")
    print(
        f"  ({stats.candidates_examined} candidates examined, "
        f"{stats.total_pruned} pruned, {stats.io.node_accesses} index node reads, "
        f"{stats.response_time_ms:.2f} ms)"
    )

    # --- which station should send backup? ----------------------------------
    nn_evaluation = session.nearest(samples=2_000).issued_by(officer).run()

    print()
    print("probability of each station being the officer's nearest:")
    for answer in nn_evaluation:
        print(f"  station {answer.oid}: {answer.probability:.3f}")
    best = nn_evaluation.top(1)
    assert best
    print(f"dispatch backup from station {best[0].oid}")


if __name__ == "__main__":
    main()
