"""Unit tests for :mod:`repro.geometry.interval`."""

import pytest

from repro.geometry.interval import Interval


class TestConstruction:
    def test_from_center(self):
        interval = Interval.from_center(5.0, 2.0)
        assert interval.low == 3.0
        assert interval.high == 7.0

    def test_from_center_rejects_negative_extent(self):
        with pytest.raises(ValueError):
            Interval.from_center(0.0, -1.0)

    def test_empty_interval_is_empty(self):
        assert Interval.empty().is_empty

    def test_degenerate_interval_not_empty(self):
        assert not Interval(2.0, 2.0).is_empty


class TestProperties:
    def test_length(self):
        assert Interval(1.0, 4.0).length == 3.0

    def test_length_of_empty_is_zero(self):
        assert Interval.empty().length == 0.0

    def test_length_of_degenerate_is_zero(self):
        assert Interval(2.0, 2.0).length == 0.0

    def test_center(self):
        assert Interval(2.0, 6.0).center == 4.0


class TestPredicates:
    def test_contains_inside(self):
        assert Interval(0.0, 10.0).contains(5.0)

    def test_contains_boundary(self):
        assert Interval(0.0, 10.0).contains(0.0)
        assert Interval(0.0, 10.0).contains(10.0)

    def test_contains_outside(self):
        assert not Interval(0.0, 10.0).contains(10.5)

    def test_contains_interval(self):
        assert Interval(0.0, 10.0).contains_interval(Interval(2.0, 8.0))
        assert not Interval(0.0, 10.0).contains_interval(Interval(2.0, 12.0))

    def test_contains_empty_interval(self):
        assert Interval(0.0, 1.0).contains_interval(Interval.empty())

    def test_empty_contains_nothing(self):
        assert not Interval.empty().contains_interval(Interval(0.0, 1.0))

    def test_overlaps(self):
        assert Interval(0.0, 5.0).overlaps(Interval(5.0, 10.0))
        assert not Interval(0.0, 5.0).overlaps(Interval(5.1, 10.0))

    def test_overlaps_empty_is_false(self):
        assert not Interval(0.0, 5.0).overlaps(Interval.empty())


class TestArithmetic:
    def test_intersect(self):
        result = Interval(0.0, 5.0).intersect(Interval(3.0, 8.0))
        assert result == Interval(3.0, 5.0)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0.0, 1.0).intersect(Interval(2.0, 3.0)).is_empty

    def test_intersect_touching_is_degenerate(self):
        result = Interval(0.0, 2.0).intersect(Interval(2.0, 3.0))
        assert not result.is_empty
        assert result.length == 0.0

    def test_union_bounds(self):
        assert Interval(0.0, 1.0).union_bounds(Interval(5.0, 6.0)) == Interval(0.0, 6.0)

    def test_union_bounds_with_empty(self):
        interval = Interval(0.0, 1.0)
        assert interval.union_bounds(Interval.empty()) == interval
        assert Interval.empty().union_bounds(interval) == interval

    def test_expand(self):
        assert Interval(2.0, 4.0).expand(1.0) == Interval(1.0, 5.0)

    def test_expand_negative_can_shrink(self):
        assert Interval(0.0, 10.0).expand(-2.0) == Interval(2.0, 8.0)

    def test_translate(self):
        assert Interval(0.0, 2.0).translate(3.0) == Interval(3.0, 5.0)

    def test_minkowski_sum(self):
        assert Interval(0.0, 1.0).minkowski_sum(Interval(-2.0, 2.0)) == Interval(-2.0, 3.0)

    def test_minkowski_sum_with_empty_is_empty(self):
        assert Interval(0.0, 1.0).minkowski_sum(Interval.empty()).is_empty

    def test_overlap_length(self):
        assert Interval(0.0, 10.0).overlap_length(Interval(5.0, 20.0)) == 5.0
        assert Interval(0.0, 10.0).overlap_length(Interval(20.0, 30.0)) == 0.0


class TestHelpers:
    def test_clamp(self):
        interval = Interval(0.0, 10.0)
        assert interval.clamp(-5.0) == 0.0
        assert interval.clamp(5.0) == 5.0
        assert interval.clamp(15.0) == 10.0

    def test_clamp_empty_raises(self):
        with pytest.raises(ValueError):
            Interval.empty().clamp(0.0)

    def test_distance_to(self):
        interval = Interval(0.0, 10.0)
        assert interval.distance_to(-3.0) == 3.0
        assert interval.distance_to(5.0) == 0.0
        assert interval.distance_to(12.0) == 2.0

    def test_fraction_below(self):
        interval = Interval(0.0, 10.0)
        assert interval.fraction_below(-1.0) == 0.0
        assert interval.fraction_below(0.0) == 0.0
        assert interval.fraction_below(2.5) == pytest.approx(0.25)
        assert interval.fraction_below(10.0) == 1.0
        assert interval.fraction_below(11.0) == 1.0

    def test_fraction_below_degenerate(self):
        interval = Interval(5.0, 5.0)
        assert interval.fraction_below(5.0) == 0.0
        assert interval.fraction_below(6.0) == 1.0
