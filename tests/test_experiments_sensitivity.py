"""Tests for the ablation / sensitivity experiments."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.sensitivity import (
    STRATEGY_SUBSETS,
    catalog_size_sweep,
    index_comparison,
    monte_carlo_sample_sweep,
    pruning_strategy_ablation,
)


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    return ExperimentConfig(
        dataset_scale=0.005,
        queries_per_point=3,
        issuer_half_sizes=(250.0, 750.0),
    )


class TestMonteCarloSampleSweep:
    def test_error_decreases_with_samples(self):
        points = monte_carlo_sample_sweep(sample_counts=(25, 400), probes=30)
        assert points[0].samples == 25
        assert points[-1].samples == 400
        assert points[-1].mean_absolute_error <= points[0].mean_absolute_error

    def test_paper_sample_count_is_accurate_enough(self):
        points = monte_carlo_sample_sweep(sample_counts=(200,), probes=40)
        assert points[0].mean_absolute_error < 0.05


class TestCatalogSizeSweep:
    def test_produces_one_point_per_size(self, tiny_config):
        result = catalog_size_sweep(catalog_sizes=(2, 6), config=tiny_config)
        assert [p.x for p in result.series["pti_p_expanded_query"]] == [2.0, 6.0]

    def test_larger_catalogs_do_not_increase_candidates(self, tiny_config):
        result = catalog_size_sweep(catalog_sizes=(2, 11), config=tiny_config)
        points = {p.x: p for p in result.series["pti_p_expanded_query"]}
        assert points[11.0].candidates <= points[2.0].candidates + 1e-9


class TestIndexComparison:
    def test_all_index_kinds_present(self, tiny_config):
        result = index_comparison(config=tiny_config)
        assert set(result.series_names()) == {"rtree", "grid", "linear"}

    def test_linear_scan_examines_most_candidates(self, tiny_config):
        # All index kinds return the same candidates (the filter is the same
        # expanded query), but the linear scan reads every page.
        result = index_comparison(config=tiny_config, index_kinds=("rtree", "linear"))
        for x in result.x_values():
            assert (
                result.value_at("linear", x).node_accesses
                >= result.value_at("rtree", x).node_accesses
            )


class TestPruningStrategyAblation:
    def test_all_subsets_measured(self, tiny_config):
        result = pruning_strategy_ablation(config=tiny_config)
        assert set(result.series_names()) == set(STRATEGY_SUBSETS)

    def test_all_strategies_prune_at_least_as_much_as_none(self, tiny_config):
        result = pruning_strategy_ablation(config=tiny_config, threshold=0.6)
        threshold = 0.6
        none_point = result.series["none"][0]
        all_point = result.series["all"][0]
        # With pruning enabled, fewer exact probability computations are needed.
        assert all_point.probability_computations <= none_point.probability_computations
        assert none_point.x == threshold
