"""Unit tests for the uniform-over-circle pdf (non-rectangular extension)."""

import numpy as np
import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import UniformCirclePdf
from repro.uncertainty.sampling import monte_carlo_rect_probability


@pytest.fixture()
def pdf() -> UniformCirclePdf:
    return UniformCirclePdf(Circle(Point(100.0, 100.0), 50.0))


class TestBasics:
    def test_rejects_zero_radius(self):
        with pytest.raises(ValueError):
            UniformCirclePdf(Circle(Point(0.0, 0.0), 0.0))

    def test_region_is_bounding_square(self, pdf):
        assert pdf.region == Rect(50.0, 50.0, 150.0, 150.0)

    def test_not_closed_form(self, pdf):
        assert not pdf.has_closed_form

    def test_density_inside_and_outside(self, pdf):
        assert pdf.density(100.0, 100.0) > 0.0
        # Inside the bounding square but outside the disc.
        assert pdf.density(52.0, 52.0) == 0.0


class TestProbability:
    def test_bounding_rect_gives_one(self, pdf):
        assert pdf.probability_in_rect(pdf.region) == pytest.approx(1.0, abs=1e-3)

    def test_half_plane_gives_half(self, pdf):
        left = Rect(0.0, 0.0, 100.0, 200.0)
        assert pdf.probability_in_rect(left) == pytest.approx(0.5, abs=0.01)

    def test_disjoint_gives_zero(self, pdf):
        assert pdf.probability_in_rect(Rect(500.0, 500.0, 600.0, 600.0)) == 0.0

    def test_matches_monte_carlo(self, pdf, rng):
        rect = Rect(80.0, 60.0, 140.0, 120.0)
        estimate = monte_carlo_rect_probability(pdf, rect, 30_000, rng)
        assert pdf.probability_in_rect(rect) == pytest.approx(estimate, abs=0.02)


class TestMarginals:
    def test_cdf_center_is_half(self, pdf):
        assert pdf.marginal_cdf_x(100.0) == pytest.approx(0.5)
        assert pdf.marginal_cdf_y(100.0) == pytest.approx(0.5)

    def test_cdf_endpoints(self, pdf):
        assert pdf.marginal_cdf_x(50.0) == 0.0
        assert pdf.marginal_cdf_x(150.0) == 1.0

    def test_quantile_inverts_cdf(self, pdf):
        for p in (0.1, 0.4, 0.5, 0.8):
            x = pdf.marginal_quantile_x(p)
            assert pdf.marginal_cdf_x(x) == pytest.approx(p, abs=1e-6)


class TestSampling:
    def test_samples_inside_disc(self, pdf, rng):
        draws = pdf.sample(rng, 5_000)
        distances = np.hypot(draws[:, 0] - 100.0, draws[:, 1] - 100.0)
        assert np.all(distances <= 50.0 + 1e-9)

    def test_sample_mean_near_center(self, pdf, rng):
        draws = pdf.sample(rng, 20_000)
        assert float(draws[:, 0].mean()) == pytest.approx(100.0, abs=1.5)
        assert float(draws[:, 1].mean()) == pytest.approx(100.0, abs=1.5)
