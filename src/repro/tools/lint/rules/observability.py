"""RPL007 — mutators on observable databases must emit ``UpdateEvent``.

Continuous queries (PR 6) subscribe to databases through the
:class:`~repro.core.updates.MutationObservable` hook and *only* re-evaluate
when an ``UpdateEvent`` arrives.  A mutator that changes live data without
calling ``self._emit_update(...)`` silently desynchronizes every standing
subscription — the data moves, the subscribers' answers don't.

The rule finds classes that are observable (``MutationObservable`` in
their bases, directly or through another observable class defined earlier
in the same module) and requires each public mutator method — ``insert`` /
``delete`` / ``move`` — to either reference ``_emit_update`` or delegate to
another mutator (e.g. a convenience wrapper looping over ``self.insert``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import Module, Rule, register
from repro.tools.lint.rules._ast_helpers import only_raises, referenced_names

#: The public mutator surface the observability contract covers.
MUTATORS = ("insert", "delete", "move")

#: Class names that seed observability (the mixin itself, plus its name
#: under attribute access like ``updates.MutationObservable``).
_OBSERVABLE_SEED = "MutationObservable"


def _base_names(cls: ast.ClassDef) -> list[str]:
    names: list[str] = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


@register
class ObservableMutators(Rule):
    rule_id = "RPL007"
    severity = "error"
    description = (
        "insert/delete/move on a MutationObservable class must emit an "
        "UpdateEvent (or delegate to a mutator that does)"
    )

    def applies_to(self, module: Module) -> bool:
        return module.in_package("repro/")

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        # Observability propagates through locally-defined base classes;
        # classes appear in definition order, so one forward pass suffices
        # for the straight-line hierarchies this codebase uses.
        observable = {_OBSERVABLE_SEED}
        for cls in [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]:
            bases = _base_names(cls)
            if not observable.intersection(bases):
                continue
            if cls.name == _OBSERVABLE_SEED:
                continue
            observable.add(cls.name)
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name not in MUTATORS or only_raises(stmt):
                    continue
                names = referenced_names(stmt)
                if "_emit_update" in names:
                    continue
                if any(mutator in names for mutator in MUTATORS if mutator != stmt.name):
                    continue  # delegates to another mutator
                yield (
                    stmt.lineno,
                    f"{cls.name}.{stmt.name} mutates an observable database "
                    "without _emit_update(...): standing subscriptions will "
                    "silently serve stale answers",
                )
