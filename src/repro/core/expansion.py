"""Query expansion (Section 4.1) and the p-expanded-query (Section 5.1).

*Query expansion* turns the imprecise query into a conventional window query:
the Minkowski sum ``R ⊕ U0`` of the range rectangle and the issuer's
uncertainty region contains every point at which some possible issuer
position could see an object; anything outside it has zero qualification
probability (Lemma 1).

The *p-expanded-query* sharpens this for constrained queries: by Lemma 5 the
left side of the p-expanded-query sits ``w`` units to the left of the
issuer's ``l0(p)`` p-bound line (and analogously for the other three sides),
and any point object outside it has qualification probability below ``p``
(Definition 7).  The 0-expanded-query coincides with the Minkowski sum.
"""

from __future__ import annotations
from repro.core.errors import InvalidQueryError

from repro.geometry.rect import Rect
from repro.core.queries import RangeQuerySpec
from repro.uncertainty.catalog import UCatalog
from repro.uncertainty.pbound import compute_pbound
from repro.uncertainty.pdf import UncertaintyPdf


def minkowski_expanded_query(issuer_region: Rect, spec: RangeQuerySpec) -> Rect:
    """The expanded query range ``R ⊕ U0`` (Lemma 1 / Figure 2).

    For axis-parallel rectangles the sum is ``U0`` grown by the query
    half-width on the left/right and half-height on the top/bottom.
    """
    if issuer_region.is_empty:
        raise InvalidQueryError("issuer uncertainty region must be non-empty")
    return issuer_region.expand(spec.half_width, spec.half_height)


def p_expanded_query(issuer_pdf: UncertaintyPdf, spec: RangeQuerySpec, p: float) -> Rect:
    """The exact p-expanded-query built from the issuer's pdf (Lemma 5).

    Each side of the Minkowski sum is moved inwards by the distance between
    the issuer region's boundary and the corresponding p-bound line of the
    issuer.  For ``p == 0`` the result equals the Minkowski sum; the rectangle
    shrinks monotonically as ``p`` grows and may become empty for large ``p``
    (meaning *no* object can reach the threshold).
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidQueryError(f"p must lie in [0, 1], got {p}")
    bound = compute_pbound(issuer_pdf, p)
    return Rect(
        bound.left - spec.half_width,
        bound.bottom - spec.half_height,
        bound.right + spec.half_width,
        bound.top + spec.half_height,
    )


def p_expanded_query_from_catalog(
    catalog: UCatalog, spec: RangeQuerySpec, p: float
) -> tuple[Rect, float]:
    """The p-expanded-query derived from a pre-computed U-catalog.

    Since only a few probability levels are stored, the requested ``p`` is
    rounded *down* to the largest stored level ``M ≤ p`` (Section 5.1): the
    ``M``-expanded-query encloses the exact ``p``-expanded-query, so pruning
    with it remains correct, merely less sharp.  Returns the rectangle and the
    level actually used.
    """
    if not 0.0 <= p <= 1.0:
        raise InvalidQueryError(f"p must lie in [0, 1], got {p}")
    level = catalog.largest_level_at_most(p)
    if level is None:
        # Rounding *up* would produce a smaller window and could wrongly prune
        # qualifying objects, so there is no safe answer without the level-0
        # bound; callers must fall back to the Minkowski sum in that case.
        raise InvalidQueryError(
            f"no stored catalog level is <= {p}; use the Minkowski sum instead "
            "(or store level 0 in the U-catalog)"
        )
    bound = catalog.bound_at(level)
    rect = Rect(
        bound.left - spec.half_width,
        bound.bottom - spec.half_height,
        bound.right + spec.half_width,
        bound.top + spec.half_height,
    )
    return rect, level
