"""Unit tests for the experiment configuration."""

import pytest

from repro.experiments.config import (
    PAPER_DEFAULTS,
    ExperimentConfig,
    PaperDefaults,
    default_sweep,
)


class TestPaperDefaults:
    def test_table_2_values(self):
        assert PAPER_DEFAULTS.issuer_half_size == 250.0
        assert PAPER_DEFAULTS.range_half_size == 500.0
        assert PAPER_DEFAULTS.threshold == 0.0
        assert PAPER_DEFAULTS.queries_per_point == 500
        assert PAPER_DEFAULTS.page_size == 4096

    def test_monte_carlo_sample_counts(self):
        assert PAPER_DEFAULTS.cipq_samples == 200
        assert PAPER_DEFAULTS.ciuq_samples == 250

    def test_data_space(self):
        assert PAPER_DEFAULTS.data_space.width == 10_000.0

    def test_catalog_levels(self):
        assert len(PAPER_DEFAULTS.catalog_levels) == 11

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PaperDefaults().issuer_half_size = 300.0  # type: ignore[misc]


class TestExperimentConfig:
    def test_default_is_reduced_scale(self):
        config = ExperimentConfig()
        assert 0.0 < config.dataset_scale < 1.0
        assert config.queries_per_point < PAPER_DEFAULTS.queries_per_point

    def test_quick_is_smaller_than_default(self):
        quick = ExperimentConfig.quick()
        default = ExperimentConfig()
        assert quick.dataset_scale <= default.dataset_scale
        assert quick.queries_per_point <= default.queries_per_point

    def test_paper_scale_matches_paper(self):
        full = ExperimentConfig.paper_scale()
        assert full.dataset_scale == 1.0
        assert full.queries_per_point == 500
        assert len(full.thresholds) == 11

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dataset_scale=0.0)

    def test_invalid_query_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(queries_per_point=0)

    def test_scaled_override(self):
        config = ExperimentConfig().scaled(dataset_scale=0.5)
        assert config.dataset_scale == 0.5

    def test_workload_seed_is_deterministic_and_salt_sensitive(self):
        config = ExperimentConfig(seed=3)
        assert config.workload_seed(1) == config.workload_seed(1)
        assert config.workload_seed(1) != config.workload_seed(2)


class TestDefaultSweep:
    def test_sorts_and_floats(self):
        assert default_sweep([3, 1, 2]) == (1.0, 2.0, 3.0)
