"""Property-based tests (hypothesis) for the geometry substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.interval import Interval
from repro.geometry.point import Point
from repro.geometry.rect import Rect

coordinates = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
extents = st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw) -> Interval:
    low = draw(coordinates)
    length = draw(extents)
    return Interval(low, low + length)


@st.composite
def rects(draw) -> Rect:
    x = draw(coordinates)
    y = draw(coordinates)
    w = draw(extents)
    h = draw(extents)
    return Rect(x, y, x + w, y + h)


@st.composite
def points(draw) -> Point:
    return Point(draw(coordinates), draw(coordinates))


class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_intersection_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals())
    def test_intersection_contained_in_operands(self, a, b):
        inter = a.intersect(b)
        if not inter.is_empty:
            assert a.contains_interval(inter)
            assert b.contains_interval(inter)

    @given(intervals(), intervals())
    def test_overlap_consistent_with_intersection(self, a, b):
        assert a.overlaps(b) == (not a.intersect(b).is_empty)

    @given(intervals(), intervals())
    def test_union_bounds_contains_both(self, a, b):
        union = a.union_bounds(b)
        assert union.contains_interval(a)
        assert union.contains_interval(b)

    @given(intervals(), intervals())
    def test_minkowski_sum_length_adds(self, a, b):
        assert abs(a.minkowski_sum(b).length - (a.length + b.length)) < 1e-6

    @given(intervals(), st.floats(min_value=0.0, max_value=1.0))
    def test_fraction_below_within_unit_range(self, interval, t):
        x = interval.low + t * (interval.high - interval.low)
        assert 0.0 <= interval.fraction_below(x) <= 1.0


class TestRectProperties:
    @given(rects(), rects())
    def test_intersection_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(rects(), rects())
    def test_intersection_area_bounded(self, a, b):
        area = a.intersection_area(b)
        assert -1e-9 <= area <= min(a.area, b.area) + 1e-6

    @given(rects(), rects())
    def test_union_bounds_contains_both(self, a, b):
        union = a.union_bounds(b)
        assert union.contains_rect(a)
        assert union.contains_rect(b)

    @given(rects(), rects())
    def test_overlap_consistent_with_intersection(self, a, b):
        assert a.overlaps(b) == (not a.intersect(b).is_empty)

    @given(rects(), rects())
    def test_minkowski_sum_dimensions_add(self, a, b):
        result = a.minkowski_sum(b)
        assert abs(result.width - (a.width + b.width)) < 1e-6
        assert abs(result.height - (a.height + b.height)) < 1e-6

    @given(rects(), extents, extents)
    def test_expansion_contains_original(self, rect, dx, dy):
        assert rect.expand(dx, dy).contains_rect(rect)

    @given(rects(), rects())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement_to_include(b) >= -1e-6

    @given(rects(), points())
    def test_min_distance_consistent_with_containment(self, rect, point):
        distance = rect.min_distance_to_point(point)
        assert distance >= 0.0
        if rect.contains_point(point):
            assert distance == 0.0
        else:
            # Growing the rectangle by the reported distance (plus a float
            # tolerance) must reach the point.
            assert rect.expand(distance + 1e-6 * (1.0 + distance)).contains_point(point)

    @given(rects(), points())
    def test_min_distance_le_max_distance(self, rect, point):
        assert rect.min_distance_to_point(point) <= rect.max_distance_to_point(point) + 1e-9

    @settings(max_examples=50)
    @given(rects(), rects(), rects())
    def test_intersection_associative(self, a, b, c):
        left = a.intersect(b).intersect(c)
        right = a.intersect(b.intersect(c))
        assert left.is_empty == right.is_empty
        if not left.is_empty:
            assert left == right
