"""Tests for the unified query-object API.

Covers the acceptance criteria of the API redesign:

* ``engine.evaluate(RangeQuery(...))`` returns identical answers across all
  four query types and all index kinds;
* ``evaluate_many`` is equivalent to a sequential ``evaluate`` loop
  (including under Monte-Carlo probability evaluation);
* the legacy per-type shims are gone (they raise, loudly and helpfully);
* the :class:`Evaluation` envelope is self-describing;
* ``EngineConfig`` validates its fields and ``with_overrides`` arguments.
"""

import pytest

from repro.core.engine import (
    EngineConfig,
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.nearest import ImpreciseNearestNeighborEngine
from repro.core.queries import (
    Evaluation,
    ImpreciseRangeQuery,
    NearestNeighborQuery,
    RangeQuery,
)
from repro.datasets.workload import QueryWorkload

from tests.conftest import TEST_SPACE

POINT_INDEX_KINDS = ("rtree", "grid", "linear")
UNCERTAIN_INDEX_KINDS = ("pti", "rtree", "grid", "linear")


class TestRangeQueryModel:
    def test_kind_covers_all_four_paper_queries(self, uniform_issuer, default_spec):
        assert RangeQuery.ipq(uniform_issuer, default_spec).kind == "ipq"
        assert RangeQuery.iuq(uniform_issuer, default_spec).kind == "iuq"
        assert RangeQuery.cipq(uniform_issuer, default_spec, 0.5).kind == "cipq"
        assert RangeQuery.ciuq(uniform_issuer, default_spec, 0.5).kind == "ciuq"

    def test_invalid_threshold_rejected(self, uniform_issuer, default_spec):
        with pytest.raises(ValueError):
            RangeQuery(issuer=uniform_issuer, spec=default_spec, threshold=1.5)

    def test_invalid_target_rejected(self, uniform_issuer, default_spec):
        with pytest.raises(ValueError, match="unknown range-query target"):
            RangeQuery(issuer=uniform_issuer, spec=default_spec, target="everything")

    def test_from_legacy_round_trip(self, uniform_issuer, default_spec):
        legacy = ImpreciseRangeQuery(issuer=uniform_issuer, spec=default_spec, threshold=0.3)
        query = RangeQuery.from_legacy(legacy, "uncertain")
        assert query.issuer is legacy.issuer
        assert query.spec == legacy.spec
        assert query.threshold == legacy.threshold
        assert query.target == "uncertain"

    def test_nearest_neighbor_query_validation(self, uniform_issuer):
        with pytest.raises(ValueError):
            NearestNeighborQuery(issuer=uniform_issuer, threshold=2.0)
        with pytest.raises(ValueError):
            NearestNeighborQuery(issuer=uniform_issuer, samples=0)


class TestEvaluateParity:
    """evaluate(RangeQuery) answers identically on every index backend."""

    @pytest.mark.parametrize("index_kind", POINT_INDEX_KINDS)
    def test_ipq_parity(self, small_points, uniform_issuer, default_spec, index_kind):
        reference = ImpreciseQueryEngine(
            point_db=PointDatabase.build(small_points, index_kind="rtree")
        )
        engine = ImpreciseQueryEngine(
            point_db=PointDatabase.build(small_points, index_kind=index_kind)
        )
        unified = engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec))
        expected = reference.evaluate(RangeQuery.ipq(uniform_issuer, default_spec))
        assert len(unified) > 0
        assert unified.probabilities() == expected.probabilities()

    @pytest.mark.parametrize("index_kind", POINT_INDEX_KINDS)
    def test_cipq_parity(self, small_points, uniform_issuer, default_spec, index_kind):
        db = PointDatabase.build(small_points, index_kind=index_kind)
        engine = ImpreciseQueryEngine(point_db=db)
        unconstrained = engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec))
        constrained = engine.evaluate(RangeQuery.cipq(uniform_issuer, default_spec, 0.4))
        # The constrained answers are exactly the unconstrained answers >= Qp.
        expected = {
            oid: probability
            for oid, probability in unconstrained.probabilities().items()
            if probability >= 0.4
        }
        assert constrained.probabilities() == expected
        assert all(answer.probability >= 0.4 for answer in constrained)

    @pytest.mark.parametrize("index_kind", UNCERTAIN_INDEX_KINDS)
    def test_iuq_parity(self, small_uncertain, uniform_issuer, default_spec, index_kind):
        reference = ImpreciseQueryEngine(
            uncertain_db=UncertainDatabase.build(small_uncertain, index_kind="rtree")
        )
        engine = ImpreciseQueryEngine(
            uncertain_db=UncertainDatabase.build(small_uncertain, index_kind=index_kind)
        )
        unified = engine.evaluate(RangeQuery.iuq(uniform_issuer, default_spec))
        expected = reference.evaluate(RangeQuery.iuq(uniform_issuer, default_spec))
        assert len(unified) > 0
        assert unified.probabilities() == expected.probabilities()

    @pytest.mark.parametrize("index_kind", UNCERTAIN_INDEX_KINDS)
    def test_ciuq_parity(self, small_uncertain, uniform_issuer, default_spec, index_kind):
        db = UncertainDatabase.build(small_uncertain, index_kind=index_kind)
        engine = ImpreciseQueryEngine(uncertain_db=db)
        unconstrained = engine.evaluate(RangeQuery.iuq(uniform_issuer, default_spec))
        constrained = engine.evaluate(RangeQuery.ciuq(uniform_issuer, default_spec, 0.5))
        expected = {
            oid: probability
            for oid, probability in unconstrained.probabilities().items()
            if probability >= 0.5
        }
        assert constrained.probabilities() == expected
        assert all(answer.probability >= 0.5 for answer in constrained)

    def test_nearest_neighbor_parity_with_standalone_engine(
        self, point_db, small_points, uniform_issuer
    ):
        engine = ImpreciseQueryEngine(point_db=point_db)
        unified = engine.evaluate(NearestNeighborQuery(issuer=uniform_issuer, samples=512))
        standalone = ImpreciseNearestNeighborEngine(
            small_points,
            index=point_db.index,
            samples=512,
            rng_seed=engine.config.rng_seed,
        )
        expected, _ = standalone.evaluate(uniform_issuer)
        assert len(unified) > 0
        assert unified.probabilities() == expected.probabilities()

    def test_unknown_query_type_rejected(self, point_db):
        engine = ImpreciseQueryEngine(point_db=point_db)
        with pytest.raises(TypeError):
            engine.evaluate("not a query")

    def test_missing_database_raises(self, point_db, uncertain_db, uniform_issuer, default_spec):
        points_only = ImpreciseQueryEngine(point_db=point_db)
        with pytest.raises(RuntimeError):
            points_only.evaluate(RangeQuery.iuq(uniform_issuer, default_spec))
        uncertain_only = ImpreciseQueryEngine(uncertain_db=uncertain_db)
        with pytest.raises(RuntimeError):
            uncertain_only.evaluate(RangeQuery.ipq(uniform_issuer, default_spec))
        with pytest.raises(RuntimeError):
            uncertain_only.evaluate(NearestNeighborQuery(issuer=uniform_issuer))


class TestEvaluationEnvelope:
    def test_envelope_echoes_query_and_bundles_statistics(
        self, point_db, uniform_issuer, default_spec
    ):
        engine = ImpreciseQueryEngine(point_db=point_db)
        query = RangeQuery.ipq(uniform_issuer, default_spec)
        evaluation = engine.evaluate(query)
        assert isinstance(evaluation, Evaluation)
        assert evaluation.query is query
        assert evaluation.statistics.results_returned == len(evaluation)
        assert evaluation.elapsed_seconds >= evaluation.statistics.response_time
        assert evaluation.elapsed_ms == pytest.approx(evaluation.elapsed_seconds * 1000.0)
        assert evaluation.oids() == evaluation.result.oids()
        assert evaluation.as_tuple() == (evaluation.result, evaluation.statistics)
        top = evaluation.top(3)
        assert top == evaluation.answers[:3]


class TestEvaluateMany:
    def _workload_queries(self, count, *, target, threshold=0.0, pdf="uniform"):
        workload = QueryWorkload(bounds=TEST_SPACE, issuer_pdf=pdf, seed=31)
        spec = workload.spec
        return [
            RangeQuery(issuer=issuer, spec=spec, threshold=threshold, target=target)
            for issuer in workload.issuers(count)
        ]

    def test_batch_matches_sequential_points(self, point_db, uncertain_db):
        queries = self._workload_queries(12, target="points", threshold=0.3)
        sequential_engine = ImpreciseQueryEngine(point_db=point_db, uncertain_db=uncertain_db)
        batch_engine = ImpreciseQueryEngine(point_db=point_db, uncertain_db=uncertain_db)
        sequential = [sequential_engine.evaluate(query) for query in queries]
        batch = batch_engine.evaluate_many(queries)
        assert [e.probabilities() for e in batch] == [
            e.probabilities() for e in sequential
        ]
        assert [e.query for e in batch] == queries

    def test_batch_matches_sequential_uncertain(self, uncertain_db):
        queries = self._workload_queries(12, target="uncertain", threshold=0.5)
        sequential_engine = ImpreciseQueryEngine(uncertain_db=uncertain_db)
        batch_engine = ImpreciseQueryEngine(uncertain_db=uncertain_db)
        sequential = [sequential_engine.evaluate(query) for query in queries]
        batch = batch_engine.evaluate_many(queries)
        assert [e.probabilities() for e in batch] == [
            e.probabilities() for e in sequential
        ]

    def test_batch_matches_sequential_monte_carlo(self, point_db):
        """Identical RNG consumption: batch and loop draw the same samples."""
        queries = self._workload_queries(6, target="points", pdf="gaussian")
        config = EngineConfig(probability_method="monte_carlo", monte_carlo_samples=64)
        sequential_engine = ImpreciseQueryEngine(point_db=point_db, config=config)
        batch_engine = ImpreciseQueryEngine(point_db=point_db, config=config)
        sequential = [sequential_engine.evaluate(query) for query in queries]
        batch = batch_engine.evaluate_many(queries)
        assert [e.probabilities() for e in batch] == [
            e.probabilities() for e in sequential
        ]

    def test_batch_mixes_query_types(self, point_db, uncertain_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(point_db=point_db, uncertain_db=uncertain_db)
        queries = [
            RangeQuery.ipq(uniform_issuer, default_spec),
            RangeQuery.ciuq(uniform_issuer, default_spec, 0.5),
            NearestNeighborQuery(issuer=uniform_issuer, samples=128),
        ]
        evaluations = engine.evaluate_many(queries)
        assert [evaluation.query.kind for evaluation in evaluations] == ["ipq", "ciuq", "nn"]
        assert all(isinstance(evaluation, Evaluation) for evaluation in evaluations)

    def test_batch_reuses_pruners_for_repeated_queries(
        self, point_db, uniform_issuer, default_spec
    ):
        engine = ImpreciseQueryEngine(point_db=point_db)
        query = RangeQuery.cipq(uniform_issuer, default_spec, 0.4)
        repeated = engine.evaluate_many([query, query, query])
        assert len({frozenset(e.probabilities().items()) for e in repeated}) == 1

    def test_batch_empty_input(self, point_db):
        engine = ImpreciseQueryEngine(point_db=point_db)
        assert engine.evaluate_many([]) == []

    def test_batch_rejects_non_queries(self, point_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(point_db=point_db)
        with pytest.raises(TypeError, match="item 1"):
            engine.evaluate_many(
                [RangeQuery.ipq(uniform_issuer, default_spec), "junk"]
            )

    def test_batch_fails_fast_on_missing_database(self, point_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(point_db=point_db)
        with pytest.raises(RuntimeError):
            engine.evaluate_many(
                [
                    RangeQuery.ipq(uniform_issuer, default_spec),
                    RangeQuery.iuq(uniform_issuer, default_spec),
                ]
            )


class TestLegacyShimsRemoved:
    """The PR-1 deprecation shims are gone; the replacements cover them."""

    @pytest.mark.parametrize(
        "name", ["evaluate_ipq", "evaluate_cipq", "evaluate_iuq", "evaluate_ciuq"]
    )
    def test_legacy_methods_removed(self, point_db, uncertain_db, name):
        engine = ImpreciseQueryEngine(point_db=point_db, uncertain_db=uncertain_db)
        assert not hasattr(engine, name)

    def test_legacy_query_objects_rejected_with_migration_hint(
        self, point_db, uniform_issuer, default_spec
    ):
        engine = ImpreciseQueryEngine(point_db=point_db)
        legacy_query = ImpreciseRangeQuery(issuer=uniform_issuer, spec=default_spec)
        with pytest.raises(TypeError, match="from_legacy"):
            engine.evaluate(legacy_query)

    def test_from_legacy_still_adapts(self, point_db, uniform_issuer, default_spec):
        engine = ImpreciseQueryEngine(point_db=point_db)
        legacy_query = ImpreciseRangeQuery(issuer=uniform_issuer, spec=default_spec)
        adapted = engine.evaluate(RangeQuery.from_legacy(legacy_query, "points"))
        unified = engine.evaluate(RangeQuery.ipq(uniform_issuer, default_spec))
        assert adapted.probabilities() == unified.probabilities()


class TestEngineConfigValidation:
    def test_with_overrides_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="monte_carlo_sample") as excinfo:
            EngineConfig().with_overrides(monte_carlo_sample=10)
        # The error names the valid fields so typos are easy to fix.
        assert "monte_carlo_samples" in str(excinfo.value)
        assert "rng_seed" in str(excinfo.value)

    def test_with_overrides_accepts_valid_fields(self):
        config = EngineConfig().with_overrides(monte_carlo_samples=10, rng_seed=3)
        assert config.monte_carlo_samples == 10
        assert config.rng_seed == 3

    def test_monte_carlo_samples_must_be_positive(self):
        with pytest.raises(ValueError, match="monte_carlo_samples"):
            EngineConfig(monte_carlo_samples=0)
        with pytest.raises(ValueError, match="monte_carlo_samples"):
            EngineConfig().with_overrides(monte_carlo_samples=-5)

    def test_rng_seed_must_be_non_negative_integer(self):
        with pytest.raises(ValueError, match="rng_seed"):
            EngineConfig(rng_seed=-1)
        with pytest.raises(ValueError, match="rng_seed"):
            EngineConfig(rng_seed=1.5)
        with pytest.raises(ValueError, match="rng_seed"):
            EngineConfig(rng_seed=True)
