"""Ablation and sensitivity experiments beyond the paper's figures.

These studies back the design decisions called out in DESIGN.md:

* :func:`monte_carlo_sample_sweep` — the paper's claim that ~200 samples
  suffice for C-IPQ under a Gaussian pdf (Section 6.2);
* :func:`catalog_size_sweep` — how many stored p-bounds a U-catalog needs
  before pruning quality saturates;
* :func:`index_comparison` — R-tree vs grid file vs linear scan for the
  expanded-query filter step;
* :func:`pruning_strategy_ablation` — the contribution of each C-IUQ pruning
  strategy (Section 5.2) in isolation and combined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.duality import ipq_probability, ipq_probability_monte_carlo
from repro.core.engine import (
    ImpreciseQueryEngine,
    PointDatabase,
    UncertainDatabase,
)
from repro.core.pruning import ALL_STRATEGIES, PruningStrategy
from repro.datasets.tiger import california_points, long_beach_uncertain_objects
from repro.datasets.workload import QueryWorkload
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import FigureResult, SeriesPoint, run_engine_batch
from repro.geometry.point import Point


@dataclass(frozen=True)
class SampleSweepPoint:
    """Monte-Carlo accuracy at one sample count."""

    samples: int
    mean_absolute_error: float
    max_absolute_error: float


def monte_carlo_sample_sweep(
    sample_counts: Sequence[int] = (25, 50, 100, 200, 400, 800),
    *,
    probes: int = 50,
    config: ExperimentConfig | None = None,
) -> list[SampleSweepPoint]:
    """Error of Monte-Carlo IPQ probabilities against the closed form.

    Probes random point-object locations inside the expanded query of a
    Gaussian issuer and compares the sampled estimate with the exact truncated
    Gaussian probability, reproducing the paper's sensitivity analysis that
    settled on 200 samples for C-IPQ.
    """
    config = config or ExperimentConfig()
    workload = QueryWorkload(
        issuer_half_size=config.defaults.issuer_half_size,
        range_half_size=config.defaults.range_half_size,
        issuer_pdf="gaussian",
        seed=config.seed,
    )
    issuer = next(workload.issuers(1))
    spec = workload.spec
    rng = np.random.default_rng(config.seed)
    region = issuer.region.expand(spec.half_width, spec.half_height)
    locations = [
        Point(float(x), float(y))
        for x, y in zip(
            rng.uniform(region.xmin, region.xmax, size=probes),
            rng.uniform(region.ymin, region.ymax, size=probes),
        )
    ]
    exact = [ipq_probability(issuer.pdf, spec, loc) for loc in locations]

    points: list[SampleSweepPoint] = []
    for samples in sample_counts:
        errors = []
        for loc, truth in zip(locations, exact):
            estimate = ipq_probability_monte_carlo(issuer.pdf, spec, loc, samples, rng)
            errors.append(abs(estimate - truth))
        points.append(
            SampleSweepPoint(
                samples=samples,
                mean_absolute_error=float(np.mean(errors)),
                max_absolute_error=float(np.max(errors)),
            )
        )
    return points


def catalog_size_sweep(
    catalog_sizes: Sequence[int] = (2, 3, 6, 11, 21),
    *,
    threshold: float = 0.6,
    config: ExperimentConfig | None = None,
) -> FigureResult:
    """C-IUQ cost as a function of the number of stored p-bound levels."""
    config = config or ExperimentConfig()
    objects = long_beach_uncertain_objects(scale=config.dataset_scale)
    result = FigureResult(
        figure_id="ablation_catalog",
        title="C-IUQ cost vs U-catalog size",
        x_label="stored p-bound levels",
    )
    for size in catalog_sizes:
        levels = tuple(np.linspace(0.0, 0.5, size))
        database = UncertainDatabase.build(objects, index_kind="pti", catalog_levels=levels)
        engine = ImpreciseQueryEngine(uncertain_db=database, config=config.engine_config())
        # Every catalog size is measured on the *same* query stream so the
        # comparison isolates the catalog resolution.
        workload = QueryWorkload(
            issuer_half_size=config.defaults.issuer_half_size,
            range_half_size=config.defaults.range_half_size,
            threshold=threshold,
            catalog_levels=levels,
            seed=config.workload_seed(0),
        )
        aggregate = run_engine_batch(
            engine, workload, config.queries_per_point, target="uncertain"
        )
        result.add_point("pti_p_expanded_query", SeriesPoint.from_aggregate(size, aggregate))
    return result


def index_comparison(
    *,
    config: ExperimentConfig | None = None,
    index_kinds: Sequence[str] = ("rtree", "grid", "linear"),
) -> FigureResult:
    """IPQ cost under different spatial indexes for the filter step."""
    config = config or ExperimentConfig()
    objects = california_points(scale=config.dataset_scale)
    result = FigureResult(
        figure_id="ablation_index",
        title="IPQ cost by index kind",
        x_label="uncertainty region size u",
    )
    for kind_index, kind in enumerate(index_kinds):
        database = PointDatabase.build(objects, index_kind=kind)  # type: ignore[arg-type]
        engine = ImpreciseQueryEngine(point_db=database, config=config.engine_config())
        for salt, u in enumerate(config.issuer_half_sizes):
            workload = QueryWorkload(
                issuer_half_size=u,
                range_half_size=config.defaults.range_half_size,
                seed=config.workload_seed(kind_index * 1000 + salt),
            )
            aggregate = run_engine_batch(
                engine, workload, config.queries_per_point, target="points"
            )
            result.add_point(kind, SeriesPoint.from_aggregate(u, aggregate))
    return result


#: Named strategy subsets exercised by the pruning ablation.
STRATEGY_SUBSETS: dict[str, tuple[PruningStrategy, ...]] = {
    "none": (),
    "p_bound_only": (PruningStrategy.P_BOUND,),
    "p_expanded_only": (PruningStrategy.P_EXPANDED_QUERY,),
    "product_only": (PruningStrategy.PRODUCT_BOUND,),
    "all": ALL_STRATEGIES,
}


def pruning_strategy_ablation(
    *,
    threshold: float = 0.6,
    config: ExperimentConfig | None = None,
) -> FigureResult:
    """C-IUQ cost with each pruning strategy enabled in isolation.

    The index window is kept at the Minkowski sum for every variant so the
    measured differences are attributable to the object-level strategies
    alone (index-level pruning is studied separately in Figure 12).
    """
    config = config or ExperimentConfig()
    objects = long_beach_uncertain_objects(scale=config.dataset_scale)
    database = UncertainDatabase.build(
        objects, index_kind="rtree", catalog_levels=config.catalog_levels
    )
    result = FigureResult(
        figure_id="ablation_strategies",
        title=f"C-IUQ pruning-strategy ablation (Qp = {threshold})",
        x_label="probability threshold Qp",
    )
    for name, strategies in STRATEGY_SUBSETS.items():
        engine = ImpreciseQueryEngine(
            uncertain_db=database,
            config=config.engine_config(
                use_p_expanded_query=False,
                use_pti_pruning=False,
                ciuq_strategies=strategies,
            ),
        )
        # Every strategy subset sees the *same* query stream so differences
        # are attributable to the pruning strategies alone.
        workload = QueryWorkload(
            issuer_half_size=config.defaults.issuer_half_size,
            range_half_size=config.defaults.range_half_size,
            threshold=threshold,
            catalog_levels=config.catalog_levels,
            seed=config.workload_seed(0),
        )
        aggregate = run_engine_batch(
            engine, workload, config.queries_per_point, target="uncertain"
        )
        result.add_point(name, SeriesPoint.from_aggregate(threshold, aggregate))
    return result
