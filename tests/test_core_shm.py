"""Shared-memory snapshot store: naming, versioning, refcounts, cleanup."""

from __future__ import annotations

import gc
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.database import PointDatabase, UncertainDatabase
from repro.core.shm import AttachedSnapshot, SnapshotStore
from repro.datasets.synthetic import uniform_points, uniform_rectangles
from repro.uncertainty.region import PointObject
from repro.geometry.rect import Rect

SPACE = Rect(0.0, 0.0, 10_000.0, 10_000.0)


def _point_db(n: int = 40, seed: int = 1) -> PointDatabase:
    return PointDatabase.build(uniform_points(n, SPACE, seed=seed))


def _uncertain_db(n: int = 30, seed: int = 2) -> UncertainDatabase:
    return UncertainDatabase.build(
        uniform_rectangles(n, SPACE, seed=seed), catalog_levels=(0.2, 0.4, 0.6)
    )


def _assert_unlinked(name: str) -> None:
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


class TestPublishAttach:
    def test_point_snapshot_roundtrip_is_zero_copy(self):
        store = SnapshotStore()
        database = _point_db()
        block = store.ensure("points", 0, database)
        attached = AttachedSnapshot(block.name)
        try:
            assert attached.kind == "points"
            assert attached.version == 1
            np.testing.assert_array_equal(
                attached.columnar.oids, database.columnar().oids
            )
            np.testing.assert_array_equal(attached.columnar.xy, database.columnar().xy)
            # The worker-side database serves the injected zero-copy snapshot
            # without rebuilding it.
            assert attached.database.columnar() is attached.columnar
            assert [o.oid for o in attached.database.objects] == [
                o.oid for o in database.objects
            ]
        finally:
            attached.close()
            store.close()

    def test_uncertain_snapshot_carries_catalog_tables(self):
        store = SnapshotStore()
        database = _uncertain_db()
        block = store.ensure("uncertain", 3, database)
        attached = AttachedSnapshot(block.name)
        try:
            source = database.columnar()
            np.testing.assert_array_equal(attached.columnar.bounds, source.bounds)
            assert source.catalog_bounds is not None
            np.testing.assert_array_equal(
                attached.columnar.catalog_bounds, source.catalog_bounds
            )
            np.testing.assert_array_equal(
                attached.columnar.catalog_levels, source.catalog_levels
            )
        finally:
            attached.close()
            store.close()

    def test_block_names_are_versioned_per_shard(self):
        store = SnapshotStore()
        database = _point_db()
        first = store.ensure("points", 0, database)
        assert first.name.endswith("points0v1")
        # Unchanged state: same block, no republication.
        assert store.ensure("points", 0, database) is first
        database.insert(PointObject.at(90_001, 5_000.0, 5_000.0))
        second = store.ensure("points", 0, database)
        assert second.name.endswith("points0v2")
        assert second.name != first.name
        store.close()


class TestVersioningAfterMutation:
    def test_attach_after_mutation_reads_the_new_snapshot(self):
        store = SnapshotStore()
        database = _point_db(n=10, seed=5)
        stale = store.ensure("points", 0, database)
        stale_attached = AttachedSnapshot(stale.name)
        moved = database.objects[0]
        database.move(moved.oid, moved.location.x + 123.0, moved.location.y)
        fresh = store.ensure("points", 0, database)
        fresh_attached = AttachedSnapshot(fresh.name)
        try:
            # The names differ, the stale mapping still serves the old data
            # (unlink removes only the name), the fresh one the new.
            assert fresh.name != stale.name
            assert stale_attached.columnar.xy[0, 0] != fresh_attached.columnar.xy[0, 0]
            np.testing.assert_array_equal(
                fresh_attached.columnar.xy, database.columnar().xy
            )
        finally:
            stale_attached.close()
            fresh_attached.close()
            store.close()

    def test_wholesale_replacement_is_republished(self):
        store = SnapshotStore()
        database = _point_db(n=10, seed=6)
        first = store.ensure("points", 0, database)
        replacement = _point_db(n=12, seed=7)  # fresh uid, epoch restarts at 0
        second = store.ensure("points", 0, replacement)
        assert second.name != first.name
        store.close()


class TestRefcountedLifetime:
    def test_superseded_block_survives_until_lease_released(self):
        store = SnapshotStore()
        database = _point_db(n=8, seed=8)
        block = store.ensure("points", 0, database)
        store.lease(block)  # an in-flight task still references v1
        database.insert(PointObject.at(90_002, 4_000.0, 4_000.0))
        store.ensure("points", 0, database)  # publish v2, retire v1
        # The leased block is retired but must still be attachable by name.
        shared_memory.SharedMemory(name=block.name).close()
        store.release(block)
        _assert_unlinked(block.name)
        store.close()

    def test_close_unlinks_everything(self):
        store = SnapshotStore()
        names = [
            store.ensure("points", 0, _point_db(n=6, seed=9)).name,
            store.ensure("uncertain", 1, _uncertain_db(n=6, seed=10)).name,
        ]
        store.close()
        for name in names:
            _assert_unlinked(name)
        # Idempotent.
        store.close()

    def test_dropped_store_unlinks_on_gc(self):
        store = SnapshotStore()
        name = store.ensure("points", 0, _point_db(n=6, seed=11)).name
        del store
        gc.collect()
        _assert_unlinked(name)

    def test_closed_store_rejects_publication(self):
        store = SnapshotStore()
        store.close()
        with pytest.raises(RuntimeError):
            store.ensure("points", 0, _point_db(n=4, seed=12))
