"""Figure 12 — C-IUQ: R-tree + Minkowski sum vs PTI + p-expanded-query, vs Qp.

Expected shape: the PTI + p-expanded-query configuration is at least as fast
for every positive threshold (the paper reports ≈60 % gain at Qp = 0.6); the
gain is smaller than for C-IPQ because uncertain regions are harder to prune
than points.
"""

import pytest

from repro.core.queries import RangeQuery
from repro.core.engine import EngineConfig, ImpreciseQueryEngine

from benchmarks.conftest import issuer_for

THRESHOLDS = [0.0, 0.2, 0.4, 0.6, 0.8]


@pytest.mark.parametrize("qp", THRESHOLDS)
def test_ciuq_rtree_minkowski(benchmark, uncertain_db_rtree, qp):
    """Baseline: plain R-tree window query with the Minkowski sum."""
    engine = ImpreciseQueryEngine(
        uncertain_db=uncertain_db_rtree,
        config=EngineConfig(
            use_p_expanded_query=False, use_pti_pruning=False, ciuq_strategies=()
        ),
    )
    issuer, spec = issuer_for(250.0, threshold=qp)
    result = benchmark(lambda: engine.evaluate(RangeQuery.ciuq(issuer, spec, qp)))
    assert all(answer.probability >= qp for answer in result)


@pytest.mark.parametrize("qp", THRESHOLDS)
def test_ciuq_pti_p_expanded(benchmark, uncertain_db_pti, qp):
    """Paper's method: PTI node-level pruning plus the Qp-expanded-query."""
    engine = ImpreciseQueryEngine(
        uncertain_db=uncertain_db_pti,
        config=EngineConfig(use_p_expanded_query=True, use_pti_pruning=True),
    )
    issuer, spec = issuer_for(250.0, threshold=qp)
    result = benchmark(lambda: engine.evaluate(RangeQuery.ciuq(issuer, spec, qp)))
    assert all(answer.probability >= qp for answer in result)
