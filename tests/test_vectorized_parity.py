"""Parity suite: the vectorized backend must equal the scalar oracle.

Acceptance criteria of the vectorized-backend change: identical answer sets
(same oids), probabilities within 1e-9, and — for Monte-Carlo evaluation —
bitwise-identical draws given the same seed (verified through exact equality
of the resulting probabilities), across all four query flavours plus the
empty-candidate and all-pruned edge cases.
"""

from __future__ import annotations

import pytest

from repro.core.basic import BasicEvaluator
from repro.core.engine import EngineConfig, ImpreciseQueryEngine, UncertainDatabase
from repro.core.queries import ImpreciseRangeQuery, RangeQuery, RangeQuerySpec
from repro.datasets.workload import QueryWorkload
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.region import UncertainObject

from tests.conftest import TEST_SPACE


def _engine_pair(*, point_db=None, uncertain_db=None, **overrides):
    """A (scalar, vectorized) engine pair over the same databases and seed."""
    scalar = ImpreciseQueryEngine(
        point_db=point_db,
        uncertain_db=uncertain_db,
        config=EngineConfig(vectorized=False).with_overrides(**overrides),
    )
    vectorized = ImpreciseQueryEngine(
        point_db=point_db,
        uncertain_db=uncertain_db,
        config=EngineConfig(vectorized=True).with_overrides(**overrides),
    )
    return scalar, vectorized


def _queries(count, *, target, threshold=0.0, pdf="uniform", seed=99):
    workload = QueryWorkload(bounds=TEST_SPACE, issuer_pdf=pdf, seed=seed)
    return [
        RangeQuery(issuer=issuer, spec=workload.spec, threshold=threshold, target=target)
        for issuer in workload.issuers(count)
    ]


def _assert_parity(scalar_eval, vector_eval, *, exact=False):
    scalar_probs = scalar_eval.probabilities()
    vector_probs = vector_eval.probabilities()
    assert vector_probs.keys() == scalar_probs.keys()
    if exact:
        assert vector_probs == scalar_probs
    else:
        for oid, probability in scalar_probs.items():
            assert vector_probs[oid] == pytest.approx(probability, abs=1e-9)


class TestEngineParity:
    """vectorized=True equals vectorized=False for every query flavour."""

    def test_ipq_parity(self, point_db):
        scalar, vectorized = _engine_pair(point_db=point_db)
        for query in _queries(10, target="points"):
            s = scalar.evaluate(query)
            v = vectorized.evaluate(query)
            _assert_parity(s, v)
            assert s.statistics.candidates_examined == v.statistics.candidates_examined

    def test_cipq_parity(self, point_db):
        scalar, vectorized = _engine_pair(point_db=point_db)
        for query in _queries(10, target="points", threshold=0.3):
            _assert_parity(scalar.evaluate(query), vectorized.evaluate(query))

    def test_iuq_parity(self, uncertain_db):
        scalar, vectorized = _engine_pair(uncertain_db=uncertain_db)
        answered = 0
        for query in _queries(10, target="uncertain"):
            s = scalar.evaluate(query)
            v = vectorized.evaluate(query)
            _assert_parity(s, v)
            answered += len(v)
        assert answered > 0

    def test_ciuq_parity(self, uncertain_db):
        scalar, vectorized = _engine_pair(uncertain_db=uncertain_db)
        for query in _queries(10, target="uncertain", threshold=0.5):
            s = scalar.evaluate(query)
            v = vectorized.evaluate(query)
            _assert_parity(s, v)
            assert s.statistics.pruned == v.statistics.pruned

    def test_ciuq_parity_on_plain_rtree(self, uncertain_db_rtree):
        """Without PTI-level pruning all three strategies run per object."""
        scalar, vectorized = _engine_pair(uncertain_db=uncertain_db_rtree)
        for query in _queries(8, target="uncertain", threshold=0.4):
            s = scalar.evaluate(query)
            v = vectorized.evaluate(query)
            _assert_parity(s, v)
            assert s.statistics.pruned == v.statistics.pruned

    def test_monte_carlo_draws_bitwise_identical(self, point_db, uncertain_db):
        """Same seed → same draws → exactly equal sampled probabilities."""
        for target, db_kwargs in (
            ("points", {"point_db": point_db}),
            ("uncertain", {"uncertain_db": uncertain_db}),
        ):
            scalar, vectorized = _engine_pair(
                probability_method="monte_carlo",
                monte_carlo_samples=64,
                **db_kwargs,
            )
            for query in _queries(6, target=target, threshold=0.2):
                _assert_parity(
                    scalar.evaluate(query), vectorized.evaluate(query), exact=True
                )

    def test_gaussian_issuer_auto_method_parity(self, point_db):
        """A Gaussian issuer on 'auto' exercises the closed-form array kernel."""
        scalar, vectorized = _engine_pair(point_db=point_db)
        for query in _queries(6, target="points", pdf="gaussian"):
            _assert_parity(scalar.evaluate(query), vectorized.evaluate(query))

    def test_mixed_pdf_targets_parity(self, uniform_issuer, default_spec):
        """Uniform and Gaussian targets in one database split across kernels."""
        objects = []
        for i in range(30):
            region = Rect.from_center(
                Point(4_000.0 + 70.0 * i, 5_000.0 - 40.0 * i), 120.0, 90.0
            )
            pdf = UniformPdf(region) if i % 2 == 0 else TruncatedGaussianPdf(region)
            objects.append(UncertainObject(oid=i + 1, pdf=pdf))
        db = UncertainDatabase.build(objects, index_kind="rtree")
        for method in ("auto", "exact", "monte_carlo"):
            scalar, vectorized = _engine_pair(
                uncertain_db=db, probability_method=method
            )
            query = RangeQuery.iuq(uniform_issuer, default_spec)
            s = scalar.evaluate(query)
            v = vectorized.evaluate(query)
            assert len(s) > 0
            _assert_parity(s, v, exact=(method == "monte_carlo"))

    def test_empty_candidates(self, point_db, uncertain_db):
        """An issuer far outside the data space matches nothing in both modes."""
        region = Rect.from_center(Point(90_000.0, 90_000.0), 250.0, 250.0)
        issuer = UncertainObject(oid=0, pdf=UniformPdf(region)).with_catalog()
        spec = RangeQuerySpec.square(500.0)
        scalar, vectorized = _engine_pair(point_db=point_db, uncertain_db=uncertain_db)
        for query in (RangeQuery.ipq(issuer, spec), RangeQuery.iuq(issuer, spec)):
            s = scalar.evaluate(query)
            v = vectorized.evaluate(query)
            assert len(s) == 0
            assert len(v) == 0
            assert v.statistics.candidates_examined == s.statistics.candidates_examined

    def test_all_pruned(self, uncertain_db):
        """A tiny range with a near-1 threshold prunes every candidate."""
        region = Rect.from_center(Point(5_000.0, 5_000.0), 1_000.0, 1_000.0)
        issuer = UncertainObject(oid=0, pdf=UniformPdf(region)).with_catalog()
        query = RangeQuery.ciuq(issuer, RangeQuerySpec.square(10.0), 0.99)
        scalar, vectorized = _engine_pair(uncertain_db=uncertain_db)
        s = scalar.evaluate(query)
        v = vectorized.evaluate(query)
        assert len(s) == 0
        assert len(v) == 0
        assert s.statistics.pruned == v.statistics.pruned


class TestEvaluateManyParity:
    def test_batch_vectorized_matches_scalar_loop(self, point_db, uncertain_db):
        queries = _queries(8, target="points", threshold=0.25) + _queries(
            8, target="uncertain", threshold=0.4
        )
        scalar, vectorized = _engine_pair(point_db=point_db, uncertain_db=uncertain_db)
        sequential = [scalar.evaluate(query) for query in queries]
        batch = vectorized.evaluate_many(queries)
        for s, v in zip(sequential, batch):
            _assert_parity(s, v)

    def test_batch_vectorized_matches_vectorized_loop_exactly(self, point_db):
        """The columnar batch filter changes I/O, never the answers."""
        queries = _queries(10, target="points", threshold=0.3)
        _, vectorized = _engine_pair(point_db=point_db)
        sequential = [vectorized.evaluate(query) for query in queries]
        batch = vectorized.evaluate_many(queries)
        for s, v in zip(sequential, batch):
            _assert_parity(s, v, exact=True)
            assert s.statistics.candidates_examined == v.statistics.candidates_examined


class TestBasicEvaluatorParity:
    def _issuer(self, pdf="uniform"):
        region = Rect.from_center(Point(5_000.0, 5_000.0), 400.0, 400.0)
        cls = UniformPdf if pdf == "uniform" else TruncatedGaussianPdf
        return UncertainObject(oid=0, pdf=cls(region))

    @pytest.mark.parametrize("pdf", ["uniform", "gaussian"])
    def test_basic_ipq_parity(self, small_points, pdf):
        query = ImpreciseRangeQuery(
            issuer=self._issuer(pdf), spec=RangeQuerySpec.square(500.0)
        )
        scalar, _ = BasicEvaluator(issuer_samples=100, vectorized=False).evaluate_ipq(
            query, small_points
        )
        vectorized, _ = BasicEvaluator(issuer_samples=100, vectorized=True).evaluate_ipq(
            query, small_points
        )
        assert vectorized.oids() == scalar.oids()
        assert len(scalar) > 0
        scalar_probs = scalar.probabilities()
        for oid, probability in vectorized.probabilities().items():
            assert probability == pytest.approx(scalar_probs[oid], abs=1e-9)

    @pytest.mark.parametrize("pdf", ["uniform", "gaussian"])
    def test_basic_iuq_parity(self, small_uncertain, pdf):
        query = ImpreciseRangeQuery(
            issuer=self._issuer(pdf), spec=RangeQuerySpec.square(500.0)
        )
        scalar, _ = BasicEvaluator(issuer_samples=100, vectorized=False).evaluate_iuq(
            query, small_uncertain
        )
        vectorized, _ = BasicEvaluator(issuer_samples=100, vectorized=True).evaluate_iuq(
            query, small_uncertain
        )
        assert vectorized.oids() == scalar.oids()
        assert len(scalar) > 0
        scalar_probs = scalar.probabilities()
        for oid, probability in vectorized.probabilities().items():
            assert probability == pytest.approx(scalar_probs[oid], abs=1e-9)

    def test_basic_empty_object_list(self):
        query = ImpreciseRangeQuery(issuer=self._issuer(), spec=RangeQuerySpec.square(500.0))
        for vectorized in (False, True):
            evaluator = BasicEvaluator(issuer_samples=64, vectorized=vectorized)
            result, stats = evaluator.evaluate_ipq(query, [])
            assert len(result) == 0
            assert stats.candidates_examined == 0
            result, stats = evaluator.evaluate_iuq(query, [])
            assert len(result) == 0
            assert stats.candidates_examined == 0
