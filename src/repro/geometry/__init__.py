"""Planar geometry substrate used by the imprecise-query engine.

The paper (Chen & Cheng, ICDE 2007) restricts both query ranges and
uncertainty regions to axis-parallel rectangles, so the work-horses of this
package are :class:`~repro.geometry.interval.Interval` and
:class:`~repro.geometry.rect.Rect`.  Convex-polygon Minkowski sums and circles
are provided for the non-rectangular extension discussed in the paper's
conclusion.
"""

from repro.geometry.interval import Interval
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.circle import Circle
from repro.geometry.minkowski import (
    minkowski_sum_rects,
    minkowski_sum_convex_polygons,
)
from repro.geometry.algorithms import (
    clip_rect,
    rect_union_bounds,
    convex_hull,
    polygon_area,
    point_in_convex_polygon,
)

__all__ = [
    "Interval",
    "Point",
    "Rect",
    "Circle",
    "minkowski_sum_rects",
    "minkowski_sum_convex_polygons",
    "clip_rect",
    "rect_union_bounds",
    "convex_hull",
    "polygon_area",
    "point_in_convex_polygon",
]
