"""RPL009 — merged ``EvaluationStatistics`` are copied, never aliased.

PR 7's parallel merge bound a worker's statistics object directly
(``stats = payload.statistics``) and then accumulated siblings into it —
mutating the payload in place, so re-merging or inspecting the shard
results afterwards saw corrupted counters.  The fix is
``copy_statistics(payload.statistics)``: mutate a private copy.

The rule flags, per function and in statement order:

* any attribute/subscript store through a local that was bound from a pure
  attribute chain ending in ``.statistics`` (an alias of someone else's
  counters), and
* direct stores through such a chain (``evaluation.statistics.x = …``).

Re-binding the local through a call (``stats = copy_statistics(…)``)
clears the taint — a call result is a fresh object, not an alias.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.tools.lint.engine import Module, Rule, register


def _is_statistics_chain(node: ast.expr) -> bool:
    """True for a pure Name/Attribute chain whose final attr is ``statistics``."""
    if not (isinstance(node, ast.Attribute) and node.attr == "statistics"):
        return False
    inner = node.value
    while isinstance(inner, ast.Attribute):
        inner = inner.value
    return isinstance(inner, ast.Name)


def _chain_through_statistics(node: ast.expr) -> bool:
    """True when ``node`` is ``<…>.statistics.<attr…>`` (store through the chain)."""
    while isinstance(node, ast.Attribute):
        node = node.value
        if isinstance(node, ast.Attribute) and node.attr == "statistics":
            return True
    return False


class _AliasScan:
    """Statement-ordered scan of one function for aliased-stats mutations."""

    def __init__(self) -> None:
        self.aliases: set[str] = set()
        self.findings: list[tuple[int, str]] = []

    def scan(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._store(target, stmt.lineno)
            self._bind(stmt.targets, stmt.value)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            self._store(stmt.target, stmt.lineno)
            if stmt.value is not None:
                self._bind([stmt.target], stmt.value)
        # Recurse into nested blocks in source order.
        for field in ("body", "orelse", "finalbody", "handlers"):
            children = getattr(stmt, field, None)
            if children:
                for child in children:
                    if isinstance(child, ast.ExceptHandler):
                        self.scan(child.body)
                    elif isinstance(child, ast.stmt):
                        self._statement(child)

    def _bind(self, targets: list[ast.expr], value: ast.expr) -> None:
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_statistics_chain(value):
                self.aliases.add(target.id)
            else:
                self.aliases.discard(target.id)

    def _store(self, target: ast.expr, lineno: int) -> None:
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            root = node
            while isinstance(root.value, ast.Attribute):
                root = root.value
            if isinstance(root.value, ast.Name) and root.value.id in self.aliases:
                self.findings.append(
                    (
                        lineno,
                        f"mutation through {root.value.id!r}, an alias of "
                        "another object's statistics: copy first with "
                        "copy_statistics(...) (the PR 7 merge-aliasing bug)",
                    )
                )
                return
            if isinstance(target, ast.Attribute) and _chain_through_statistics(target):
                self.findings.append(
                    (
                        lineno,
                        "direct store through a '.statistics' chain mutates "
                        "the owner's counters in place: bind a copy with "
                        "copy_statistics(...) and mutate that",
                    )
                )


@register
class NoStatsAliasing(Rule):
    rule_id = "RPL009"
    severity = "error"
    description = (
        "never mutate statistics reached through another object — "
        "copy_statistics(...) first"
    )

    def applies_to(self, module: Module) -> bool:
        return module.in_package("repro/")

    def check(self, module: Module) -> Iterator[tuple[int, str]]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan = _AliasScan()
                scan.scan(node.body)
                yield from scan.findings
