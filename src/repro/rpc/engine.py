"""Distributed scatter-gather execution over remote shard daemons.

:class:`RemoteEngine` is a :class:`~repro.core.parallel.ParallelEngine`
whose routed shard batches execute on ``shardd`` processes instead of an
in-process pool: routing, merging, caching and the mutation surface are all
inherited unchanged — only ``_execute`` (one pipelined scatter-gather round
over :class:`~repro.rpc.pool.RemoteShardPool`), the cache key (the
daemon-reported epoch vector joins the scope) and the mutators (which
mirror every primitive to the owning shard's daemon) are overridden.
Answers are therefore bitwise-identical to the serial engine under any
position-independent draw plan, exactly like the shared-memory pool.

**Coherence protocol.**  The parent keeps, per ``(kind, sid)``, the local
shard database's ``(uid, epoch)`` recorded at the last moment parent and
daemon were provably in step.  A mutation applies locally first, then ships
the same primitive ops to the owning daemon; the daemon's reply epoch must
equal the recorded remote epoch plus the locally observed epoch delta
(identical primitives bump identical counters).  Any mismatch — or a local
shard database that was *replaced* (fresh ``uid``, e.g. an emptied shard
repopulated) — triggers a wholesale re-ship of that one shard's snapshot.
Queries re-verify the same record before scattering and each answer frame
carries the daemon's epoch, checked against the pool's map — a drifted
daemon can never serve a silently stale answer, and no broadcast
invalidation ever happens: a mutation touches exactly one daemon.
"""

from __future__ import annotations

from typing import Hashable, TYPE_CHECKING

from repro.core.engine import EngineConfig
from repro.core.errors import ConfigurationError
from repro.core.parallel import ParallelEngine, _unpack_answers
from repro.core.plan import PlanToken, query_cache_key
from repro.core.queries import NearestNeighborQuery, Query, RangeQuery
from repro.core.sharding import Shard, ShardedDatabase
from repro.core.updates import UpdateOp, pick_mutation_database, resolve_move_target
from repro.core.wire import require
from repro.rpc import wire
from repro.rpc.pool import RemoteShardPool
from repro.uncertainty.region import PointObject

if TYPE_CHECKING:
    from repro.rpc.launcher import LocalShardCluster


class RemoteEngine(ParallelEngine):
    """A parallel engine executing its shard batches on remote daemons."""

    engine_kind = "distributed"

    def __init__(
        self,
        *,
        point_db: ShardedDatabase | None = None,
        uncertain_db: ShardedDatabase | None = None,
        config: EngineConfig | None = None,
        pool: RemoteShardPool,
        cluster: "LocalShardCluster | None" = None,
        owns_pool: bool = True,
        synced: dict | None = None,
    ) -> None:
        super().__init__(
            point_db=point_db, uncertain_db=uncertain_db, config=config, workers=1
        )
        for database in (point_db, uncertain_db):
            if database is None:
                continue
            if database.hot_threshold is not None:
                raise ConfigurationError(
                    "hot-shard re-splitting is not supported over remote shards: "
                    "a split changes the shard count under a fixed address list; "
                    "build the sharded databases with hot_threshold=None"
                )
            if database.k > len(pool.addrs):
                raise ConfigurationError(
                    f"the sharded database has {database.k} shards but the pool "
                    f"only spans {len(pool.addrs)} daemon addresses"
                )
        self._rpc_pool = pool
        self._cluster = cluster
        self._owns_pool = owns_pool
        self._worker_config = self._config.with_overrides(cache=None)
        #: Per (kind, sid): the local shard database's (uid, epoch) at the
        #: last provably-in-step moment with its daemon.
        self._synced: dict[tuple[str, int], tuple[int, int]] = {}
        prior = synced or {}
        for kind in ("points", "uncertain"):
            database = self._point_db if kind == "points" else self._uncertain_db
            if database is None:
                continue
            for shard in database.non_empty_shards():
                key = (kind, shard.sid)
                state = (shard.database.uid, shard.database.epoch)
                if prior.get(key) == state and pool.loaded(kind, shard.sid):
                    # The daemon already holds this exact snapshot (we share
                    # the pool with the engine that shipped it): just
                    # register this engine's configuration with it.
                    pool.configure(kind, shard.sid, self._worker_config)
                    self._synced[key] = state
                else:
                    self._load_shard(kind, shard.sid)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def pool(self) -> RemoteShardPool:
        """The shard-daemon connection pool this engine scatters over."""
        return self._rpc_pool

    def reconfigured(self, config: EngineConfig) -> "RemoteEngine":
        """A sibling engine over the *same* daemons with a new configuration.

        The daemons keep their loaded shards; the sibling only registers the
        new config digest with each of them.  The pool (and any spawned
        cluster) stays owned by this engine — close the original last.
        """
        return RemoteEngine(
            point_db=self._point_db,
            uncertain_db=self._uncertain_db,
            config=config,
            pool=self._rpc_pool,
            cluster=self._cluster,
            owns_pool=False,
            synced=dict(self._synced),
        )

    def warm(self) -> None:
        """Ship every out-of-step shard snapshot ahead of the first query."""
        for kind in ("points", "uncertain"):
            database = self._point_db if kind == "points" else self._uncertain_db
            if database is None:
                continue
            for shard in database.non_empty_shards():
                self._ensure_synced(kind, shard)

    def close(self) -> None:
        """Release the daemons (when owned), the pool, and local resources."""
        if self._owns_pool:
            try:
                self._rpc_pool.shutdown()
            finally:
                if self._cluster is not None:
                    self._cluster.close()
        super().close()

    # ------------------------------------------------------------------ #
    # Coherence bookkeeping
    # ------------------------------------------------------------------ #
    def _load_shard(self, kind: str, sid: int) -> None:
        """Ship one shard's full snapshot and record the in-step state."""
        database = self._require(kind)
        shard = database.shards[sid]
        levels = shard.database.catalog_levels if kind == "uncertain" else None
        self._rpc_pool.load(
            kind,
            sid,
            database.index_kind,
            tuple(levels) if levels is not None else None,
            self._worker_config,
            list(shard.database.objects),
        )
        self._synced[(kind, sid)] = (shard.database.uid, shard.database.epoch)

    def _ensure_synced(self, kind: str, shard: Shard) -> None:
        """Re-ship a shard whose local state moved since the last sync."""
        state = (shard.database.uid, shard.database.epoch)
        if self._synced.get((kind, shard.sid)) == state and self._rpc_pool.loaded(
            kind, shard.sid
        ):
            return
        self._load_shard(kind, shard.sid)

    def _sync_ops(self, kind: str, sid: int, ops: list[UpdateOp]) -> None:
        """Mirror already-applied local primitives to the owning daemon.

        Falls back to a wholesale snapshot re-ship whenever the incremental
        path cannot prove the daemon ends bitwise in step: the local shard
        database was replaced (fresh uid), the daemon never held the shard,
        or the reply epoch disagrees with the recorded epoch plus the
        locally observed delta.
        """
        database = self._require(kind)
        shard = database.shards[sid]
        if shard.database is None:
            # The shard was drained: nothing to query there any more.  The
            # daemon's copy is dropped from the epoch map; a later
            # repopulation re-ships a fresh snapshot (fresh uid).
            self._rpc_pool.forget(kind, sid)
            self._synced.pop((kind, sid), None)
            return
        record = self._synced.get((kind, sid))
        if (
            record is None
            or record[0] != shard.database.uid
            or not self._rpc_pool.loaded(kind, sid)
        ):
            self._load_shard(kind, sid)
            return
        expected = self._rpc_pool.epoch(kind, sid) + (shard.database.epoch - record[1])
        if self._rpc_pool.update(kind, sid, ops) != expected:
            self._load_shard(kind, sid)
        else:
            self._synced[(kind, sid)] = (shard.database.uid, shard.database.epoch)

    # ------------------------------------------------------------------ #
    # Cache stage
    # ------------------------------------------------------------------ #
    def _cache_key(self, query: Query, kind: str, shards: list[Shard]) -> Hashable:
        """The distributed cache key: structure + routed epoch *vector pairs*.

        Each routed shard contributes its local ``(uid, epoch)`` *and* the
        daemon-reported epoch from the pool's map (−1 while not yet loaded).
        The local pair makes keys collision-free across snapshot re-ships
        (a daemon reload restarts remote epochs, but never reuses a uid);
        the remote epoch ties every hit to daemon state the mutation path
        reported — a one-shard update moves exactly one component of the
        vector, leaving answers routed over other shards reachable.
        """
        database = self._require(kind)
        pool = self._rpc_pool
        scope = (
            "rpc",
            kind,
            database.uid,
            database.version,
            tuple(
                (
                    shard.sid,
                    shard.database.uid,
                    shard.database.epoch,
                    pool.epoch(kind, shard.sid)
                    if pool.loaded(kind, shard.sid)
                    else -1,
                )
                for shard in shards
            ),
        )
        return (scope, query_cache_key(query), self._config_fingerprint)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _execute(self, tasks):
        ordered = sorted(tasks.items())
        if not ordered:
            return []
        rpc_tasks = []
        for (kind, sid), items in ordered:
            self._ensure_synced(kind, self._require(kind).shards[sid])
            rpc_tasks.append(
                (
                    kind,
                    sid,
                    [
                        (position, seq, PlanToken.from_query(query))
                        for position, seq, query in items
                        if isinstance(query, RangeQuery)
                    ],
                    [
                        (position, seq, PlanToken.from_query(query))
                        for position, seq, query in items
                        if isinstance(query, NearestNeighborQuery)
                    ],
                )
            )
        replies = self._rpc_pool.scatter(rpc_tasks, self._config_digest)
        results = []
        for ((kind, sid), _), (reply, arrays) in zip(ordered, replies):
            pruned_names = tuple(require(reply, wire.RPC_SCHEMA, "pruned_names"))
            for pack in _unpack_answers(dict(arrays), pruned_names):
                results.append((pack.position, (sid, self._unpack(pack))))
        return results

    # ------------------------------------------------------------------ #
    # Live mutation (local first, then mirrored to the owning daemon)
    # ------------------------------------------------------------------ #
    def insert(self, obj):
        stored = super().insert(obj)
        kind = "points" if isinstance(stored, PointObject) else "uncertain"
        sid = self._require(kind).owner_of(stored.oid).sid
        self._sync_ops(kind, sid, [UpdateOp(action="insert", obj=stored)])
        return stored

    def delete(self, oid: int, *, target: str | None = None):
        database = pick_mutation_database(self._point_db, self._uncertain_db, target)
        kind = database.kind
        sid = database.owner_of(oid).sid
        removed = super().delete(oid, target=target)
        self._sync_ops(
            kind, sid, [UpdateOp(action="delete", oid=int(oid), target=kind)]
        )
        return removed

    def move(
        self,
        oid: int,
        *,
        x: float | None = None,
        y: float | None = None,
        pdf=None,
        target: str | None = None,
    ):
        kind = resolve_move_target(x, y, pdf, target)
        database = self._require(kind)
        source_sid = database.owner_of(oid).sid
        stored = super().move(oid, x=x, y=y, pdf=pdf, target=target)
        dest_sid = database.owner_of(oid).sid
        if dest_sid == source_sid:
            if kind == "points":
                op = UpdateOp(
                    action="move", oid=int(oid), x=float(x), y=float(y), target=kind
                )
            else:
                op = UpdateOp(action="move", oid=int(oid), pdf=pdf, target=kind)
            self._sync_ops(kind, source_sid, [op])
        else:
            # A cross-shard re-home is a delete + insert pair locally; mirror
            # the same pair, each to its own daemon.
            self._sync_ops(
                kind, source_sid, [UpdateOp(action="delete", oid=int(oid), target=kind)]
            )
            self._sync_ops(kind, dest_sid, [UpdateOp(action="insert", obj=stored)])
        return stored
