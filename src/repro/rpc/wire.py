"""Wire codecs of the shard RPC protocol.

Every RPC message is one binary frame (:mod:`repro.serve.framing`): a JSON
header tagged with :data:`RPC_SCHEMA` plus zero or more raw numpy arrays.
The hot path — ``query`` requests and their ``answers`` replies — carries
plan tokens as JSON and the packed answer arrays
(:func:`repro.core.parallel._pack_answers` layout: ``oid:int64[]``,
``value:float64[]`` and the ``StatsPack`` counter rows) as raw array bytes;
nothing on it is pickled.

The codecs here are module-level functions, not methods: :class:`PlanToken`
and :class:`~repro.core.engine.EngineConfig` are in-process types first and
wire payloads only for this transport, so their dict forms live with the
protocol that defines them.

Request headers (all built by the ``*_header`` helpers):

========== ==========================================================
``load``       ship one shard's objects + engine config to a daemon
``configure``  register an additional config digest with a loaded shard
``query``      routed plan-token batches against one loaded shard
``update``     one-shard mutation ops; the reply returns the new epoch
``shutdown``   stop the daemon's server after replying
========== ==========================================================

Error replies carry ``{"op": "error", "error": error_to_dict(...)}`` and
re-raise client-side as the *same* typed exception classes, exactly like
the serving front-end's envelopes.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.engine import EngineConfig
from repro.core.errors import SchemaError
from repro.core.plan import PlanToken
from repro.core.pruning import PruningStrategy
from repro.core.wire import check_schema, require, tagged
from repro.uncertainty.pdf import pdf_from_dict
from repro.uncertainty.region import (
    POINT_OBJECT_SCHEMA,
    UNCERTAIN_OBJECT_SCHEMA,
    PointObject,
    UncertainObject,
)

RPC_SCHEMA = "repro.rpc"
PLAN_TOKEN_SCHEMA = "repro.plan_token"
ENGINE_CONFIG_SCHEMA = "repro.engine_config"


# --------------------------------------------------------------------------- #
# Plan tokens
# --------------------------------------------------------------------------- #
def token_to_dict(token: PlanToken) -> dict:
    """A JSON-safe, versioned form of one plan token (pdf via its codec)."""
    return tagged(
        PLAN_TOKEN_SCHEMA,
        {
            "kind": token.kind,
            "issuer_oid": token.issuer_oid,
            "issuer_pdf": token.issuer_pdf.to_dict(),
            "issuer_catalog_levels": (
                list(token.issuer_catalog_levels)
                if token.issuer_catalog_levels is not None
                else None
            ),
            "threshold": token.threshold,
            "half_width": token.half_width,
            "half_height": token.half_height,
            "target": token.target,
            "samples": token.samples,
        },
    )


def token_from_dict(payload: Any) -> PlanToken:
    """Decode a :func:`token_to_dict` payload (bitwise: floats round-trip)."""
    payload = check_schema(payload, PLAN_TOKEN_SCHEMA)
    kind = require(payload, PLAN_TOKEN_SCHEMA, "kind")
    if kind not in ("range", "nn"):
        raise SchemaError(f"unknown plan-token kind {kind!r}")
    levels = require(payload, PLAN_TOKEN_SCHEMA, "issuer_catalog_levels")
    half_width = require(payload, PLAN_TOKEN_SCHEMA, "half_width")
    half_height = require(payload, PLAN_TOKEN_SCHEMA, "half_height")
    samples = require(payload, PLAN_TOKEN_SCHEMA, "samples")
    return PlanToken(
        kind=kind,
        issuer_oid=int(require(payload, PLAN_TOKEN_SCHEMA, "issuer_oid")),
        issuer_pdf=pdf_from_dict(require(payload, PLAN_TOKEN_SCHEMA, "issuer_pdf")),
        issuer_catalog_levels=(
            tuple(float(level) for level in levels) if levels is not None else None
        ),
        threshold=float(require(payload, PLAN_TOKEN_SCHEMA, "threshold")),
        half_width=None if half_width is None else float(half_width),
        half_height=None if half_height is None else float(half_height),
        target=require(payload, PLAN_TOKEN_SCHEMA, "target"),
        samples=None if samples is None else int(samples),
    )


# --------------------------------------------------------------------------- #
# Engine configuration
# --------------------------------------------------------------------------- #
def config_to_dict(config: EngineConfig) -> dict:
    """Every fingerprint field of a configuration, JSON-safe.

    The ``cache`` field never crosses the wire (shards compute partial
    answers; caching happens in the parent), and the fingerprint excludes
    it, so the decoded configuration's digest equals the parent's even when
    the parent caches.
    """
    return tagged(
        ENGINE_CONFIG_SCHEMA,
        {
            "probability_method": config.probability_method,
            "monte_carlo_samples": config.monte_carlo_samples,
            "rng_seed": int(config.rng_seed),
            "use_p_expanded_query": config.use_p_expanded_query,
            "use_pti_pruning": config.use_pti_pruning,
            "ciuq_strategies": [strategy.value for strategy in config.ciuq_strategies],
            "vectorized": config.vectorized,
            "draw_plan": config.draw_plan,
        },
    )


def config_from_dict(payload: Any) -> EngineConfig:
    """Decode a :func:`config_to_dict` payload (``cache`` is always ``None``)."""
    payload = check_schema(payload, ENGINE_CONFIG_SCHEMA)
    return EngineConfig(
        probability_method=require(payload, ENGINE_CONFIG_SCHEMA, "probability_method"),
        monte_carlo_samples=int(
            require(payload, ENGINE_CONFIG_SCHEMA, "monte_carlo_samples")
        ),
        rng_seed=int(require(payload, ENGINE_CONFIG_SCHEMA, "rng_seed")),
        use_p_expanded_query=bool(
            require(payload, ENGINE_CONFIG_SCHEMA, "use_p_expanded_query")
        ),
        use_pti_pruning=bool(require(payload, ENGINE_CONFIG_SCHEMA, "use_pti_pruning")),
        ciuq_strategies=tuple(
            PruningStrategy(value)
            for value in require(payload, ENGINE_CONFIG_SCHEMA, "ciuq_strategies")
        ),
        vectorized=bool(require(payload, ENGINE_CONFIG_SCHEMA, "vectorized")),
        draw_plan=require(payload, ENGINE_CONFIG_SCHEMA, "draw_plan"),
        cache=None,
    )


# --------------------------------------------------------------------------- #
# Objects
# --------------------------------------------------------------------------- #
def object_from_dict(payload: Any) -> PointObject | UncertainObject:
    """Decode a point or uncertain object payload, dispatching on its schema."""
    schema = payload.get("schema") if isinstance(payload, Mapping) else None
    if schema == POINT_OBJECT_SCHEMA:
        return PointObject.from_dict(payload)
    if schema == UNCERTAIN_OBJECT_SCHEMA:
        return UncertainObject.from_dict(payload)
    raise SchemaError(
        f"expected a {POINT_OBJECT_SCHEMA!r} or {UNCERTAIN_OBJECT_SCHEMA!r} "
        f"object, got schema {schema!r}"
    )


# --------------------------------------------------------------------------- #
# Request / reply headers
# --------------------------------------------------------------------------- #
def header(op: str, **fields: Any) -> dict:
    """One tagged RPC header."""
    return tagged(RPC_SCHEMA, {"op": op, **fields})


def check_header(payload: Any) -> tuple[str, Mapping]:
    """Validate one RPC header and return ``(op, header)``."""
    payload = check_schema(payload, RPC_SCHEMA)
    return str(require(payload, RPC_SCHEMA, "op")), payload


def load_header(
    kind: str,
    sid: int,
    index_kind: str,
    catalog_levels: tuple[float, ...] | None,
    config: EngineConfig,
    objects: list,
) -> dict:
    """A ``load`` request: one shard's full object set plus the engine config."""
    return header(
        "load",
        kind=kind,
        sid=int(sid),
        index_kind=index_kind,
        catalog_levels=list(catalog_levels) if catalog_levels is not None else None,
        config=config_to_dict(config),
        objects=[obj.to_dict() for obj in objects],
    )


def configure_header(kind: str, sid: int, config: EngineConfig) -> dict:
    """A ``configure`` request: register another config with a loaded shard."""
    return header("configure", kind=kind, sid=int(sid), config=config_to_dict(config))


def query_header(
    kind: str,
    sid: int,
    config_digest: str,
    range_items: list[tuple[int, int, PlanToken]],
    nn_items: list[tuple[int, int, PlanToken]],
) -> dict:
    """A ``query`` request: routed plan-token batches for one shard."""
    return header(
        "query",
        kind=kind,
        sid=int(sid),
        config_digest=config_digest,
        range_items=[
            [int(position), int(seq), token_to_dict(token)]
            for position, seq, token in range_items
        ],
        nn_items=[
            [int(position), int(seq), token_to_dict(token)]
            for position, seq, token in nn_items
        ],
    )


def decode_items(raw: Any) -> list[tuple[int, int, PlanToken]]:
    """Decode one ``query`` header's item list back into routed triples."""
    return [
        (int(position), int(seq), token_from_dict(token))
        for position, seq, token in raw
    ]


def update_header(kind: str, sid: int, ops: list) -> dict:
    """An ``update`` request: ordered mutation ops for one owning shard."""
    return header("update", kind=kind, sid=int(sid), ops=[op.to_dict() for op in ops])
