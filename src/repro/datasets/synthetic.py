"""Synthetic spatial data generators.

Two families are provided for both points and rectangles:

* *uniform* — objects scattered uniformly over the data space; and
* *clustered* — a Gaussian-mixture skew: most objects fall near a set of
  cluster centres (themselves placed along a few road-like line corridors),
  with a configurable uniform background.  This mimics the density skew of
  the TIGER extracts used by the paper without shipping the raw data.

All generators are deterministic given a seed.
"""

from __future__ import annotations
from repro.errors import DatasetError

import numpy as np

from repro.geometry.rect import Rect
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject


def _clamp_points(xs: np.ndarray, ys: np.ndarray, bounds: Rect) -> tuple[np.ndarray, np.ndarray]:
    xs = np.clip(xs, bounds.xmin, bounds.xmax)
    ys = np.clip(ys, bounds.ymin, bounds.ymax)
    return xs, ys


def _corridor_cluster_centers(
    n_clusters: int, bounds: Rect, rng: np.random.Generator
) -> np.ndarray:
    """Place cluster centres along a handful of straight "road" corridors."""
    n_corridors = max(1, n_clusters // 8)
    centers = []
    for _ in range(n_corridors):
        start = np.array(
            [rng.uniform(bounds.xmin, bounds.xmax), rng.uniform(bounds.ymin, bounds.ymax)]
        )
        end = np.array(
            [rng.uniform(bounds.xmin, bounds.xmax), rng.uniform(bounds.ymin, bounds.ymax)]
        )
        along = rng.uniform(0.0, 1.0, size=max(1, n_clusters // n_corridors))
        for t in along:
            centers.append(start + t * (end - start))
    centers = np.array(centers[:n_clusters])
    if len(centers) < n_clusters:
        extra = rng.uniform(
            [bounds.xmin, bounds.ymin],
            [bounds.xmax, bounds.ymax],
            size=(n_clusters - len(centers), 2),
        )
        centers = np.vstack([centers, extra])
    return centers


def _clustered_coordinates(
    n: int,
    bounds: Rect,
    *,
    n_clusters: int,
    cluster_sigma: float,
    background_fraction: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    if not 0.0 <= background_fraction <= 1.0:
        raise DatasetError("background_fraction must lie in [0, 1]")
    centers = _corridor_cluster_centers(n_clusters, bounds, rng)
    n_background = int(round(n * background_fraction))
    n_clustered = n - n_background

    assignments = rng.integers(0, len(centers), size=n_clustered)
    offsets = rng.normal(0.0, cluster_sigma, size=(n_clustered, 2))
    clustered = centers[assignments] + offsets

    background = rng.uniform(
        [bounds.xmin, bounds.ymin], [bounds.xmax, bounds.ymax], size=(n_background, 2)
    )
    coords = np.vstack([clustered, background]) if n_background else clustered
    rng.shuffle(coords)
    return _clamp_points(coords[:, 0], coords[:, 1], bounds)


def uniform_points(n: int, bounds: Rect, *, seed: int = 0) -> list[PointObject]:
    """``n`` point objects scattered uniformly over ``bounds``."""
    if n < 0:
        raise DatasetError("n must be non-negative")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(bounds.xmin, bounds.xmax, size=n)
    ys = rng.uniform(bounds.ymin, bounds.ymax, size=n)
    return [PointObject.at(i, float(x), float(y)) for i, (x, y) in enumerate(zip(xs, ys))]


def clustered_points(
    n: int,
    bounds: Rect,
    *,
    n_clusters: int = 40,
    cluster_sigma: float | None = None,
    background_fraction: float = 0.2,
    seed: int = 0,
) -> list[PointObject]:
    """``n`` point objects with a road-corridor cluster skew over ``bounds``."""
    if n < 0:
        raise DatasetError("n must be non-negative")
    rng = np.random.default_rng(seed)
    if cluster_sigma is None:
        cluster_sigma = min(bounds.width, bounds.height) / 40.0
    xs, ys = _clustered_coordinates(
        n,
        bounds,
        n_clusters=n_clusters,
        cluster_sigma=cluster_sigma,
        background_fraction=background_fraction,
        rng=rng,
    )
    return [PointObject.at(i, float(x), float(y)) for i, (x, y) in enumerate(zip(xs, ys))]


def _rectangles_from_centers(
    xs: np.ndarray,
    ys: np.ndarray,
    bounds: Rect,
    size_range: tuple[float, float],
    rng: np.random.Generator,
) -> list[Rect]:
    lo, hi = size_range
    if lo <= 0 or hi < lo:
        raise DatasetError("size_range must be (lo, hi) with 0 < lo <= hi")
    half_ws = rng.uniform(lo, hi, size=len(xs)) / 2.0
    half_hs = rng.uniform(lo, hi, size=len(xs)) / 2.0
    rects = []
    for x, y, hw, hh in zip(xs, ys, half_ws, half_hs):
        rect = Rect(float(x - hw), float(y - hh), float(x + hw), float(y + hh)).intersect(bounds)
        if rect.is_empty or rect.area == 0.0:
            # Keep the rectangle inside the space by nudging it inwards.
            cx = min(max(float(x), bounds.xmin + hw), bounds.xmax - hw)
            cy = min(max(float(y), bounds.ymin + hh), bounds.ymax - hh)
            rect = Rect(cx - hw, cy - hh, cx + hw, cy + hh)
        rects.append(rect)
    return rects


def uniform_rectangles(
    n: int,
    bounds: Rect,
    *,
    size_range: tuple[float, float] = (10.0, 100.0),
    seed: int = 0,
) -> list[UncertainObject]:
    """``n`` uncertain objects with uniform pdfs over uniformly placed rectangles."""
    if n < 0:
        raise DatasetError("n must be non-negative")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(bounds.xmin, bounds.xmax, size=n)
    ys = rng.uniform(bounds.ymin, bounds.ymax, size=n)
    rects = _rectangles_from_centers(xs, ys, bounds, size_range, rng)
    return [
        UncertainObject(oid=i, pdf=UniformPdf(rect)) for i, rect in enumerate(rects)
    ]


def clustered_rectangles(
    n: int,
    bounds: Rect,
    *,
    n_clusters: int = 40,
    cluster_sigma: float | None = None,
    background_fraction: float = 0.2,
    size_range: tuple[float, float] = (10.0, 100.0),
    seed: int = 0,
) -> list[UncertainObject]:
    """``n`` uncertain objects (uniform pdfs) with a clustered placement skew."""
    if n < 0:
        raise DatasetError("n must be non-negative")
    rng = np.random.default_rng(seed)
    if cluster_sigma is None:
        cluster_sigma = min(bounds.width, bounds.height) / 40.0
    xs, ys = _clustered_coordinates(
        n,
        bounds,
        n_clusters=n_clusters,
        cluster_sigma=cluster_sigma,
        background_fraction=background_fraction,
        rng=rng,
    )
    rects = _rectangles_from_centers(xs, ys, bounds, size_range, rng)
    return [
        UncertainObject(oid=i, pdf=UniformPdf(rect)) for i, rect in enumerate(rects)
    ]
