"""Tests for the linear-split R-tree variant."""

import numpy as np
import pytest

from repro.geometry.rect import Rect
from repro.index.rtree import RTree


def _random_rects(n: int, seed: int = 0, space: float = 1000.0) -> list[tuple[Rect, int]]:
    rng = np.random.default_rng(seed)
    pairs = []
    for i in range(n):
        x = rng.uniform(0.0, space)
        y = rng.uniform(0.0, space)
        pairs.append((Rect(x, y, x + rng.uniform(1.0, 20.0), y + rng.uniform(1.0, 20.0)), i))
    return pairs


def _brute_force(pairs: list[tuple[Rect, int]], query: Rect) -> set[int]:
    return {item for mbr, item in pairs if mbr.overlaps(query)}


class TestLinearSplit:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            RTree(max_entries=4, split_algorithm="cubic")

    def test_invariants_hold(self):
        tree = RTree(max_entries=6, split_algorithm="linear")
        for mbr, item in _random_rects(400, seed=2):
            tree.insert(mbr, item)
        tree.check_invariants()

    def test_range_search_matches_brute_force(self):
        pairs = _random_rects(350, seed=4)
        tree = RTree(max_entries=8, split_algorithm="linear")
        for mbr, item in pairs:
            tree.insert(mbr, item)
        for seed in range(6):
            rng = np.random.default_rng(seed)
            x, y = rng.uniform(0.0, 800.0, size=2)
            query = Rect(x, y, x + 200.0, y + 200.0)
            assert set(tree.range_search(query)) == _brute_force(pairs, query)

    def test_linear_and_quadratic_answer_identically(self):
        pairs = _random_rects(300, seed=7)
        linear = RTree(max_entries=8, split_algorithm="linear")
        quadratic = RTree(max_entries=8, split_algorithm="quadratic")
        for mbr, item in pairs:
            linear.insert(mbr, item)
            quadratic.insert(mbr, item)
        query = Rect(100.0, 100.0, 500.0, 600.0)
        assert set(linear.range_search(query)) == set(quadratic.range_search(query))

    def test_identical_rectangles_still_split(self):
        tree = RTree(max_entries=4, split_algorithm="linear")
        mbr = Rect(0.0, 0.0, 1.0, 1.0)
        for i in range(30):
            tree.insert(mbr, i)
        tree.check_invariants()
        assert len(tree.range_search(mbr)) == 30
