"""The staged query pipeline shared by every engine.

All three execution paths — the serial
:class:`~repro.core.engine.ImpreciseQueryEngine`, per-shard execution inside
:class:`~repro.core.sharding.ShardedDatabase`, and the shared-memory worker
pool of :class:`~repro.core.parallel.ParallelEngine` — answer queries by
running the exact same stages over a :class:`~repro.core.plan.QueryPlan`:

    plan ──► cache? ──► candidates ──► prune ──► evaluate ──► merge/rank
              │                                                  │
              └────────────── hit: serve stored answer ◄─────────┘
                              miss: fill after ranking

* **plan** compiles the query (:func:`repro.core.plan.plan_query`): window,
  probe choice, pruner, draw-plan slot, cache key.
* **cache** consults the shared epoch-keyed
  :class:`~repro.core.cache.ResultCache` (when the configuration carries
  one); a hit skips every later stage.
* **candidates** retrieves the window's objects — an index probe (with PTI
  node-level threshold pruning when engaged) or a columnar window test on
  the batch path — always re-ordered by ascending oid, so downstream stages
  are independent of the candidate source.
* **prune** applies the residual Section-5.2 threshold strategies (batched
  rectangle tests on the vectorized backend, the scalar ``decide`` loop as
  reference oracle).
* **evaluate** computes qualification probabilities for the survivors via
  the duality formulas — closed form where possible, Monte-Carlo under the
  plan's draw token otherwise.
* **merge/rank** sorts answers by decreasing probability, applies the
  threshold, and (when the plan is replay-deterministic) fills the cache.

One :class:`QueryPipeline` instance wraps one pair of databases plus a
configuration; engines own a pipeline instead of re-implementing the flow.
A cache fill only happens when replaying the query later is guaranteed to
reproduce the stored answer bitwise: always for draw-free (closed-form)
evaluations, and for sampled ones only under ``draw_plan="query_keyed"``,
where draws are a pure function of the query's content rather than its
position in the workload.
"""

from __future__ import annotations
from repro.core.errors import ConfigurationError, EngineStateError, InvalidArgumentError

import time
from collections import Counter
from typing import Hashable, Iterable

import numpy as np

from repro.core.columnar import (
    ColumnarPoints,
    ColumnarUncertain,
    points_in_window_mask,
)
from repro.core.duality import (
    ipq_probabilities,
    ipq_probabilities_monte_carlo,
    ipq_probabilities_monte_carlo_per_oid,
    ipq_probability,
    iuq_probabilities_exact_uniform,
    iuq_probabilities_monte_carlo,
    iuq_probabilities_monte_carlo_per_oid,
    iuq_probability,
    iuq_probability_exact_uniform,
    monte_carlo_iuq_draws,
)
from repro.core.cache import fill_allowed
from repro.core.database import PointDatabase, UncertainDatabase
from repro.core.nearest import ImpreciseNearestNeighborEngine, nn_query_draws
from repro.core.plan import (
    DEFAULT_NN_SAMPLES,
    QueryPlan,
    plan_query,
    query_cache_key,
    relevance_window,
)
from repro.core.pruning import CIUQPruner, PruningStrategy
from repro.core.queries import (
    Evaluation,
    NearestNeighborQuery,
    Query,
    QueryResult,
    RangeQuery,
)
from repro.core.statistics import EvaluationStatistics
from repro.core.updates import UpdateBatch
from repro.geometry.rect import Rect
from repro.index.rtree import RTree
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import UncertainObject

__all__ = [
    "DEFAULT_NN_SAMPLES",
    "QueryPipeline",
    "partition_workload",
]


def partition_workload(
    items: Iterable[Query | UpdateBatch],
) -> list[tuple[str, list[Query] | UpdateBatch]]:
    """Validate a mixed query/update stream and group it into ordered runs.

    Returns ``("queries", [Query, ...])`` and ``("updates", UpdateBatch)``
    groups in input order, so every engine's ``evaluate_many`` applies an
    interleaved :class:`~repro.core.updates.UpdateBatch` at exactly its
    position in the stream (earlier queries see the old data, later ones the
    new) without re-implementing the splitting and validation.
    """
    materialised = list(items)
    for position, item in enumerate(materialised):
        if not isinstance(item, (RangeQuery, NearestNeighborQuery, UpdateBatch)):
            raise InvalidArgumentError(
                f"evaluate_many() only accepts RangeQuery, NearestNeighborQuery "
                f"and UpdateBatch objects; item {position} is {type(item).__name__!r}"
            )
    groups: list[tuple[str, list[Query] | UpdateBatch]] = []
    for item in materialised:
        if isinstance(item, UpdateBatch):
            groups.append(("updates", item))
        elif groups and groups[-1][0] == "queries":
            groups[-1][1].append(item)
        else:
            groups.append(("queries", [item]))
    return groups


class QueryPipeline:
    """Runs compiled query plans against one pair of databases.

    The pipeline is the single owner of the evaluation machinery the
    engines share: the stream random generator, the cached
    nearest-neighbour samplers, the columnar batch filtering and the
    result-cache stage.  ``cache`` defaults to the configuration's
    :class:`~repro.core.cache.ResultCache`; pass ``cache=None`` to disable
    the stage for this pipeline regardless of the configuration — the
    parallel executor does this for its per-shard pipelines, because a
    shard's partial answers must never be cached as whole-query answers
    (the parent consults the cache instead, with per-shard epoch keys).
    """

    _CONFIG_CACHE = object()  # sentinel: "use config.cache"

    def __init__(
        self,
        *,
        point_db: PointDatabase | None = None,
        uncertain_db: UncertainDatabase | None = None,
        config,
        cache=_CONFIG_CACHE,
    ) -> None:
        if point_db is None and uncertain_db is None:
            raise ConfigurationError("the pipeline needs at least one database to query")
        self._point_db = point_db
        self._uncertain_db = uncertain_db
        self._config = config
        self._cache = config.cache if cache is self._CONFIG_CACHE else cache
        self._config_fingerprint = config.fingerprint()
        self._rng = np.random.default_rng(config.rng_seed)
        self._nn_engines: dict[tuple[int, int], ImpreciseNearestNeighborEngine] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def config(self):
        """The engine configuration the pipeline runs under."""
        return self._config

    @property
    def point_db(self) -> PointDatabase | None:
        """The point-object database, if any."""
        return self._point_db

    @property
    def uncertain_db(self) -> UncertainDatabase | None:
        """The uncertain-object database, if any."""
        return self._uncertain_db

    @property
    def cache(self):
        """The result cache consulted by this pipeline (``None`` = disabled)."""
        return self._cache

    def _require_point_db(self) -> PointDatabase:
        if self._point_db is None:
            raise EngineStateError("no point-object database configured")
        return self._point_db

    def _require_uncertain_db(self) -> UncertainDatabase:
        if self._uncertain_db is None:
            raise EngineStateError("no uncertain-object database configured")
        return self._uncertain_db

    def _use_monte_carlo(self, issuer: UncertainObject) -> bool:
        method = self._config.probability_method
        if method == "monte_carlo":
            return True
        if method == "exact":
            return False
        return not issuer.pdf.has_closed_form

    # ------------------------------------------------------------------ #
    # Cache stage
    # ------------------------------------------------------------------ #
    def _scope_key(self, target: str) -> Hashable:
        """Epoch component of the cache key for a serial (unsharded) pipeline.

        The database's never-recycled ``uid`` rides along with the epoch:
        engines over *different* collections may share one cache (they share
        an ``EngineConfig``), and equal epoch values across collections must
        not alias.
        """
        if target == "uncertain":
            database = self._require_uncertain_db()
            return ("db", "uncertain", database.uid, database.epoch)
        database = self._require_point_db()
        return ("db", "points", database.uid, database.epoch)

    def _cache_key(self, query: Query) -> Hashable:
        """The full cache key of one query — derivable without planning it.

        Built from the query alone (plus the epoch scope and configuration
        fingerprint) so the hit path never pays plan compilation: pruner
        construction eagerly computes the Minkowski and Qp-expanded
        regions, exactly the work a hit exists to skip.
        """
        target = "nearest" if isinstance(query, NearestNeighborQuery) else query.target
        return (self._scope_key(target), query_cache_key(query), self._config_fingerprint)

    def affected_by(self, query: Query, region: Rect | None) -> bool:
        """Whether a mutation confined to ``region`` can change ``query``'s answer.

        ``region`` is the bounding rectangle of everything a mutation
        touched (before and after positions).  Range-query answers only
        depend on objects intersecting the candidate window from
        :func:`~repro.core.plan.relevance_window`, so a disjoint region
        provably cannot change the answer; nearest-neighbour queries have
        no complete finite window and are always affected.  ``None``
        (unknown extent) is treated conservatively as affected.  This is
        the single-database relevance test continuous subscriptions use to
        re-evaluate only the standing queries a mutation could touch.
        """
        if region is None:
            return True
        window = relevance_window(query)
        return window is None or window.overlaps(region)

    # ------------------------------------------------------------------ #
    # Batch entry point
    # ------------------------------------------------------------------ #
    def run_batch(
        self,
        batch: list[Query],
        seqs: list[int],
        *,
        use_snapshots: bool = True,
    ) -> list[Evaluation]:
        """Run a batch of queries (with caller-assigned sequence numbers).

        The batch path amortises work a per-query loop repeats: database
        presence checks run once per batch, the nearest-neighbour sampler is
        shared, and pruners are reused across queries repeating an (issuer,
        shape, threshold) combination.  With ``use_snapshots`` (and the
        vectorized backend) range queries filter candidates with one NumPy
        window test over the databases' columnar snapshots instead of a
        per-query index traversal (PTI-engaged plans keep the index — its
        node-level pruning is the feature under study).  Answers are
        identical either way because candidate processing is oid-ordered in
        every path; only ``statistics.io`` differs.

        Results — including Monte-Carlo draws — are identical to running the
        queries one at a time with the same sequence numbers, because
        queries execute in input order against the same random generator.
        """
        # Fail fast, before any query runs, when a required database is absent.
        targets = {query.target for query in batch if isinstance(query, RangeQuery)}
        if "points" in targets:
            self._require_point_db()
        if "uncertain" in targets:
            self._require_uncertain_db()
        if any(isinstance(query, NearestNeighborQuery) for query in batch):
            self._require_point_db()

        # Pruners own the expanded-region construction, so queries repeating
        # an (issuer, shape, threshold) combination share one.  The cache is
        # only engaged for combinations that actually repeat — a workload of
        # all-distinct issuers (the common case) pays no caching overhead and
        # retains no pruners; a single-query batch cannot repeat at all.
        if len(batch) > 1:
            repeats = Counter(
                (id(query.issuer), query.spec, query.threshold, query.target)
                for query in batch
                if isinstance(query, RangeQuery)
            )
        else:
            repeats = {}
        point_pruners: dict[tuple, object] = {}
        uncertain_pruners: dict[tuple, object] = {}
        point_snapshot: ColumnarPoints | None = None
        uncertain_snapshot: ColumnarUncertain | None = None
        if use_snapshots and self._config.vectorized and "points" in targets:
            point_snapshot = self._require_point_db().columnar()
        if use_snapshots and self._config.vectorized and "uncertain" in targets:
            uncertain_snapshot = self._require_uncertain_db().columnar()
        uncertain_index = (
            self._uncertain_db.index if self._uncertain_db is not None else None
        )

        evaluations: list[Evaluation] = []
        for query, seq in zip(batch, seqs):
            started = time.perf_counter()
            # Cache stage first: a hit must skip every later stage,
            # including plan compilation (pruners build expanded regions
            # eagerly — exactly the repeated work a hit exists to avoid).
            key = None
            if self._cache is not None:
                key = self._cache_key(query)
                entry = self._cache.lookup(key, query.issuer)
                if entry is not None:
                    result, stats = entry.materialise()
                    evaluations.append(
                        Evaluation(
                            query=query,
                            result=result,
                            statistics=stats,
                            elapsed_seconds=time.perf_counter() - started,
                        )
                    )
                    continue
            if isinstance(query, NearestNeighborQuery):
                pruner_cache = None
            elif repeats.get((id(query.issuer), query.spec, query.threshold, query.target), 0) > 1:
                pruner_cache = (
                    point_pruners if query.target == "points" else uncertain_pruners
                )
            else:
                pruner_cache = None
            plan = plan_query(
                query,
                seq,
                self._config,
                uncertain_index=uncertain_index,
                pruner_cache=pruner_cache,
            )
            if plan.target == "nearest":
                result, stats = self._run_nearest(plan)
            elif plan.target == "points":
                result, stats = self._run_point_range(plan, columnar=point_snapshot)
            else:
                result, stats = self._run_uncertain_range(
                    plan, columnar=uncertain_snapshot
                )
            if key is not None and fill_allowed(self._config.draw_plan, stats):
                self._cache.store(key, query.issuer, result, stats)
            evaluations.append(
                Evaluation(
                    query=query,
                    result=result,
                    statistics=stats,
                    elapsed_seconds=time.perf_counter() - started,
                )
            )
        return evaluations

    # ------------------------------------------------------------------ #
    # Nearest-neighbour stage runner
    # ------------------------------------------------------------------ #
    def nearest_engine(self, samples: int) -> ImpreciseNearestNeighborEngine:
        """A cached nearest-neighbour sampler sharing the point database's index.

        The cache is keyed by ``(samples, database epoch)``: any live
        mutation of the point database bumps its epoch, so samplers built
        over the old object list are dropped instead of served stale.
        """
        database = self._require_point_db()
        key = (samples, database.epoch)
        engine = self._nn_engines.get(key)
        if engine is None:
            # Mutation invalidated the cache: shed samplers from past epochs.
            self._nn_engines = {
                cached_key: cached
                for cached_key, cached in self._nn_engines.items()
                if cached_key[1] == database.epoch
            }
            index = database.index if isinstance(database.index, RTree) else None
            engine = ImpreciseNearestNeighborEngine(
                database.objects,
                index=index,
                samples=samples,
                rng_seed=self._config.rng_seed,
            )
            self._nn_engines[key] = engine
        return engine

    def _run_nearest(self, plan: QueryPlan) -> tuple[QueryResult, EvaluationStatistics]:
        query = plan.query
        engine = self.nearest_engine(plan.samples)
        if plan.draw_token is not None:
            draws = nn_query_draws(
                query.issuer.pdf, plan.samples, self._config.rng_seed, plan.draw_token
            )
            return engine.evaluate(query.issuer, threshold=query.threshold, draws=draws)
        return engine.evaluate(query.issuer, threshold=query.threshold)

    # ------------------------------------------------------------------ #
    # Range-query stage runners
    # ------------------------------------------------------------------ #
    def _run_point_range(
        self,
        plan: QueryPlan,
        *,
        columnar: ColumnarPoints | None = None,
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """(C-)IPQ stages: candidates through the probe, prune, evaluate.

        ``columnar`` (batch path only) replaces the per-query index traversal
        with one NumPy window test over the snapshot; the candidate set is
        identical to an index range search, but no index I/O is performed, so
        ``stats.io`` stays zero.

        Candidates are processed in ascending oid order regardless of how the
        index traversal returned them, so results — including Monte-Carlo
        draw assignment — do not depend on the index kind or the candidate
        source.
        """
        issuer = plan.query.issuer
        spec = plan.query.spec
        threshold = plan.query.threshold
        pruner = plan.pruner
        database = self._require_point_db()
        started = time.perf_counter()
        stats = EvaluationStatistics()

        vectorized = self._config.vectorized
        candidate_xy: np.ndarray | None = None
        if columnar is not None and plan.prefer_columnar:
            rows = columnar.window_rows(plan.window)
            rows = rows[np.argsort(columnar.oids[rows], kind="stable")]
            candidates = [columnar.objects[row] for row in rows]
            candidate_xy = columnar.xy[rows]
        else:
            index = database.index
            before = index.stats.snapshot()
            candidates = index.range_search(plan.window)
            stats.io = index.stats.difference_since(before)
            candidates.sort(key=lambda obj: obj.oid)
        stats.candidates_examined = len(candidates)

        result = QueryResult()
        if vectorized:
            if candidate_xy is None:
                candidate_xy = np.empty((len(candidates), 2), dtype=float)
                for row, obj in enumerate(candidates):
                    candidate_xy[row, 0] = obj.location.x
                    candidate_xy[row, 1] = obj.location.y
            # The window used to retrieve candidates *is* the pruner's filter
            # region, so the per-object containment re-check only matters for
            # indexes that may return a superset of the window.
            survivors = candidates
            survivor_xy = candidate_xy
            if columnar is None and len(candidates) > 0:
                keep = points_in_window_mask(candidate_xy, plan.window)
                pruned_count = int(len(candidates) - np.count_nonzero(keep))
                if pruned_count:
                    stats.record_pruned(PruningStrategy.P_EXPANDED_QUERY.value, pruned_count)
                    rows = np.flatnonzero(keep)
                    survivors = [candidates[row] for row in rows]
                    survivor_xy = candidate_xy[rows]
            if survivors:
                stats.probability_computations += len(survivors)
                if self._use_monte_carlo(issuer):
                    samples = self._config.monte_carlo_samples
                    stats.monte_carlo_samples += samples * len(survivors)
                    if plan.draw_token is not None:
                        probabilities = ipq_probabilities_monte_carlo_per_oid(
                            issuer.pdf,
                            spec,
                            survivor_xy,
                            np.fromiter(
                                (obj.oid for obj in survivors),
                                dtype=np.int64,
                                count=len(survivors),
                            ),
                            samples,
                            self._config.rng_seed,
                            plan.draw_token,
                        )
                    else:
                        probabilities = ipq_probabilities_monte_carlo(
                            issuer.pdf, spec, survivor_xy, samples, self._rng
                        )
                else:
                    probabilities = ipq_probabilities(issuer.pdf, spec, survivor_xy)
                for obj, probability in zip(survivors, probabilities):
                    probability = float(probability)
                    if probability > 0.0 and probability >= threshold:
                        result.add(obj.oid, probability)
        else:
            survivors = []
            for obj in candidates:
                decision = pruner.decide(obj)
                if decision.pruned:
                    stats.record_pruned(decision.strategy or "filter")
                    continue
                survivors.append(obj)
            if survivors and self._use_monte_carlo(issuer):
                samples = self._config.monte_carlo_samples
                if plan.draw_token is not None:
                    # The per-oid plan is inherently per-object, so both
                    # backends share the exact same helper.
                    locations = np.empty((len(survivors), 2), dtype=float)
                    for i, obj in enumerate(survivors):
                        locations[i, 0] = obj.location.x
                        locations[i, 1] = obj.location.y
                    stats.probability_computations += len(survivors)
                    stats.monte_carlo_samples += samples * len(survivors)
                    probabilities = ipq_probabilities_monte_carlo_per_oid(
                        issuer.pdf,
                        spec,
                        locations,
                        np.fromiter(
                            (obj.oid for obj in survivors),
                            dtype=np.int64,
                            count=len(survivors),
                        ),
                        samples,
                        self._config.rng_seed,
                        plan.draw_token,
                    )
                    for obj, probability in zip(survivors, probabilities):
                        probability = float(probability)
                        if probability > 0.0 and probability >= threshold:
                            result.add(obj.oid, probability)
                else:
                    # Same per-query draw plan as the vectorized backend (one
                    # batched issuer draw), evaluated with a scalar per-object
                    # loop — probabilities are bitwise identical across backends.
                    draws = issuer.pdf.sample_batch(self._rng, samples, len(survivors))
                    for i, obj in enumerate(survivors):
                        stats.probability_computations += 1
                        stats.monte_carlo_samples += samples
                        dx = np.abs(draws[i, :, 0] - obj.location.x)
                        dy = np.abs(draws[i, :, 1] - obj.location.y)
                        inside = (dx <= spec.half_width) & (dy <= spec.half_height)
                        probability = float(np.count_nonzero(inside)) / samples
                        if probability > 0.0 and probability >= threshold:
                            result.add(obj.oid, probability)
            else:
                for obj in survivors:
                    stats.probability_computations += 1
                    probability = ipq_probability(issuer.pdf, spec, obj.location)
                    if probability > 0.0 and probability >= threshold:
                        result.add(obj.oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats

    def _run_uncertain_range(
        self,
        plan: QueryPlan,
        *,
        columnar: ColumnarUncertain | None = None,
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """(C-)IUQ stages: candidates through the probe, prune, evaluate.

        See :meth:`_run_point_range` for the ``columnar`` batch-path
        contract; as there, candidates are processed in ascending oid order
        so results do not depend on the candidate source.  The columnar
        window filter only replaces plain window probes — a PTI-engaged plan
        keeps the index traversal (its node-level pruning is the feature
        under study).
        """
        issuer = plan.query.issuer
        spec = plan.query.spec
        threshold = plan.query.threshold
        pruner = plan.pruner
        database = self._require_uncertain_db()
        started = time.perf_counter()
        stats = EvaluationStatistics()
        index = database.index
        snapshot_rows: np.ndarray | None = None
        if columnar is not None and plan.prefer_columnar:
            rows = columnar.window_rows(plan.window)
            rows = rows[np.argsort(columnar.oids[rows], kind="stable")]
            snapshot_rows = rows
            candidates = [columnar.objects[row] for row in rows]
            if self._config.use_p_expanded_query and threshold > 0.0:
                residual_strategies = tuple(
                    s
                    for s in self._config.ciuq_strategies
                    if s is not PruningStrategy.P_EXPANDED_QUERY
                )
            else:
                residual_strategies = self._config.ciuq_strategies
        else:
            before = index.stats.snapshot()
            candidates, residual_strategies = self._retrieve_uncertain_candidates(
                index, plan, pruner, threshold
            )
            stats.io = index.stats.difference_since(before)
            candidates.sort(key=lambda obj: obj.oid)
        stats.candidates_examined = len(candidates)

        result = QueryResult()
        if self._config.vectorized:
            survivors, survivor_bounds = self._prune_uncertain_vectorized(
                candidates,
                pruner,
                residual_strategies,
                threshold,
                stats,
                snapshot=columnar,
                snapshot_rows=snapshot_rows,
            )
            pairs = self._uncertain_probabilities_vectorized(
                issuer, survivors, spec, stats, plan.draw_token, bounds=survivor_bounds
            )
        else:
            survivors = []
            for obj in candidates:
                decision = pruner.decide(obj, strategies=residual_strategies)
                if decision.pruned:
                    stats.record_pruned(decision.strategy or "filter")
                    continue
                survivors.append(obj)
            pairs = self._uncertain_probabilities_scalar(
                issuer, survivors, spec, stats, plan.draw_token
            )
        for oid, probability in pairs:
            if probability > 0.0 and probability >= threshold:
                result.add(oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats

    def _prune_uncertain_vectorized(
        self,
        candidates: list[UncertainObject],
        pruner: CIUQPruner,
        strategies: tuple[PruningStrategy, ...],
        threshold: float,
        stats: EvaluationStatistics,
        *,
        snapshot: ColumnarUncertain | None = None,
        snapshot_rows: np.ndarray | None = None,
    ) -> tuple[list[UncertainObject], np.ndarray | None]:
        """Apply the residual pruning strategies as batched rectangle tests.

        All three Section-5.2 strategies are pure rectangle predicates once
        the candidates' region bounds and catalog bound rectangles are
        available as arrays, so the whole batch runs through
        :meth:`CIUQPruner.decide_many` (same decisions, same per-strategy
        attribution as the scalar loop).  When the columnar snapshot cannot
        serve a catalog-based strategy (heterogeneous or missing catalogs),
        the scalar ``decide`` loop runs instead.

        ``snapshot_rows`` are the candidates' snapshot rows when the caller
        already knows them (columnar retrieval); otherwise they are resolved
        by oid.  Returns the survivors together with their region bounds
        ``(K, 4)`` (``None`` when no bounds array was materialised).
        """
        if threshold <= 0.0 or not candidates or not strategies:
            survivor_bounds = (
                snapshot.bounds[snapshot_rows]
                if snapshot is not None and snapshot_rows is not None
                else None
            )
            return list(candidates), survivor_bounds
        if snapshot is None:
            snapshot = self._require_uncertain_db().columnar()
        rows = snapshot_rows
        if rows is None:
            try:
                rows = snapshot.rows_for(candidates)
            except ValueError:
                # Candidates from a foreign collection (hand-wired database):
                # fall back to materialising their bounds directly.
                rows = None
        if rows is not None:
            bounds = snapshot.bounds[rows]
            catalog_levels = snapshot.catalog_levels
            catalog_bounds = (
                snapshot.catalog_bounds[rows]
                if snapshot.catalog_bounds is not None
                else None
            )
        else:
            bounds = np.empty((len(candidates), 4), dtype=float)
            for row, obj in enumerate(candidates):
                bounds[row] = obj.region.as_tuple()
            catalog_levels = None
            catalog_bounds = None
        batched = pruner.decide_many(
            bounds, catalog_levels, catalog_bounds, strategies=strategies
        )
        if batched is None:
            survivors = []
            for obj in candidates:
                decision = pruner.decide(obj, strategies=strategies)
                if decision.pruned:
                    stats.record_pruned(decision.strategy or "filter")
                else:
                    survivors.append(obj)
            return survivors, None
        keep, pruned_counts = batched
        if not pruned_counts:
            return list(candidates), bounds
        for strategy_name, count in pruned_counts.items():
            stats.record_pruned(strategy_name, count)
        kept_rows = np.flatnonzero(keep)
        return [candidates[row] for row in kept_rows], bounds[kept_rows]

    def _uncertain_routes(
        self, issuer: UncertainObject, survivors: list[UncertainObject]
    ) -> tuple[list[int], list[int], list[int]]:
        """Partition survivors by evaluation route: (monte_carlo, exact, grid).

        The routing mirrors the per-object dispatch the engine has always
        used: uniform issuer/target pairs get the closed form, everything
        else is sampled under ``auto``/``monte_carlo``, and ``exact`` without
        a closed form falls back to the deterministic grid.
        """
        method = self._config.probability_method
        if method == "monte_carlo":
            return list(range(len(survivors))), [], []
        issuer_uniform = isinstance(issuer.pdf, UniformPdf)
        mc_rows: list[int] = []
        exact_rows: list[int] = []
        grid_rows: list[int] = []
        for row, obj in enumerate(survivors):
            exact_possible = issuer_uniform and isinstance(obj.pdf, UniformPdf)
            if method == "auto" and not exact_possible:
                mc_rows.append(row)
            elif exact_possible:
                exact_rows.append(row)
            else:
                grid_rows.append(row)
        return mc_rows, exact_rows, grid_rows

    def _uncertain_probabilities_vectorized(
        self,
        issuer: UncertainObject,
        survivors: list[UncertainObject],
        spec,
        stats: EvaluationStatistics,
        draw_token: int | None,
        *,
        bounds: np.ndarray | None = None,
    ) -> list[tuple[int, float]]:
        """Qualification probabilities of the surviving candidates, batched.

        Survivors are partitioned by evaluation route — batched closed form
        for uniform issuer/target pairs, batched Monte-Carlo for sampled
        pairs, the deterministic grid fallback for ``exact`` without a closed
        form — and each batch runs as one NumPy kernel.  Monte-Carlo draws
        come from the plan's draw token (or the shared per-query streaming
        plan), so sampled probabilities are bitwise identical to the scalar
        backend given the same seed.  Returns ``(oid, probability)`` pairs in
        survivor order.
        """
        if not survivors:
            return []
        stats.probability_computations += len(survivors)
        mc_rows, exact_rows, grid_rows = self._uncertain_routes(issuer, survivors)
        probabilities = np.empty(len(survivors), dtype=float)
        if mc_rows:
            samples = self._config.monte_carlo_samples
            stats.monte_carlo_samples += samples * len(mc_rows)
            all_mc = len(mc_rows) == len(survivors)
            if draw_token is not None:
                probabilities[mc_rows] = iuq_probabilities_monte_carlo_per_oid(
                    issuer.pdf,
                    survivors if all_mc else [survivors[row] for row in mc_rows],
                    spec,
                    samples,
                    self._config.rng_seed,
                    draw_token,
                )
            else:
                probabilities[mc_rows] = iuq_probabilities_monte_carlo(
                    issuer.pdf,
                    survivors if all_mc else [survivors[row] for row in mc_rows],
                    spec,
                    samples,
                    self._rng,
                    target_bounds=(
                        bounds if all_mc else bounds[mc_rows]
                    ) if bounds is not None else None,
                )
        if exact_rows:
            if bounds is not None:
                exact_bounds = bounds[exact_rows]
            else:
                exact_bounds = np.empty((len(exact_rows), 4), dtype=float)
                for i, row in enumerate(exact_rows):
                    exact_bounds[i] = survivors[row].region.as_tuple()
            probabilities[exact_rows] = iuq_probabilities_exact_uniform(
                issuer.pdf, exact_bounds, spec
            )
        for row in grid_rows:
            # method == "exact" without a closed form: the deterministic grid
            # keeps results reproducible (same fallback as the scalar path).
            probabilities[row] = iuq_probability(
                issuer.pdf, survivors[row], spec, grid_resolution=24
            )
        return [
            (obj.oid, float(probability))
            for obj, probability in zip(survivors, probabilities)
        ]

    def _uncertain_probabilities_scalar(
        self,
        issuer: UncertainObject,
        survivors: list[UncertainObject],
        spec,
        stats: EvaluationStatistics,
        draw_token: int | None,
    ) -> list[tuple[int, float]]:
        """Scalar-reference twin of :meth:`_uncertain_probabilities_vectorized`.

        Same routing and the same Monte-Carlo draw plan, but every
        probability is evaluated with a per-object loop — this is the oracle
        the parity suite compares the batched kernels against.
        """
        if not survivors:
            return []
        stats.probability_computations += len(survivors)
        mc_rows, exact_rows, grid_rows = self._uncertain_routes(issuer, survivors)
        probabilities = np.empty(len(survivors), dtype=float)
        if mc_rows:
            samples = self._config.monte_carlo_samples
            stats.monte_carlo_samples += samples * len(mc_rows)
            targets = [survivors[row] for row in mc_rows]
            if draw_token is not None:
                # The per-oid plan is inherently per-object, so both backends
                # share the exact same helper.
                probabilities[mc_rows] = iuq_probabilities_monte_carlo_per_oid(
                    issuer.pdf, targets, spec, samples, self._config.rng_seed, draw_token
                )
            else:
                issuer_draws, target_draws = monte_carlo_iuq_draws(
                    issuer.pdf, targets, samples, self._rng
                )
                for i, row in enumerate(mc_rows):
                    dx = np.abs(target_draws[i, :, 0] - issuer_draws[i, :, 0])
                    dy = np.abs(target_draws[i, :, 1] - issuer_draws[i, :, 1])
                    inside = (dx <= spec.half_width) & (dy <= spec.half_height)
                    probabilities[row] = float(np.count_nonzero(inside)) / samples
        for row in exact_rows:
            probabilities[row] = iuq_probability_exact_uniform(
                issuer.pdf, survivors[row], spec
            )
        for row in grid_rows:
            probabilities[row] = iuq_probability(
                issuer.pdf, survivors[row], spec, grid_resolution=24
            )
        return [
            (obj.oid, float(probability))
            for obj, probability in zip(survivors, probabilities)
        ]

    def _retrieve_uncertain_candidates(
        self, index, plan: QueryPlan, pruner: CIUQPruner, threshold: float
    ) -> tuple[list[UncertainObject], tuple[PruningStrategy, ...]]:
        """Index probe for (C-)IUQ plans.

        * PTI engaged (``plan.use_pti``): node-level Strategy-1 pruning
          against the Minkowski window plus Strategy-2 pruning against the
          Qp-expanded-query (Figure 12's "PTI + p-expanded-query").  The
          strategies the index already applied per entry are removed from the
          per-object pass — re-running them would test the exact same
          rounded-level conditions on the exact same rectangles.
        * Any other index: a plain window probe of the plan's candidate
          window (the Qp-expanded-query when enabled, otherwise the
          Minkowski sum).

        Returns the candidates and the strategies still to be applied per
        object.
        """
        configured = self._config.ciuq_strategies
        if plan.use_pti:
            p_window = (
                pruner.qp_expanded_region if self._config.use_p_expanded_query else None
            )
            candidates = index.range_search_with_threshold(
                pruner.minkowski_region, threshold, p_window
            )
            applied = {PruningStrategy.P_BOUND}
            if p_window is not None:
                applied.add(PruningStrategy.P_EXPANDED_QUERY)
            residual = tuple(s for s in configured if s not in applied)
            return candidates, residual
        candidates = index.range_search(plan.window)
        if self._config.use_p_expanded_query and threshold > 0.0:
            # The window probe already discarded objects outside the
            # Qp-expanded-query, i.e. it applied Strategy 2.
            residual = tuple(
                s for s in configured if s is not PruningStrategy.P_EXPANDED_QUERY
            )
            return candidates, residual
        return candidates, configured
