"""The paper's *basic* evaluation method (Section 3.3).

Equations 2 and 4 define qualification probabilities directly: conceptually
every point of the issuer's uncertainty region is examined, a range query is
formed at that point, and the per-point result is integrated under the
issuer's pdf.  In practice the region is discretised into sample points, so
the cost per object is (number of issuer samples) × (cost of one containment
or rectangle-probability test).  This is the baseline the enhanced method of
Section 4 is compared against in Figure 8.

The discretisation grid depends only on the issuer's pdf and the sample
count, so it is computed once per ``(pdf, samples)`` pair and cached — the
seed implementation rebuilt it from scratch for every candidate object, which
made the baseline quadratically wasteful rather than honestly slow.  On top
of the cached grid, :class:`BasicEvaluator` defaults to a vectorized backend
that evaluates the containment / rectangle-mass tests as one broadcast
``(samples × candidates)`` NumPy operation; pass ``vectorized=False`` for the
scalar reference loop.
"""

from __future__ import annotations
from repro.core.errors import InvalidQueryError

import time
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.geometry.point import Point
from repro.core.columnar import bounds_overlap_window_mask, points_in_window_mask
from repro.core.expansion import minkowski_expanded_query
from repro.core.queries import ImpreciseRangeQuery, QueryResult, RangeQuerySpec
from repro.core.statistics import EvaluationStatistics
from repro.uncertainty.pdf import UncertaintyPdf, UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

#: Default number of issuer sample points used by the basic method.  The
#: paper notes "a large number of sampling points will be needed to produce an
#: accurate answer"; a 20×20 grid (400 points) keeps the baseline honest
#: without making the benchmark unbearably slow.
DEFAULT_ISSUER_SAMPLES = 400


@lru_cache(maxsize=16)
def issuer_grid_arrays(
    issuer_pdf: UncertaintyPdf, samples: int
) -> tuple[np.ndarray, np.ndarray]:
    """Columnar issuer discretisation: midpoint grid as ``(points, weights)``.

    ``points`` is an ``(M, 2)`` coordinate array and ``weights`` the matching
    ``(M,)`` array of normalised pdf cell masses (density at the midpoint ×
    cell area, renormalised to sum to 1 so discretisation error does not bias
    the probabilities); zero-mass cells are dropped.  The grid depends only on
    the pdf and the sample count, so results are cached per ``(pdf, samples)``
    pair (pdfs hash by identity).  The returned arrays are read-only.
    """
    region = issuer_pdf.region
    per_axis = max(1, int(round(samples ** 0.5)))
    xs = np.linspace(region.xmin, region.xmax, per_axis + 1)
    ys = np.linspace(region.ymin, region.ymax, per_axis + 1)
    x_mid = (xs[:-1] + xs[1:]) / 2.0
    y_mid = (ys[:-1] + ys[1:]) / 2.0
    cell_area = (region.width / per_axis) * (region.height / per_axis)
    grid_x, grid_y = np.meshgrid(x_mid, y_mid)
    weights = issuer_pdf.density_array(grid_x.ravel(), grid_y.ravel()) * cell_area
    keep = weights > 0.0
    weights = weights[keep]
    total = float(weights.sum())
    if total <= 0.0:
        empty = np.empty((0, 2), dtype=float)
        empty.setflags(write=False)
        zero = np.empty(0, dtype=float)
        zero.setflags(write=False)
        return empty, zero
    points = np.column_stack([grid_x.ravel()[keep], grid_y.ravel()[keep]])
    weights = weights / total
    points.setflags(write=False)
    weights.setflags(write=False)
    return points, weights


@lru_cache(maxsize=16)
def _issuer_sample_pointlist(
    issuer_pdf: UncertaintyPdf, samples: int
) -> tuple[tuple[Point, float], ...]:
    """The grid as ``(Point, weight)`` pairs, cached for the scalar oracle."""
    points, weights = issuer_grid_arrays(issuer_pdf, samples)
    return tuple(
        (Point(float(x), float(y)), float(w))
        for (x, y), w in zip(points, weights)
    )


def _issuer_sample_grid(issuer_pdf: UncertaintyPdf, samples: int) -> list[tuple[Point, float]]:
    """Deterministic issuer discretisation: midpoints of a regular grid.

    Returns ``(point, weight)`` pairs where the weight is the pdf mass of the
    grid cell, renormalised to sum to 1.  Backed by the per-``(pdf, samples)``
    cache, so repeated calls for the same issuer are cheap.
    """
    return list(_issuer_sample_pointlist(issuer_pdf, samples))


def basic_ipq_probability(
    issuer_pdf: UncertaintyPdf,
    spec: RangeQuerySpec,
    location: Point,
    *,
    issuer_samples: int = DEFAULT_ISSUER_SAMPLES,
) -> float:
    """Equation 2 evaluated by discretising the issuer's uncertainty region."""
    total = 0.0
    for sample_point, weight in _issuer_sample_pointlist(issuer_pdf, issuer_samples):
        if spec.region_at(sample_point).contains_point(location):
            total += weight
    return min(1.0, total)


def basic_iuq_probability(
    issuer_pdf: UncertaintyPdf,
    target: UncertainObject,
    spec: RangeQuerySpec,
    *,
    issuer_samples: int = DEFAULT_ISSUER_SAMPLES,
) -> float:
    """Equation 4 evaluated by discretising the issuer's uncertainty region.

    For every issuer sample the inner probability (Equation 3) is the target
    pdf's mass inside the range centred at the sample — itself potentially a
    numerical integration for pdfs without closed forms, which is exactly why
    the basic method is expensive.
    """
    total = 0.0
    for sample_point, weight in _issuer_sample_pointlist(issuer_pdf, issuer_samples):
        inner = target.pdf.probability_in_rect(spec.region_at(sample_point))
        total += weight * inner
    return min(1.0, total)


def _sample_range_bounds(points: np.ndarray, spec: RangeQuerySpec) -> np.ndarray:
    """Range rectangles centred at each issuer sample, as an ``(M, 4)`` array."""
    bounds = np.empty((points.shape[0], 4), dtype=float)
    bounds[:, 0] = points[:, 0] - spec.half_width
    bounds[:, 1] = points[:, 1] - spec.half_height
    bounds[:, 2] = points[:, 0] + spec.half_width
    bounds[:, 3] = points[:, 1] + spec.half_height
    return bounds


def basic_ipq_probabilities(
    issuer_pdf: UncertaintyPdf,
    spec: RangeQuerySpec,
    locations: np.ndarray,
    *,
    issuer_samples: int = DEFAULT_ISSUER_SAMPLES,
) -> np.ndarray:
    """Batched Equation 2: probabilities for a ``(K, 2)`` location array.

    The issuer grid is computed once and containment is evaluated as one
    broadcast ``(samples × candidates)`` test; per-candidate results equal
    the scalar :func:`basic_ipq_probability` to floating-point summation
    order.
    """
    locations = np.asarray(locations, dtype=float)
    points, weights = issuer_grid_arrays(issuer_pdf, issuer_samples)
    if points.shape[0] == 0 or locations.shape[0] == 0:
        return np.zeros(locations.shape[0], dtype=float)
    bounds = _sample_range_bounds(points, spec)
    inside = (
        (locations[None, :, 0] >= bounds[:, 0, None])
        & (locations[None, :, 0] <= bounds[:, 2, None])
        & (locations[None, :, 1] >= bounds[:, 1, None])
        & (locations[None, :, 1] <= bounds[:, 3, None])
    )
    return np.minimum(1.0, weights @ inside)


def basic_iuq_probabilities(
    issuer_pdf: UncertaintyPdf,
    targets: Sequence[UncertainObject],
    spec: RangeQuerySpec,
    *,
    issuer_samples: int = DEFAULT_ISSUER_SAMPLES,
) -> np.ndarray:
    """Batched Equation 4: probabilities for a sequence of uncertain targets.

    The issuer grid and the per-sample range rectangles are computed once per
    query.  Uniform targets are evaluated in a single broadcast
    ``(samples × candidates)`` rectangle-mass computation; other pdfs get one
    batched :meth:`~repro.uncertainty.pdf.UncertaintyPdf.probability_in_rects`
    call per target (still one NumPy evaluation instead of ``samples`` scalar
    calls for closed-form pdfs).
    """
    points, weights = issuer_grid_arrays(issuer_pdf, issuer_samples)
    k = len(targets)
    if points.shape[0] == 0 or k == 0:
        return np.zeros(k, dtype=float)
    bounds = _sample_range_bounds(points, spec)
    # `type(...) is` (not isinstance) so UniformPdf subclasses overriding
    # probability_in_rect keep their own kernel via the general branch.
    if all(type(t.pdf) is UniformPdf for t in targets):
        regions = np.array([t.region.as_tuple() for t in targets])
        densities = np.array([1.0 / t.region.area for t in targets])
        ox = np.minimum(bounds[:, 2, None], regions[None, :, 2]) - np.maximum(
            bounds[:, 0, None], regions[None, :, 0]
        )
        oy = np.minimum(bounds[:, 3, None], regions[None, :, 3]) - np.maximum(
            bounds[:, 1, None], regions[None, :, 1]
        )
        np.maximum(ox, 0.0, out=ox)
        np.maximum(oy, 0.0, out=oy)
        inner = ox * oy * densities[None, :]
        probabilities = weights @ inner
    else:
        probabilities = np.empty(k, dtype=float)
        for i, target in enumerate(targets):
            probabilities[i] = float(weights @ target.pdf.probability_in_rects(bounds))
    return np.minimum(1.0, probabilities)


class BasicEvaluator:
    """End-to-end basic evaluation of IPQ and IUQ over in-memory object lists.

    By default candidates are still filtered with the Minkowski-sum expanded
    query so that the comparison against the enhanced method isolates the
    cost of the probability computation (the situation in Figure 8); pass
    ``use_expansion_filter=False`` to also disable the filter and fall back
    to examining every object.  ``vectorized`` selects the NumPy broadcast
    backend (default) or the scalar reference loop; both return the same
    answer sets with probabilities equal to within floating-point summation
    order.
    """

    def __init__(
        self,
        *,
        issuer_samples: int = DEFAULT_ISSUER_SAMPLES,
        use_expansion_filter: bool = True,
        vectorized: bool = True,
    ) -> None:
        if issuer_samples <= 0:
            raise InvalidQueryError("issuer_samples must be positive")
        self._issuer_samples = issuer_samples
        self._use_expansion_filter = use_expansion_filter
        self._vectorized = vectorized

    def evaluate_ipq(
        self, query: ImpreciseRangeQuery, objects: list[PointObject]
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Evaluate an IPQ over point objects with the basic method."""
        started = time.perf_counter()
        stats = EvaluationStatistics()
        expanded = minkowski_expanded_query(query.issuer_region, query.spec)
        result = QueryResult()
        if self._vectorized:
            candidates = objects
            xy = np.empty((len(objects), 2), dtype=float)
            for row, obj in enumerate(objects):
                xy[row, 0] = obj.location.x
                xy[row, 1] = obj.location.y
            if self._use_expansion_filter and len(objects):
                rows = np.flatnonzero(points_in_window_mask(xy, expanded))
                candidates = [objects[row] for row in rows]
                xy = xy[rows]
            stats.candidates_examined = len(candidates)
            stats.probability_computations = len(candidates)
            probabilities = basic_ipq_probabilities(
                query.issuer.pdf, query.spec, xy, issuer_samples=self._issuer_samples
            )
            for obj, probability in zip(candidates, probabilities):
                probability = float(probability)
                if probability > 0.0 and probability >= query.threshold:
                    result.add(obj.oid, probability)
        else:
            for obj in objects:
                if self._use_expansion_filter and not expanded.contains_point(obj.location):
                    continue
                stats.candidates_examined += 1
                stats.probability_computations += 1
                probability = basic_ipq_probability(
                    query.issuer.pdf, query.spec, obj.location,
                    issuer_samples=self._issuer_samples,
                )
                if probability > 0.0 and probability >= query.threshold:
                    result.add(obj.oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats

    def evaluate_iuq(
        self, query: ImpreciseRangeQuery, objects: list[UncertainObject]
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Evaluate an IUQ over uncertain objects with the basic method."""
        started = time.perf_counter()
        stats = EvaluationStatistics()
        expanded = minkowski_expanded_query(query.issuer_region, query.spec)
        result = QueryResult()
        if self._vectorized:
            candidates = objects
            if self._use_expansion_filter and len(objects):
                bounds = np.array([obj.region.as_tuple() for obj in objects])
                mask = bounds_overlap_window_mask(bounds, expanded)
                candidates = [objects[row] for row in np.flatnonzero(mask)]
            stats.candidates_examined = len(candidates)
            stats.probability_computations = len(candidates)
            probabilities = basic_iuq_probabilities(
                query.issuer.pdf, candidates, query.spec,
                issuer_samples=self._issuer_samples,
            )
            for obj, probability in zip(candidates, probabilities):
                probability = float(probability)
                if probability > 0.0 and probability >= query.threshold:
                    result.add(obj.oid, probability)
        else:
            for obj in objects:
                if self._use_expansion_filter and not expanded.overlaps(obj.region):
                    continue
                stats.candidates_examined += 1
                stats.probability_computations += 1
                probability = basic_iuq_probability(
                    query.issuer.pdf, obj, query.spec,
                    issuer_samples=self._issuer_samples,
                )
                if probability > 0.0 and probability >= query.threshold:
                    result.add(obj.oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats
