"""Benchmark: incremental subscription maintenance vs naive re-evaluate-all.

A fleet-monitoring serving pattern: ``subscriptions`` standing range
queries (small geofences scattered over the data space) watch the
California-like point objects while rounds of small move batches stream
in.  Two strategies answer the same stream:

* ``incremental`` — the :class:`~repro.core.continuous.SubscriptionRegistry`
  through ``Session.subscribe``: after each batch, only the subscriptions
  whose candidate window a mutation actually touched are re-evaluated
  (the registry's relevance test); everything else is skipped with a
  proof of staleness-impossibility.
* ``naive`` — the baseline a subscription engine replaces: after each
  batch, re-evaluate **every** standing query against the mutated
  database and diff by hand.

Both run under ``draw_plan="query_keyed"`` over identical data and both
final answer sets are asserted **bitwise identical** before anything is
reported.  The headline ``continuous_speedup`` (naive seconds over
incremental seconds — a ratio of two timings on the same machine) is
guarded by ``benchmarks/check_regression.py``; the report also records
the registry's re-evaluation counters, which show the selectivity that
produces the speedup (re-evaluations ≪ rounds × subscriptions).

Results go to ``BENCH_continuous.json``.  Run with::

    PYTHONPATH=src python benchmarks/bench_continuous.py

Environment knobs: ``REPRO_BENCH_SCALE`` (dataset scale, default 0.25),
``REPRO_BENCH_SUBS`` (standing subscriptions, default 100),
``REPRO_BENCH_ROUNDS`` (update rounds, default 30),
``REPRO_BENCH_UPDATES`` (point moves per round, default 2) and
``REPRO_BENCH_REPEATS`` (timing repetitions, default 3).  The defaults
model the serving-heavy regime standing subscriptions exist for — many
registered geofences, a trickle of position reports per tick.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.queries import RangeQuery
from repro.core.session import Session
from repro.core.updates import UpdateBatch
from repro.datasets.tiger import california_points
from repro.datasets.workload import QueryWorkload

OUTPUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_continuous.json"


def _subscription_pool(count: int) -> list[RangeQuery]:
    """``count`` standing range queries with small, scattered geofences."""
    workload = QueryWorkload(
        issuer_half_size=100.0, range_half_size=200.0, seed=6011
    )
    return [
        RangeQuery.ipq(issuer, workload.spec) for issuer in workload.issuers(count)
    ]


def _move_batches(points, rounds: int, per_round: int) -> list[UpdateBatch]:
    """Deterministic small move batches cycling through the point objects.

    Each move jitters one object around its current position, so a batch
    touches a handful of scattered locations — the locality that lets the
    registry skip every subscription whose geofence lies elsewhere.
    """
    batches = []
    cursor = 0
    for round_index in range(rounds):
        batch = UpdateBatch()
        for _ in range(per_round):
            obj = points[cursor % len(points)]
            dx = 17.0 * ((round_index % 7) - 3)
            dy = 13.0 * ((cursor % 5) - 2)
            batch.move(obj.oid, x=obj.location.x + dx, y=obj.location.y + dy)
            cursor += 1
        batches.append(batch)
    return batches


def _config() -> EngineConfig:
    return EngineConfig(draw_plan="query_keyed")


def _run_incremental(points, pool, batches) -> tuple[float, list[dict], dict]:
    """Maintain the pool through the registry; returns (seconds, answers, stats)."""
    session = Session.from_objects(points=points, config=_config())
    handles = [session.subscribe(query) for query in pool]
    started = time.perf_counter()
    for batch in batches:
        session.apply_updates(batch)
    seconds = time.perf_counter() - started
    answers = [handle.answer() for handle in handles]
    return seconds, answers, session.subscriptions().stats()


def _run_naive(points, pool, batches) -> tuple[float, list[dict]]:
    """Re-evaluate every standing query after every batch; diff by hand."""
    engine = ImpreciseQueryEngine(
        point_db=PointDatabase.build(points), config=_config()
    )
    answers = [engine.evaluate(query).probabilities() for query in pool]
    started = time.perf_counter()
    for batch in batches:
        engine.apply_updates(batch)
        for position, query in enumerate(pool):
            fresh = engine.evaluate(query).probabilities()
            if fresh != answers[position]:
                answers[position] = fresh
    seconds = time.perf_counter() - started
    return seconds, answers


def _measure(points, pool, batches, repeats):
    best_incremental = float("inf")
    best_naive = float("inf")
    stats: dict = {}
    for _ in range(repeats):
        incremental_seconds, incremental_answers, stats = _run_incremental(
            points, pool, batches
        )
        naive_seconds, naive_answers = _run_naive(points, pool, batches)
        assert incremental_answers == naive_answers, (
            "incrementally maintained answers diverged from re-evaluate-all"
        )
        best_incremental = min(best_incremental, incremental_seconds)
        best_naive = min(best_naive, naive_seconds)
    naive_evaluations = len(batches) * len(pool)
    return {
        "incremental_seconds": best_incremental,
        "naive_seconds": best_naive,
        "continuous_speedup": best_naive / best_incremental,
        "reevaluations": stats["reevaluations"],
        "skipped_reevaluations": stats["skipped"],
        "deltas_emitted": stats["deltas_emitted"],
        "naive_evaluations": naive_evaluations,
        "reevaluation_fraction": stats["reevaluations"] / naive_evaluations,
    }


def main() -> None:
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
    subscriptions = int(os.environ.get("REPRO_BENCH_SUBS", "100"))
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS", "30"))
    moves_per_round = int(os.environ.get("REPRO_BENCH_UPDATES", "2"))
    repeats = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))

    points = california_points(scale=scale)
    pool = _subscription_pool(subscriptions)
    batches = _move_batches(points, rounds, moves_per_round)

    results = _measure(points, pool, batches, repeats)

    report = {
        "benchmark": "continuous",
        "dataset_scale": scale,
        "points": len(points),
        "subscriptions": subscriptions,
        "rounds": rounds,
        "moves_per_round": moves_per_round,
        "repeats": repeats,
        **results,
    }
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
