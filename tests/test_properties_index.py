"""Property-based tests for the spatial indexes.

The key invariant: every index answers window queries identically to a brute
force scan, regardless of how the data was loaded.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.index.gridfile import GridFile
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RTree

coords = st.floats(min_value=0.0, max_value=1_000.0, allow_nan=False)
sizes = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def rect_lists(draw):
    count = draw(st.integers(min_value=1, max_value=60))
    rects = []
    for _ in range(count):
        x = draw(coords)
        y = draw(coords)
        rects.append(Rect(x, y, x + draw(sizes), y + draw(sizes)))
    return rects


@st.composite
def queries(draw):
    x = draw(coords)
    y = draw(coords)
    return Rect(x, y, x + draw(st.floats(min_value=0.0, max_value=500.0)), y + draw(
        st.floats(min_value=0.0, max_value=500.0)
    ))


def _brute_force(rects: list[Rect], query: Rect) -> set[int]:
    return {i for i, rect in enumerate(rects) if rect.overlaps(query)}


class TestIndexEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(rect_lists(), queries())
    def test_rtree_insert_matches_brute_force(self, rects, query):
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        assert set(tree.range_search(query)) == _brute_force(rects, query)

    @settings(max_examples=40, deadline=None)
    @given(rect_lists(), queries())
    def test_rtree_bulk_load_matches_brute_force(self, rects, query):
        items = [type("Item", (), {"mbr": rect, "i": i})() for i, rect in enumerate(rects)]
        tree = RTree.bulk_load(items, max_entries=4)
        assert {item.i for item in tree.range_search(query)} == _brute_force(rects, query)

    @settings(max_examples=40, deadline=None)
    @given(rect_lists(), queries())
    def test_gridfile_matches_brute_force(self, rects, query):
        bounds = Rect(0.0, 0.0, 1_200.0, 1_200.0)
        grid = GridFile(bounds, cells_per_axis=8)
        for i, rect in enumerate(rects):
            grid.insert(rect, i)
        assert set(grid.range_search(query)) == _brute_force(rects, query)

    @settings(max_examples=40, deadline=None)
    @given(rect_lists(), queries())
    def test_linear_scan_matches_brute_force(self, rects, query):
        index = LinearScanIndex()
        for i, rect in enumerate(rects):
            index.insert(rect, i)
        assert set(index.range_search(query)) == _brute_force(rects, query)

    @settings(max_examples=25, deadline=None)
    @given(rect_lists())
    def test_rtree_invariants_hold_after_insertions(self, rects):
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        tree.check_invariants()


class TestInterleavedMaintenance:
    """Structural invariants and scan equivalence under insert/delete streams."""

    @settings(max_examples=40, deadline=None)
    @given(rect_lists(), st.randoms(use_true_random=False), queries())
    def test_rtree_invariants_hold_under_interleaved_insert_delete(
        self, rects, random, query
    ):
        tree = RTree(max_entries=4)
        live: dict[int, Rect] = {}
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
            live[i] = rect
            # Randomly interleave deletions (possibly of the item just added).
            if live and random.random() < 0.4:
                victim = random.choice(sorted(live))
                tree.delete(live.pop(victim), victim)
                tree.check_invariants()
        tree.check_invariants()
        assert len(tree) == len(live)
        expected = {i for i, rect in live.items() if rect.overlaps(query)}
        assert set(tree.range_search(query)) == expected

    @settings(max_examples=25, deadline=None)
    @given(rect_lists(), st.randoms(use_true_random=False))
    def test_rtree_empties_and_refills_cleanly(self, rects, random):
        tree = RTree(max_entries=4)
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        order = list(enumerate(rects))
        random.shuffle(order)
        for i, rect in order:
            tree.delete(rect, i)
        tree.check_invariants()
        assert len(tree) == 0
        for i, rect in enumerate(rects):
            tree.insert(rect, i)
        tree.check_invariants()
        assert len(tree) == len(rects)

    @settings(max_examples=30, deadline=None)
    @given(rect_lists(), st.randoms(use_true_random=False), queries())
    def test_gridfile_and_linear_match_brute_force_after_deletes(
        self, rects, random, query
    ):
        bounds = Rect(0.0, 0.0, 1_200.0, 1_200.0)
        grid = GridFile(bounds, cells_per_axis=8)
        linear = LinearScanIndex()
        live: dict[int, Rect] = {}
        for i, rect in enumerate(rects):
            grid.insert(rect, i)
            linear.insert(rect, i)
            live[i] = rect
        for victim in random.sample(sorted(live), k=len(live) // 2):
            grid.delete(live[victim], victim)
            linear.delete(live[victim], victim)
            del live[victim]
        expected = {i for i, rect in live.items() if rect.overlaps(query)}
        assert set(grid.range_search(query)) == expected
        assert set(linear.range_search(query)) == expected
