"""Live object databases: collections plus the spatial index built over them.

A database wraps an object collection together with the index built over it;
index construction goes through the pluggable registry in
:mod:`repro.index.registry`, so third-party backends resolve by name.

Databases are *live*: ``insert``/``delete``/``move`` mutators keep the index
in sync incrementally (or rebuild it, for backends without a delete path)
and bump an **epoch counter** that lazily invalidates everything derived
from the collection — the cached columnar snapshot, nearest-neighbour
samplers, and (since the staged pipeline) entries of the shared
:class:`~repro.core.cache.ResultCache`, whose keys embed the epoch.  A
mutation can therefore never be served stale: consumers key their caches on
:attr:`~_MutableDatabaseMixin.epoch` and rebuild on first use after any
change, including direct mutation of ``db.objects`` (tracked by
:class:`_TrackedObjects`).
"""

from __future__ import annotations
from repro.core.errors import (
    ConfigurationError,
    InvalidArgumentError,
    InvalidUpdateError,
    MissingItemError,
)

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.geometry.rect import Rect
from repro.core.columnar import ColumnarPoints, ColumnarUncertain
from repro.core.updates import MutationObservable, UpdateEvent, UpdateOp
from repro.index.registry import build_index, get_index_backend
from repro.uncertainty.catalog import DEFAULT_CATALOG_LEVELS
from repro.uncertainty.region import PointObject, UncertainObject

_DATABASE_UIDS = itertools.count(1)


def new_database_uid() -> int:
    """A process-unique database identity token, never recycled.

    Result-cache keys embed this next to the epoch counter: epochs identify
    *states of one collection*, so two different databases that happen to
    share an epoch value must still never collide on a key.  Unlike
    ``id()``, a uid is never reassigned after an object is freed.
    """
    return next(_DATABASE_UIDS)


class _TrackedObjects(list):
    """An object list that reports every mutation to its owning database.

    The databases cache a columnar snapshot of their object list; any list
    mutation — whether through the database mutators or directly on
    ``db.objects`` — bumps the database *epoch*, so a cached snapshot can
    never be served stale (the historical failure mode: append to
    ``db.objects`` after ``columnar()`` and silently query old data).
    """

    __slots__ = ("_owner",)

    def __init__(self, items: Iterable, owner: "PointDatabase | UncertainDatabase") -> None:
        super().__init__(items)
        self._owner = owner

    def __reduce__(self):
        # Pickle as a plain list: the default list reconstruction appends
        # through the overridden hooks before ``_owner`` exists, and the
        # owner back-reference is a cycle pickle cannot route through
        # constructor arguments.  The owning database re-wraps the list in
        # its ``__setstate__``.
        return (list, (list(self),))

    def _mutated(self) -> None:
        self._owner._bump_epoch()

    def append(self, item) -> None:
        super().append(item)
        self._mutated()

    def extend(self, items) -> None:
        super().extend(items)
        self._mutated()

    def insert(self, position, item) -> None:
        super().insert(position, item)
        self._mutated()

    def remove(self, item) -> None:
        super().remove(item)
        self._mutated()

    def pop(self, position=-1):
        item = super().pop(position)
        self._mutated()
        return item

    def clear(self) -> None:
        super().clear()
        self._mutated()

    def sort(self, **kwargs) -> None:
        super().sort(**kwargs)
        self._mutated()

    def reverse(self) -> None:
        super().reverse()
        self._mutated()

    def __setitem__(self, position, item) -> None:
        super().__setitem__(position, item)
        self._mutated()

    def __delitem__(self, position) -> None:
        super().__delitem__(position)
        self._mutated()

    def __iadd__(self, items):
        result = super().__iadd__(items)
        self._mutated()
        return result

    def __imul__(self, factor):
        result = super().__imul__(factor)
        self._mutated()
        return result


class _MutableDatabaseMixin(MutationObservable):
    """Shared epoch accounting and index-maintenance plumbing.

    Concrete databases provide ``objects`` / ``index`` / ``kind`` plus typed
    ``insert`` / ``delete`` / ``move`` mutators; this mixin owns the epoch
    counter that invalidates cached columnar snapshots, the oid → position
    lookup, and the choice between incremental index maintenance and the
    rebuild fallback for backends without a delete path.  Through
    :class:`~repro.core.updates.MutationObservable` the mutators also report
    each applied change to registered update observers.
    """

    def _bump_epoch(self) -> None:
        self._epoch += 1

    def __setstate__(self, state: dict) -> None:
        # _TrackedObjects unpickles as a plain list (see its __reduce__);
        # re-wrap so mutation tracking survives a pickle round-trip.  The
        # unpickled copy is a *new* collection that may diverge from the
        # original, so it gets a fresh identity — two copies mutated apart
        # must never alias each other's cache keys.
        self.__dict__.update(state)
        if not isinstance(self.objects, _TrackedObjects):
            self.__dict__["objects"] = _TrackedObjects(self.objects, self)
        self.__dict__["_uid"] = new_database_uid()

    @property
    def uid(self) -> int:
        """Process-unique identity of this collection (see :func:`new_database_uid`)."""
        return self._uid

    @property
    def epoch(self) -> int:
        """Mutation counter; bumped by every change to the object list.

        Consumers caching anything derived from the collection (columnar
        snapshots, nearest-neighbour samplers, result-cache entries) key
        their caches on this.
        """
        return self._epoch

    def _position_of(self, oid: int) -> int:
        if self._positions is None or self._positions_epoch != self._epoch:
            self._positions = {obj.oid: row for row, obj in enumerate(self.objects)}
            self._positions_epoch = self._epoch
        position = self._positions.get(oid)
        if position is None:
            raise MissingItemError(f"no object with oid {oid} in this database")
        return position

    # The mutators patch the oid → position map in place (and re-stamp its
    # epoch) so a stream of updates costs O(index maintenance) per operation
    # instead of an O(n) map rebuild; out-of-band mutations of ``objects``
    # leave the epochs diverged and the map rebuilds lazily as before.
    def _list_append(self, obj) -> None:
        fresh = self._positions is not None and self._positions_epoch == self._epoch
        self.objects.append(obj)
        if fresh:
            self._positions[obj.oid] = len(self.objects) - 1
            self._positions_epoch = self._epoch

    def _list_remove(self, oid: int):
        # Swap-remove: the object list's order carries no meaning (every
        # evaluation path sorts candidates by oid), so filling the hole with
        # the last element keeps removal O(1).
        position = self._position_of(oid)
        positions = self._positions
        obj = self.objects[position]
        last = self.objects.pop()
        if last is not obj:
            self.objects[position] = last
            positions[last.oid] = position
        del positions[oid]
        self._positions_epoch = self._epoch
        return obj

    def _list_replace(self, oid: int, new):
        position = self._position_of(oid)
        old = self.objects[position]
        self.objects[position] = new
        self._positions_epoch = self._epoch
        return old

    def __contains__(self, oid: int) -> bool:
        try:
            self._position_of(oid)
        except KeyError:
            return False
        return True

    def get(self, oid: int):
        """The stored object with the given oid (``KeyError`` when absent)."""
        return self.objects[self._position_of(oid)]

    def _check_new_oid(self, oid: int) -> None:
        if oid in self:
            raise InvalidUpdateError(
                f"an object with oid {oid} is already stored; "
                "delete or move it instead of inserting a duplicate"
            )

    def _incremental_maintenance(self) -> bool:
        try:
            backend = get_index_backend(self.kind)
        except ValueError:
            # Unregistered kind (hand-wired database): duck-type the index.
            return hasattr(self.index, "delete")
        return backend.capabilities.supports_delete

    def _rebuild_index(self) -> None:
        self.index = build_index(list(self.objects), self.kind)

    # The mutators sequence index maintenance so that any index-side failure
    # (a catalog-less object hitting a PTI, a rebuild that cannot happen)
    # raises *before* the object list changes — objects and index never
    # diverge.  The rebuild fallback is the one case where the list must
    # change first (the rebuild is *of* the new list), so its precondition
    # is checked up front instead.
    def _append_with_index(self, obj) -> None:
        self._check_new_oid(obj.oid)
        self.index.insert(obj.mbr, obj)
        self._list_append(obj)

    def _delete_with_index(self, oid: int):
        obj = self.get(oid)
        if self._incremental_maintenance():
            self.index.delete(obj.mbr, obj)
            self._list_remove(oid)
        else:
            if len(self.objects) <= 1:
                raise InvalidUpdateError(
                    f"index kind {self.kind!r} has no incremental delete and "
                    "cannot be rebuilt over an empty collection; the last object "
                    "of such a database cannot be deleted"
                )
            self._list_remove(oid)
            self._rebuild_index()
        return obj

    def _replace_with_index(self, oid: int, new):
        old = self.get(oid)
        if self._incremental_maintenance():
            self.index.update(old.mbr, new.mbr, old, replacement=new)
            self._list_replace(oid, new)
        else:
            self._list_replace(oid, new)
            self._rebuild_index()
        return old

    def __len__(self) -> int:
        return len(self.objects)


@dataclass
class PointDatabase(_MutableDatabaseMixin):
    """A collection of point objects plus the spatial index built over them."""

    objects: list[PointObject]
    index: Any
    kind: str = "rtree"
    # Lazily-built columnar snapshot, cached per epoch: rebuilt on first use
    # after any mutation of the object list, so it can never be served stale.
    _columnar: ColumnarPoints | None = field(default=None, init=False, repr=False, compare=False)
    _columnar_epoch: int = field(default=-1, init=False, repr=False, compare=False)
    _epoch: int = field(default=0, init=False, repr=False, compare=False)
    _uid: int = field(default_factory=new_database_uid, init=False, repr=False, compare=False)
    _positions: dict[int, int] | None = field(default=None, init=False, repr=False, compare=False)
    _positions_epoch: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.objects, _TrackedObjects):
            self.objects = _TrackedObjects(self.objects, self)

    def columnar(self) -> ColumnarPoints:
        """The columnar snapshot of the collection (rebuilt lazily per epoch)."""
        if self._columnar is None or self._columnar_epoch != self._epoch:
            self._columnar = ColumnarPoints(self.objects)
            self._columnar_epoch = self._epoch
        return self._columnar

    @classmethod
    def build(
        cls,
        objects: Iterable[PointObject],
        *,
        index_kind: str = "rtree",
        bounds: Rect | None = None,
        **index_kwargs,
    ) -> "PointDatabase":
        """Index a point-object collection (R-tree by default, as in the paper).

        ``index_kind`` resolves through the index registry; backends whose
        capabilities exclude point objects (e.g. the PTI) are rejected.
        """
        materialised = list(objects)
        backend = get_index_backend(index_kind)
        if not backend.capabilities.supports_points:
            raise ConfigurationError(
                f"index kind {index_kind!r} only stores uncertain objects"
            )
        index = build_index(materialised, index_kind, bounds=bounds, **index_kwargs)
        return cls(objects=materialised, index=index, kind=index_kind)

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def insert(self, obj: PointObject) -> PointObject:
        """Add one point object, keeping the index and snapshot in sync."""
        if not isinstance(obj, PointObject):
            raise InvalidArgumentError(f"expected a PointObject, got {type(obj).__name__}")
        self._append_with_index(obj)
        self._emit_update(
            UpdateEvent(
                op=UpdateOp(action="insert", obj=obj),
                target="points",
                oid=obj.oid,
                after=obj.mbr,
            )
        )
        return obj

    def delete(self, oid: int) -> PointObject:
        """Remove the object with the given oid and return it."""
        removed = self._delete_with_index(oid)
        self._emit_update(
            UpdateEvent(
                op=UpdateOp(action="delete", oid=oid, target="points"),
                target="points",
                oid=oid,
                before=removed.mbr,
            )
        )
        return removed

    def move(self, oid: int, x: float, y: float) -> PointObject:
        """Relocate the object with the given oid to ``(x, y)``.

        The stored wrapper is immutable, so the move replaces it with a new
        :class:`PointObject` carrying the same oid (returned).
        """
        new = PointObject.at(oid, float(x), float(y))
        old = self._replace_with_index(oid, new)
        self._emit_update(
            UpdateEvent(
                op=UpdateOp(action="move", oid=oid, x=float(x), y=float(y), target="points"),
                target="points",
                oid=oid,
                before=old.mbr,
                after=new.mbr,
            )
        )
        return new


@dataclass
class UncertainDatabase(_MutableDatabaseMixin):
    """A collection of uncertain objects plus the index built over them."""

    objects: list[UncertainObject]
    index: Any
    kind: str = "pti"
    #: Levels U-catalogs were built at (``build``'s ``catalog_levels``);
    #: mutators attach catalogs at the same levels so the PTI's homogeneity
    #: requirement keeps holding under live inserts and moves.
    catalog_levels: tuple[float, ...] | None = None
    _columnar: ColumnarUncertain | None = field(default=None, init=False, repr=False, compare=False)
    _columnar_epoch: int = field(default=-1, init=False, repr=False, compare=False)
    _epoch: int = field(default=0, init=False, repr=False, compare=False)
    _uid: int = field(default_factory=new_database_uid, init=False, repr=False, compare=False)
    _positions: dict[int, int] | None = field(default=None, init=False, repr=False, compare=False)
    _positions_epoch: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.objects, _TrackedObjects):
            self.objects = _TrackedObjects(self.objects, self)

    def columnar(self) -> ColumnarUncertain:
        """The columnar snapshot of the collection (rebuilt lazily per epoch)."""
        if self._columnar is None or self._columnar_epoch != self._epoch:
            self._columnar = ColumnarUncertain(self.objects)
            self._columnar_epoch = self._epoch
        return self._columnar

    @classmethod
    def build(
        cls,
        objects: Iterable[UncertainObject],
        *,
        index_kind: str = "pti",
        catalog_levels: Sequence[float] | None = DEFAULT_CATALOG_LEVELS,
        bounds: Rect | None = None,
        **index_kwargs,
    ) -> "UncertainDatabase":
        """Index an uncertain-object collection.

        When ``catalog_levels`` is given, every object missing a U-catalog
        gets one built at those levels (the PTI requires catalogs; the plain
        R-tree merely benefits from them during object-level pruning).
        ``index_kind`` resolves through the index registry.
        """
        materialised = list(objects)
        backend = get_index_backend(index_kind)
        if not backend.capabilities.supports_uncertain:
            raise ConfigurationError(
                f"index kind {index_kind!r} cannot store uncertain objects"
            )
        if catalog_levels is not None:
            materialised = [
                obj if obj.catalog is not None else obj.with_catalog(catalog_levels)
                for obj in materialised
            ]
        index = build_index(materialised, index_kind, bounds=bounds, **index_kwargs)
        return cls(
            objects=materialised,
            index=index,
            kind=index_kind,
            catalog_levels=tuple(catalog_levels) if catalog_levels is not None else None,
        )

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def _with_catalog(
        self, obj: UncertainObject, template: UncertainObject | None
    ) -> UncertainObject:
        """Attach a U-catalog matching the database's levels, when known."""
        if obj.catalog is not None:
            return obj
        if template is not None and template.catalog is not None:
            return obj.with_catalog(template.catalog.levels)
        if self.catalog_levels is not None:
            return obj.with_catalog(self.catalog_levels)
        return obj

    def insert(self, obj: UncertainObject) -> UncertainObject:
        """Add one uncertain object, keeping the index and snapshot in sync.

        An object without a U-catalog gets one built at the database's
        catalog levels (when the database carries catalogs), so PTI-backed
        databases stay insertable.  Returns the stored object.
        """
        if not isinstance(obj, UncertainObject):
            raise InvalidArgumentError(f"expected an UncertainObject, got {type(obj).__name__}")
        obj = self._with_catalog(obj, None)
        self._append_with_index(obj)
        self._emit_update(
            UpdateEvent(
                op=UpdateOp(action="insert", obj=obj),
                target="uncertain",
                oid=obj.oid,
                after=obj.mbr,
            )
        )
        return obj

    def delete(self, oid: int) -> UncertainObject:
        """Remove the object with the given oid and return it."""
        removed = self._delete_with_index(oid)
        self._emit_update(
            UpdateEvent(
                op=UpdateOp(action="delete", oid=oid, target="uncertain"),
                target="uncertain",
                oid=oid,
                before=removed.mbr,
            )
        )
        return removed

    def move(self, oid: int, pdf) -> UncertainObject:
        """Give the object with the given oid a new uncertainty pdf.

        A moving uncertain object is a fresh location report: a new region
        and pdf, with the U-catalog rebuilt to match (at the old catalog's
        levels, falling back to the database's).  Returns the stored object.
        """
        old = self.get(oid)
        new = self._with_catalog(UncertainObject(oid=oid, pdf=pdf), old)
        self._replace_with_index(oid, new)
        self._emit_update(
            UpdateEvent(
                op=UpdateOp(action="move", oid=oid, pdf=pdf, target="uncertain"),
                target="uncertain",
                oid=oid,
                before=old.mbr,
                after=new.mbr,
            )
        )
        return new
