"""Unit tests for :mod:`repro.geometry.rect`."""

import pytest

from repro.geometry.interval import Interval
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestConstruction:
    def test_from_center(self):
        rect = Rect.from_center(Point(5.0, 5.0), 2.0, 3.0)
        assert rect == Rect(3.0, 2.0, 7.0, 8.0)

    def test_from_center_rejects_negative_extents(self):
        with pytest.raises(ValueError):
            Rect.from_center(Point(0.0, 0.0), -1.0, 1.0)

    def test_from_point_is_degenerate(self):
        rect = Rect.from_point(Point(1.0, 2.0))
        assert rect.area == 0.0
        assert not rect.is_empty
        assert rect.contains_point(Point(1.0, 2.0))

    def test_from_intervals(self):
        rect = Rect.from_intervals(Interval(0.0, 2.0), Interval(1.0, 3.0))
        assert rect == Rect(0.0, 1.0, 2.0, 3.0)

    def test_from_intervals_empty(self):
        assert Rect.from_intervals(Interval.empty(), Interval(0.0, 1.0)).is_empty

    def test_bounding(self):
        rects = [Rect(0.0, 0.0, 1.0, 1.0), Rect(5.0, 5.0, 6.0, 7.0)]
        assert Rect.bounding(rects) == Rect(0.0, 0.0, 6.0, 7.0)

    def test_bounding_empty_list(self):
        assert Rect.bounding([]).is_empty


class TestProperties:
    def test_dimensions(self):
        rect = Rect(0.0, 0.0, 4.0, 2.0)
        assert rect.width == 4.0
        assert rect.height == 2.0
        assert rect.area == 8.0
        assert rect.half_perimeter == 6.0

    def test_center(self):
        assert Rect(0.0, 0.0, 4.0, 2.0).center == Point(2.0, 1.0)

    def test_corners(self):
        corners = list(Rect(0.0, 0.0, 1.0, 1.0).corners())
        assert len(corners) == 4
        assert Point(0.0, 0.0) in corners
        assert Point(1.0, 1.0) in corners

    def test_empty_rect_properties(self):
        rect = Rect.empty()
        assert rect.is_empty
        assert rect.area == 0.0
        assert rect.width == 0.0


class TestPredicates:
    def test_contains_point(self):
        rect = Rect(0.0, 0.0, 10.0, 10.0)
        assert rect.contains_point(Point(5.0, 5.0))
        assert rect.contains_point(Point(0.0, 10.0))
        assert not rect.contains_point(Point(10.1, 5.0))

    def test_contains_rect(self):
        outer = Rect(0.0, 0.0, 10.0, 10.0)
        assert outer.contains_rect(Rect(1.0, 1.0, 9.0, 9.0))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(1.0, 1.0, 11.0, 9.0))

    def test_contains_empty_rect(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).contains_rect(Rect.empty())

    def test_overlaps(self):
        a = Rect(0.0, 0.0, 5.0, 5.0)
        assert a.overlaps(Rect(5.0, 5.0, 6.0, 6.0))  # corner touch counts
        assert a.overlaps(Rect(2.0, 2.0, 3.0, 3.0))
        assert not a.overlaps(Rect(6.0, 6.0, 7.0, 7.0))

    def test_overlaps_with_empty_is_false(self):
        assert not Rect(0.0, 0.0, 1.0, 1.0).overlaps(Rect.empty())

    def test_is_disjoint_from(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).is_disjoint_from(Rect(2.0, 2.0, 3.0, 3.0))


class TestArithmetic:
    def test_intersect(self):
        a = Rect(0.0, 0.0, 5.0, 5.0)
        b = Rect(3.0, 2.0, 8.0, 9.0)
        assert a.intersect(b) == Rect(3.0, 2.0, 5.0, 5.0)

    def test_intersection_area(self):
        a = Rect(0.0, 0.0, 5.0, 5.0)
        b = Rect(3.0, 2.0, 8.0, 9.0)
        assert a.intersection_area(b) == pytest.approx(2.0 * 3.0)

    def test_intersection_area_disjoint_is_zero(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).intersection_area(Rect(5.0, 5.0, 6.0, 6.0)) == 0.0

    def test_union_bounds(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(3.0, -1.0, 4.0, 0.5)
        assert a.union_bounds(b) == Rect(0.0, -1.0, 4.0, 1.0)

    def test_union_bounds_with_empty(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        assert a.union_bounds(Rect.empty()) == a
        assert Rect.empty().union_bounds(a) == a

    def test_expand(self):
        rect = Rect(0.0, 0.0, 2.0, 2.0)
        assert rect.expand(1.0) == Rect(-1.0, -1.0, 3.0, 3.0)
        assert rect.expand(1.0, 2.0) == Rect(-1.0, -2.0, 3.0, 4.0)

    def test_shrink_past_empty(self):
        assert Rect(0.0, 0.0, 2.0, 2.0).shrink(2.0).is_empty

    def test_translate(self):
        assert Rect(0.0, 0.0, 1.0, 1.0).translate(2.0, 3.0) == Rect(2.0, 3.0, 3.0, 4.0)

    def test_minkowski_sum_matches_expand_for_centered_rect(self):
        # Summing with a rectangle centred at the origin is the same as
        # expanding by its half-extents — the identity behind query expansion.
        base = Rect(10.0, 10.0, 20.0, 20.0)
        addend = Rect(-3.0, -4.0, 3.0, 4.0)
        assert base.minkowski_sum(addend) == base.expand(3.0, 4.0)

    def test_minkowski_sum_area(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        b = Rect(0.0, 0.0, 4.0, 6.0)
        summed = a.minkowski_sum(b)
        assert summed.width == a.width + b.width
        assert summed.height == a.height + b.height

    def test_enlargement_to_include(self):
        a = Rect(0.0, 0.0, 2.0, 2.0)
        assert a.enlargement_to_include(Rect(1.0, 1.0, 1.5, 1.5)) == 0.0
        assert a.enlargement_to_include(Rect(0.0, 0.0, 4.0, 2.0)) == pytest.approx(4.0)


class TestDistances:
    def test_min_distance_to_point_inside_is_zero(self):
        assert Rect(0.0, 0.0, 10.0, 10.0).min_distance_to_point(Point(5.0, 5.0)) == 0.0

    def test_min_distance_to_point_outside(self):
        assert Rect(0.0, 0.0, 10.0, 10.0).min_distance_to_point(Point(13.0, 14.0)) == 5.0

    def test_min_distance_to_rect_overlapping_is_zero(self):
        a = Rect(0.0, 0.0, 5.0, 5.0)
        assert a.min_distance_to_rect(Rect(4.0, 4.0, 6.0, 6.0)) == 0.0

    def test_min_distance_to_rect_diagonal(self):
        a = Rect(0.0, 0.0, 1.0, 1.0)
        b = Rect(4.0, 5.0, 6.0, 7.0)
        assert a.min_distance_to_rect(b) == pytest.approx(5.0)

    def test_max_distance_to_point(self):
        rect = Rect(0.0, 0.0, 10.0, 10.0)
        assert rect.max_distance_to_point(Point(0.0, 0.0)) == pytest.approx((200.0) ** 0.5)

    def test_distance_to_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.empty().min_distance_to_point(Point(0.0, 0.0))
