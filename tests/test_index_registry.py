"""Tests for the pluggable index registry."""

import pytest

from repro.core.engine import PointDatabase, UncertainDatabase
from repro.geometry.rect import Rect
from repro.index.gridfile import GridFile
from repro.index.linear import LinearScanIndex
from repro.index.pti import ProbabilityThresholdIndex
from repro.index.registry import (
    IndexBackend,
    IndexCapabilities,
    available_indexes,
    build_index,
    get_index_backend,
    register_index,
    unregister_index,
)
from repro.index.rtree import RTree
from repro.uncertainty.region import PointObject


@pytest.fixture()
def points():
    return [PointObject.at(i, 100.0 * i, 50.0 * i) for i in range(1, 30)]


class TestSeedBackends:
    def test_all_four_seed_backends_registered(self):
        names = available_indexes()
        for expected in ("rtree", "pti", "grid", "linear"):
            assert expected in names

    def test_capability_flags(self):
        assert get_index_backend("rtree").capabilities.supports_points
        assert get_index_backend("rtree").capabilities.supports_uncertain
        pti = get_index_backend("pti").capabilities
        assert not pti.supports_points
        assert pti.supports_uncertain
        assert pti.supports_probability_pruning
        assert get_index_backend("grid").capabilities.requires_bounds
        assert not get_index_backend("linear").capabilities.requires_bounds

    def test_all_seed_backends_support_delete(self):
        for name in ("rtree", "pti", "grid", "linear"):
            assert get_index_backend(name).capabilities.supports_delete, name

    def test_supports_delete_defaults_to_false_for_third_parties(self):
        assert not IndexCapabilities().supports_delete

    def test_build_index_resolves_each_backend(self, points, small_uncertain):
        assert isinstance(build_index(points, "rtree"), RTree)
        assert isinstance(build_index(points, "grid"), GridFile)
        assert isinstance(build_index(points, "linear"), LinearScanIndex)
        assert isinstance(build_index(small_uncertain, "pti"), ProbabilityThresholdIndex)

    def test_grid_bounds_computed_when_missing(self, points):
        grid = build_index(points, "grid")
        assert isinstance(grid, GridFile)
        explicit = build_index(points, "grid", bounds=Rect(0.0, 0.0, 5_000.0, 5_000.0))
        assert isinstance(explicit, GridFile)

    def test_unknown_kind_lists_registered_backends(self, points):
        with pytest.raises(ValueError, match="rtree") as excinfo:
            build_index(points, "btree")
        assert "unknown index kind" in str(excinfo.value)


class TestEmptyCollections:
    def test_build_index_rejects_empty(self):
        for kind in ("rtree", "pti", "grid", "linear"):
            with pytest.raises(ValueError, match="cannot index an empty collection"):
                build_index([], kind)

    @pytest.mark.parametrize(
        "loader",
        [RTree.bulk_load, ProbabilityThresholdIndex.bulk_load, LinearScanIndex.bulk_load],
    )
    def test_bulk_load_rejects_empty(self, loader):
        with pytest.raises(ValueError, match="cannot index an empty collection"):
            loader([])

    def test_gridfile_bulk_load_rejects_empty(self):
        with pytest.raises(ValueError, match="cannot index an empty collection"):
            GridFile.bulk_load([], bounds=Rect(0.0, 0.0, 1.0, 1.0))

    def test_databases_reject_empty(self):
        with pytest.raises(ValueError, match="cannot index an empty collection"):
            PointDatabase.build([])
        with pytest.raises(ValueError, match="cannot index an empty collection"):
            UncertainDatabase.build([])


class TestCustomBackends:
    def test_register_lookup_and_unregister(self, points):
        register_index(
            "reversed-scan",
            lambda items, **kwargs: LinearScanIndex.bulk_load(list(reversed(items))),
            capabilities=IndexCapabilities(supports_points=True, supports_uncertain=False),
        )
        try:
            backend = get_index_backend("reversed-scan")
            assert isinstance(backend, IndexBackend)
            index = build_index(points, "reversed-scan")
            assert len(index) == len(points)
        finally:
            unregister_index("reversed-scan")
        with pytest.raises(ValueError):
            get_index_backend("reversed-scan")

    def test_duplicate_registration_rejected_without_replace(self):
        register_index("dup-backend", LinearScanIndex.bulk_load)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_index("dup-backend", LinearScanIndex.bulk_load)
            register_index("dup-backend", LinearScanIndex.bulk_load, replace=True)
        finally:
            unregister_index("dup-backend")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            register_index("", LinearScanIndex.bulk_load)

    def test_point_database_accepts_custom_backend(self, points):
        register_index("scan2", LinearScanIndex.bulk_load)
        try:
            db = PointDatabase.build(points, index_kind="scan2")
            assert db.kind == "scan2"
            assert isinstance(db.index, LinearScanIndex)
        finally:
            unregister_index("scan2")

    def test_capability_validation_in_database_builders(self, points, small_uncertain):
        # The PTI's capabilities exclude point objects.
        with pytest.raises(ValueError, match="uncertain"):
            PointDatabase.build(points, index_kind="pti")
        register_index(
            "points-only",
            LinearScanIndex.bulk_load,
            capabilities=IndexCapabilities(supports_points=True, supports_uncertain=False),
        )
        try:
            with pytest.raises(ValueError, match="cannot store uncertain"):
                UncertainDatabase.build(small_uncertain, index_kind="points-only")
        finally:
            unregister_index("points-only")
