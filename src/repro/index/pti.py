"""The Probability Threshold Index (PTI) — Section 5.3 of the paper.

The PTI (originally from Cheng et al., VLDB 2004) is an R-tree over uncertain
objects in which every node additionally summarises the U-catalogs of the
objects stored beneath it: for each catalog probability level ``m`` the node
keeps the minimum bounding rectangle of all its descendants' ``m``-bound
rectangles.  During a constrained query with threshold ``Qp`` an entire
subtree can be skipped when the (expanded) query region does not intersect
the subtree's ``m``-bound MBR for the largest stored ``m ≤ Qp``: in that case
every object in the subtree has at most ``m ≤ Qp`` probability mass inside
the query region, so by Lemma 4 its qualification probability cannot exceed
``Qp``.
"""

from __future__ import annotations
from repro.errors import InvalidArgumentError, SpatialIndexError

from typing import Iterable

from repro.geometry.rect import Rect
from repro.index.rtree import _Entry, _Node, RTree
from repro.uncertainty.region import UncertainObject


class ProbabilityThresholdIndex(RTree):
    """An R-tree whose nodes carry per-probability-level bound rectangles.

    Items stored in a PTI must be :class:`UncertainObject` instances carrying
    a U-catalog; all objects must share the same catalog levels (the usual
    situation, since catalogs are built by the data loader with a fixed level
    set).
    """

    def __init__(self, *args, **kwargs) -> None:
        self._levels: tuple[float, ...] | None = None
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _require_catalog(self, item: UncertainObject) -> None:
        if not isinstance(item, UncertainObject):
            raise InvalidArgumentError(
                f"PTI stores UncertainObject instances, got {type(item).__name__}"
            )
        if item.catalog is None:
            raise SpatialIndexError(
                f"object {item.oid} has no U-catalog; build it with "
                "UncertainObject.with_catalog() before indexing"
            )
        levels = item.catalog.levels
        if self._levels is None:
            self._levels = levels
        elif levels != self._levels:
            raise SpatialIndexError(
                "all objects in a PTI must share the same catalog levels; "
                f"expected {self._levels}, got {levels}"
            )

    def insert(self, mbr: Rect, item: UncertainObject) -> None:  # type: ignore[override]
        self._require_catalog(item)
        super().insert(mbr, item)

    def update(  # type: ignore[override]
        self,
        old_mbr: Rect,
        new_mbr: Rect,
        item: UncertainObject,
        *,
        replacement: UncertainObject | None = None,
    ) -> None:
        # Validate the incoming payload *before* the delete half runs, so a
        # catalog-less replacement cannot drop the stored item on the floor.
        self._require_catalog(replacement if replacement is not None else item)
        super().update(old_mbr, new_mbr, item, replacement=replacement)

    @classmethod
    def bulk_load(  # type: ignore[override]
        cls, items: Iterable[UncertainObject], **kwargs
    ) -> "ProbabilityThresholdIndex":
        """Build a packed PTI from uncertain objects carrying U-catalogs."""
        materialised = list(items)
        if not materialised:
            raise SpatialIndexError("cannot index an empty collection")
        tree = cls(
            max_entries=kwargs.pop("max_entries", None),
            min_entries=kwargs.pop("min_entries", None),
            **kwargs,
        )
        for item in materialised:
            tree._require_catalog(item)
        tree._bulk_load_pairs([(item.mbr, item) for item in materialised])
        return tree

    # ------------------------------------------------------------------ #
    # Augmentation maintenance
    # ------------------------------------------------------------------ #
    def _entry_level_rect(self, entry: _Entry, level: float) -> Rect:
        if entry.child is not None:
            aug = entry.child.aug
            if aug is None:
                return entry.child.mbr()
            return aug.get(level, entry.child.mbr())
        item: UncertainObject = entry.item
        assert item.catalog is not None
        return item.catalog.bound_at(level).rect

    def _on_node_updated(self, node: _Node) -> None:
        if self._levels is None or not node.entries:
            node.aug = None
            return
        aug: dict[float, Rect] = {}
        for level in self._levels:
            aug[level] = Rect.bounding(
                [self._entry_level_rect(entry, level) for entry in node.entries]
            )
        node.aug = aug

    # ------------------------------------------------------------------ #
    # Threshold-aware search
    # ------------------------------------------------------------------ #
    def pruning_level_for(self, threshold: float) -> float | None:
        """The catalog level used to prune a query with the given threshold.

        Returns the largest stored level that does not exceed ``threshold``,
        or ``None`` when no useful level exists (empty index or threshold
        below the smallest positive level).
        """
        if self._levels is None:
            return None
        candidates = [level for level in self._levels if 0.0 < level <= threshold]
        return max(candidates) if candidates else None

    def range_search_with_threshold(
        self,
        expanded_query: Rect,
        threshold: float,
        p_expanded_query: Rect | None = None,
    ) -> list[UncertainObject]:
        """Window query with index-level probability-threshold pruning.

        ``expanded_query`` is the Minkowski sum ``R ⊕ U0``; a subtree is
        pruned when it does not intersect the subtree's ``m``-bound MBR for
        the largest stored level ``m ≤ threshold`` (the index-level version of
        pruning Strategy 1).  When ``p_expanded_query`` — the issuer's
        Qp-expanded-query — is also given, subtrees whose plain MBR misses it
        are pruned as well (the index-level version of Strategy 2).

        Returns candidate objects whose qualification probability *may* reach
        ``threshold``; exact probabilities of the survivors still have to be
        computed by the evaluation engine.  With ``threshold == 0`` (or no
        usable catalog level) and no ``p_expanded_query`` this degenerates to
        a plain R-tree window query.
        """
        if not 0.0 <= threshold <= 1.0:
            raise SpatialIndexError(f"threshold must lie in [0, 1], got {threshold}")
        level = self.pruning_level_for(threshold)
        if level is None and p_expanded_query is None:
            return self.range_search(expanded_query)

        def node_filter(entry: _Entry) -> bool:
            # entry.mbr is the subtree's bounding box (maintained by the tree),
            # so the Strategy-2 check needs no recomputation.
            if p_expanded_query is not None and not entry.mbr.overlaps(p_expanded_query):
                return False
            child = entry.child
            assert child is not None
            if level is None or child.aug is None:
                return True
            return child.aug[level].overlaps(expanded_query)

        def entry_filter(entry: _Entry) -> bool:
            if p_expanded_query is not None and not entry.mbr.overlaps(p_expanded_query):
                return False
            if level is None:
                return True
            item: UncertainObject = entry.item
            assert item.catalog is not None
            return item.catalog.rect_at(level).overlaps(expanded_query)

        return self.range_search_filtered(
            expanded_query, node_filter=node_filter, entry_filter=entry_filter
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def check_augmentation(self) -> None:
        """Verify that every node's level bounds cover its descendants' bounds."""
        if self._levels is None or len(self) == 0:
            return

        def visit(node: _Node) -> None:
            assert node.aug is not None, "non-empty PTI node without augmentation"
            for level in self._levels or ():
                node_rect = node.aug[level]
                for entry in node.entries:
                    child_rect = self._entry_level_rect(entry, level)
                    assert node_rect.contains_rect(child_rect), (
                        f"node {level}-bound does not cover a child's bound"
                    )
            for entry in node.entries:
                if entry.child is not None:
                    visit(entry.child)

        visit(self._root)
