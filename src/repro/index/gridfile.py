"""A fixed-grid spatial index (a simplified grid file).

The paper mentions the grid file (Nievergelt et al., 1984) alongside the
R-tree as a usable disk index for the expanded-query filtering step.  This
implementation partitions a known data space into a regular grid of buckets;
an object is registered in every bucket its MBR overlaps, and a window query
reads exactly the buckets overlapped by the query rectangle.  Bucket reads
are counted as node accesses so the I/O comparison against the R-tree is
apples-to-apples.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.geometry.rect import Rect
from repro.index.base import extract_mbr
from repro.index.iostats import IOStatistics


class GridFile:
    """A regular-grid index over a fixed data space."""

    def __init__(self, bounds: Rect, cells_per_axis: int = 64) -> None:
        if bounds.is_empty or bounds.area == 0.0:
            raise ValueError("grid bounds must have positive area")
        if cells_per_axis <= 0:
            raise ValueError("cells_per_axis must be positive")
        self._bounds = bounds
        self._n = cells_per_axis
        self._cell_w = bounds.width / cells_per_axis
        self._cell_h = bounds.height / cells_per_axis
        self._cells: list[list[tuple[Rect, Any]]] = [
            [] for _ in range(cells_per_axis * cells_per_axis)
        ]
        self._size = 0
        self._stats = IOStatistics()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> IOStatistics:
        """Access counters accumulated by this index."""
        return self._stats

    @property
    def bounds(self) -> Rect:
        """The data space covered by the grid."""
        return self._bounds

    @property
    def cells_per_axis(self) -> int:
        """Grid resolution along each axis."""
        return self._n

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _cell_range(self, rect: Rect) -> tuple[int, int, int, int]:
        """Indices of the grid cells overlapped by ``rect`` (clamped to the grid)."""
        ix_lo = int(math.floor((rect.xmin - self._bounds.xmin) / self._cell_w))
        ix_hi = int(math.floor((rect.xmax - self._bounds.xmin) / self._cell_w))
        iy_lo = int(math.floor((rect.ymin - self._bounds.ymin) / self._cell_h))
        iy_hi = int(math.floor((rect.ymax - self._bounds.ymin) / self._cell_h))
        ix_lo = min(max(ix_lo, 0), self._n - 1)
        ix_hi = min(max(ix_hi, 0), self._n - 1)
        iy_lo = min(max(iy_lo, 0), self._n - 1)
        iy_hi = min(max(iy_hi, 0), self._n - 1)
        return ix_lo, ix_hi, iy_lo, iy_hi

    def insert(self, mbr: Rect, item: Any) -> None:
        """Register ``item`` in every grid cell its MBR overlaps."""
        if mbr.is_empty:
            raise ValueError("cannot index an empty rectangle")
        ix_lo, ix_hi, iy_lo, iy_hi = self._cell_range(mbr)
        for iy in range(iy_lo, iy_hi + 1):
            for ix in range(ix_lo, ix_hi + 1):
                self._cells[iy * self._n + ix].append((mbr, item))
        self._size += 1

    @classmethod
    def bulk_load(
        cls, items: Iterable[Any], *, bounds: Rect, cells_per_axis: int = 64
    ) -> "GridFile":
        """Build a grid file over items exposing an ``mbr`` attribute."""
        materialised = list(items)
        if not materialised:
            raise ValueError("cannot index an empty collection")
        grid = cls(bounds, cells_per_axis=cells_per_axis)
        for item in materialised:
            grid.insert(extract_mbr(item), item)
        return grid

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def range_search(self, query: Rect) -> list[Any]:
        """Return every stored item whose MBR intersects ``query``."""
        results: list[Any] = []
        if query.is_empty or self._size == 0:
            return results
        window = query.intersect(self._bounds)
        if window.is_empty:
            # Objects may legitimately live outside the declared bounds only
            # if callers lied about the data space; nothing to do here.
            return results
        seen: set[int] = set()
        ix_lo, ix_hi, iy_lo, iy_hi = self._cell_range(window)
        for iy in range(iy_lo, iy_hi + 1):
            for ix in range(ix_lo, ix_hi + 1):
                bucket = self._cells[iy * self._n + ix]
                self._stats.record_node(is_leaf=True)
                self._stats.record_entries(len(bucket))
                for mbr, item in bucket:
                    if id(item) in seen:
                        continue
                    if mbr.overlaps(query):
                        seen.add(id(item))
                        results.append(item)
        self._stats.record_results(len(results))
        return results
