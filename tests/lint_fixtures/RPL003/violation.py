# lint-fixture-path: repro/core/example.py
"""SharedMemory handles that can never be released."""

from multiprocessing.shared_memory import SharedMemory


def publish(payload):
    block = SharedMemory(create=True, size=len(payload))
    block.buf[: len(payload)] = payload


def touch(name):
    SharedMemory(name=name)
