"""Ablation — spatial index used for the expanded-query filter step.

The paper uses an R-tree (and mentions the grid file); this ablation adds a
linear scan as the no-index floor.  Measured on IPQ with the paper's default
parameters.  Expected shape: R-tree and grid file are close, the linear scan
is clearly slower once the dataset is non-trivial.
"""

import pytest

from repro.core.queries import RangeQuery
from repro.core.engine import ImpreciseQueryEngine, PointDatabase

from benchmarks.conftest import issuer_for

INDEX_KINDS = ["rtree", "grid", "linear"]


@pytest.fixture(scope="module", params=INDEX_KINDS)
def point_db_by_kind(request, point_objects):
    return request.param, PointDatabase.build(point_objects, index_kind=request.param)


def test_ipq_by_index_kind(benchmark, point_db_by_kind):
    """IPQ with the paper's default parameters over the given index kind."""
    kind, database = point_db_by_kind
    engine = ImpreciseQueryEngine(point_db=database)
    issuer, spec = issuer_for(250.0)
    benchmark.extra_info["index"] = kind
    result = benchmark(lambda: engine.evaluate(RangeQuery.ipq(issuer, spec)))
    assert result.statistics.candidates_examined >= 0


def test_rtree_bulk_load_construction(benchmark, point_objects):
    """Index-construction cost: STR bulk load over the point dataset."""
    from repro.index.rtree import RTree

    tree = benchmark(lambda: RTree.bulk_load(point_objects))
    assert len(tree) == len(point_objects)
