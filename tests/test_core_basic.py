"""Unit tests for the basic (sampling-based) evaluation method of Section 3.3."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.basic import BasicEvaluator, basic_ipq_probability, basic_iuq_probability
from repro.core.duality import ipq_probability, iuq_probability_exact_uniform
from repro.core.queries import ImpreciseRangeQuery, RangeQuerySpec
from repro.uncertainty.pdf import TruncatedGaussianPdf, UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

ISSUER_REGION = Rect(0.0, 0.0, 500.0, 500.0)
SPEC = RangeQuerySpec.square(500.0)


class TestBasicIPQProbability:
    def test_agrees_with_duality_closed_form(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        for location in (Point(700.0, 250.0), Point(250.0, 900.0), Point(850.0, 850.0)):
            exact = ipq_probability(issuer_pdf, SPEC, location)
            sampled = basic_ipq_probability(issuer_pdf, SPEC, location, issuer_samples=2_500)
            assert sampled == pytest.approx(exact, abs=0.03)

    def test_zero_for_far_away_objects(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        assert basic_ipq_probability(issuer_pdf, SPEC, Point(9_000.0, 9_000.0)) == 0.0

    def test_one_for_object_always_in_range(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        assert basic_ipq_probability(issuer_pdf, SPEC, Point(250.0, 250.0)) == pytest.approx(1.0)

    def test_gaussian_issuer(self):
        issuer_pdf = TruncatedGaussianPdf(ISSUER_REGION)
        location = Point(700.0, 250.0)
        exact = ipq_probability(issuer_pdf, SPEC, location)
        sampled = basic_ipq_probability(issuer_pdf, SPEC, location, issuer_samples=2_500)
        assert sampled == pytest.approx(exact, abs=0.03)


class TestBasicIUQProbability:
    def test_agrees_with_exact_uniform(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = UncertainObject.uniform(1, Rect(800.0, 100.0, 1_000.0, 400.0))
        exact = iuq_probability_exact_uniform(issuer_pdf, target, SPEC)
        sampled = basic_iuq_probability(issuer_pdf, target, SPEC, issuer_samples=2_500)
        assert sampled == pytest.approx(exact, abs=0.02)

    def test_zero_for_far_away_objects(self):
        issuer_pdf = UniformPdf(ISSUER_REGION)
        target = UncertainObject.uniform(1, Rect(8_000.0, 8_000.0, 8_100.0, 8_100.0))
        assert basic_iuq_probability(issuer_pdf, target, SPEC) == 0.0


class TestBasicEvaluator:
    def _issuer(self) -> UncertainObject:
        return UncertainObject.uniform(0, ISSUER_REGION)

    def test_rejects_bad_sample_count(self):
        with pytest.raises(ValueError):
            BasicEvaluator(issuer_samples=0)

    def test_ipq_end_to_end(self):
        objects = [
            PointObject.at(1, 250.0, 250.0),     # always inside
            PointObject.at(2, 900.0, 250.0),     # sometimes inside
            PointObject.at(3, 5_000.0, 5_000.0), # never inside
        ]
        query = ImpreciseRangeQuery(issuer=self._issuer(), spec=SPEC)
        result, stats = BasicEvaluator(issuer_samples=400).evaluate_ipq(query, objects)
        probabilities = result.probabilities()
        assert probabilities[1] == pytest.approx(1.0)
        assert 0.0 < probabilities[2] < 1.0
        assert 3 not in probabilities
        assert stats.results_returned == 2
        assert stats.response_time > 0.0

    def test_iuq_end_to_end(self):
        objects = [
            UncertainObject.uniform(1, Rect(200.0, 200.0, 300.0, 300.0)),
            UncertainObject.uniform(2, Rect(7_000.0, 7_000.0, 7_100.0, 7_100.0)),
        ]
        query = ImpreciseRangeQuery(issuer=self._issuer(), spec=SPEC)
        result, stats = BasicEvaluator(issuer_samples=400).evaluate_iuq(query, objects)
        assert result.oids() == {1}
        assert stats.candidates_examined == 1  # object 2 filtered by expansion

    def test_threshold_respected(self):
        objects = [PointObject.at(1, 900.0, 250.0)]  # partial probability
        query = ImpreciseRangeQuery(issuer=self._issuer(), spec=SPEC, threshold=0.99)
        result, _ = BasicEvaluator(issuer_samples=400).evaluate_ipq(query, objects)
        assert len(result) == 0

    def test_without_expansion_filter_examines_everything(self):
        objects = [
            PointObject.at(1, 250.0, 250.0),
            PointObject.at(2, 9_000.0, 9_000.0),
        ]
        query = ImpreciseRangeQuery(issuer=self._issuer(), spec=SPEC)
        evaluator = BasicEvaluator(issuer_samples=100, use_expansion_filter=False)
        _, stats = evaluator.evaluate_ipq(query, objects)
        assert stats.candidates_examined == 2
