"""CI benchmark regression guard.

Compares freshly produced benchmark result files against the committed
baselines and fails (exit code 1) when a guarded headline metric degrades by
more than the tolerance (default 30 %, override with
``REPRO_BENCH_TOLERANCE``).  Every guarded metric is a *ratio of two
timings on the same machine*, so it transfers across hardware:

* ``BENCH_api_batch.json`` / ``batch_speedup`` — ``evaluate_many()`` over
  the per-query loop.  A drop means the batch path lost its amortisation.
* ``BENCH_api_batch.json`` / ``per_query_loop.queries_per_second`` — guards
  the single-query hot path against accidental slow-downs.
* ``BENCH_updates.json`` / ``incremental_speedup`` — live incremental
  updates over the rebuild-per-round strategy.  A drop means incremental
  maintenance (index delete/update, epoch-gated snapshots) lost its edge.
* ``BENCH_cache.json`` / ``cache_speedup`` — the epoch-keyed result cache
  over uncached evaluation on a repeated-query serving workload.  A drop
  means the pipeline's cache stage stopped short-circuiting repeats (or
  got slow enough to matter).
* ``BENCH_sharded.json`` / ``workload_speedup`` — sharded parallel
  execution over the serial engine.  This guard is *cpu-aware*: on a
  single-core container only the routing overhead is measurable (the
  recorded value sits below 1.0 by construction), so ``cpu_count: 1``
  results are guarded against a lower floor, and the guard message records
  the cpu count it judged under.  The same file's ``ipc_bytes_per_query``
  is held under a *ceiling* (serialized pool traffic must not grow) —
  byte-exact, so it protects the zero-copy protocol even where the timing
  ratio is meaningless.
* ``BENCH_continuous.json`` / ``continuous_speedup`` — incremental
  subscription maintenance over naive re-evaluate-all-subscriptions.  A
  drop means affected-only re-evaluation lost its selectivity.
* ``BENCH_serving.json`` / ``serving_batch_speedup`` — the serving
  front-end's micro-batched dispatch over window=0 per-request dispatch
  under concurrent closed-loop clients.  A drop means the coalescing
  window stopped amortising per-wave costs (or the dispatch loop grew
  per-request overhead).
* ``BENCH_rpc.json`` / ``distributed_vs_pool`` — RPC shard daemons over
  the shared-memory pool on the sampled C-IPQ workload.  CPU-aware like
  the sharded guard: on one core the pool folds back to in-process
  execution while the daemons still pay real socket round-trips, so the
  recorded ratio sits below 1.0 and gets the single-core slack.  The same
  file's ``rpc_bytes_per_query`` is held under both the committed
  baseline (+tolerance) and a hard 2 KiB ceiling — byte-exact on any
  machine, so a slide back towards object serialization on the query
  path (the thing the raw-frame protocol exists to prevent) fails CI even
  where the timing ratio is meaningless.

The benchmark scripts overwrite the committed files in place, so baselines
default to the checked-in versions (``git show HEAD:<file>``); pass
``--baseline`` / ``--updates-baseline`` to compare against saved copies
instead.  The updates guard is skipped (with a notice) when either side is
missing, so the guard keeps working on checkouts predating the updates
benchmark.

Run with::

    python benchmarks/bench_api_batch.py           # writes the fresh file
    python benchmarks/bench_updates.py             # writes the fresh file
    python benchmarks/check_regression.py          # compares vs HEAD
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
FRESH_PATH = REPO_ROOT / "BENCH_api_batch.json"
FRESH_UPDATES_PATH = REPO_ROOT / "BENCH_updates.json"
FRESH_CACHE_PATH = REPO_ROOT / "BENCH_cache.json"
FRESH_SHARDED_PATH = REPO_ROOT / "BENCH_sharded.json"
FRESH_CONTINUOUS_PATH = REPO_ROOT / "BENCH_continuous.json"
FRESH_SERVING_PATH = REPO_ROOT / "BENCH_serving.json"
FRESH_RPC_PATH = REPO_ROOT / "BENCH_rpc.json"
DEFAULT_TOLERANCE = 0.30
#: Extra slack granted to the sharded guard on single-core machines, where
#: the parallel path cannot win (there is nothing to parallelise over) and
#: the metric only measures routing overhead.
SINGLE_CORE_SLACK = 0.20
#: Absolute ceiling on ``ipc_bytes_per_query`` used when the committed
#: baseline predates the metric.  The zero-copy protocol ships ~250 bytes
#: per query (plan tokens out, block names back) where the old pickled
#: envelopes shipped ~6 kB; 2 KiB catches any slide back towards pickling
#: data while staying insensitive to workload-shape noise.  Unlike the
#: timing ratios this is byte-exact and machine-independent, so it guards
#: the zero-copy win even on single-core runners where ``workload_speedup``
#: is meaningless.
IPC_BYTES_CEILING = 2048.0
#: Hard ceiling on ``rpc_bytes_per_query`` from ``BENCH_rpc.json``.  The
#: framed binary protocol ships ~450 B of plan tokens per query out and
#: packed answer arrays (16 B per qualifying oid) back — ~1.5 KiB on the
#: benchmark's thresholded workload.  2 KiB is what the protocol can
#: legitimately reach before something is serializing objects again;
#: unlike the timing ratios it binds on every machine, including 1-core
#: runners, and is enforced even against a drifted committed baseline.
RPC_BYTES_CEILING = 2048.0


def load_baseline(path: str | None, name: str = "BENCH_api_batch.json") -> dict | None:
    """The committed baseline: a file when given, ``git show HEAD:...`` otherwise.

    Returns ``None`` when the baseline does not exist (e.g. the first commit
    shipping a new benchmark).
    """
    if path is not None:
        return json.loads(Path(path).read_text())
    shown = subprocess.run(
        ["git", "show", f"HEAD:{name}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if shown.returncode != 0:
        return None
    return json.loads(shown.stdout)


def _guard(
    failures: list[str],
    name: str,
    fresh_value: float,
    baseline_value: float,
    tolerance: float,
) -> None:
    floor = baseline_value * (1.0 - tolerance)
    if fresh_value < floor:
        failures.append(
            f"{name} regressed: {fresh_value:.3f} < {floor:.3f} "
            f"(baseline {baseline_value:.3f}, tolerance {tolerance:.0%})"
        )


def compare(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty = pass) for the batch-API metrics."""
    failures: list[str] = []
    _guard(
        failures,
        "batch_speedup",
        float(fresh["batch_speedup"]),
        float(baseline["batch_speedup"]),
        tolerance,
    )
    _guard(
        failures,
        "per_query_loop.queries_per_second",
        float(fresh["per_query_loop"]["queries_per_second"]),
        float(baseline["per_query_loop"]["queries_per_second"]),
        tolerance,
    )
    return failures


def compare_updates(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty = pass) for the live-update metrics."""
    failures: list[str] = []
    _guard(
        failures,
        "incremental_speedup",
        float(fresh["incremental_speedup"]),
        float(baseline["incremental_speedup"]),
        tolerance,
    )
    return failures


def compare_cache(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty = pass) for the result-cache metrics."""
    failures: list[str] = []
    _guard(
        failures,
        "cache_speedup",
        float(fresh["cache_speedup"]),
        float(baseline["cache_speedup"]),
        tolerance,
    )
    return failures


def compare_sharded(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty = pass) for the sharded-execution metric.

    CPU-aware: results produced on a single core (``cpu_count: 1``) carry
    :data:`SINGLE_CORE_SLACK` extra tolerance — there, ``workload_speedup``
    only measures routing overhead, a far noisier quantity than a genuine
    parallel speedup — and the judged cpu count is recorded in the failure
    message either way.
    """
    failures: list[str] = []
    cpu_count = int(fresh.get("cpu_count") or 0)
    effective = tolerance + SINGLE_CORE_SLACK if cpu_count == 1 else tolerance
    fresh_value = float(fresh["workload_speedup"])
    baseline_value = float(baseline["workload_speedup"])
    floor = baseline_value * (1.0 - effective)
    if fresh_value < floor:
        failures.append(
            f"workload_speedup regressed: {fresh_value:.3f} < {floor:.3f} "
            f"(baseline {baseline_value:.3f}, tolerance {effective:.0%}, "
            f"cpu_count {cpu_count})"
        )
    # Ceiling on serialized pool traffic: byte-exact, so it holds on any
    # hardware.  Baselines predating the metric fall back to the absolute
    # ceiling; committed baselines tighten it to baseline * (1 + tolerance).
    ipc_fresh = fresh.get("ipc_bytes_per_query")
    if ipc_fresh is not None:
        ipc_baseline = baseline.get("ipc_bytes_per_query")
        if ipc_baseline is not None:
            ceiling = float(ipc_baseline) * (1.0 + tolerance)
            origin = f"baseline {float(ipc_baseline):.0f} B, tolerance {tolerance:.0%}"
        else:
            ceiling = IPC_BYTES_CEILING
            origin = "absolute ceiling"
        if float(ipc_fresh) > ceiling:
            failures.append(
                f"ipc_bytes_per_query regressed: {float(ipc_fresh):.0f} B > "
                f"{ceiling:.0f} B ({origin})"
            )
    return failures


def compare_rpc(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty = pass) for the distributed-shard metrics.

    ``distributed_vs_pool`` gets the same cpu-aware treatment as the
    sharded guard (single-core runs measure transport overhead, not
    parallel speedup); ``rpc_bytes_per_query`` must stay under both the
    committed baseline plus tolerance and the absolute
    :data:`RPC_BYTES_CEILING` — whichever is *lower* binds.
    """
    failures: list[str] = []
    cpu_count = int(fresh.get("cpu_count") or 0)
    effective = tolerance + SINGLE_CORE_SLACK if cpu_count == 1 else tolerance
    fresh_value = float(fresh["distributed_vs_pool"])
    baseline_value = float(baseline["distributed_vs_pool"])
    floor = baseline_value * (1.0 - effective)
    if fresh_value < floor:
        failures.append(
            f"distributed_vs_pool regressed: {fresh_value:.3f} < {floor:.3f} "
            f"(baseline {baseline_value:.3f}, tolerance {effective:.0%}, "
            f"cpu_count {cpu_count})"
        )
    rpc_fresh = float(fresh["rpc_bytes_per_query"])
    rpc_baseline = baseline.get("rpc_bytes_per_query")
    ceiling = RPC_BYTES_CEILING
    origin = "absolute ceiling"
    if rpc_baseline is not None:
        relative = float(rpc_baseline) * (1.0 + tolerance)
        if relative < ceiling:
            ceiling = relative
            origin = f"baseline {float(rpc_baseline):.0f} B, tolerance {tolerance:.0%}"
    if rpc_fresh > ceiling:
        failures.append(
            f"rpc_bytes_per_query regressed: {rpc_fresh:.0f} B > "
            f"{ceiling:.0f} B ({origin})"
        )
    return failures


def compare_continuous(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty = pass) for the continuous-query metric."""
    failures: list[str] = []
    _guard(
        failures,
        "continuous_speedup",
        float(fresh["continuous_speedup"]),
        float(baseline["continuous_speedup"]),
        tolerance,
    )
    return failures


def compare_serving(fresh: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty = pass) for the serving front-end metric."""
    failures: list[str] = []
    _guard(
        failures,
        "serving_batch_speedup",
        float(fresh["serving_batch_speedup"]),
        float(baseline["serving_batch_speedup"]),
        tolerance,
    )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", default=str(FRESH_PATH), help="freshly produced result file")
    parser.add_argument(
        "--baseline", default=None, help="baseline file (default: HEAD's committed copy)"
    )
    parser.add_argument(
        "--updates-fresh",
        default=str(FRESH_UPDATES_PATH),
        help="freshly produced updates result file",
    )
    parser.add_argument(
        "--updates-baseline",
        default=None,
        help="updates baseline file (default: HEAD's committed copy)",
    )
    parser.add_argument(
        "--cache-fresh",
        default=str(FRESH_CACHE_PATH),
        help="freshly produced cache result file",
    )
    parser.add_argument(
        "--cache-baseline",
        default=None,
        help="cache baseline file (default: HEAD's committed copy)",
    )
    parser.add_argument(
        "--sharded-fresh",
        default=str(FRESH_SHARDED_PATH),
        help="freshly produced sharded result file",
    )
    parser.add_argument(
        "--sharded-baseline",
        default=None,
        help="sharded baseline file (default: HEAD's committed copy)",
    )
    parser.add_argument(
        "--continuous-fresh",
        default=str(FRESH_CONTINUOUS_PATH),
        help="freshly produced continuous-query result file",
    )
    parser.add_argument(
        "--continuous-baseline",
        default=None,
        help="continuous baseline file (default: HEAD's committed copy)",
    )
    parser.add_argument(
        "--serving-fresh",
        default=str(FRESH_SERVING_PATH),
        help="freshly produced serving result file",
    )
    parser.add_argument(
        "--serving-baseline",
        default=None,
        help="serving baseline file (default: HEAD's committed copy)",
    )
    parser.add_argument(
        "--rpc-fresh",
        default=str(FRESH_RPC_PATH),
        help="freshly produced distributed-shard result file",
    )
    parser.add_argument(
        "--rpc-baseline",
        default=None,
        help="distributed-shard baseline file (default: HEAD's committed copy)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional degradation (default 0.30)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    baseline = load_baseline(args.baseline)
    if baseline is None:
        print("no committed BENCH_api_batch.json baseline; nothing to guard", file=sys.stderr)
        return 1
    failures = compare(fresh, baseline, args.tolerance)
    summaries = [
        f"batch_speedup {fresh['batch_speedup']:.3f} (baseline {baseline['batch_speedup']:.3f})",
        f"loop {fresh['per_query_loop']['queries_per_second']:.0f} q/s "
        f"(baseline {baseline['per_query_loop']['queries_per_second']:.0f} q/s)",
    ]

    updates_fresh_path = Path(args.updates_fresh)
    updates_baseline = load_baseline(args.updates_baseline, "BENCH_updates.json")
    if not updates_fresh_path.exists():
        print("updates guard skipped: no fresh BENCH_updates.json")
    elif updates_baseline is None:
        print("updates guard skipped: no committed BENCH_updates.json baseline")
    else:
        updates_fresh = json.loads(updates_fresh_path.read_text())
        failures.extend(compare_updates(updates_fresh, updates_baseline, args.tolerance))
        summaries.append(
            f"incremental_speedup {updates_fresh['incremental_speedup']:.3f} "
            f"(baseline {updates_baseline['incremental_speedup']:.3f})"
        )

    cache_fresh_path = Path(args.cache_fresh)
    cache_baseline = load_baseline(args.cache_baseline, "BENCH_cache.json")
    if not cache_fresh_path.exists():
        print("cache guard skipped: no fresh BENCH_cache.json")
    elif cache_baseline is None:
        print("cache guard skipped: no committed BENCH_cache.json baseline")
    else:
        cache_fresh = json.loads(cache_fresh_path.read_text())
        failures.extend(compare_cache(cache_fresh, cache_baseline, args.tolerance))
        summaries.append(
            f"cache_speedup {cache_fresh['cache_speedup']:.3f} "
            f"(baseline {cache_baseline['cache_speedup']:.3f})"
        )

    sharded_fresh_path = Path(args.sharded_fresh)
    sharded_baseline = load_baseline(args.sharded_baseline, "BENCH_sharded.json")
    if not sharded_fresh_path.exists():
        print("sharded guard skipped: no fresh BENCH_sharded.json")
    elif sharded_baseline is None:
        print("sharded guard skipped: no committed BENCH_sharded.json baseline")
    else:
        sharded_fresh = json.loads(sharded_fresh_path.read_text())
        failures.extend(compare_sharded(sharded_fresh, sharded_baseline, args.tolerance))
        summaries.append(
            f"workload_speedup {sharded_fresh['workload_speedup']:.3f} "
            f"(baseline {sharded_baseline['workload_speedup']:.3f}, "
            f"cpu_count {int(sharded_fresh.get('cpu_count') or 0)})"
        )
        if sharded_fresh.get("ipc_bytes_per_query") is not None:
            summaries.append(
                f"ipc {float(sharded_fresh['ipc_bytes_per_query']):.0f} B/query"
            )

    continuous_fresh_path = Path(args.continuous_fresh)
    continuous_baseline = load_baseline(args.continuous_baseline, "BENCH_continuous.json")
    if not continuous_fresh_path.exists():
        print("continuous guard skipped: no fresh BENCH_continuous.json")
    elif continuous_baseline is None:
        print("continuous guard skipped: no committed BENCH_continuous.json baseline")
    else:
        continuous_fresh = json.loads(continuous_fresh_path.read_text())
        failures.extend(
            compare_continuous(continuous_fresh, continuous_baseline, args.tolerance)
        )
        summaries.append(
            f"continuous_speedup {continuous_fresh['continuous_speedup']:.3f} "
            f"(baseline {continuous_baseline['continuous_speedup']:.3f})"
        )

    serving_fresh_path = Path(args.serving_fresh)
    serving_baseline = load_baseline(args.serving_baseline, "BENCH_serving.json")
    if not serving_fresh_path.exists():
        print("serving guard skipped: no fresh BENCH_serving.json")
    elif serving_baseline is None:
        print("serving guard skipped: no committed BENCH_serving.json baseline")
    else:
        serving_fresh = json.loads(serving_fresh_path.read_text())
        failures.extend(compare_serving(serving_fresh, serving_baseline, args.tolerance))
        summaries.append(
            f"serving_batch_speedup {serving_fresh['serving_batch_speedup']:.3f} "
            f"(baseline {serving_baseline['serving_batch_speedup']:.3f})"
        )

    rpc_fresh_path = Path(args.rpc_fresh)
    rpc_baseline = load_baseline(args.rpc_baseline, "BENCH_rpc.json")
    if not rpc_fresh_path.exists():
        print("rpc guard skipped: no fresh BENCH_rpc.json")
    elif rpc_baseline is None:
        print("rpc guard skipped: no committed BENCH_rpc.json baseline")
    else:
        rpc_fresh = json.loads(rpc_fresh_path.read_text())
        failures.extend(compare_rpc(rpc_fresh, rpc_baseline, args.tolerance))
        summaries.append(
            f"distributed_vs_pool {rpc_fresh['distributed_vs_pool']:.3f} "
            f"(baseline {rpc_baseline['distributed_vs_pool']:.3f}, "
            f"mode {rpc_fresh.get('mode', '?')})"
        )
        summaries.append(f"rpc {float(rpc_fresh['rpc_bytes_per_query']):.0f} B/query")

    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("benchmark guard OK: " + ", ".join(summaries))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
