"""Unit tests for the shared index helpers."""

import pytest

from repro.geometry.rect import Rect
from repro.index.base import SpatialIndex, bulk_pairs, extract_mbr
from repro.index.gridfile import GridFile
from repro.index.linear import LinearScanIndex
from repro.index.rtree import RTree
from repro.uncertainty.region import PointObject, UncertainObject


class TestExtractMbr:
    def test_from_rect(self):
        rect = Rect(0.0, 0.0, 1.0, 1.0)
        assert extract_mbr(rect) == rect

    def test_from_point_object(self):
        obj = PointObject.at(1, 2.0, 3.0)
        assert extract_mbr(obj) == obj.mbr

    def test_from_uncertain_object(self):
        obj = UncertainObject.uniform(1, Rect(0.0, 0.0, 5.0, 5.0))
        assert extract_mbr(obj) == obj.region

    def test_from_tuple(self):
        assert extract_mbr((0.0, 1.0, 2.0, 3.0)) == Rect(0.0, 1.0, 2.0, 3.0)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            extract_mbr("not spatial")


class TestBulkPairs:
    def test_pairs_preserve_order_and_items(self):
        objects = [PointObject.at(i, float(i), 0.0) for i in range(5)]
        pairs = bulk_pairs(objects)
        assert [item for _, item in pairs] == objects
        assert all(mbr == item.mbr for mbr, item in pairs)


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "index",
        [
            RTree(max_entries=4),
            GridFile(Rect(0.0, 0.0, 10.0, 10.0)),
            LinearScanIndex(),
        ],
        ids=["rtree", "grid", "linear"],
    )
    def test_indexes_satisfy_protocol(self, index):
        assert isinstance(index, SpatialIndex)
