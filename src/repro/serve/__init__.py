"""Asyncio serving front-end: one session, many concurrent clients.

* :mod:`repro.serve.server` — :class:`QueryServer`, the micro-batching
  dispatch loop plus the JSON-lines TCP transport (``python -m repro.serve``).
* :mod:`repro.serve.client` — :class:`ServeClient`, the pipelined async
  client and its CLI (``python -m repro.serve.client``).
* :mod:`repro.serve.schemas` — the versioned protocol envelopes and the
  structured error model shared by both sides.
"""

from repro.serve.schemas import (
    SERVE_SCHEMA,
    decode_request,
    decode_response,
    error_from_dict,
    error_response,
    error_to_dict,
    ok_response,
    request_envelope,
)
from repro.serve.server import DEFAULT_MAX_PENDING, DEFAULT_WINDOW, QueryServer


def __getattr__(name: str):
    # Imported lazily so `python -m repro.serve.client` does not re-execute a
    # module the package already loaded (runpy's double-import warning).
    if name == "ServeClient":
        from repro.serve.client import ServeClient

        return ServeClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "QueryServer",
    "ServeClient",
    "SERVE_SCHEMA",
    "DEFAULT_WINDOW",
    "DEFAULT_MAX_PENDING",
    "request_envelope",
    "decode_request",
    "ok_response",
    "error_response",
    "error_to_dict",
    "error_from_dict",
    "decode_response",
]
