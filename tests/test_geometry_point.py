"""Unit tests for :mod:`repro.geometry.point`."""

import math

import pytest

from repro.geometry.point import Point


class TestPoint:
    def test_iteration_yields_coordinates(self):
        assert tuple(Point(1.0, 2.0)) == (1.0, 2.0)

    def test_as_tuple(self):
        assert Point(3.0, 4.0).as_tuple() == (3.0, 4.0)

    def test_translate(self):
        assert Point(1.0, 1.0).translate(2.0, -1.0) == Point(3.0, 0.0)

    def test_euclidean_distance(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.0, 7.0), Point(-2.0, 3.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_manhattan_distance(self):
        assert Point(0.0, 0.0).manhattan_distance_to(Point(3.0, 4.0)) == 7.0

    def test_chebyshev_distance(self):
        assert Point(0.0, 0.0).chebyshev_distance_to(Point(3.0, 4.0)) == 4.0

    def test_chebyshev_vs_euclidean_ordering(self):
        a, b = Point(0.0, 0.0), Point(3.0, 4.0)
        assert a.chebyshev_distance_to(b) <= a.distance_to(b)
        assert a.distance_to(b) <= a.manhattan_distance_to(b)

    def test_midpoint(self):
        assert Point(0.0, 0.0).midpoint(Point(4.0, 6.0)) == Point(2.0, 3.0)

    def test_equality_and_hash(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))

    def test_distance_to_self_is_zero(self):
        p = Point(math.pi, math.e)
        assert p.distance_to(p) == 0.0
