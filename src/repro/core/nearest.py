"""Imprecise nearest-neighbour queries — the paper's stated future work.

The conclusion of the paper announces support for "other location-dependent
queries (such as the nearest-neighbor queries)" as future work.  This module
provides a snapshot imprecise nearest-neighbour query over point objects: the
query issuer's location is uncertain, and each object's qualification
probability is the probability (under the issuer's pdf) that the object is
the issuer's nearest neighbour.

Evaluation samples the issuer's pdf, finds the nearest point object for every
sampled position with a best-first R-tree search, and normalises the win
counts.  The candidate set is first narrowed with a conservative geometric
filter: an object whose minimum possible distance to the issuer region
exceeds the smallest maximum distance of some other object can never win.
"""

from __future__ import annotations
from repro.core.errors import ConfigurationError, InvalidQueryError

from dataclasses import dataclass

import math

import numpy as np

from repro.geometry.point import Point
from repro.core.queries import QueryAnswer, QueryResult
from repro.core.statistics import EvaluationStatistics
from repro.index.rtree import RTree
from repro.uncertainty.pdf import UncertaintyPdf
from repro.uncertainty.region import PointObject, UncertainObject
import time


def nn_query_draws(
    issuer_pdf: UncertaintyPdf, samples: int, rng_seed: int, query_seq: int
) -> np.ndarray:
    """The per-query draw plan for nearest-neighbour queries.

    A fresh generator derived from ``(engine seed, query sequence number)``
    produces the issuer draws, so every shard of a sharded database — and the
    single-shard reference engine — samples the identical positions for a
    given query.  This is the nearest-neighbour analogue of
    :func:`repro.core.duality.per_oid_rng` (NN draws belong to the query, not
    to a candidate object, so the object id is absent from the seed).
    """
    if samples <= 0:
        raise InvalidQueryError(f"samples must be positive, got {samples}")
    rng = np.random.default_rng(np.random.SeedSequence((int(rng_seed), int(query_seq))))
    return issuer_pdf.sample(rng, samples)


@dataclass(frozen=True)
class NearestNeighborAnswer:
    """An object together with its probability of being the nearest neighbour."""

    oid: int
    probability: float


class ImpreciseNearestNeighborEngine:
    """Evaluates imprecise nearest-neighbour queries over point objects."""

    def __init__(
        self,
        objects: list[PointObject],
        *,
        index: RTree | None = None,
        samples: int = 256,
        rng_seed: int = 11,
    ) -> None:
        if not objects:
            raise ConfigurationError("the nearest-neighbour engine needs at least one object")
        if samples <= 0:
            raise InvalidQueryError("samples must be positive")
        self._objects = list(objects)
        self._index = index if index is not None else RTree.bulk_load(self._objects)
        self._samples = samples
        self._rng = np.random.default_rng(rng_seed)

    def evaluate(
        self,
        issuer: UncertainObject,
        *,
        threshold: float = 0.0,
        draws: np.ndarray | None = None,
    ) -> tuple[QueryResult, EvaluationStatistics]:
        """Return objects with their nearest-neighbour qualification probabilities.

        Only objects with probability at least ``threshold`` (and non-zero)
        are reported, mirroring the constrained range-query semantics.
        ``draws`` optionally supplies the issuer positions as an ``(n, 2)``
        array (e.g. the deterministic per-query plan of
        :func:`nn_query_draws`); when omitted, the engine's own advancing
        generator draws ``samples`` positions as before.
        """
        if not 0.0 <= threshold <= 1.0:
            raise InvalidQueryError(f"threshold must lie in [0, 1], got {threshold}")
        started = time.perf_counter()
        stats = EvaluationStatistics()
        before = self._index.stats.snapshot()

        if draws is None:
            draws = issuer.pdf.sample(self._rng, self._samples)
        samples = len(draws)
        stats.monte_carlo_samples = samples
        wins: dict[int, int] = {}
        for x, y in draws:
            winners = self._index.nearest_neighbors(Point(float(x), float(y)), k=1)
            if winners:
                winner: PointObject = winners[0]
                wins[winner.oid] = wins.get(winner.oid, 0) + 1

        stats.io = self._index.stats.difference_since(before)
        stats.candidates_examined = len(wins)
        result = QueryResult()
        for oid, count in wins.items():
            probability = count / samples
            if probability > 0.0 and probability >= threshold:
                result.add(oid, probability)
        result.sort()
        stats.results_returned = len(result)
        stats.response_time = time.perf_counter() - started
        return result, stats

    def per_draw_winners(
        self, draws: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, EvaluationStatistics]:
        """Nearest object per issuer draw: ``(oids, distances, statistics)``.

        The shard-merge primitive of the parallel executor: each shard
        reports, for every draw of the shared per-query plan, its local
        winner and that winner's exact distance; the merger keeps the
        globally closest (ties broken towards the smaller oid).  The returned
        statistics carry the index I/O and wall-clock time of this pass.
        """
        started = time.perf_counter()
        stats = EvaluationStatistics()
        before = self._index.stats.snapshot()
        oids = np.empty(len(draws), dtype=np.int64)
        distances = np.empty(len(draws), dtype=float)
        for row, (x, y) in enumerate(draws):
            winner: PointObject = self._index.nearest_neighbors(
                Point(float(x), float(y)), k=1
            )[0]
            oids[row] = winner.oid
            distances[row] = math.hypot(
                float(x) - winner.location.x, float(y) - winner.location.y
            )
        stats.io = self._index.stats.difference_since(before)
        stats.monte_carlo_samples = len(draws)
        stats.response_time = time.perf_counter() - started
        return oids, distances, stats

    def most_probable_neighbor(self, issuer: UncertainObject) -> QueryAnswer | None:
        """Convenience wrapper returning only the most probable nearest neighbour."""
        result, _ = self.evaluate(issuer)
        return result.answers[0] if result.answers else None
