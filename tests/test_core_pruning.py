"""Unit tests for the constrained-query pruning strategies (Section 5)."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.duality import ipq_probability, iuq_probability_exact_uniform
from repro.core.pruning import (
    ALL_STRATEGIES,
    CIPQPruner,
    CIUQPruner,
    PruneDecision,
    PruningStrategy,
)
from repro.core.queries import RangeQuerySpec
from repro.uncertainty.pdf import UniformPdf
from repro.uncertainty.region import PointObject, UncertainObject

ISSUER_REGION = Rect(1_000.0, 1_000.0, 1_500.0, 1_500.0)
SPEC = RangeQuerySpec.square(500.0)


@pytest.fixture()
def issuer() -> UncertainObject:
    return UncertainObject(oid=0, pdf=UniformPdf(ISSUER_REGION)).with_catalog()


def _random_uncertain_objects(n: int, seed: int) -> list[UncertainObject]:
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(n):
        cx = rng.uniform(0.0, 3_000.0)
        cy = rng.uniform(0.0, 3_000.0)
        hw = rng.uniform(10.0, 150.0)
        hh = rng.uniform(10.0, 150.0)
        region = Rect(cx - hw, cy - hh, cx + hw, cy + hh)
        objects.append(UncertainObject.uniform(i, region, with_catalog=True))
    return objects


class TestPruneDecision:
    def test_keep(self):
        decision = PruneDecision.keep()
        assert not decision.pruned and decision.strategy is None

    def test_drop_with_enum(self):
        decision = PruneDecision.drop(PruningStrategy.P_BOUND)
        assert decision.pruned and decision.strategy == "p_bound"

    def test_drop_with_string(self):
        assert PruneDecision.drop("custom").strategy == "custom"


class TestCIPQPruner:
    def test_invalid_threshold_rejected(self, issuer):
        with pytest.raises(ValueError):
            CIPQPruner(issuer, SPEC, threshold=1.5)

    def test_zero_threshold_uses_minkowski(self, issuer):
        pruner = CIPQPruner(issuer, SPEC, threshold=0.0)
        assert pruner.filter_region == pruner.minkowski_region

    def test_positive_threshold_shrinks_filter(self, issuer):
        pruner = CIPQPruner(issuer, SPEC, threshold=0.4)
        assert pruner.minkowski_region.contains_rect(pruner.filter_region)
        assert pruner.filter_region.area < pruner.minkowski_region.area

    def test_disabled_p_expansion_keeps_minkowski(self, issuer):
        pruner = CIPQPruner(issuer, SPEC, threshold=0.4, use_p_expanded_query=False)
        assert pruner.filter_region == pruner.minkowski_region

    def test_objects_inside_filter_kept(self, issuer):
        pruner = CIPQPruner(issuer, SPEC, threshold=0.3)
        inside = PointObject.at(1, 1_250.0, 1_250.0)
        assert not pruner.decide(inside).pruned

    def test_objects_outside_filter_pruned(self, issuer):
        pruner = CIPQPruner(issuer, SPEC, threshold=0.3)
        outside = PointObject.at(2, 5_000.0, 5_000.0)
        decision = pruner.decide(outside)
        assert decision.pruned
        assert decision.strategy == PruningStrategy.P_EXPANDED_QUERY.value

    def test_pruning_is_sound(self, issuer):
        """No pruned point object may actually have probability above the threshold."""
        threshold = 0.4
        pruner = CIPQPruner(issuer, SPEC, threshold=threshold)
        rng = np.random.default_rng(3)
        for _ in range(500):
            location = Point(rng.uniform(0.0, 3_000.0), rng.uniform(0.0, 3_000.0))
            if pruner.prune_point(location):
                probability = ipq_probability(issuer.pdf, SPEC, location)
                assert probability <= threshold + 1e-9

    def test_without_catalog_uses_exact_expansion(self):
        plain_issuer = UncertainObject.uniform(0, ISSUER_REGION)
        pruner = CIPQPruner(plain_issuer, SPEC, threshold=0.37)
        assert pruner.level_used == pytest.approx(0.37)


class TestCIUQPrunerRegions:
    def test_zero_threshold_regions_coincide(self, issuer):
        pruner = CIUQPruner(issuer, SPEC, threshold=0.0)
        assert pruner.qp_expanded_region == pruner.minkowski_region

    def test_positive_threshold_shrinks_window(self, issuer):
        pruner = CIUQPruner(issuer, SPEC, threshold=0.5)
        assert pruner.minkowski_region.contains_rect(pruner.qp_expanded_region)

    def test_invalid_threshold_rejected(self, issuer):
        with pytest.raises(ValueError):
            CIUQPruner(issuer, SPEC, threshold=-0.1)

    def test_zero_threshold_never_prunes(self, issuer):
        pruner = CIUQPruner(issuer, SPEC, threshold=0.0)
        obj = UncertainObject.uniform(1, Rect(0.0, 0.0, 10.0, 10.0), with_catalog=True)
        assert not pruner.decide(obj).pruned


class TestCIUQStrategies:
    def test_strategy2_prunes_far_objects(self, issuer):
        pruner = CIUQPruner(
            issuer, SPEC, threshold=0.5, strategies=(PruningStrategy.P_EXPANDED_QUERY,)
        )
        far = UncertainObject.uniform(
            1, Rect(4_000.0, 4_000.0, 4_100.0, 4_100.0), with_catalog=True
        )
        decision = pruner.decide(far)
        assert decision.pruned
        assert decision.strategy == PruningStrategy.P_EXPANDED_QUERY.value

    def test_strategy1_prunes_marginal_overlap(self, issuer):
        # An object whose region barely clips the Minkowski sum: the clipped
        # part lies beyond the object's own 0.5-bound, so Strategy 1 fires.
        pruner = CIUQPruner(issuer, SPEC, threshold=0.5, strategies=(PruningStrategy.P_BOUND,))
        minkowski = pruner.minkowski_region
        # Place the object so that only its leftmost 10% overlaps the window.
        region = Rect(minkowski.xmax - 20.0, 1_200.0, minkowski.xmax + 180.0, 1_400.0)
        obj = UncertainObject.uniform(1, region, with_catalog=True)
        decision = pruner.decide(obj)
        assert decision.pruned
        assert decision.strategy == PruningStrategy.P_BOUND.value

    def test_strategy3_requires_both_catalogs(self, issuer):
        pruner = CIUQPruner(
            issuer, SPEC, threshold=0.5, strategies=(PruningStrategy.PRODUCT_BOUND,)
        )
        no_catalog = UncertainObject.uniform(1, Rect(0.0, 0.0, 100.0, 100.0))
        assert not pruner.decide(no_catalog).pruned

    def test_central_object_never_pruned(self, issuer):
        pruner = CIUQPruner(issuer, SPEC, threshold=0.8)
        central = UncertainObject.uniform(
            1, Rect(1_200.0, 1_200.0, 1_300.0, 1_300.0), with_catalog=True
        )
        assert not pruner.decide(central).pruned

    @pytest.mark.parametrize("threshold", [0.2, 0.5, 0.8])
    def test_pruning_is_sound_for_random_objects(self, issuer, threshold):
        """No pruned uncertain object may have an exact probability above Qp."""
        pruner = CIUQPruner(issuer, SPEC, threshold=threshold, strategies=ALL_STRATEGIES)
        for obj in _random_uncertain_objects(300, seed=int(threshold * 100)):
            decision = pruner.decide(obj)
            if decision.pruned:
                exact = iuq_probability_exact_uniform(issuer.pdf, obj, SPEC)
                assert exact <= threshold + 1e-9, (
                    f"object {obj.oid} pruned by {decision.strategy} but has "
                    f"probability {exact} > {threshold}"
                )

    def test_combined_strategies_prune_at_least_as_much_as_each_alone(self, issuer):
        objects = _random_uncertain_objects(300, seed=17)
        threshold = 0.5
        combined = CIUQPruner(issuer, SPEC, threshold=threshold, strategies=ALL_STRATEGIES)
        combined_count = sum(combined.decide(o).pruned for o in objects)
        for strategy in ALL_STRATEGIES:
            single = CIUQPruner(issuer, SPEC, threshold=threshold, strategies=(strategy,))
            single_count = sum(single.decide(o).pruned for o in objects)
            assert combined_count >= single_count

    def test_higher_threshold_prunes_at_least_as_much(self, issuer):
        objects = _random_uncertain_objects(300, seed=23)
        low = CIUQPruner(issuer, SPEC, threshold=0.2)
        high = CIUQPruner(issuer, SPEC, threshold=0.8)
        low_count = sum(low.decide(o).pruned for o in objects)
        high_count = sum(high.decide(o).pruned for o in objects)
        assert high_count >= low_count
