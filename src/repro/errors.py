"""Typed exception hierarchy shared by every layer of the reproduction.

Historically the repository raised bare ``ValueError``/``TypeError``/
``KeyError`` wherever a request was malformed, which worked for a
single-process library but leaves a wire protocol with nothing to dispatch
on: a server must map *kinds* of failure to structured error responses, and
a client must rebuild the same kind on its side.  Every failure the
reproduction can provoke now derives from :class:`ReproError` and carries a
stable machine-readable :attr:`~ReproError.wire_code` used by
:mod:`repro.serve.schemas` as the error model's discriminator.

Backwards compatibility: each subclass keeps the builtin its call sites used
to raise as a *second* base (``InvalidQueryError`` is still a ``ValueError``,
``BackpressureError`` a ``RuntimeError``, ``MissingItemError`` a
``KeyError``), so existing ``except ValueError`` handlers and tests keep
working unchanged.

This module lives at the package root (not under :mod:`repro.core`) because
the low-level packages — :mod:`repro.geometry`, :mod:`repro.uncertainty`,
:mod:`repro.datasets`, :mod:`repro.index` — raise these types too, and they
are imported *by* ``repro.core`` during its package initialisation; an
import of ``repro.core.errors`` from inside them would re-enter the
half-initialised ``repro.core`` package.  :mod:`repro.core.errors` re-exports
everything here, so the historical import path keeps working.  The module
itself imports nothing, so it is always safe to import from anywhere.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every structured error raised by the reproduction.

    ``wire_code`` is the stable identifier shipped inside error envelopes;
    :func:`repro.serve.schemas.error_from_dict` maps it back to the matching
    subclass on the client side.
    """

    wire_code: str = "error"


class ConfigurationError(ReproError, ValueError):
    """A session, engine or server was assembled from contradictory parts."""

    wire_code = "configuration"


class InvalidQueryError(ReproError, ValueError):
    """A query (or query builder) was given out-of-domain parameters."""

    wire_code = "invalid_query"


class InvalidUpdateError(ReproError, ValueError):
    """An update operation was malformed (contradictory or missing fields)."""

    wire_code = "invalid_update"


class UnknownObjectError(ReproError, ValueError):
    """A delete/move named an oid the target database does not hold."""

    wire_code = "unknown_object"


class BackpressureError(ReproError, RuntimeError):
    """The serving front-end's request queue is past its high-water mark.

    Raised *immediately* on submission (the request is never queued), so a
    client can back off and retry; the dispatch loop is unaffected.
    """

    wire_code = "backpressure"


class SchemaError(ReproError, ValueError):
    """A wire payload is not a valid instance of the expected schema."""

    wire_code = "schema"


class SchemaVersionError(SchemaError):
    """A wire payload carries a schema version this build cannot decode."""

    wire_code = "schema_version"


class GeometryError(ReproError, ValueError):
    """A geometric primitive was given out-of-domain parameters.

    Negative half-extents, operations on empty rectangles/intervals,
    negative radii — anything :mod:`repro.geometry` rejects.
    """

    wire_code = "geometry"


class DistributionError(ReproError, ValueError):
    """An uncertainty pdf, U-catalog or sampler was given invalid parameters."""

    wire_code = "distribution"


class DatasetError(ReproError, ValueError):
    """A dataset, workload or data payload is malformed or inconsistent."""

    wire_code = "dataset"


class SpatialIndexError(ReproError, ValueError):
    """A spatial index was built or probed with invalid parameters."""

    wire_code = "index"


class MissingItemError(ReproError, KeyError):
    """A keyed lookup (oid, catalog level, stored item) found nothing.

    Keeps ``KeyError`` as a base so historical ``except KeyError`` handlers
    survive; ``__str__`` is restored to the plain-message form because
    ``KeyError`` would otherwise ``repr()`` the message into quotes.
    """

    wire_code = "missing_item"

    __str__ = BaseException.__str__


class InvalidArgumentError(ReproError, TypeError):
    """An argument has the wrong type or an unsupported shape."""

    wire_code = "invalid_argument"


class EngineStateError(ReproError, RuntimeError):
    """An operation is invalid in the object's current state.

    Publishing through a closed snapshot store, bulk-loading a non-empty
    tree, mutating through an engine with no matching database — the
    request could be valid, the receiver cannot honour it right now.
    """

    wire_code = "engine_state"


__all__ = [
    "ReproError",
    "ConfigurationError",
    "InvalidQueryError",
    "InvalidUpdateError",
    "UnknownObjectError",
    "BackpressureError",
    "SchemaError",
    "SchemaVersionError",
    "GeometryError",
    "DistributionError",
    "DatasetError",
    "SpatialIndexError",
    "MissingItemError",
    "InvalidArgumentError",
    "EngineStateError",
]
