"""Unit tests for the I/O statistics counters."""

from repro.index.iostats import IOStatistics


class TestIOStatistics:
    def test_initial_state_is_zero(self):
        stats = IOStatistics()
        assert stats.node_accesses == 0
        assert stats.entries_examined == 0

    def test_record_node(self):
        stats = IOStatistics()
        stats.record_node(is_leaf=True)
        stats.record_node(is_leaf=False)
        assert stats.node_accesses == 2
        assert stats.leaf_accesses == 1
        assert stats.internal_accesses == 1

    def test_record_entries_and_results(self):
        stats = IOStatistics()
        stats.record_entries(5)
        stats.record_entries(3)
        stats.record_results(2)
        assert stats.entries_examined == 8
        assert stats.objects_returned == 2

    def test_reset(self):
        stats = IOStatistics()
        stats.record_node(is_leaf=True)
        stats.record_entries(10)
        stats.reset()
        assert stats.node_accesses == 0
        assert stats.entries_examined == 0

    def test_snapshot_is_independent(self):
        stats = IOStatistics()
        stats.record_node(is_leaf=True)
        snap = stats.snapshot()
        stats.record_node(is_leaf=True)
        assert snap.node_accesses == 1
        assert stats.node_accesses == 2

    def test_difference_since(self):
        stats = IOStatistics()
        stats.record_node(is_leaf=True)
        before = stats.snapshot()
        stats.record_node(is_leaf=False)
        stats.record_entries(4)
        delta = stats.difference_since(before)
        assert delta.node_accesses == 1
        assert delta.internal_accesses == 1
        assert delta.entries_examined == 4

    def test_merge(self):
        a = IOStatistics(node_accesses=1, leaf_accesses=1, entries_examined=3)
        b = IOStatistics(node_accesses=2, internal_accesses=2, entries_examined=5)
        a.merge(b)
        assert a.node_accesses == 3
        assert a.entries_examined == 8
