"""Figure 8 — basic method (Equation 4) vs enhanced method (Equation 8) for IUQ.

The paper's figure plots average response time against the issuer's
uncertainty-region size ``u`` for the two evaluation methods.  Each benchmark
below is one point of one series; the benchmark table therefore reproduces
the figure's data.  Expected shape: the basic method is at least an order of
magnitude slower at every ``u``, and both series grow with ``u``.
"""

import pytest

from repro.core.basic import BasicEvaluator
from repro.core.engine import ImpreciseQueryEngine
from repro.core.queries import ImpreciseRangeQuery, RangeQuery

from benchmarks.conftest import issuer_for

U_VALUES = [100.0, 250.0, 500.0, 1000.0]


@pytest.mark.parametrize("u", U_VALUES)
def test_enhanced_iuq(benchmark, uncertain_db_rtree, u):
    """Enhanced evaluation: Minkowski filter + closed-form Equation 8."""
    engine = ImpreciseQueryEngine(uncertain_db=uncertain_db_rtree)
    issuer, spec = issuer_for(u)
    result = benchmark(lambda: engine.evaluate(RangeQuery.iuq(issuer, spec)))
    assert result.result is not None


@pytest.mark.parametrize("u", U_VALUES)
def test_basic_iuq(benchmark, uncertain_db_rtree, uncertain_objects, u):
    """Basic evaluation: Equation 4 by discretising the issuer region."""
    evaluator = BasicEvaluator(issuer_samples=400)
    issuer, spec = issuer_for(u)
    query = ImpreciseRangeQuery(issuer=issuer, spec=spec)
    result = benchmark(lambda: evaluator.evaluate_iuq(query, uncertain_objects))
    assert result[0] is not None
