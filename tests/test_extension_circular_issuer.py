"""Integration tests for the non-rectangular (circular) uncertainty extension.

The paper lists non-rectangular uncertainty regions as future work; the
reproduction supports a uniform disc pdf for the query issuer.  These tests
check that the engine handles such issuers end to end and that the resulting
probabilities are consistent with first-principles computations.
"""

import numpy as np
import pytest

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.core.duality import ipq_probability
from repro.core.engine import EngineConfig, ImpreciseQueryEngine, PointDatabase
from repro.core.queries import RangeQuery, RangeQuerySpec
from repro.uncertainty.pdf import UniformCirclePdf
from repro.uncertainty.region import PointObject, UncertainObject


@pytest.fixture(scope="module")
def circular_issuer() -> UncertainObject:
    pdf = UniformCirclePdf(Circle(Point(500.0, 500.0), 100.0))
    return UncertainObject(oid=0, pdf=pdf).with_catalog()


@pytest.fixture(scope="module")
def small_point_db() -> PointDatabase:
    objects = [
        PointObject.at(1, 500.0, 500.0),    # at the centre: always in range
        PointObject.at(2, 1_050.0, 500.0),  # near the range boundary
        PointObject.at(3, 5_000.0, 5_000.0),  # far away: never in range
    ]
    return PointDatabase.build(objects)


class TestCircularIssuer:
    def test_duality_probability_uses_disc_geometry(self, circular_issuer):
        spec = RangeQuerySpec.square(500.0)
        # The dual range centred on a far point only clips the right part of
        # the disc, so the probability equals the clipped disc fraction.
        location = Point(1_050.0, 500.0)
        expected_fraction = circular_issuer.pdf.probability_in_rect(spec.region_at(location))
        assert ipq_probability(circular_issuer.pdf, spec, location) == pytest.approx(
            expected_fraction
        )
        assert 0.0 < expected_fraction < 1.0

    def test_engine_evaluates_ipq(self, circular_issuer, small_point_db):
        engine = ImpreciseQueryEngine(point_db=small_point_db)
        result, stats = engine.evaluate(
            RangeQuery.ipq(circular_issuer, RangeQuerySpec.square(500.0))
        ).as_tuple()
        probabilities = result.probabilities()
        assert probabilities[1] == pytest.approx(1.0, abs=0.05)
        assert 0.0 < probabilities[2] < 1.0
        assert 3 not in probabilities
        # The disc pdf has no closed form, so the auto path samples.
        assert stats.monte_carlo_samples > 0

    def test_monte_carlo_matches_analytic_disc_fraction(self, circular_issuer, small_point_db):
        spec = RangeQuerySpec.square(500.0)
        engine = ImpreciseQueryEngine(
            point_db=small_point_db,
            config=EngineConfig(probability_method="monte_carlo", monte_carlo_samples=4_000),
        )
        result, _ = engine.evaluate(RangeQuery.ipq(circular_issuer, spec)).as_tuple()
        analytic = circular_issuer.pdf.probability_in_rect(
            spec.region_at(small_point_db.objects[1].location)
        )
        assert result.probabilities()[2] == pytest.approx(analytic, abs=0.05)

    def test_constrained_query_respects_threshold(self, circular_issuer, small_point_db):
        engine = ImpreciseQueryEngine(point_db=small_point_db)
        result, _ = engine.evaluate(
            RangeQuery.cipq(circular_issuer, RangeQuerySpec.square(500.0), 0.9)
        ).as_tuple()
        assert all(answer.probability >= 0.9 for answer in result)
        assert 1 in result.oids()

    def test_catalog_bounds_inside_bounding_box(self, circular_issuer):
        assert circular_issuer.catalog is not None
        region = circular_issuer.region
        for _, bound in circular_issuer.catalog:
            assert region.contains_rect(bound.rect)

    def test_sampling_respects_disc(self, circular_issuer):
        rng = np.random.default_rng(1)
        draws = circular_issuer.pdf.sample(rng, 2_000)
        distances = np.hypot(draws[:, 0] - 500.0, draws[:, 1] - 500.0)
        assert float(distances.max()) <= 100.0 + 1e-9
