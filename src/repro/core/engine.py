"""The serial query engine (Sections 4.3 and 5.3 of the paper).

Once a 1,500-line monolith holding the databases, the evaluation cores and
a stack of deprecation shims, this module is now the thin serial front of a
layered architecture:

* :mod:`repro.core.database` — :class:`PointDatabase` /
  :class:`UncertainDatabase` (live mutators, epoch counters, columnar
  snapshots); re-exported here for compatibility.
* :mod:`repro.core.plan` — per-query :class:`~repro.core.plan.QueryPlan`
  compilation (candidate window, index probe, pruner, draw-plan slot,
  cache key).
* :mod:`repro.core.pipeline` — the staged
  plan → cache? → candidates → prune → evaluate → merge runner shared
  verbatim with per-shard execution (:mod:`repro.core.sharding`) and the
  shared-memory worker pool (:mod:`repro.core.parallel`).
* :mod:`repro.core.cache` — the epoch-keyed
  :class:`~repro.core.cache.ResultCache` consulted and filled by the
  pipeline when :class:`EngineConfig` carries one.

The engine owns what is genuinely serial-engine state: the configuration,
the monotonic query sequence counter, and the mutation surface dispatching
inserts/deletes/moves to the owning database.  All query flavours funnel
through ``engine.evaluate(query)`` (single-dispatched on
:class:`~repro.core.queries.RangeQuery` /
:class:`~repro.core.queries.NearestNeighborQuery`) and the batch
``engine.evaluate_many(...)``, which also accepts interleaved
:class:`~repro.core.updates.UpdateBatch` items.
"""

from __future__ import annotations
from repro.core.errors import ConfigurationError, EngineStateError, InvalidArgumentError

from dataclasses import dataclass, field, fields, replace
from functools import singledispatchmethod
from typing import Iterable, Literal

import numpy as np

from repro.core.cache import ResultCache
from repro.core.database import (  # noqa: F401  (re-exported: historical home)
    PointDatabase,
    UncertainDatabase,
    _MutableDatabaseMixin,
    _TrackedObjects,
)
from repro.core.pipeline import DEFAULT_NN_SAMPLES, QueryPipeline, partition_workload
from repro.core.pruning import ALL_STRATEGIES, PruningStrategy
from repro.core.queries import (
    Evaluation,
    NearestNeighborQuery,
    Query,
    RangeQuery,
)
from repro.core.updates import (
    UpdateBatch,
    apply_update_op,
    pick_mutation_database,
    resolve_move_target,
)
from repro.uncertainty.region import PointObject, UncertainObject

__all__ = [
    "DEFAULT_NN_SAMPLES",
    "DrawPlan",
    "EngineConfig",
    "ImpreciseQueryEngine",
    "IndexKind",
    "PointDatabase",
    "ProbabilityMethod",
    "UncertainDatabase",
]

#: Names of the index backends shipped with the reproduction.  Any name
#: registered via :func:`repro.index.registry.register_index` is accepted
#: wherever an ``IndexKind`` is expected.
IndexKind = Literal["rtree", "pti", "grid", "linear"]
ProbabilityMethod = Literal["auto", "exact", "monte_carlo"]

#: How Monte-Carlo draws are assigned to candidate objects.  ``"stream"`` is
#: the historical plan: one batched draw per query consumed from the engine's
#: shared, advancing generator.  ``"per_oid"`` derives an independent
#: generator per ``(query sequence number, object id)`` pair, which makes a
#: survivor's draws independent of batch composition — the property the
#: sharded parallel executor needs for bitwise-identical results.
#: ``"query_keyed"`` goes one step further and keys the draws by a stable
#: fingerprint of the query's *content* instead of its position, so a
#: repeated query samples the same draws wherever it appears — the property
#: the result cache needs to serve sampled answers without breaking replay
#: determinism.
DrawPlan = Literal["stream", "per_oid", "query_keyed"]

_DRAW_PLANS = ("stream", "per_oid", "query_keyed")


@dataclass(frozen=True)
class EngineConfig:
    """Tunable behaviour of the query engine.

    The defaults reproduce the paper's "enhanced" configuration: analytic
    probabilities where possible, p-expanded-query filtering and all three
    pruning strategies for constrained queries, and PTI-level pruning when the
    uncertain database is indexed with a PTI.
    """

    probability_method: ProbabilityMethod = "auto"
    monte_carlo_samples: int = 250
    rng_seed: int = 7
    use_p_expanded_query: bool = True
    use_pti_pruning: bool = True
    ciuq_strategies: tuple[PruningStrategy, ...] = ALL_STRATEGIES
    #: Evaluate qualification probabilities with the NumPy-columnar backend.
    #: Answer sets are identical to the scalar path (Monte-Carlo draws are
    #: bitwise identical given the same seed); pdfs without array kernels
    #: transparently fall back to their scalar implementations.
    vectorized: bool = True
    #: Monte-Carlo draw plan (see :data:`DrawPlan`).  ``"per_oid"`` makes
    #: sampled probabilities a pure function of ``(rng_seed, query sequence
    #: number, oid)`` — required by sharded execution; ``"query_keyed"``
    #: makes them a pure function of ``(rng_seed, query content, oid)`` —
    #: required for cached sampled answers; the default ``"stream"``
    #: preserves the historical draw sequence.
    draw_plan: DrawPlan = "stream"
    #: Shared :class:`~repro.core.cache.ResultCache` consulted and filled by
    #: the pipeline's cache stage (``None`` disables caching).  Excluded
    #: from equality/fingerprints: the cache is infrastructure, not
    #: behaviour — two engines sharing one cache but otherwise differing
    #: never see each other's entries, because every key embeds the
    #: :meth:`fingerprint` of the filling configuration.
    cache: ResultCache | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.monte_carlo_samples < 1:
            raise ConfigurationError(
                f"monte_carlo_samples must be >= 1, got {self.monte_carlo_samples}"
            )
        if self.draw_plan not in _DRAW_PLANS:
            raise ConfigurationError(
                f"draw_plan must be one of {_DRAW_PLANS}, got {self.draw_plan!r}"
            )
        if (
            isinstance(self.rng_seed, bool)
            or not isinstance(self.rng_seed, (int, np.integer))
            or self.rng_seed < 0
        ):
            raise ConfigurationError(
                f"rng_seed must be a non-negative integer, got {self.rng_seed!r}"
            )
        if self.cache is not None:
            if not isinstance(self.cache, ResultCache):
                raise ConfigurationError(
                    f"cache must be a repro.core.cache.ResultCache or None, "
                    f"got {type(self.cache).__name__!r} (capacity must be a "
                    "positive integer — build one with ResultCache(capacity=...))"
                )
            if self.draw_plan == "stream":
                raise ConfigurationError(
                    "cache + draw_plan='stream' would break replay determinism: "
                    "the streaming plan ties Monte-Carlo draws to batch "
                    "composition, so an answer served from the cache would "
                    "desynchronise the shared generator for every later query. "
                    "Use draw_plan='query_keyed' (cached sampled answers) or "
                    "'per_oid' (only draw-free answers are cached)."
                )

    def fingerprint(self) -> tuple:
        """A hashable digest of every field that can influence an answer.

        Embedded in result-cache keys so engines sharing one cache but
        running different configurations can never serve each other's
        results.  The ``cache`` field itself is excluded — where an answer
        is stored does not change what the answer is.
        """
        return tuple(
            getattr(self, f.name) for f in fields(self) if f.name != "cache"
        )

    def with_overrides(self, **kwargs) -> "EngineConfig":
        """Return a copy of the configuration with the given fields replaced.

        Unknown field names are rejected with a message listing the valid
        fields, so typos fail loudly instead of being silently ignored by a
        downstream ``replace``.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ConfigurationError(
                f"unknown EngineConfig field(s): {', '.join(unknown)}; "
                f"valid fields are: {', '.join(sorted(valid))}"
            )
        return replace(self, **kwargs)


class ImpreciseQueryEngine:
    """Evaluates IPQ, IUQ, C-IPQ, C-IUQ and nearest-neighbour queries.

    The single entry point is :meth:`evaluate`, which dispatches on the query
    object's type; :meth:`evaluate_many` is the batch counterpart.  Both run
    the staged pipeline of :mod:`repro.core.pipeline` — the same stage runner
    sharded and parallel execution use — so the serial engine is exactly
    "the pipeline plus a sequence counter and a mutation surface".
    """

    #: Reported by :meth:`Session.describe` so clients can tell which
    #: executor answers their queries.
    engine_kind = "serial"

    def __init__(
        self,
        *,
        point_db: PointDatabase | None = None,
        uncertain_db: UncertainDatabase | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        if point_db is None and uncertain_db is None:
            raise ConfigurationError("the engine needs at least one database to query")
        self._point_db = point_db
        self._uncertain_db = uncertain_db
        self._config = config if config is not None else EngineConfig()
        self._pipeline = QueryPipeline(
            point_db=point_db, uncertain_db=uncertain_db, config=self._config
        )
        # Monotonic query sequence number.  Every evaluated query consumes
        # one (whatever its kind), so that under the per-oid draw plan the
        # n-th query of any call pattern — evaluate() loop, evaluate_many(),
        # or a sharded executor replaying explicit numbers through
        # evaluate_many_at() — samples the same draws.
        self._query_seq = 0

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def point_db(self) -> PointDatabase | None:
        """The point-object database, if any."""
        return self._point_db

    @property
    def uncertain_db(self) -> UncertainDatabase | None:
        """The uncertain-object database, if any."""
        return self._uncertain_db

    @property
    def pipeline(self) -> QueryPipeline:
        """The staged pipeline executing this engine's queries."""
        return self._pipeline

    # ------------------------------------------------------------------ #
    # Unified entry point
    # ------------------------------------------------------------------ #
    def _next_query_seq(self) -> int:
        seq = self._query_seq
        self._query_seq += 1
        return seq

    @singledispatchmethod
    def evaluate(self, query):
        """Evaluate one query object and return an :class:`Evaluation`.

        Dispatches on the query's type: :class:`RangeQuery` covers all four
        paper query flavours via its target kind and threshold,
        :class:`NearestNeighborQuery` the nearest-neighbour extension.
        """
        raise InvalidArgumentError(
            f"cannot evaluate {type(query).__name__!r}; expected a RangeQuery "
            "or a NearestNeighborQuery (legacy ImpreciseRangeQuery objects are "
            "no longer accepted — adapt them with RangeQuery.from_legacy(query, "
            "target))"
        )

    @evaluate.register
    def _evaluate_range_query(
        self, query: RangeQuery, *, query_seq: int | None = None
    ) -> Evaluation:
        seq = self._next_query_seq() if query_seq is None else query_seq
        return self._pipeline.run_batch([query], [seq], use_snapshots=False)[0]

    @evaluate.register
    def _evaluate_nearest_query(
        self, query: NearestNeighborQuery, *, query_seq: int | None = None
    ) -> Evaluation:
        seq = self._next_query_seq() if query_seq is None else query_seq
        return self._pipeline.run_batch([query], [seq], use_snapshots=False)[0]

    def evaluate_many(self, queries: Iterable[Query | UpdateBatch]) -> list[Evaluation]:
        """Evaluate a batch of queries, preserving input order.

        The batch path amortises work a per-query loop repeats (see
        :meth:`repro.core.pipeline.QueryPipeline.run_batch`); results —
        including Monte-Carlo draws — are identical to calling
        :meth:`evaluate` on each query in order, because queries execute in
        input order against the same random generator.

        An :class:`~repro.core.updates.UpdateBatch` may be interleaved with
        the queries: it is applied at exactly its position in the stream
        (earlier queries see the old data, later ones the new) and produces
        no :class:`Evaluation` of its own.  Updates consume no query sequence
        numbers, so under the per-oid draw plan the surrounding queries'
        Monte-Carlo draws are unaffected.
        """
        evaluations: list[Evaluation] = []
        for kind, payload in partition_workload(queries):
            if kind == "updates":
                self.apply_updates(payload)
            else:
                seqs = [self._next_query_seq() for _ in payload]
                evaluations.extend(self._pipeline.run_batch(payload, seqs))
        return evaluations

    def evaluate_many_at(self, items: Iterable[tuple[int, Query]]) -> list[Evaluation]:
        """Batch evaluation with caller-assigned query sequence numbers.

        ``items`` is an iterable of ``(query_seq, query)`` pairs.  This is the
        replay entry point of the sharded executor: a shard engine evaluates
        only the queries routed to it, but under the per-oid draw plan each
        query must carry the sequence number it holds in the *global*
        workload so that its Monte-Carlo draws match the single-shard
        engine's.  The engine's own sequence counter is left untouched.
        Everything else — pruner caching, columnar batch filtering — behaves
        exactly like :meth:`evaluate_many`.
        """
        materialised = list(items)
        batch = [query for _, query in materialised]
        for position, query in enumerate(batch):
            if not isinstance(query, (RangeQuery, NearestNeighborQuery)):
                raise InvalidArgumentError(
                    f"evaluate_many_at() only accepts RangeQuery and NearestNeighborQuery "
                    f"objects; item {position} is {type(query).__name__!r}"
                )
        seqs = [int(seq) for seq, _ in materialised]
        return self._pipeline.run_batch(batch, seqs)

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def _require_point_db(self) -> PointDatabase:
        if self._point_db is None:
            raise EngineStateError("no point-object database configured")
        return self._point_db

    def _require_uncertain_db(self) -> UncertainDatabase:
        if self._uncertain_db is None:
            raise EngineStateError("no uncertain-object database configured")
        return self._uncertain_db

    def _mutation_db(self, target: str | None) -> PointDatabase | UncertainDatabase:
        return pick_mutation_database(self._point_db, self._uncertain_db, target)

    def insert(self, obj: PointObject | UncertainObject):
        """Add one object to the matching database (chosen by the object's type).

        The database keeps its index in sync and bumps its epoch, so cached
        columnar snapshots, nearest-neighbour samplers and result-cache
        entries are invalidated lazily.  Returns the stored object.
        """
        if isinstance(obj, PointObject):
            return self._require_point_db().insert(obj)
        if isinstance(obj, UncertainObject):
            return self._require_uncertain_db().insert(obj)
        raise InvalidArgumentError(
            f"expected a PointObject or UncertainObject, got {type(obj).__name__}"
        )

    def delete(self, oid: int, *, target: str | None = None):
        """Remove one object by oid; ``target`` picks the database when both exist.

        Returns the removed object.
        """
        return self._mutation_db(target).delete(oid)

    def move(
        self,
        oid: int,
        *,
        x: float | None = None,
        y: float | None = None,
        pdf=None,
        target: str | None = None,
    ):
        """Relocate one object: ``x``/``y`` for a point, ``pdf`` for an uncertain one.

        Returns the stored replacement object.
        """
        if resolve_move_target(x, y, pdf, target) == "points":
            return self._require_point_db().move(oid, float(x), float(y))
        return self._require_uncertain_db().move(oid, pdf)

    def apply_updates(self, batch: UpdateBatch) -> None:
        """Apply an ordered batch of mutations to this engine's databases."""
        for op in batch:
            apply_update_op(self, op)
