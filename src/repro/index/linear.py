"""Linear-scan "index" — the no-index baseline.

Used by the index ablation benchmark to quantify how much of the paper's
speed-up comes from the spatial index versus the probability-computation
improvements.  A full scan touches every stored object; node accesses are
modelled as sequential page reads of ``page_size / entry_size`` entries each.
"""

from __future__ import annotations
from repro.errors import MissingItemError, SpatialIndexError

import math
from typing import Any, Iterable

from repro.geometry.rect import Rect
from repro.index.base import extract_mbr, items_match
from repro.index.iostats import IOStatistics
from repro.index.rtree import DEFAULT_ENTRY_BYTES, DEFAULT_PAGE_BYTES


class LinearScanIndex:
    """Stores (MBR, item) pairs in a flat list and scans them for every query."""

    def __init__(
        self,
        *,
        page_size: int = DEFAULT_PAGE_BYTES,
        entry_size: int = DEFAULT_ENTRY_BYTES,
    ) -> None:
        self._entries: list[tuple[Rect, Any]] = []
        self._stats = IOStatistics()
        self._entries_per_page = max(1, page_size // entry_size)

    @property
    def stats(self) -> IOStatistics:
        """Access counters accumulated by this index."""
        return self._stats

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, mbr: Rect, item: Any) -> None:
        """Append one item to the scan list."""
        if mbr.is_empty:
            raise SpatialIndexError("cannot index an empty rectangle")
        self._entries.append((mbr, item))

    def delete(self, mbr: Rect, item: Any) -> None:
        """Remove the first stored entry matching ``(mbr, item)``."""
        for position, (stored_mbr, stored) in enumerate(self._entries):
            if stored_mbr == mbr and items_match(stored, item):
                del self._entries[position]
                return
        raise MissingItemError(f"item with MBR {mbr.as_tuple()} is not stored in this index")

    def update(
        self, old_mbr: Rect, new_mbr: Rect, item: Any, *, replacement: Any = None
    ) -> None:
        """Move one stored item to ``new_mbr`` (optionally replacing the payload)."""
        self.delete(old_mbr, item)
        self.insert(new_mbr, replacement if replacement is not None else item)

    @classmethod
    def bulk_load(cls, items: Iterable[Any], **kwargs) -> "LinearScanIndex":
        """Build a scan list from items exposing an ``mbr`` attribute."""
        materialised = list(items)
        if not materialised:
            raise SpatialIndexError("cannot index an empty collection")
        index = cls(**kwargs)
        for item in materialised:
            index.insert(extract_mbr(item), item)
        return index

    def range_search(self, query: Rect) -> list[Any]:
        """Return every stored item whose MBR intersects ``query``."""
        results: list[Any] = []
        if query.is_empty or not self._entries:
            return results
        pages = math.ceil(len(self._entries) / self._entries_per_page)
        for _ in range(pages):
            self._stats.record_node(is_leaf=True)
        self._stats.record_entries(len(self._entries))
        for mbr, item in self._entries:
            if mbr.overlaps(query):
                results.append(item)
        self._stats.record_results(len(results))
        return results
