"""Spatial partitioners: determinism, coverage and balance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.partition import (
    grid_assignments,
    mbr_centers,
    median_assignments,
    partition_assignments,
)
from repro.datasets.synthetic import clustered_points, uniform_points
from repro.geometry.rect import Rect

SPACE = Rect(0.0, 0.0, 1_000.0, 1_000.0)


def _centers(n: int, seed: int = 0) -> np.ndarray:
    return mbr_centers(uniform_points(n, SPACE, seed=seed))


class TestGridAssignments:
    def test_every_object_gets_a_shard_in_range(self):
        assignments = grid_assignments(_centers(200), 4, SPACE)
        assert assignments.shape == (200,)
        assert assignments.min() >= 0 and assignments.max() < 4

    def test_deterministic(self):
        a = grid_assignments(_centers(150), 6, SPACE)
        b = grid_assignments(_centers(150), 6, SPACE)
        assert np.array_equal(a, b)

    def test_k_one_sends_everything_to_shard_zero(self):
        assignments = grid_assignments(_centers(50), 1, SPACE)
        assert set(assignments.tolist()) == {0}

    def test_four_cells_split_the_space_in_quadrants(self):
        centers = np.array([[100.0, 100.0], [900.0, 100.0], [100.0, 900.0], [900.0, 900.0]])
        assignments = grid_assignments(centers, 4, SPACE)
        # Row-major from the bottom-left: BL=0, BR=1, TL=2, TR=3.
        assert assignments.tolist() == [0, 1, 2, 3]

    def test_centers_outside_bounds_clamp_into_edge_cells(self):
        centers = np.array([[-50.0, -50.0], [2_000.0, 2_000.0]])
        assignments = grid_assignments(centers, 4, SPACE)
        assert assignments.tolist() == [0, 3]

    def test_prime_k_degenerates_to_strips(self):
        assignments = grid_assignments(_centers(300), 5, SPACE)
        assert set(assignments.tolist()) == {0, 1, 2, 3, 4}

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k must be"):
            grid_assignments(_centers(10), 0, SPACE)


class TestMedianAssignments:
    def test_parts_are_balanced_even_under_skew(self):
        skewed = mbr_centers(clustered_points(400, SPACE, n_clusters=3, seed=5))
        assignments = median_assignments(skewed, 4)
        _, counts = np.unique(assignments, return_counts=True)
        assert counts.sum() == 400
        assert counts.max() - counts.min() <= 2

    def test_deterministic(self):
        a = median_assignments(_centers(123), 3)
        b = median_assignments(_centers(123), 3)
        assert np.array_equal(a, b)

    def test_non_power_of_two_part_counts(self):
        assignments = median_assignments(_centers(90), 3)
        _, counts = np.unique(assignments, return_counts=True)
        assert counts.tolist() == [30, 30, 30]

    def test_k_one_is_identity(self):
        assignments = median_assignments(_centers(17), 1)
        assert set(assignments.tolist()) == {0}


class TestPartitionAssignments:
    def test_dispatches_both_methods(self):
        centers = _centers(60)
        grid = partition_assignments(centers, 4, method="grid", bounds=SPACE)
        median = partition_assignments(centers, 4, method="median")
        assert grid.shape == median.shape == (60,)

    def test_grid_without_bounds_computes_them(self):
        assignments = partition_assignments(_centers(80), 4, method="grid")
        assert set(assignments.tolist()) <= {0, 1, 2, 3}

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown partition method"):
            partition_assignments(_centers(10), 2, method="voronoi")

    def test_bad_center_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            partition_assignments(np.zeros((5, 3)), 2, method="median")

    def test_empty_input_yields_empty_assignment(self):
        assignments = partition_assignments(np.empty((0, 2)), 3, method="median")
        assert assignments.size == 0
