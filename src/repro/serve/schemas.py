"""Protocol envelopes of the serving front-end.

One request/response schema (``repro.serve``) wraps the core wire payloads
of :mod:`repro.core.queries` / :mod:`repro.core.updates`: a request names an
``op`` (``"query"`` / ``"update"`` / ``"stats"``), carries a client-chosen
``id`` echoed back verbatim, and — for the first two ops — the operand's own
versioned ``to_dict`` payload.  Responses are ``{"ok": true, "result": ...}``
or ``{"ok": false, "error": ...}`` where the error model ships the raising
exception's :attr:`~repro.core.errors.ReproError.wire_code`, so
:func:`error_from_dict` rebuilds the *same* exception class on the client
side and a remote ``BackpressureError`` is catchable exactly like a local
one.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.errors import ReproError, SchemaError
from repro.core.wire import check_schema, require, tagged

#: Schema name of the serving protocol's request/response envelopes.
SERVE_SCHEMA = "repro.serve"

#: Operations a request may name.
SERVE_OPS = ("query", "update", "stats")


def _error_classes() -> dict[str, type[ReproError]]:
    """``wire_code`` → exception class, derived from the live hierarchy.

    Walking ``__subclasses__`` instead of hardcoding a list means a class
    added to :mod:`repro.errors` round-trips over the wire without anyone
    remembering to extend this table.  Later definitions win on a duplicate
    code, but duplicates are a bug — the lint tool's wire-completeness rule
    cross-checks this table against the hierarchy at import time.
    """
    table: dict[str, type[ReproError]] = {ReproError.wire_code: ReproError}
    stack = list(ReproError.__subclasses__())
    while stack:
        cls = stack.pop()
        table[cls.wire_code] = cls
        stack.extend(cls.__subclasses__())
    return table


#: ``wire_code`` → exception class, the error model's decode table.
_ERROR_CLASSES: dict[str, type[ReproError]] = _error_classes()


# --------------------------------------------------------------------------- #
# Requests
# --------------------------------------------------------------------------- #
def request_envelope(op: str, rid: Any, payload: Any = None) -> dict:
    """Build a request envelope; ``rid`` is echoed back in the response."""
    if op not in SERVE_OPS:
        raise SchemaError(f"unknown serve op {op!r}; expected one of {SERVE_OPS}")
    return tagged(SERVE_SCHEMA, {"op": op, "id": rid, "payload": payload})


def decode_request(payload: Any) -> tuple[str, Any, Any]:
    """Validate a request envelope; returns ``(op, rid, operand payload)``."""
    payload = check_schema(payload, SERVE_SCHEMA)
    op = require(payload, SERVE_SCHEMA, "op")
    if op not in SERVE_OPS:
        raise SchemaError(f"unknown serve op {op!r}; expected one of {SERVE_OPS}")
    return op, payload.get("id"), payload.get("payload")


# --------------------------------------------------------------------------- #
# Responses
# --------------------------------------------------------------------------- #
def ok_response(rid: Any, result: Any) -> dict:
    """A success envelope carrying the op's JSON-safe result."""
    return tagged(SERVE_SCHEMA, {"id": rid, "ok": True, "result": result})


def error_response(rid: Any, error: BaseException) -> dict:
    """A failure envelope carrying the structured error model."""
    return tagged(SERVE_SCHEMA, {"id": rid, "ok": False, "error": error_to_dict(error)})


def error_to_dict(error: BaseException) -> dict:
    """The error model: a stable code, the class name, and the message."""
    code = getattr(error, "wire_code", None) or ReproError.wire_code
    return {"code": code, "type": type(error).__name__, "message": str(error)}


def error_from_dict(payload: Mapping) -> ReproError:
    """Rebuild the typed exception a failure envelope describes.

    Unknown codes (e.g. a server-side bug surfacing a builtin exception)
    decode to the base :class:`~repro.core.errors.ReproError`.
    """
    code = payload.get("code")
    message = payload.get("message", "")
    cls = _ERROR_CLASSES.get(code, ReproError)
    return cls(message)


def decode_response(payload: Any) -> Any:
    """Validate a response envelope; returns the result or raises the error."""
    payload = check_schema(payload, SERVE_SCHEMA)
    if require(payload, SERVE_SCHEMA, "ok"):
        return require(payload, SERVE_SCHEMA, "result")
    raise error_from_dict(require(payload, SERVE_SCHEMA, "error"))
